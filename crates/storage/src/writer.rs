//! The dedicated database-writer worker (paper §3.4).
//!
//! During parallel sketching, computation workers do not touch the store
//! directly: they send [`WriteBatch`]es over a channel to a single
//! [`BatchWriter`] thread that owns all writes. This mirrors the paper's
//! division of workers into computation workers and one database worker, and
//! it lets the Figure 6a experiment report the write time separately from the
//! sketch-computation time.
//!
//! The writer is *double-buffered*: the bounded channel is the fill buffer
//! the computation workers append to, and on every wake-up the writer swaps
//! out everything queued so far, coalesces it into one combined batch, and
//! issues a single `write_series` / `write_pairs` call per swap. Each store
//! write acquires the store's internal lock once per *swap* instead of once
//! per producer batch, which is what kept the disk engine write-paced at
//! larger series counts. The swap size is bounded by
//! [`BatchWriter::spawn_with_coalescing`]'s limit; the default comes from
//! the `TSUBASA_DB_BATCH` environment variable (see
//! [`default_batch_pairs`]).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use tsubasa_core::error::{Error, Result};

use crate::record::{PairWindowRecord, SeriesWindowRecord};
use crate::store::SketchStore;

/// A batch of sketch records produced by one computation worker for one
/// partition chunk.
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    /// Per-series records in the batch.
    pub series: Vec<SeriesWindowRecord>,
    /// Per-pair records in the batch.
    pub pairs: Vec<PairWindowRecord>,
}

impl WriteBatch {
    /// True when the batch carries no records.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty() && self.pairs.is_empty()
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.series.len() + self.pairs.len()
    }
}

/// The default number of pairs per write batch / ranged read: the
/// `TSUBASA_DB_BATCH` environment variable when set to a positive integer,
/// otherwise 256. The parallel engine's `ParallelConfig::default` and the
/// writer's coalescing limit both derive from this, so the knob tunes the
/// whole write path from the environment.
pub fn default_batch_pairs() -> usize {
    std::env::var("TSUBASA_DB_BATCH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|v| *v > 0)
        .unwrap_or(256)
}

/// When the database worker forces written data down to the device.
///
/// The original writer only called [`SketchStore::flush`] (which maps to
/// `fsync`/`sync_data` on the disk store) once, after the channel closed — so
/// a crash mid-sketch could lose every batch reported as "written". The knob
/// makes the trade explicit: [`SyncPolicy::OnSwap`] bounds the loss window to
/// one swap at the cost of an fsync per coalesced write; the default keeps
/// the old single-fsync-at-shutdown behavior. Either way the number of syncs
/// actually issued is surfaced in [`WriterStats::syncs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Flush/fsync once, when the writer drains the channel and shuts down.
    #[default]
    OnShutdown,
    /// Flush/fsync after every buffer swap (every coalesced store write),
    /// plus the final one at shutdown.
    OnSwap,
}

/// Statistics reported by the writer thread when it finishes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WriterStats {
    /// Number of producer batches drained from the channel.
    pub batches: usize,
    /// Number of buffer swaps, i.e. coalesced store write calls. At most
    /// [`WriterStats::batches`]; lower when the writer found several queued
    /// batches per wake-up.
    pub swaps: usize,
    /// Total number of records written.
    pub records: usize,
    /// Wall-clock time spent inside store write calls (the paper's
    /// "write time" component of the sketch-time breakdown).
    pub write_time: Duration,
    /// Number of durability flushes ([`SketchStore::flush`]) issued, per the
    /// configured [`SyncPolicy`]: `swaps + 1` under [`SyncPolicy::OnSwap`],
    /// `1` under [`SyncPolicy::OnShutdown`].
    pub syncs: usize,
}

/// Handle to the running database-writer thread.
pub struct BatchWriter {
    sender: Option<Sender<WriteBatch>>,
    handle: Option<JoinHandle<Result<WriterStats>>>,
}

impl BatchWriter {
    /// Spawn the writer thread on top of a shared store with the default
    /// coalescing limit ([`default_batch_pairs`] records per swap per record
    /// kind). `queue_depth` bounds the channel so computation workers back
    /// off instead of buffering the whole sketch in memory.
    pub fn spawn(store: Arc<dyn SketchStore>, queue_depth: usize) -> Self {
        Self::spawn_with_coalescing(store, queue_depth, default_batch_pairs())
    }

    /// [`BatchWriter::spawn`] with an explicit coalescing limit: on every
    /// wake-up the writer swaps out queued batches until it holds at least
    /// `coalesce_records` records (or the queue is momentarily empty) and
    /// writes them with one store call per record kind.
    pub fn spawn_with_coalescing(
        store: Arc<dyn SketchStore>,
        queue_depth: usize,
        coalesce_records: usize,
    ) -> Self {
        Self::spawn_with_durability(store, queue_depth, coalesce_records, SyncPolicy::default())
    }

    /// [`BatchWriter::spawn_with_coalescing`] with an explicit durability
    /// policy controlling when [`SketchStore::flush`] is issued.
    pub fn spawn_with_durability(
        store: Arc<dyn SketchStore>,
        queue_depth: usize,
        coalesce_records: usize,
        durability: SyncPolicy,
    ) -> Self {
        let (tx, rx) = bounded::<WriteBatch>(queue_depth.max(1));
        let coalesce = coalesce_records.max(1);
        let handle = std::thread::spawn(move || -> Result<WriterStats> {
            let mut stats = WriterStats::default();
            // Swap-and-write loop: block for the first batch, then drain
            // whatever else the computation workers queued meanwhile into
            // one combined buffer before touching the store.
            while let Ok(first) = rx.recv() {
                let mut buffer = first;
                stats.batches += 1;
                while buffer.len() < coalesce {
                    match rx.try_recv() {
                        Ok(mut next) => {
                            stats.batches += 1;
                            buffer.series.append(&mut next.series);
                            buffer.pairs.append(&mut next.pairs);
                        }
                        Err(_) => break,
                    }
                }
                let start = Instant::now();
                if !buffer.series.is_empty() {
                    store.write_series(&buffer.series)?;
                }
                if !buffer.pairs.is_empty() {
                    store.write_pairs(&buffer.pairs)?;
                }
                if durability == SyncPolicy::OnSwap {
                    store.flush()?;
                    stats.syncs += 1;
                }
                stats.write_time += start.elapsed();
                stats.swaps += 1;
                stats.records += buffer.len();
            }
            let start = Instant::now();
            store.flush()?;
            stats.syncs += 1;
            stats.write_time += start.elapsed();
            Ok(stats)
        });
        Self {
            sender: Some(tx),
            handle: Some(handle),
        }
    }

    /// A cloneable sender that computation workers use to submit batches.
    pub fn sender(&self) -> Sender<WriteBatch> {
        self.sender
            .as_ref()
            .expect("writer already finished")
            .clone()
    }

    /// Close the channel, wait for the writer to drain it, and return the
    /// accumulated statistics.
    pub fn finish(mut self) -> Result<WriterStats> {
        // Dropping the last sender closes the channel; the thread then exits
        // its drain loop and flushes.
        self.sender.take();
        let handle = self.handle.take().expect("writer already joined");
        handle
            .join()
            .map_err(|_| Error::Storage("database writer thread panicked".into()))?
    }
}

impl Drop for BatchWriter {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemorySketchStore;
    use crate::store::StoreLayout;

    fn layout() -> StoreLayout {
        StoreLayout {
            n_series: 4,
            n_windows: 3,
            basic_window: 8,
        }
    }

    #[test]
    fn writer_drains_batches_and_reports_stats() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        let writer = BatchWriter::spawn(store.clone(), 4);
        let tx = writer.sender();
        for s in 0..4u32 {
            tx.send(WriteBatch {
                series: vec![SeriesWindowRecord {
                    series: s,
                    window: 1,
                    len: 8,
                    mean: s as f64,
                    std: 1.0,
                }],
                pairs: vec![],
            })
            .unwrap();
        }
        drop(tx);
        let stats = writer.finish().unwrap();
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.records, 4);
        for s in 0..4 {
            assert_eq!(store.read_series(s, 1..2).unwrap()[0].mean, s as f64);
        }
    }

    #[test]
    fn writer_handles_mixed_batches_from_many_threads() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        let writer = BatchWriter::spawn(store.clone(), 2);
        let mut threads = Vec::new();
        for t in 0..3u32 {
            let tx = writer.sender();
            threads.push(std::thread::spawn(move || {
                tx.send(WriteBatch {
                    series: vec![SeriesWindowRecord {
                        series: t,
                        window: 0,
                        len: 8,
                        mean: 10.0 + t as f64,
                        std: 0.0,
                    }],
                    pairs: vec![PairWindowRecord {
                        a: 0,
                        b: t + 1,
                        window: 2,
                        corr: 0.5,
                        dft_dist: f64::NAN,
                    }],
                })
                .unwrap();
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
        let stats = writer.finish().unwrap();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.records, 6);
        assert_eq!(store.read_pair(0, 2, 2..3).unwrap()[0].corr, 0.5);
    }

    #[test]
    fn empty_batches_are_counted_but_harmless() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        let writer = BatchWriter::spawn(store, 1);
        writer.sender().send(WriteBatch::default()).unwrap();
        let stats = writer.finish().unwrap();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.records, 0);
    }

    fn series_batch(s: u32) -> WriteBatch {
        WriteBatch {
            series: vec![SeriesWindowRecord {
                series: s,
                window: 0,
                len: 8,
                mean: s as f64,
                std: 1.0,
            }],
            pairs: vec![],
        }
    }

    #[test]
    fn durability_on_swap_syncs_every_swap_plus_shutdown() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        // Coalescing limit 1: every drained batch completes a swap on its
        // own, so the swap count (and with it the sync count) is
        // deterministic regardless of producer timing.
        let writer = BatchWriter::spawn_with_durability(store.clone(), 4, 1, SyncPolicy::OnSwap);
        let tx = writer.sender();
        for s in 0..3u32 {
            tx.send(series_batch(s)).unwrap();
        }
        drop(tx);
        let stats = writer.finish().unwrap();
        assert_eq!(stats.records, 3);
        assert_eq!(stats.syncs, stats.swaps + 1);
        assert!(stats.syncs >= 2);
    }

    #[test]
    fn durability_on_shutdown_syncs_exactly_once() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        let writer = BatchWriter::spawn_with_durability(store, 4, 1, SyncPolicy::OnShutdown);
        let tx = writer.sender();
        for s in 0..3u32 {
            tx.send(series_batch(s)).unwrap();
        }
        drop(tx);
        let stats = writer.finish().unwrap();
        assert_eq!(stats.syncs, 1, "legacy behavior: one flush at shutdown");
    }

    #[test]
    fn default_spawn_keeps_on_shutdown_durability() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        let writer = BatchWriter::spawn(store, 2);
        writer.sender().send(series_batch(0)).unwrap();
        let stats = writer.finish().unwrap();
        assert_eq!(stats.syncs, 1);
    }

    #[test]
    fn write_batch_len_and_is_empty() {
        let mut b = WriteBatch::default();
        assert!(b.is_empty());
        b.series.push(SeriesWindowRecord {
            series: 0,
            window: 0,
            len: 1,
            mean: 0.0,
            std: 0.0,
        });
        assert!(!b.is_empty());
        assert_eq!(b.len(), 1);
    }
}
