//! The dedicated database-writer worker (paper §3.4).
//!
//! During parallel sketching, computation workers do not touch the store
//! directly: they send [`WriteBatch`]es over a channel to a single
//! [`BatchWriter`] thread that owns all writes. This mirrors the paper's
//! division of workers into computation workers and one database worker, and
//! it lets the Figure 6a experiment report the write time separately from the
//! sketch-computation time.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use tsubasa_core::error::{Error, Result};

use crate::record::{PairWindowRecord, SeriesWindowRecord};
use crate::store::SketchStore;

/// A batch of sketch records produced by one computation worker for one
/// partition chunk.
#[derive(Debug, Default, Clone)]
pub struct WriteBatch {
    /// Per-series records in the batch.
    pub series: Vec<SeriesWindowRecord>,
    /// Per-pair records in the batch.
    pub pairs: Vec<PairWindowRecord>,
}

impl WriteBatch {
    /// True when the batch carries no records.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty() && self.pairs.is_empty()
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.series.len() + self.pairs.len()
    }
}

/// Statistics reported by the writer thread when it finishes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WriterStats {
    /// Number of batches drained from the channel.
    pub batches: usize,
    /// Total number of records written.
    pub records: usize,
    /// Wall-clock time spent inside store write calls (the paper's
    /// "write time" component of the sketch-time breakdown).
    pub write_time: Duration,
}

/// Handle to the running database-writer thread.
pub struct BatchWriter {
    sender: Option<Sender<WriteBatch>>,
    handle: Option<JoinHandle<Result<WriterStats>>>,
}

impl BatchWriter {
    /// Spawn the writer thread on top of a shared store. `queue_depth` bounds
    /// the channel so computation workers back off instead of buffering the
    /// whole sketch in memory.
    pub fn spawn(store: Arc<dyn SketchStore>, queue_depth: usize) -> Self {
        let (tx, rx) = bounded::<WriteBatch>(queue_depth.max(1));
        let handle = std::thread::spawn(move || -> Result<WriterStats> {
            let mut stats = WriterStats::default();
            for batch in rx.iter() {
                let start = Instant::now();
                if !batch.series.is_empty() {
                    store.write_series(&batch.series)?;
                }
                if !batch.pairs.is_empty() {
                    store.write_pairs(&batch.pairs)?;
                }
                stats.write_time += start.elapsed();
                stats.batches += 1;
                stats.records += batch.len();
            }
            let start = Instant::now();
            store.flush()?;
            stats.write_time += start.elapsed();
            Ok(stats)
        });
        Self {
            sender: Some(tx),
            handle: Some(handle),
        }
    }

    /// A cloneable sender that computation workers use to submit batches.
    pub fn sender(&self) -> Sender<WriteBatch> {
        self.sender
            .as_ref()
            .expect("writer already finished")
            .clone()
    }

    /// Close the channel, wait for the writer to drain it, and return the
    /// accumulated statistics.
    pub fn finish(mut self) -> Result<WriterStats> {
        // Dropping the last sender closes the channel; the thread then exits
        // its drain loop and flushes.
        self.sender.take();
        let handle = self.handle.take().expect("writer already joined");
        handle
            .join()
            .map_err(|_| Error::Storage("database writer thread panicked".into()))?
    }
}

impl Drop for BatchWriter {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemorySketchStore;
    use crate::store::StoreLayout;

    fn layout() -> StoreLayout {
        StoreLayout {
            n_series: 4,
            n_windows: 3,
            basic_window: 8,
        }
    }

    #[test]
    fn writer_drains_batches_and_reports_stats() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        let writer = BatchWriter::spawn(store.clone(), 4);
        let tx = writer.sender();
        for s in 0..4u32 {
            tx.send(WriteBatch {
                series: vec![SeriesWindowRecord {
                    series: s,
                    window: 1,
                    len: 8,
                    mean: s as f64,
                    std: 1.0,
                }],
                pairs: vec![],
            })
            .unwrap();
        }
        drop(tx);
        let stats = writer.finish().unwrap();
        assert_eq!(stats.batches, 4);
        assert_eq!(stats.records, 4);
        for s in 0..4 {
            assert_eq!(store.read_series(s, 1..2).unwrap()[0].mean, s as f64);
        }
    }

    #[test]
    fn writer_handles_mixed_batches_from_many_threads() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        let writer = BatchWriter::spawn(store.clone(), 2);
        let mut threads = Vec::new();
        for t in 0..3u32 {
            let tx = writer.sender();
            threads.push(std::thread::spawn(move || {
                tx.send(WriteBatch {
                    series: vec![SeriesWindowRecord {
                        series: t,
                        window: 0,
                        len: 8,
                        mean: 10.0 + t as f64,
                        std: 0.0,
                    }],
                    pairs: vec![PairWindowRecord {
                        a: 0,
                        b: t + 1,
                        window: 2,
                        corr: 0.5,
                        dft_dist: f64::NAN,
                    }],
                })
                .unwrap();
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
        let stats = writer.finish().unwrap();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.records, 6);
        assert_eq!(store.read_pair(0, 2, 2..3).unwrap()[0].corr, 0.5);
    }

    #[test]
    fn empty_batches_are_counted_but_harmless() {
        let store = Arc::new(MemorySketchStore::new(layout()));
        let writer = BatchWriter::spawn(store, 1);
        writer.sender().send(WriteBatch::default()).unwrap();
        let stats = writer.finish().unwrap();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.records, 0);
    }

    #[test]
    fn write_batch_len_and_is_empty() {
        let mut b = WriteBatch::default();
        assert!(b.is_empty());
        b.series.push(SeriesWindowRecord {
            series: 0,
            window: 0,
            len: 1,
            mean: 0.0,
            std: 0.0,
        });
        assert!(!b.is_empty());
        assert_eq!(b.len(), 1);
    }
}
