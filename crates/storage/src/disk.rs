//! Disk-backed sketch store.
//!
//! Two fixed-record-size table files (`series.tbl`, `pairs.tbl`) live inside
//! a store directory. Because the layout is regular, a record's offset is
//! computed from its identifiers, so random writes from the sketching phase
//! and ranged reads from the query phase are both single `seek` + I/O calls.
//! Writers batch records (see [`crate::writer::BatchWriter`]); readers fetch
//! contiguous window ranges per series / pair, which is exactly the access
//! pattern of the paper's disk-based configuration.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use tsubasa_core::error::{Error, Result};
use tsubasa_core::stats::WindowStats;

use crate::record::{PairWindowRecord, SeriesWindowRecord};
use crate::store::{SketchStore, StoreLayout};

/// A [`SketchStore`] backed by two pre-sized files on disk.
#[derive(Debug)]
pub struct DiskSketchStore {
    layout: StoreLayout,
    dir: PathBuf,
    series_file: Mutex<File>,
    pairs_file: Mutex<File>,
}

impl DiskSketchStore {
    /// File name of the per-series table inside the store directory.
    pub const SERIES_TABLE: &'static str = "series.tbl";
    /// File name of the per-pair table inside the store directory.
    pub const PAIRS_TABLE: &'static str = "pairs.tbl";

    /// Create (or truncate) a store in `dir` for the given layout. The table
    /// files are pre-sized so that out-of-order batch writes from parallel
    /// workers land at their final offsets.
    pub fn create(dir: &Path, layout: StoreLayout) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        let series_path = dir.join(Self::SERIES_TABLE);
        let pairs_path = dir.join(Self::PAIRS_TABLE);

        let series_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&series_path)?;
        series_file.set_len((layout.series_records() * SeriesWindowRecord::SIZE) as u64)?;

        let pairs_file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&pairs_path)?;
        pairs_file.set_len((layout.pair_records() * PairWindowRecord::SIZE) as u64)?;

        Ok(Self {
            layout,
            dir: dir.to_path_buf(),
            series_file: Mutex::new(series_file),
            pairs_file: Mutex::new(pairs_file),
        })
    }

    /// Open an existing store created by [`DiskSketchStore::create`]. The
    /// caller supplies the layout (it is part of the experiment
    /// configuration); the file sizes are validated against it.
    pub fn open(dir: &Path, layout: StoreLayout) -> Result<Self> {
        let series_path = dir.join(Self::SERIES_TABLE);
        let pairs_path = dir.join(Self::PAIRS_TABLE);
        let series_file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&series_path)?;
        let pairs_file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&pairs_path)?;

        let expected_series = (layout.series_records() * SeriesWindowRecord::SIZE) as u64;
        let expected_pairs = (layout.pair_records() * PairWindowRecord::SIZE) as u64;
        if series_file.metadata()?.len() != expected_series
            || pairs_file.metadata()?.len() != expected_pairs
        {
            return Err(Error::Storage(format!(
                "store at {} does not match the requested layout",
                dir.display()
            )));
        }
        Ok(Self {
            layout,
            dir: dir.to_path_buf(),
            series_file: Mutex::new(series_file),
            pairs_file: Mutex::new(pairs_file),
        })
    }

    /// The directory holding the table files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Group consecutive records (by slot) into one contiguous write each, so
    /// a batch of records for one series / one pair costs one syscall.
    fn write_run(file: &Mutex<File>, offset: u64, bytes: &[u8]) -> Result<()> {
        let mut f = file.lock();
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(bytes)?;
        Ok(())
    }

    fn read_run(file: &Mutex<File>, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        let mut f = file.lock();
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(&mut buf)?;
        Ok(buf)
    }
}

impl SketchStore for DiskSketchStore {
    fn layout(&self) -> StoreLayout {
        self.layout
    }

    fn write_series(&self, records: &[SeriesWindowRecord]) -> Result<()> {
        // Coalesce runs of consecutive slots into single writes.
        let mut i = 0;
        while i < records.len() {
            let start_slot = self
                .layout
                .series_slot(records[i].series as usize, records[i].window as usize)?;
            let mut run = vec![];
            records[i].encode(&mut run);
            let mut j = i + 1;
            while j < records.len() {
                let slot = self
                    .layout
                    .series_slot(records[j].series as usize, records[j].window as usize)?;
                if slot != start_slot + (j - i) {
                    break;
                }
                records[j].encode(&mut run);
                j += 1;
            }
            Self::write_run(
                &self.series_file,
                (start_slot * SeriesWindowRecord::SIZE) as u64,
                &run,
            )?;
            i = j;
        }
        Ok(())
    }

    fn write_pairs(&self, records: &[PairWindowRecord]) -> Result<()> {
        let mut i = 0;
        while i < records.len() {
            let start_slot = self.layout.pair_slot(
                records[i].a as usize,
                records[i].b as usize,
                records[i].window as usize,
            )?;
            let mut run = vec![];
            records[i].encode(&mut run);
            let mut j = i + 1;
            while j < records.len() {
                let slot = self.layout.pair_slot(
                    records[j].a as usize,
                    records[j].b as usize,
                    records[j].window as usize,
                )?;
                if slot != start_slot + (j - i) {
                    break;
                }
                records[j].encode(&mut run);
                j += 1;
            }
            Self::write_run(
                &self.pairs_file,
                (start_slot * PairWindowRecord::SIZE) as u64,
                &run,
            )?;
            i = j;
        }
        Ok(())
    }

    fn read_series(&self, series: usize, windows: Range<usize>) -> Result<Vec<WindowStats>> {
        self.layout.check_windows(&windows)?;
        let start = self.layout.series_slot(series, windows.start)?;
        let bytes = Self::read_run(
            &self.series_file,
            (start * SeriesWindowRecord::SIZE) as u64,
            windows.len() * SeriesWindowRecord::SIZE,
        )?;
        let mut slice = bytes.as_slice();
        Ok((0..windows.len())
            .map(|_| SeriesWindowRecord::decode(&mut slice).to_stats())
            .collect())
    }

    fn read_pair(
        &self,
        a: usize,
        b: usize,
        windows: Range<usize>,
    ) -> Result<Vec<PairWindowRecord>> {
        self.layout.check_windows(&windows)?;
        let start = self.layout.pair_slot(a, b, windows.start)?;
        let bytes = Self::read_run(
            &self.pairs_file,
            (start * PairWindowRecord::SIZE) as u64,
            windows.len() * PairWindowRecord::SIZE,
        )?;
        let mut slice = bytes.as_slice();
        Ok((0..windows.len())
            .map(|_| PairWindowRecord::decode(&mut slice))
            .collect())
    }

    fn read_pairs(
        &self,
        pairs: &[(usize, usize)],
        windows: Range<usize>,
    ) -> Result<Vec<Vec<PairWindowRecord>>> {
        self.layout.check_windows(&windows)?;
        // When the requested window range covers every stored window, the
        // records of pairs with consecutive packed indices are contiguous on
        // disk, so a run of such pairs costs a single ranged read. Otherwise
        // fall back to per-pair reads.
        if windows.len() != self.layout.n_windows {
            return pairs
                .iter()
                .map(|&(a, b)| self.read_pair(a, b, windows.clone()))
                .collect();
        }
        let per_pair = self.layout.n_windows;
        let slots: Vec<usize> = pairs
            .iter()
            .map(|&(a, b)| self.layout.pair_slot(a, b, 0))
            .collect::<Result<_>>()?;

        let mut out = Vec::with_capacity(pairs.len());
        let mut i = 0;
        while i < pairs.len() {
            let mut j = i + 1;
            while j < pairs.len() && slots[j] == slots[j - 1] + per_pair {
                j += 1;
            }
            let run_pairs = j - i;
            let bytes = Self::read_run(
                &self.pairs_file,
                (slots[i] * PairWindowRecord::SIZE) as u64,
                run_pairs * per_pair * PairWindowRecord::SIZE,
            )?;
            let mut slice = bytes.as_slice();
            for _ in 0..run_pairs {
                out.push(
                    (0..per_pair)
                        .map(|_| PairWindowRecord::decode(&mut slice))
                        .collect(),
                );
            }
            i = j;
        }
        Ok(out)
    }

    fn flush(&self) -> Result<()> {
        self.series_file.lock().sync_data()?;
        self.pairs_file.lock().sync_data()?;
        Ok(())
    }

    fn space_bytes(&self) -> u64 {
        let s = self
            .series_file
            .lock()
            .metadata()
            .map(|m| m.len())
            .unwrap_or(0);
        let p = self
            .pairs_file
            .lock()
            .metadata()
            .map(|m| m.len())
            .unwrap_or(0);
        s + p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{load_sketchset, persist_sketchset};
    use tsubasa_core::{SeriesCollection, SketchSet};

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsubasa-disk-test-{}-{name}", std::process::id()));
        p
    }

    fn layout() -> StoreLayout {
        StoreLayout {
            n_series: 5,
            n_windows: 4,
            basic_window: 10,
        }
    }

    #[test]
    fn create_pre_sizes_files() {
        let dir = temp_dir("presize");
        let store = DiskSketchStore::create(&dir, layout()).unwrap();
        let expected = (layout().series_records() * SeriesWindowRecord::SIZE
            + layout().pair_records() * PairWindowRecord::SIZE) as u64;
        assert_eq!(store.space_bytes(), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_read_roundtrip_on_disk() {
        let dir = temp_dir("roundtrip");
        let store = DiskSketchStore::create(&dir, layout()).unwrap();
        store
            .write_series(&[
                SeriesWindowRecord {
                    series: 3,
                    window: 0,
                    len: 10,
                    mean: 1.0,
                    std: 0.5,
                },
                SeriesWindowRecord {
                    series: 3,
                    window: 1,
                    len: 10,
                    mean: 2.0,
                    std: 0.25,
                },
            ])
            .unwrap();
        store
            .write_pairs(&[PairWindowRecord {
                a: 0,
                b: 4,
                window: 3,
                corr: -0.75,
                dft_dist: 1.5,
            }])
            .unwrap();
        store.flush().unwrap();

        let stats = store.read_series(3, 0..2).unwrap();
        assert_eq!(stats[0].mean, 1.0);
        assert_eq!(stats[1].std, 0.25);
        let pair = store.read_pair(4, 0, 3..4).unwrap();
        assert_eq!(pair[0].corr, -0.75);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_validates_layout() {
        let dir = temp_dir("open");
        {
            DiskSketchStore::create(&dir, layout()).unwrap();
        }
        assert!(DiskSketchStore::open(&dir, layout()).is_ok());
        let wrong = StoreLayout {
            n_series: 9,
            ..layout()
        };
        assert!(DiskSketchStore::open(&dir, wrong).is_err());
        assert!(DiskSketchStore::open(Path::new("/nonexistent/store"), layout()).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sketchset_roundtrip_through_disk_store() {
        let c = SeriesCollection::from_rows(
            (0..5)
                .map(|s| {
                    (0..40)
                        .map(|i| ((i * (s + 1)) as f64 * 0.21).cos())
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        let sketch = SketchSet::build(&c, 10).unwrap();
        let dir = temp_dir("sketchset");
        let store = DiskSketchStore::create(&dir, layout()).unwrap();
        persist_sketchset(&store, &sketch, None).unwrap();
        let loaded = load_sketchset(&store).unwrap();
        assert_eq!(loaded, sketch);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_pair_reads_match_individual_reads() {
        let c = SeriesCollection::from_rows(
            (0..5)
                .map(|s| (0..40).map(|i| ((i + s * 7) as f64 * 0.33).sin()).collect())
                .collect(),
        )
        .unwrap();
        let sketch = SketchSet::build(&c, 10).unwrap();
        let dir = temp_dir("batched");
        let store = DiskSketchStore::create(&dir, layout()).unwrap();
        // Use finite DFT distances so the records compare with plain
        // equality (NaN != NaN would make the assertions below vacuous).
        let dists: Vec<Vec<f64>> = (0..c.pair_count())
            .map(|p| vec![p as f64 * 0.1; 4])
            .collect();
        persist_sketchset(&store, &sketch, Some(&dists)).unwrap();

        // All pairs at once, full window range (contiguous fast path).
        let pairs: Vec<(usize, usize)> = c.pairs().collect();
        let batched = store.read_pairs(&pairs, 0..4).unwrap();
        for (k, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batched[k], store.read_pair(a, b, 0..4).unwrap());
        }
        // Partial window range falls back to per-pair reads and still agrees.
        let partial = store.read_pairs(&pairs, 1..3).unwrap();
        for (k, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(partial[k], store.read_pair(a, b, 1..3).unwrap());
        }
        // Non-consecutive subset (skip some pairs) also agrees.
        let sparse = vec![pairs[0], pairs[3], pairs[4], pairs[9]];
        let got = store.read_pairs(&sparse, 0..4).unwrap();
        for (k, &(a, b)) in sparse.iter().enumerate() {
            assert_eq!(got[k], store.read_pair(a, b, 0..4).unwrap());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shared_across_threads() {
        let dir = temp_dir("threads");
        let store = std::sync::Arc::new(DiskSketchStore::create(&dir, layout()).unwrap());
        let mut handles = Vec::new();
        for s in 0..4u32 {
            let st = store.clone();
            handles.push(std::thread::spawn(move || {
                st.write_series(&[SeriesWindowRecord {
                    series: s,
                    window: 2,
                    len: 10,
                    mean: s as f64,
                    std: 1.0,
                }])
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for s in 0..4 {
            assert_eq!(store.read_series(s, 2..3).unwrap()[0].mean, s as f64);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
