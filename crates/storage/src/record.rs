//! Fixed-size binary encoding of sketch records.
//!
//! Every record type has a constant on-disk size so that the offset of any
//! record can be computed from its identifiers alone — no secondary index is
//! needed, which keeps the store honest about its space overhead (what the
//! Figure 6d experiment measures is the sketch payload, not index bloat).

use bytes::{Buf, BufMut};
use tsubasa_core::stats::WindowStats;

/// Per-`(series, basic window)` statistics record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesWindowRecord {
    /// Series id.
    pub series: u32,
    /// Basic-window index.
    pub window: u32,
    /// Number of points in the window.
    pub len: u32,
    /// Mean of the window.
    pub mean: f64,
    /// Population standard deviation of the window.
    pub std: f64,
}

impl SeriesWindowRecord {
    /// Encoded size in bytes.
    pub const SIZE: usize = 4 + 4 + 4 + 8 + 8;

    /// Build a record from core window statistics.
    pub fn from_stats(series: usize, window: usize, stats: &WindowStats) -> Self {
        Self {
            series: series as u32,
            window: window as u32,
            len: stats.len as u32,
            mean: stats.mean,
            std: stats.std,
        }
    }

    /// Convert back to core window statistics.
    pub fn to_stats(&self) -> WindowStats {
        WindowStats {
            len: self.len as usize,
            mean: self.mean,
            std: self.std,
        }
    }

    /// Append the binary encoding to a buffer.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32_le(self.series);
        buf.put_u32_le(self.window);
        buf.put_u32_le(self.len);
        buf.put_f64_le(self.mean);
        buf.put_f64_le(self.std);
    }

    /// Decode a record from a buffer holding at least [`Self::SIZE`] bytes.
    pub fn decode<B: Buf>(buf: &mut B) -> Self {
        Self {
            series: buf.get_u32_le(),
            window: buf.get_u32_le(),
            len: buf.get_u32_le(),
            mean: buf.get_f64_le(),
            std: buf.get_f64_le(),
        }
    }
}

/// Per-`(pair, basic window)` record: the within-window correlation used by
/// exact TSUBASA and the DFT coefficient distance used by the approximate
/// comparator. Both algorithms therefore store records of the same size, as
/// the paper's space analysis assumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairWindowRecord {
    /// Smaller series id of the pair.
    pub a: u32,
    /// Larger series id of the pair.
    pub b: u32,
    /// Basic-window index.
    pub window: u32,
    /// Pearson correlation of the aligned windows (`c_j`).
    pub corr: f64,
    /// DFT coefficient distance of the aligned normalized windows (`d_j`);
    /// NaN when the sketch was built without the DFT comparator.
    pub dft_dist: f64,
}

impl PairWindowRecord {
    /// Encoded size in bytes.
    pub const SIZE: usize = 4 + 4 + 4 + 8 + 8;

    /// Append the binary encoding to a buffer.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32_le(self.a);
        buf.put_u32_le(self.b);
        buf.put_u32_le(self.window);
        buf.put_f64_le(self.corr);
        buf.put_f64_le(self.dft_dist);
    }

    /// Decode a record from a buffer holding at least [`Self::SIZE`] bytes.
    pub fn decode<B: Buf>(buf: &mut B) -> Self {
        Self {
            a: buf.get_u32_le(),
            b: buf.get_u32_le(),
            window: buf.get_u32_le(),
            corr: buf.get_f64_le(),
            dft_dist: buf.get_f64_le(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn series_record_roundtrip() {
        let r = SeriesWindowRecord {
            series: 7,
            window: 123,
            len: 50,
            mean: -3.25,
            std: 1.75,
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), SeriesWindowRecord::SIZE);
        let decoded = SeriesWindowRecord::decode(&mut buf.as_slice());
        assert_eq!(decoded, r);
    }

    #[test]
    fn pair_record_roundtrip() {
        let r = PairWindowRecord {
            a: 1,
            b: 9,
            window: 4,
            corr: 0.875,
            dft_dist: 0.5,
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), PairWindowRecord::SIZE);
        let decoded = PairWindowRecord::decode(&mut buf.as_slice());
        assert_eq!(decoded, r);
    }

    #[test]
    fn stats_conversion_roundtrip() {
        let stats = WindowStats {
            len: 31,
            mean: 2.5,
            std: 0.125,
        };
        let r = SeriesWindowRecord::from_stats(3, 8, &stats);
        assert_eq!(r.to_stats(), stats);
        assert_eq!(r.series, 3);
        assert_eq!(r.window, 8);
    }

    proptest! {
        #[test]
        fn prop_series_record_roundtrip(
            series in 0u32..1_000_000,
            window in 0u32..100_000,
            len in 0u32..100_000,
            mean in -1e9f64..1e9,
            std in 0.0f64..1e9,
        ) {
            let r = SeriesWindowRecord { series, window, len, mean, std };
            let mut buf = Vec::new();
            r.encode(&mut buf);
            prop_assert_eq!(SeriesWindowRecord::decode(&mut buf.as_slice()), r);
        }

        #[test]
        fn prop_pair_record_roundtrip(
            a in 0u32..1_000_000,
            b in 0u32..1_000_000,
            window in 0u32..100_000,
            corr in -1.0f64..1.0,
            dist in 0.0f64..2.0,
        ) {
            let r = PairWindowRecord { a, b, window, corr, dft_dist: dist };
            let mut buf = Vec::new();
            r.encode(&mut buf);
            prop_assert_eq!(PairWindowRecord::decode(&mut buf.as_slice()), r);
        }
    }
}
