//! In-memory sketch store: the backing used by the paper's in-memory
//! experiments and by unit tests. Thread-safe so the parallel engine can use
//! it interchangeably with the disk store.

use std::ops::Range;

use parking_lot::RwLock;
use tsubasa_core::error::Result;
use tsubasa_core::stats::WindowStats;

use crate::record::{PairWindowRecord, SeriesWindowRecord};
use crate::store::{SketchStore, StoreLayout};

/// A [`SketchStore`] backed by two flat in-memory vectors.
#[derive(Debug)]
pub struct MemorySketchStore {
    layout: StoreLayout,
    series: RwLock<Vec<SeriesWindowRecord>>,
    pairs: RwLock<Vec<PairWindowRecord>>,
}

impl MemorySketchStore {
    /// Create an empty store for the given layout.
    pub fn new(layout: StoreLayout) -> Self {
        let series = vec![
            SeriesWindowRecord {
                series: 0,
                window: 0,
                len: 0,
                mean: 0.0,
                std: 0.0,
            };
            layout.series_records()
        ];
        let pairs = vec![
            PairWindowRecord {
                a: 0,
                b: 0,
                window: 0,
                corr: 0.0,
                dft_dist: f64::NAN,
            };
            layout.pair_records()
        ];
        Self {
            layout,
            series: RwLock::new(series),
            pairs: RwLock::new(pairs),
        }
    }
}

impl SketchStore for MemorySketchStore {
    fn layout(&self) -> StoreLayout {
        self.layout
    }

    fn write_series(&self, records: &[SeriesWindowRecord]) -> Result<()> {
        let mut table = self.series.write();
        for r in records {
            let slot = self
                .layout
                .series_slot(r.series as usize, r.window as usize)?;
            table[slot] = *r;
        }
        Ok(())
    }

    fn write_pairs(&self, records: &[PairWindowRecord]) -> Result<()> {
        let mut table = self.pairs.write();
        for r in records {
            let slot = self
                .layout
                .pair_slot(r.a as usize, r.b as usize, r.window as usize)?;
            table[slot] = *r;
        }
        Ok(())
    }

    fn read_series(&self, series: usize, windows: Range<usize>) -> Result<Vec<WindowStats>> {
        self.layout.check_windows(&windows)?;
        let start = self.layout.series_slot(series, windows.start)?;
        let table = self.series.read();
        Ok(table[start..start + windows.len()]
            .iter()
            .map(|r| r.to_stats())
            .collect())
    }

    fn read_pair(
        &self,
        a: usize,
        b: usize,
        windows: Range<usize>,
    ) -> Result<Vec<PairWindowRecord>> {
        self.layout.check_windows(&windows)?;
        let start = self.layout.pair_slot(a, b, windows.start)?;
        let table = self.pairs.read();
        Ok(table[start..start + windows.len()].to_vec())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn space_bytes(&self) -> u64 {
        (self.layout.series_records() * SeriesWindowRecord::SIZE
            + self.layout.pair_records() * PairWindowRecord::SIZE) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{load_sketchset, persist_sketchset};
    use tsubasa_core::{SeriesCollection, SketchSet};

    fn layout() -> StoreLayout {
        StoreLayout {
            n_series: 4,
            n_windows: 3,
            basic_window: 10,
        }
    }

    #[test]
    fn write_then_read_series_and_pairs() {
        let store = MemorySketchStore::new(layout());
        store
            .write_series(&[SeriesWindowRecord {
                series: 2,
                window: 1,
                len: 10,
                mean: 5.0,
                std: 2.0,
            }])
            .unwrap();
        let stats = store.read_series(2, 0..3).unwrap();
        assert_eq!(stats[1].mean, 5.0);
        assert_eq!(stats[0].len, 0); // untouched slot

        store
            .write_pairs(&[PairWindowRecord {
                a: 1,
                b: 3,
                window: 2,
                corr: 0.5,
                dft_dist: 0.1,
            }])
            .unwrap();
        let pair = store.read_pair(3, 1, 2..3).unwrap();
        assert_eq!(pair[0].corr, 0.5);
    }

    #[test]
    fn invalid_reads_and_writes_error() {
        let store = MemorySketchStore::new(layout());
        assert!(store.read_series(9, 0..1).is_err());
        assert!(store.read_series(0, 0..9).is_err());
        assert!(store.read_pair(0, 0, 0..1).is_err());
        assert!(store
            .write_series(&[SeriesWindowRecord {
                series: 9,
                window: 0,
                len: 1,
                mean: 0.0,
                std: 0.0,
            }])
            .is_err());
    }

    #[test]
    fn space_accounting_matches_record_sizes() {
        let store = MemorySketchStore::new(layout());
        let expected = (4 * 3) * SeriesWindowRecord::SIZE + (6 * 3) * PairWindowRecord::SIZE;
        assert_eq!(store.space_bytes(), expected as u64);
    }

    #[test]
    fn sketchset_roundtrip_through_store() {
        let c = SeriesCollection::from_rows(
            (0..4)
                .map(|s| (0..30).map(|i| ((i + s * 3) as f64 * 0.4).sin()).collect())
                .collect(),
        )
        .unwrap();
        let sketch = SketchSet::build(&c, 10).unwrap();
        let store = MemorySketchStore::new(StoreLayout {
            n_series: 4,
            n_windows: 3,
            basic_window: 10,
        });
        persist_sketchset(&store, &sketch, None).unwrap();
        let loaded = load_sketchset(&store).unwrap();
        assert_eq!(loaded, sketch);
    }

    #[test]
    fn persist_rejects_mismatched_layout() {
        let c = SeriesCollection::from_rows(vec![vec![1.0; 20], vec![2.0; 20]]).unwrap();
        let sketch = SketchSet::build(&c, 10).unwrap();
        let store = MemorySketchStore::new(layout());
        assert!(persist_sketchset(&store, &sketch, None).is_err());
    }
}
