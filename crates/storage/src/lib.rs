//! # tsubasa-storage
//!
//! Sketch persistence for the disk-based TSUBASA configuration (paper §3.4).
//!
//! The paper stores basic-window sketches in PostgreSQL, written by a single
//! dedicated database worker and read back in batches at query time. This
//! crate substitutes a purpose-built store with the same contract:
//!
//! * fixed-size binary records, one per `(series, basic window)` and one per
//!   `(pair, basic window)` (see [`record`]);
//! * a [`SketchStore`] trait with an in-memory implementation
//!   ([`MemorySketchStore`]) for the paper's in-memory experiments and a
//!   paged, disk-backed implementation ([`DiskSketchStore`]) for the
//!   scalability experiments;
//! * a [`writer::BatchWriter`] that runs on its own thread and drains write
//!   batches from a channel — the "database worker" of the parallel engine;
//! * space accounting ([`SketchStore::space_bytes`]) used by the Figure 6d
//!   experiment;
//! * a single-file, append-only, memory-mapped sketch **pile** ([`pile`])
//!   whose segments store window-major `f64` tables in the exact layout the
//!   query kernel consumes, so out-of-core queries read zero-copy views off
//!   the map instead of decoding records.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod disk;
pub mod memory;
pub mod pile;
pub mod record;
pub mod store;
pub mod writer;

pub use disk::DiskSketchStore;
pub use memory::MemorySketchStore;
pub use pile::{
    CompactStats, PileBatchWriter, PileCorrs, PileSlab, PileWriter, PileWriterStats, SegmentKind,
    SketchPile,
};
pub use record::{PairWindowRecord, SeriesWindowRecord};
pub use store::{SketchStore, StoreLayout};
pub use writer::{default_batch_pairs, BatchWriter, SyncPolicy, WriteBatch, WriterStats};
