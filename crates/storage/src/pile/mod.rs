//! The memory-mapped, append-only sketch **pile** (ROADMAP item 4).
//!
//! [`crate::DiskSketchStore`] pays a seek per window range and a per-record
//! `bytes` decode into [`crate::PairWindowRecord`] vecs before the query
//! engine can transpose them into kernel tiles. The pile removes both costs
//! by storing sketches *in the exact in-memory layout the query kernel
//! consumes*: window-major `f64` tables (`row[k][p]` is window `k` of packed
//! pair `p` — the `window_corrs` flat-table layout), so a reader maps the
//! file and hands out zero-copy `CorrView`-style borrows straight into the
//! tiled sweep. No deserialize, no intermediate record vecs, and sketch sets
//! are no longer capped at RAM.
//!
//! # File format
//!
//! A pile is a single file: a 64-byte file header followed by append-only
//! *segments*, each a 64-byte header plus an 8-byte-aligned payload.
//!
//! ```text
//! file header (64 B)            segment header (64 B)
//!   0..8   magic "TSUBPILE"       0..4   magic "PSEG"
//!   8..12  version (u32 LE)       4..8   kind (u32 LE; 1 stats, 2 corrs, 3 ests)
//!   12..16 reserved               8..16  first_window (u64 LE)
//!   16..24 n_series (u64 LE)      16..24 n_windows (u64 LE)
//!   24..32 basic_window (u64 LE)  24..32 payload_len (u64 LE, unpadded)
//!   32..64 reserved (zero)        32..40 FNV-1a-64 checksum of the payload
//!                                 40..64 reserved (zero)
//! ```
//!
//! Payloads are window-major `f64` (little-endian) tables:
//!
//! * **series stats** (kind 1): `n_windows` rows of `n_series` `(len, mean,
//!   std)` triples — the per-series half of the recombination;
//! * **pair correlations** (kind 2): `n_windows` rows of `P = n(n−1)/2`
//!   per-window Pearson correlations in packed pair order — exactly what
//!   `QueryPlan::block_kernel` reads;
//! * **pair estimates** (kind 3): same shape, holding the Equation 3
//!   estimates `ĉ = 1 − d²/2` of stored DFT distances, precomputed at write
//!   time so approximate queries go through the same zero-copy kernel path.
//!
//! Alignment: the file header and every segment header are 64 bytes and
//! payloads are padded to a multiple of 8, so every payload starts at a
//! multiple of 8 from the start of the file. The mapping base is page-aligned
//! (mmap) or `Vec<u64>`-aligned (fallback), hence every payload is 8-byte
//! aligned and `f64` views are valid.
//!
//! Append discipline: per kind, coverage is gapless and starts at window 0 —
//! a segment's `first_window` must equal the windows already covered for its
//! kind (overlap or gap is an append error). Under this discipline only the
//! *tail* of the file can ever be torn by a crash; [`SketchPile::open`]
//! validates segments in order (structure + checksum) and ignores everything
//! from the first invalid segment on, while [`PileWriter::open_append`]
//! additionally truncates the torn tail on disk before appending.
//! [`SketchPile::compact`] rewrites live segments coalesced (one segment per
//! kind) through a temp file and an atomic rename — existing mappings stay
//! valid because the old inode lives until unmapped.

#[allow(unsafe_code)]
mod map;

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Sender};
use tsubasa_core::error::{Error, Result};
use tsubasa_core::plan::{CorrView, PlanMethod, TransposedCorrs};
use tsubasa_core::source::{CorrSource, PairTable};
use tsubasa_core::stats::WindowStats;

use crate::store::StoreLayout;
use crate::writer::SyncPolicy;

pub use map::PileMap;

const FILE_MAGIC: [u8; 8] = *b"TSUBPILE";
const FILE_VERSION: u32 = 1;
const FILE_HEADER_LEN: usize = 64;
const SEG_HEADER_LEN: usize = 64;
const SEG_MAGIC: [u8; 4] = *b"PSEG";

/// What a pile segment stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Window-major `(len, mean, std)` triples, one per series.
    SeriesStats,
    /// Window-major per-pair Pearson correlations (packed pair order).
    PairCorrs,
    /// Window-major per-pair Equation 3 estimates `1 − d²/2`.
    PairEsts,
}

impl SegmentKind {
    /// All segment kinds, in code order.
    pub const ALL: [SegmentKind; 3] = [
        SegmentKind::SeriesStats,
        SegmentKind::PairCorrs,
        SegmentKind::PairEsts,
    ];

    fn code(self) -> u32 {
        match self {
            SegmentKind::SeriesStats => 1,
            SegmentKind::PairCorrs => 2,
            SegmentKind::PairEsts => 3,
        }
    }

    fn from_code(code: u32) -> Option<Self> {
        match code {
            1 => Some(SegmentKind::SeriesStats),
            2 => Some(SegmentKind::PairCorrs),
            3 => Some(SegmentKind::PairEsts),
            _ => None,
        }
    }

    fn index(self) -> usize {
        self.code() as usize - 1
    }

    /// Number of `f64` values per window row for this kind under the given
    /// series count.
    fn row_values(self, n_series: usize) -> usize {
        match self {
            SegmentKind::SeriesStats => n_series * 3,
            SegmentKind::PairCorrs | SegmentKind::PairEsts => pair_count(n_series),
        }
    }
}

/// Packed upper-triangle pair count for `n` series.
fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// FNV-1a 64-bit over a byte slice — the per-segment payload checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

fn pad8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

/// One validated segment of a pile (payload location in file coordinates).
#[derive(Debug, Clone, Copy)]
struct Segment {
    kind: SegmentKind,
    first_window: usize,
    n_windows: usize,
    payload_off: usize,
}

/// The validated shape of a pile file: its metadata, its segments in file
/// order, and where the valid prefix ends.
#[derive(Debug, Clone)]
struct PileIndex {
    n_series: usize,
    basic_window: usize,
    segs: Vec<Segment>,
    coverage: [usize; 3],
    valid_len: usize,
}

/// Walk the mapped bytes of a pile file: check the file header, then accept
/// segments in order while their structure, append discipline, and payload
/// checksum all hold. The first violation marks the torn tail; everything
/// before it is the valid prefix.
fn walk(bytes: &[u8]) -> Result<PileIndex> {
    if bytes.len() < FILE_HEADER_LEN || bytes[..8] != FILE_MAGIC {
        return Err(Error::Storage(
            "not a sketch pile (missing TSUBPILE header)".into(),
        ));
    }
    let version = read_u32(bytes, 8);
    if version != FILE_VERSION {
        return Err(Error::Storage(format!(
            "unsupported pile version {version} (expected {FILE_VERSION})"
        )));
    }
    let n_series = read_u64(bytes, 16) as usize;
    let basic_window = read_u64(bytes, 24) as usize;
    if n_series == 0 || basic_window == 0 {
        return Err(Error::Storage(format!(
            "pile header has degenerate shape: n_series={n_series}, basic_window={basic_window}"
        )));
    }

    let mut segs = Vec::new();
    let mut coverage = [0usize; 3];
    let mut off = FILE_HEADER_LEN;
    // An incomplete header means a torn tail (or the clean end of the file).
    while let Some(header) = bytes.get(off..off + SEG_HEADER_LEN) {
        if header[..4] != SEG_MAGIC {
            break;
        }
        let Some(kind) = SegmentKind::from_code(read_u32(header, 4)) else {
            break;
        };
        let first_window = read_u64(header, 8) as usize;
        let n_windows = read_u64(header, 16) as usize;
        let payload_len = read_u64(header, 24) as usize;
        let checksum = read_u64(header, 32);
        let row_bytes = kind.row_values(n_series) * 8;
        // Structural checks: non-empty, shape consistent with the file
        // header, and gapless per-kind coverage (append discipline).
        if n_windows == 0
            || row_bytes == 0
            || payload_len != n_windows * row_bytes
            || first_window != coverage[kind.index()]
        {
            break;
        }
        let payload_off = off + SEG_HEADER_LEN;
        let Some(payload) = bytes.get(payload_off..payload_off + payload_len) else {
            break; // payload extends past the file: torn tail
        };
        if fnv1a64(payload) != checksum {
            break;
        }
        segs.push(Segment {
            kind,
            first_window,
            n_windows,
            payload_off,
        });
        coverage[kind.index()] += n_windows;
        off = payload_off + pad8(payload_len);
    }
    Ok(PileIndex {
        n_series,
        basic_window,
        segs,
        coverage,
        valid_len: off,
    })
}

/// Statistics returned by [`SketchPile::compact`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Segments in the pile before compaction.
    pub segments_before: usize,
    /// Segments after (at most one per [`SegmentKind`]).
    pub segments_after: usize,
    /// Valid bytes before compaction.
    pub bytes_before: u64,
    /// Bytes after compaction.
    pub bytes_after: u64,
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Appender for a sketch pile file.
///
/// Appends whole window-major slabs per [`SegmentKind`]; per kind, rows must
/// arrive in window order with no gaps (the writer assigns `first_window`
/// from its coverage counter). Durability is explicit: nothing is fsynced
/// until [`PileWriter::sync`] or [`PileWriter::finish`] — pair it with
/// [`PileBatchWriter`] and a [`SyncPolicy`] for the threaded write path.
#[derive(Debug)]
pub struct PileWriter {
    path: PathBuf,
    file: File,
    n_series: usize,
    basic_window: usize,
    coverage: [usize; 3],
    end: u64,
    scratch: Vec<u8>,
    syncs: usize,
}

impl PileWriter {
    /// Create (or truncate) a pile file for the given sketch shape.
    pub fn create(path: &Path, n_series: usize, basic_window: usize) -> Result<Self> {
        if n_series == 0 || basic_window == 0 {
            return Err(Error::Storage(format!(
                "pile shape must be non-degenerate: n_series={n_series}, basic_window={basic_window}"
            )));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| Error::Storage(format!("create pile {}: {e}", path.display())))?;
        let mut header = [0u8; FILE_HEADER_LEN];
        header[..8].copy_from_slice(&FILE_MAGIC);
        header[8..12].copy_from_slice(&FILE_VERSION.to_le_bytes());
        header[16..24].copy_from_slice(&(n_series as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(basic_window as u64).to_le_bytes());
        file.write_all(&header)
            .map_err(|e| Error::Storage(format!("write pile header: {e}")))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            n_series,
            basic_window,
            coverage: [0; 3],
            end: FILE_HEADER_LEN as u64,
            scratch: Vec::new(),
            syncs: 0,
        })
    }

    /// Open an existing pile for appending. The file is validated first and
    /// a torn tail segment (from a crash mid-append) is truncated away, so
    /// appends always resume from the last complete segment.
    pub fn open_append(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| Error::Storage(format!("open pile {}: {e}", path.display())))?;
        let index = {
            let len = file
                .metadata()
                .map_err(|e| Error::Storage(format!("stat pile: {e}")))?
                .len() as usize;
            let map = PileMap::map(&mut file, len)?;
            walk(map.bytes())?
        };
        file.set_len(index.valid_len as u64)
            .map_err(|e| Error::Storage(format!("truncate torn pile tail: {e}")))?;
        file.seek(SeekFrom::Start(index.valid_len as u64))
            .map_err(|e| Error::Storage(format!("seek pile end: {e}")))?;
        Ok(Self {
            path: path.to_path_buf(),
            file,
            n_series: index.n_series,
            basic_window: index.basic_window,
            coverage: index.coverage,
            end: index.valid_len as u64,
            scratch: Vec::new(),
            syncs: 0,
        })
    }

    /// Number of series the pile was created for.
    pub fn n_series(&self) -> usize {
        self.n_series
    }

    /// Basic-window size the pile was created for.
    pub fn basic_window(&self) -> usize {
        self.basic_window
    }

    /// Windows appended so far for `kind`.
    pub fn coverage(&self, kind: SegmentKind) -> usize {
        self.coverage[kind.index()]
    }

    /// Path of the pile file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes in the file (header plus all appended segments).
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// Durability syncs issued so far.
    pub fn syncs(&self) -> usize {
        self.syncs
    }

    /// Append one segment of window-major rows for `kind`. `rows` must be a
    /// whole number of rows (`kind.row_values(n_series)` values each); the
    /// segment's `first_window` is the writer's current coverage for the
    /// kind. Returns the number of windows appended; empty input is a no-op.
    pub fn append(&mut self, kind: SegmentKind, rows: &[f64]) -> Result<usize> {
        if rows.is_empty() {
            return Ok(0);
        }
        let row_values = kind.row_values(self.n_series);
        if row_values == 0 || !rows.len().is_multiple_of(row_values) {
            return Err(Error::Storage(format!(
                "pile append of {} values is not a whole number of {row_values}-value rows",
                rows.len()
            )));
        }
        let n_windows = rows.len() / row_values;
        let payload_len = rows.len() * 8;

        self.scratch.clear();
        self.scratch.reserve(payload_len);
        for v in rows {
            self.scratch.extend_from_slice(&v.to_le_bytes());
        }

        let mut header = [0u8; SEG_HEADER_LEN];
        header[..4].copy_from_slice(&SEG_MAGIC);
        header[4..8].copy_from_slice(&kind.code().to_le_bytes());
        header[8..16].copy_from_slice(&(self.coverage[kind.index()] as u64).to_le_bytes());
        header[16..24].copy_from_slice(&(n_windows as u64).to_le_bytes());
        header[24..32].copy_from_slice(&(payload_len as u64).to_le_bytes());
        header[32..40].copy_from_slice(&fnv1a64(&self.scratch).to_le_bytes());

        self.file
            .write_all(&header)
            .and_then(|_| self.file.write_all(&self.scratch))
            .map_err(|e| Error::Storage(format!("pile append: {e}")))?;
        let pad = pad8(payload_len) - payload_len;
        if pad > 0 {
            self.file
                .write_all(&[0u8; 8][..pad])
                .map_err(|e| Error::Storage(format!("pile append pad: {e}")))?;
        }
        self.coverage[kind.index()] += n_windows;
        self.end += (SEG_HEADER_LEN + pad8(payload_len)) as u64;
        Ok(n_windows)
    }

    /// Force appended segments down to the device (`fdatasync`).
    pub fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| Error::Storage(format!("pile sync: {e}")))?;
        self.syncs += 1;
        Ok(())
    }

    /// Map the pile's current contents as a read-only [`SketchPile`] without
    /// closing the writer — the epoch-publication path: append-only means the
    /// snapshot's prefix never changes underneath the mapping.
    pub fn snapshot(&self) -> Result<SketchPile> {
        SketchPile::open(&self.path)
    }

    /// Sync and close the writer.
    pub fn finish(mut self) -> Result<()> {
        self.sync()
    }

    /// Sync, close the writer, and reopen the file as a [`SketchPile`].
    pub fn into_pile(mut self) -> Result<SketchPile> {
        self.sync()?;
        let path = self.path.clone();
        drop(self);
        SketchPile::open(&path)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// A window-major correlation (or estimate) table served from a pile: either
/// a zero-copy borrow of the mapping (the requested rows are contiguous in
/// one segment) or a row-gathered owned buffer (range spans segments). Both
/// present the same [`CorrView`]; neither ever decodes a record.
///
/// This is the backend-agnostic [`tsubasa_core::source::PairTable`] — the
/// pile's borrowed-or-owned shape became the [`CorrSource`] trait's table
/// currency, so the historical name survives as an alias.
pub type PileCorrs<'a> = tsubasa_core::source::PairTable<'a>;

/// Read-only handle to a validated, memory-mapped sketch pile.
///
/// Opening validates segments in order (structure, append discipline,
/// payload checksum) in one streaming pass and *logically* truncates a torn
/// tail: the mapping covers the valid prefix only, and
/// [`SketchPile::truncated_bytes`] reports what was ignored. The file itself
/// is never modified by a reader — [`PileWriter::open_append`] performs the
/// physical truncation before new appends.
pub struct SketchPile {
    path: PathBuf,
    map: PileMap,
    index: PileIndex,
    file_len: u64,
}

impl std::fmt::Debug for SketchPile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SketchPile")
            .field("path", &self.path)
            .field("n_series", &self.index.n_series)
            .field("basic_window", &self.index.basic_window)
            .field("segments", &self.index.segs.len())
            .field("valid_len", &self.index.valid_len)
            .finish()
    }
}

impl SketchPile {
    /// Open and validate a pile, mapping its valid prefix.
    pub fn open(path: &Path) -> Result<Self> {
        let mut file = File::open(path)
            .map_err(|e| Error::Storage(format!("open pile {}: {e}", path.display())))?;
        let file_len = file
            .metadata()
            .map_err(|e| Error::Storage(format!("stat pile: {e}")))?
            .len();
        let map = PileMap::map(&mut file, file_len as usize)?;
        let index = walk(map.bytes())?;
        Ok(Self {
            path: path.to_path_buf(),
            map,
            index,
            file_len,
        })
    }

    /// Number of series.
    pub fn n_series(&self) -> usize {
        self.index.n_series
    }

    /// Basic-window size.
    pub fn basic_window(&self) -> usize {
        self.index.basic_window
    }

    /// Packed pair count `n(n−1)/2`.
    pub fn pair_count(&self) -> usize {
        pair_count(self.index.n_series)
    }

    /// Windows covered by segments of `kind`.
    pub fn windows(&self, kind: SegmentKind) -> usize {
        self.index.coverage[kind.index()]
    }

    /// Windows answerable by an exact query: stats and correlation coverage.
    pub fn exact_query_windows(&self) -> usize {
        self.windows(SegmentKind::SeriesStats)
            .min(self.windows(SegmentKind::PairCorrs))
    }

    /// Windows answerable by an approximate query: stats and estimate
    /// coverage.
    pub fn approx_query_windows(&self) -> usize {
        self.windows(SegmentKind::SeriesStats)
            .min(self.windows(SegmentKind::PairEsts))
    }

    /// Windows answerable by *some* query method.
    pub fn window_count(&self) -> usize {
        self.exact_query_windows().max(self.approx_query_windows())
    }

    /// The equivalent record-store layout (using [`SketchPile::window_count`]
    /// as the window count).
    pub fn layout(&self) -> StoreLayout {
        StoreLayout {
            n_series: self.index.n_series,
            n_windows: self.window_count(),
            basic_window: self.index.basic_window,
        }
    }

    /// Number of valid segments.
    pub fn segment_count(&self) -> usize {
        self.index.segs.len()
    }

    /// Valid bytes (header + complete segments).
    pub fn space_bytes(&self) -> u64 {
        self.index.valid_len as u64
    }

    /// Bytes of torn tail ignored by validation (0 for a clean file).
    pub fn truncated_bytes(&self) -> u64 {
        self.file_len - self.index.valid_len as u64
    }

    /// Whether the backing map is a real `mmap` (false on the owned-buffer
    /// fallback).
    pub fn is_mmap(&self) -> bool {
        self.map.is_mmap()
    }

    /// Path of the pile file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn check_windows(&self, kind: SegmentKind, windows: &Range<usize>) -> Result<()> {
        if windows.start >= windows.end || windows.end > self.windows(kind) {
            return Err(Error::SketchMismatch {
                requested: format!("{kind:?} windows {windows:?}"),
                available: format!("{kind:?} windows 0..{}", self.windows(kind)),
            });
        }
        Ok(())
    }

    /// Iterate `(payload byte offset, window count)` runs of rows covering
    /// `windows` for `kind`, in window order. Coverage is gapless by the
    /// append discipline, so the runs tile the range exactly.
    fn row_runs(&self, kind: SegmentKind, windows: &Range<usize>) -> Vec<(usize, usize)> {
        let row_bytes = kind.row_values(self.index.n_series) * 8;
        let mut runs = Vec::new();
        for seg in self.index.segs.iter().filter(|s| s.kind == kind) {
            let seg_end = seg.first_window + seg.n_windows;
            if seg_end <= windows.start || seg.first_window >= windows.end {
                continue;
            }
            let from = windows.start.max(seg.first_window);
            let to = windows.end.min(seg_end);
            runs.push((
                seg.payload_off + (from - seg.first_window) * row_bytes,
                to - from,
            ));
        }
        runs
    }

    /// Decode the per-series window statistics for `windows`, series-major
    /// (`out[series][k]`). Statistics are small (3 values per series per
    /// window) — this is the only decoding the pile read path ever does.
    pub fn series_stats(&self, windows: Range<usize>) -> Result<Vec<Vec<WindowStats>>> {
        self.check_windows(SegmentKind::SeriesStats, &windows)?;
        let n = self.index.n_series;
        let row_values = SegmentKind::SeriesStats.row_values(n);
        let mut out: Vec<Vec<WindowStats>> =
            (0..n).map(|_| Vec::with_capacity(windows.len())).collect();
        for (off, n_windows) in self.row_runs(SegmentKind::SeriesStats, &windows) {
            let rows = self.map.f64s(off, n_windows * row_values)?;
            for row in rows.chunks_exact(row_values) {
                for (i, stats) in out.iter_mut().enumerate() {
                    stats.push(WindowStats {
                        len: row[i * 3] as usize,
                        mean: row[i * 3 + 1],
                        std: row[i * 3 + 2],
                    });
                }
            }
        }
        Ok(out)
    }

    /// The full-width window-major pair table for `windows` — zero-copy when
    /// the rows are contiguous in one segment, row-gathered otherwise.
    /// `kind` must be [`SegmentKind::PairCorrs`] or [`SegmentKind::PairEsts`];
    /// asking for a table the pile does not cover is a typed
    /// [`Error::SketchMismatch`] (e.g. exact queries against an
    /// estimates-only pile).
    pub fn pair_table(&self, windows: Range<usize>, kind: SegmentKind) -> Result<PileCorrs<'_>> {
        if kind == SegmentKind::SeriesStats {
            return Err(Error::Storage(
                "series-stats segments are not a pair table".into(),
            ));
        }
        self.check_windows(kind, &windows)?;
        let pairs = self.pair_count();
        let runs = self.row_runs(kind, &windows);
        if runs.len() == 1 {
            let (off, n_windows) = runs[0];
            debug_assert_eq!(n_windows, windows.len());
            let data = self.map.f64s(off, n_windows * pairs)?;
            return Ok(PileCorrs::Borrowed(CorrView::new(data, pairs, n_windows)));
        }
        let mut data = Vec::with_capacity(windows.len() * pairs);
        for (off, n_windows) in runs {
            data.extend_from_slice(self.map.f64s(off, n_windows * pairs)?);
        }
        Ok(PileCorrs::Owned(TransposedCorrs::from_vec(
            data,
            pairs,
            windows.len(),
        )))
    }

    /// Rewrite the pile at `path` with live segments coalesced into at most
    /// one segment per kind (dropping per-segment header/padding overhead and
    /// restoring zero-copy contiguity for full-range reads). The rewrite goes
    /// through a temp file in the same directory and replaces the original
    /// with an atomic rename, so readers that already mapped the old file
    /// keep a valid (old) view and a crash leaves either the old or the new
    /// pile intact.
    pub fn compact(path: &Path) -> Result<CompactStats> {
        let src = SketchPile::open(path)?;
        let before = CompactStats {
            segments_before: src.segment_count(),
            segments_after: 0,
            bytes_before: src.space_bytes(),
            bytes_after: 0,
        };
        let tmp_path = path.with_extension("pile-compact-tmp");
        let mut writer = PileWriter::create(&tmp_path, src.n_series(), src.basic_window())?;
        let mut segments_after = 0usize;
        for kind in SegmentKind::ALL {
            let total = src.windows(kind);
            if total == 0 {
                continue;
            }
            segments_after += 1;
            let row_values = kind.row_values(src.n_series());
            // Bound the copy buffer: rewrite in chunks of whole windows.
            let chunk_windows = (1usize << 20) / (row_values * 8).max(1);
            let chunk_windows = chunk_windows.clamp(1, total);
            let mut start = 0;
            let mut buf = Vec::with_capacity(chunk_windows * row_values);
            while start < total {
                let end = (start + chunk_windows).min(total);
                buf.clear();
                for (off, n_windows) in src.row_runs(kind, &(start..end)) {
                    buf.extend_from_slice(src.map.f64s(off, n_windows * row_values)?);
                }
                writer.append(kind, &buf)?;
                start = end;
            }
        }
        let bytes_after = writer.len_bytes();
        writer.finish()?;
        drop(src);
        std::fs::rename(&tmp_path, path)
            .map_err(|e| Error::Storage(format!("compact rename: {e}")))?;
        // Best-effort directory sync so the rename itself is durable.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(CompactStats {
            segments_after,
            bytes_after,
            ..before
        })
    }
}

/// The mapped pile as a [`CorrSource`]: per-method capability comes from
/// segment coverage (an estimates-only pile reports zero exact windows and
/// vice versa), and full tables are the pile's own zero-copy-or-gathered
/// [`SketchPile::pair_table`]. No chunked override — the mapping makes the
/// full table as cheap as any chunk.
impl CorrSource for SketchPile {
    fn series_count(&self) -> usize {
        self.n_series()
    }

    fn window_count(&self, method: PlanMethod) -> usize {
        match method {
            PlanMethod::Exact => self.exact_query_windows(),
            PlanMethod::Approximate => self.approx_query_windows(),
        }
    }

    fn zero_copy(&self) -> bool {
        true
    }

    fn series_stats(&self, windows: Range<usize>) -> Result<Vec<Vec<WindowStats>>> {
        SketchPile::series_stats(self, windows)
    }

    fn full_table(
        &self,
        windows: Range<usize>,
        method: PlanMethod,
    ) -> Result<Option<PairTable<'_>>> {
        let kind = match method {
            PlanMethod::Exact => SegmentKind::PairCorrs,
            PlanMethod::Approximate => SegmentKind::PairEsts,
        };
        self.pair_table(windows, kind).map(Some)
    }
}

// ---------------------------------------------------------------------------
// Threaded pile writer (database-worker backend)
// ---------------------------------------------------------------------------

/// One window-major slab of rows bound for the pile, produced by the sketch
/// phase. The database worker coalesces consecutive same-kind slabs into one
/// segment append.
#[derive(Debug, Clone)]
pub enum PileSlab {
    /// `(len, mean, std)` triples, window-major.
    Stats(Vec<f64>),
    /// Per-pair per-window correlations, window-major.
    Corrs(Vec<f64>),
    /// Per-pair per-window Equation 3 estimates, window-major.
    Ests(Vec<f64>),
}

impl PileSlab {
    fn kind(&self) -> SegmentKind {
        match self {
            PileSlab::Stats(_) => SegmentKind::SeriesStats,
            PileSlab::Corrs(_) => SegmentKind::PairCorrs,
            PileSlab::Ests(_) => SegmentKind::PairEsts,
        }
    }

    fn values(&self) -> &[f64] {
        match self {
            PileSlab::Stats(v) | PileSlab::Corrs(v) | PileSlab::Ests(v) => v,
        }
    }

    fn into_values(self) -> Vec<f64> {
        match self {
            PileSlab::Stats(v) | PileSlab::Corrs(v) | PileSlab::Ests(v) => v,
        }
    }
}

/// Default coalescing limit of the threaded pile writer, in `f64` values per
/// segment append (64 Ki values = 512 KiB payloads).
pub const DEFAULT_PILE_COALESCE_VALUES: usize = 1 << 16;

/// Statistics reported by the threaded pile writer when it finishes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PileWriterStats {
    /// Producer slabs drained from the channel.
    pub slabs: usize,
    /// Segment appends issued (at most `slabs`; fewer when consecutive
    /// same-kind slabs were coalesced).
    pub appends: usize,
    /// Total `f64` values written.
    pub values: usize,
    /// Wall-clock time inside pile writes.
    pub write_time: Duration,
    /// Durability syncs issued per the configured [`SyncPolicy`].
    pub syncs: usize,
}

/// The pile backend of the database worker: a thread draining window-major
/// [`PileSlab`]s from a bounded channel, coalescing consecutive same-kind
/// slabs, and appending them as pile segments — the pile-flavored sibling of
/// [`crate::BatchWriter`]. Slabs must be sent in window order per kind
/// (single producer or externally ordered); the channel preserves that order.
pub struct PileBatchWriter {
    sender: Option<Sender<PileSlab>>,
    handle: Option<JoinHandle<Result<(PileWriterStats, PileWriter)>>>,
}

impl PileBatchWriter {
    /// Spawn with the default coalescing limit and durability policy.
    pub fn spawn(writer: PileWriter, queue_depth: usize) -> Self {
        Self::spawn_with(
            writer,
            queue_depth,
            DEFAULT_PILE_COALESCE_VALUES,
            SyncPolicy::default(),
        )
    }

    /// Spawn with an explicit coalescing limit (in `f64` values) and
    /// [`SyncPolicy`]. Under [`SyncPolicy::OnSwap`] every segment append is
    /// followed by an `fdatasync`; either policy syncs once more at
    /// shutdown.
    pub fn spawn_with(
        mut writer: PileWriter,
        queue_depth: usize,
        coalesce_values: usize,
        durability: SyncPolicy,
    ) -> Self {
        let (tx, rx) = bounded::<PileSlab>(queue_depth.max(1));
        let coalesce = coalesce_values.max(1);
        let handle = std::thread::spawn(move || -> Result<(PileWriterStats, PileWriter)> {
            let mut stats = PileWriterStats::default();
            let mut pending: Option<PileSlab> = None;
            loop {
                let first = match pending.take() {
                    Some(slab) => slab,
                    None => match rx.recv() {
                        Ok(slab) => slab,
                        Err(_) => break,
                    },
                };
                let kind = first.kind();
                stats.slabs += 1;
                let mut buf = first.into_values();
                while buf.len() < coalesce {
                    match rx.try_recv() {
                        Ok(next) if next.kind() == kind => {
                            stats.slabs += 1;
                            buf.extend_from_slice(next.values());
                        }
                        Ok(next) => {
                            pending = Some(next);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                let start = Instant::now();
                writer.append(kind, &buf)?;
                if durability == SyncPolicy::OnSwap {
                    writer.sync()?;
                    stats.syncs += 1;
                }
                stats.write_time += start.elapsed();
                stats.appends += 1;
                stats.values += buf.len();
            }
            let start = Instant::now();
            writer.sync()?;
            stats.syncs += 1;
            stats.write_time += start.elapsed();
            Ok((stats, writer))
        });
        Self {
            sender: Some(tx),
            handle: Some(handle),
        }
    }

    /// A cloneable sender for submitting slabs.
    pub fn sender(&self) -> Sender<PileSlab> {
        self.sender
            .as_ref()
            .expect("pile writer already finished")
            .clone()
    }

    /// Close the channel, drain it, sync, and hand back the statistics plus
    /// the underlying [`PileWriter`] (for snapshotting or further appends).
    pub fn finish(mut self) -> Result<(PileWriterStats, PileWriter)> {
        self.sender.take();
        let handle = self.handle.take().expect("pile writer already joined");
        handle
            .join()
            .map_err(|_| Error::Storage("pile writer thread panicked".into()))?
    }
}

impl Drop for PileBatchWriter {
    fn drop(&mut self) {
        self.sender.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Convenience used by tests and benches: `Arc` a pile for sharing across
/// query threads.
pub type SharedPile = Arc<SketchPile>;

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_pile(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tsubasa-pile-{}-{tag}.pile", std::process::id()))
    }

    fn stats_row(n: usize, w: usize) -> Vec<f64> {
        (0..n)
            .flat_map(|i| [10.0, w as f64 + i as f64 * 0.5, 1.0 + i as f64])
            .collect()
    }

    fn corr_row(pairs: usize, w: usize) -> Vec<f64> {
        (0..pairs).map(|p| ((w * pairs + p) as f64).sin()).collect()
    }

    #[test]
    fn round_trips_stats_and_corrs_bit_identically() {
        let path = temp_pile("roundtrip");
        let n = 4;
        let pairs = pair_count(n);
        let mut writer = PileWriter::create(&path, n, 16).unwrap();
        let mut all_corrs = Vec::new();
        for w in 0..5 {
            writer
                .append(SegmentKind::SeriesStats, &stats_row(n, w))
                .unwrap();
            let row = corr_row(pairs, w);
            all_corrs.extend_from_slice(&row);
            writer.append(SegmentKind::PairCorrs, &row).unwrap();
        }
        let pile = writer.into_pile().unwrap();
        assert_eq!(pile.n_series(), n);
        assert_eq!(pile.basic_window(), 16);
        assert_eq!(pile.exact_query_windows(), 5);
        assert_eq!(pile.approx_query_windows(), 0);
        assert_eq!(pile.truncated_bytes(), 0);

        let stats = pile.series_stats(0..5).unwrap();
        assert_eq!(stats.len(), n);
        assert_eq!(stats[2][3].mean, 3.0 + 2.0 * 0.5);
        assert_eq!(stats[1][0].std, 2.0);
        assert_eq!(stats[0][4].len, 10);

        let table = pile.pair_table(0..5, SegmentKind::PairCorrs).unwrap();
        let view = table.view();
        assert_eq!(view.window_count(), 5);
        for w in 0..5 {
            assert_eq!(view.window_row(w), &all_corrs[w * pairs..(w + 1) * pairs]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_segment_reads_are_zero_copy_and_spans_are_gathered() {
        let path = temp_pile("zerocopy");
        let n = 3;
        let pairs = pair_count(n);
        let mut writer = PileWriter::create(&path, n, 8).unwrap();
        // Two separate corr segments of 2 windows each.
        for w0 in [0, 2] {
            let mut rows = corr_row(pairs, w0);
            rows.extend(corr_row(pairs, w0 + 1));
            writer.append(SegmentKind::PairCorrs, &rows).unwrap();
        }
        let pile = writer.into_pile().unwrap();
        // Within one segment: zero-copy.
        assert!(pile
            .pair_table(0..2, SegmentKind::PairCorrs)
            .unwrap()
            .is_zero_copy());
        assert!(pile
            .pair_table(2..4, SegmentKind::PairCorrs)
            .unwrap()
            .is_zero_copy());
        // Across the boundary: gathered, same values.
        let spanning = pile.pair_table(1..3, SegmentKind::PairCorrs).unwrap();
        assert!(!spanning.is_zero_copy());
        assert_eq!(spanning.view().window_row(0), &corr_row(pairs, 1)[..]);
        assert_eq!(spanning.view().window_row(1), &corr_row(pairs, 2)[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_tables_and_bad_ranges_are_typed_errors() {
        let path = temp_pile("typed-errors");
        let mut writer = PileWriter::create(&path, 3, 8).unwrap();
        writer
            .append(SegmentKind::SeriesStats, &stats_row(3, 0))
            .unwrap();
        let pile = writer.into_pile().unwrap();
        assert!(matches!(
            pile.pair_table(0..1, SegmentKind::PairCorrs),
            Err(Error::SketchMismatch { .. })
        ));
        assert!(matches!(
            pile.pair_table(0..1, SegmentKind::SeriesStats),
            Err(Error::Storage(_))
        ));
        assert!(pile.series_stats(0..0).is_err());
        assert!(pile.series_stats(0..2).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn append_rejects_partial_rows_and_empty_is_noop() {
        let path = temp_pile("partial");
        let mut writer = PileWriter::create(&path, 3, 8).unwrap();
        assert!(writer.append(SegmentKind::PairCorrs, &[1.0, 2.0]).is_err());
        assert_eq!(writer.append(SegmentKind::PairCorrs, &[]).unwrap(), 0);
        assert_eq!(writer.coverage(SegmentKind::PairCorrs), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_append_resumes_coverage() {
        let path = temp_pile("resume");
        let pairs = pair_count(3);
        let mut writer = PileWriter::create(&path, 3, 8).unwrap();
        writer
            .append(SegmentKind::PairCorrs, &corr_row(pairs, 0))
            .unwrap();
        writer.finish().unwrap();

        let mut writer = PileWriter::open_append(&path).unwrap();
        assert_eq!(writer.coverage(SegmentKind::PairCorrs), 1);
        writer
            .append(SegmentKind::PairCorrs, &corr_row(pairs, 1))
            .unwrap();
        let pile = writer.into_pile().unwrap();
        assert_eq!(pile.windows(SegmentKind::PairCorrs), 2);
        let view = pile.pair_table(0..2, SegmentKind::PairCorrs).unwrap();
        assert_eq!(view.view().window_row(1), &corr_row(pairs, 1)[..]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_payload_is_cut_at_the_torn_segment() {
        let path = temp_pile("corrupt");
        let pairs = pair_count(3);
        let mut writer = PileWriter::create(&path, 3, 8).unwrap();
        writer
            .append(SegmentKind::PairCorrs, &corr_row(pairs, 0))
            .unwrap();
        let good_len = writer.len_bytes();
        writer
            .append(SegmentKind::PairCorrs, &corr_row(pairs, 1))
            .unwrap();
        writer.finish().unwrap();

        // Flip a payload byte of the second segment: its checksum fails, so
        // validation keeps only the first segment.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = good_len as usize + SEG_HEADER_LEN + 3;
        bytes[idx] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let pile = SketchPile::open(&path).unwrap();
        assert_eq!(pile.windows(SegmentKind::PairCorrs), 1);
        assert_eq!(pile.space_bytes(), good_len);
        assert!(pile.truncated_bytes() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_pile_files_are_rejected() {
        let path = temp_pile("not-a-pile");
        std::fs::write(&path, b"definitely not a pile file here").unwrap();
        assert!(SketchPile::open(&path).is_err());
        assert!(PileWriter::open_append(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_sees_appends_so_far_and_survives_later_appends() {
        let path = temp_pile("snapshot");
        let pairs = pair_count(4);
        let mut writer = PileWriter::create(&path, 4, 8).unwrap();
        writer
            .append(SegmentKind::PairCorrs, &corr_row(pairs, 0))
            .unwrap();
        let snap = writer.snapshot().unwrap();
        assert_eq!(snap.windows(SegmentKind::PairCorrs), 1);
        writer
            .append(SegmentKind::PairCorrs, &corr_row(pairs, 1))
            .unwrap();
        // The earlier snapshot still serves its prefix (append-only).
        assert_eq!(
            snap.pair_table(0..1, SegmentKind::PairCorrs)
                .unwrap()
                .view()
                .window_row(0),
            &corr_row(pairs, 0)[..]
        );
        let snap2 = writer.snapshot().unwrap();
        assert_eq!(snap2.windows(SegmentKind::PairCorrs), 2);
        writer.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_coalesces_and_preserves_bits() {
        let path = temp_pile("compact");
        let n = 4;
        let pairs = pair_count(n);
        let mut writer = PileWriter::create(&path, n, 8).unwrap();
        for w in 0..6 {
            writer
                .append(SegmentKind::SeriesStats, &stats_row(n, w))
                .unwrap();
            writer
                .append(SegmentKind::PairCorrs, &corr_row(pairs, w))
                .unwrap();
        }
        writer.finish().unwrap();

        let before = SketchPile::open(&path).unwrap();
        let stats_before = before.series_stats(0..6).unwrap();
        let corrs_before: Vec<Vec<f64>> = (0..6)
            .map(|w| {
                before
                    .pair_table(w..w + 1, SegmentKind::PairCorrs)
                    .unwrap()
                    .view()
                    .window_row(0)
                    .to_vec()
            })
            .collect();
        assert_eq!(before.segment_count(), 12);
        drop(before);

        let report = SketchPile::compact(&path).unwrap();
        assert_eq!(report.segments_before, 12);
        assert_eq!(report.segments_after, 2);
        assert!(report.bytes_after < report.bytes_before);

        let after = SketchPile::open(&path).unwrap();
        assert_eq!(after.segment_count(), 2);
        assert_eq!(after.series_stats(0..6).unwrap(), stats_before);
        // Full range is now a single segment: zero-copy again.
        let table = after.pair_table(0..6, SegmentKind::PairCorrs).unwrap();
        assert!(table.is_zero_copy());
        for (w, row) in corrs_before.iter().enumerate() {
            assert_eq!(table.view().window_row(w), &row[..]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batch_writer_coalesces_same_kind_slabs_in_order() {
        let path = temp_pile("batch");
        let pairs = pair_count(4);
        let writer = PileWriter::create(&path, 4, 8).unwrap();
        let batch = PileBatchWriter::spawn_with(writer, 8, usize::MAX, SyncPolicy::OnSwap);
        let tx = batch.sender();
        tx.send(PileSlab::Stats(stats_row(4, 0))).unwrap();
        for w in 0..4 {
            tx.send(PileSlab::Corrs(corr_row(pairs, w))).unwrap();
        }
        drop(tx);
        let (stats, writer) = batch.finish().unwrap();
        assert_eq!(stats.slabs, 5);
        assert!(stats.appends <= stats.slabs);
        assert_eq!(stats.values, 4 * 3 + 4 * pairs);
        assert!(stats.syncs >= stats.appends, "OnSwap syncs per append");

        let pile = writer.into_pile().unwrap();
        assert_eq!(pile.windows(SegmentKind::SeriesStats), 1);
        assert_eq!(pile.windows(SegmentKind::PairCorrs), 4);
        for w in 0..4 {
            assert_eq!(
                pile.pair_table(w..w + 1, SegmentKind::PairCorrs)
                    .unwrap()
                    .view()
                    .window_row(0),
                &corr_row(pairs, w)[..]
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fnv_checksum_is_the_reference_function() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
