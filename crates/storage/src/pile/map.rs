//! Read-only byte mapping behind the pile reader.
//!
//! This is the **only** module in the crate that contains `unsafe` code: a
//! minimal unix FFI declaration of `mmap`/`munmap` (crates.io is unreachable
//! in the build environment, so no mmap crate can be vendored) plus the raw
//! slice reinterpretations needed to hand out `&[f64]` views of the mapped
//! bytes. Everything above this module works with safe `&[u8]`/`&[f64]`
//! borrows whose invariants are established here.
//!
//! # Unsafe audit note
//!
//! The shim is deliberately loom-free and miri-skippable: under `cfg(miri)`
//! (and on non-unix targets, or when `TSUBASA_PILE_NO_MMAP=1` is set) the
//! mapping is replaced by a plain positional-read into a `Vec<u64>`-backed
//! buffer, so the FFI calls never execute under the interpreter while the
//! alignment-sensitive slice casts still get exercised. There is no shared
//! mutable state: a [`PileMap`] is immutable after construction, which is why
//! the manual `Send`/`Sync` impls below are sound.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

use tsubasa_core::error::{Error, Result};

/// `mmap`/`munmap` prototypes and the constants the shim needs, declared
/// directly against libc. `PROT_READ = 1` and `MAP_SHARED = 1` hold on every
/// unix libc this crate targets (Linux and macOS); `off_t` is 64-bit on both.
#[cfg(all(unix, not(miri)))]
mod ffi {
    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;
    /// `MAP_FAILED` is `(void *) -1`.
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

enum Inner {
    /// A live `PROT_READ`/`MAP_SHARED` mapping of the pile file's validated
    /// prefix. `ptr` is page-aligned (so in particular 8-byte aligned) and
    /// `len` bytes long.
    #[cfg(all(unix, not(miri)))]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    /// Fallback: the validated prefix read into an owned buffer. Backing the
    /// buffer with `Vec<u64>` (not `Vec<u8>`) guarantees the same 8-byte
    /// alignment the mmap path gets from page alignment, so `f64` views are
    /// valid either way. The second field is the byte length (the vector may
    /// be padded up to a whole number of words).
    Owned(Vec<u64>, usize),
}

/// An immutable byte mapping of a pile file's validated prefix, either a real
/// `mmap` (unix) or an aligned owned buffer (non-unix, miri, mmap failure, or
/// `TSUBASA_PILE_NO_MMAP=1`).
pub struct PileMap {
    inner: Inner,
}

// SAFETY: the mapping is created with PROT_READ and never written through;
// after construction a PileMap is immutable, so sharing references across
// threads cannot race. The raw pointer in `Inner::Mapped` is owned by this
// value alone (munmap happens exactly once, in Drop), so moving the value to
// another thread is sound.
unsafe impl Send for PileMap {}
// SAFETY: all access goes through `&self` methods that only read; see above.
unsafe impl Sync for PileMap {}

impl PileMap {
    /// Map the first `len` bytes of `file`. Falls back to an owned
    /// aligned-buffer read when mapping is unavailable or refused.
    pub fn map(file: &mut File, len: usize) -> Result<Self> {
        if len == 0 || force_fallback() {
            return Self::read_into_owned(file, len);
        }
        #[cfg(all(unix, not(miri)))]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: `addr` is null (kernel chooses), `len > 0` was checked
            // above, PROT_READ + MAP_SHARED is a valid read-only mapping
            // request, the fd is open for reading for the lifetime of this
            // call, and offset 0 is trivially page-aligned. A failed call
            // returns MAP_FAILED, which is handled, not dereferenced.
            let ptr = unsafe {
                ffi::mmap(
                    std::ptr::null_mut(),
                    len,
                    ffi::PROT_READ,
                    ffi::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == ffi::MAP_FAILED {
                return Self::read_into_owned(file, len);
            }
            Ok(Self {
                inner: Inner::Mapped { ptr, len },
            })
        }
        #[cfg(not(all(unix, not(miri))))]
        {
            Self::read_into_owned(file, len)
        }
    }

    fn read_into_owned(file: &mut File, len: usize) -> Result<Self> {
        let words = len.div_ceil(8);
        let mut buf: Vec<u64> = vec![0; words];
        if len > 0 {
            // SAFETY: a `u64` buffer of `words` elements is exactly
            // `words * 8 >= len` bytes of initialized, writable memory, and
            // any byte pattern is a valid `u64`, so viewing it as `&mut [u8]`
            // for the read is sound.
            let dst = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
            file.seek(SeekFrom::Start(0))
                .and_then(|_| file.read_exact(dst))
                .map_err(|e| Error::Storage(format!("pile read fallback failed: {e}")))?;
        }
        Ok(Self {
            inner: Inner::Owned(buf, len),
        })
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        match &self.inner {
            #[cfg(all(unix, not(miri)))]
            Inner::Mapped { len, .. } => *len,
            Inner::Owned(_, len) => *len,
        }
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this map is a real `mmap` (false on the owned fallback).
    pub fn is_mmap(&self) -> bool {
        match &self.inner {
            #[cfg(all(unix, not(miri)))]
            Inner::Mapped { .. } => true,
            Inner::Owned(..) => false,
        }
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(unix, not(miri)))]
            Inner::Mapped { ptr, len } => {
                // SAFETY: ptr/len describe a live PROT_READ mapping owned by
                // self (unmapped only in Drop), so `len` bytes are readable
                // for the lifetime of `&self`; u8 has no invalid patterns.
                unsafe { std::slice::from_raw_parts(ptr.cast::<u8>(), *len) }
            }
            Inner::Owned(buf, len) => {
                // SAFETY: the buffer holds at least `len` initialized bytes
                // (see read_into_owned); u8 has no invalid patterns.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// A zero-copy `&[f64]` view of `count` values starting `byte_off` bytes
    /// into the mapping. Errors (rather than panicking) on out-of-bounds or
    /// misaligned requests so format bugs surface as typed storage errors.
    pub fn f64s(&self, byte_off: usize, count: usize) -> Result<&[f64]> {
        let bytes = self.bytes();
        let need = count
            .checked_mul(8)
            .and_then(|b| b.checked_add(byte_off))
            .ok_or_else(|| Error::Storage("pile f64 view overflows".into()))?;
        if need > bytes.len() {
            return Err(Error::Storage(format!(
                "pile f64 view out of bounds: need {need} bytes, mapped {}",
                bytes.len()
            )));
        }
        let base = bytes[byte_off..].as_ptr();
        if !(base as usize).is_multiple_of(std::mem::align_of::<f64>()) {
            return Err(Error::Storage(format!(
                "pile f64 view misaligned at byte offset {byte_off}"
            )));
        }
        // SAFETY: bounds were checked against the live mapping, alignment was
        // checked at runtime just above (the format guarantees it: the base
        // is page-aligned or Vec<u64>-aligned and all payload offsets are
        // multiples of 8), every bit pattern is a valid f64, and the returned
        // lifetime is tied to `&self`, which keeps the mapping alive.
        Ok(unsafe { std::slice::from_raw_parts(base.cast::<f64>(), count) })
    }
}

impl Drop for PileMap {
    fn drop(&mut self) {
        match &self.inner {
            #[cfg(all(unix, not(miri)))]
            Inner::Mapped { ptr, len } => {
                // SAFETY: ptr/len are exactly what mmap returned for this
                // value and are unmapped exactly once, here. All borrows of
                // the mapping are tied to `&self` and have ended by Drop.
                let _ = unsafe { ffi::munmap(*ptr, *len) };
            }
            Inner::Owned(..) => {}
        }
    }
}

/// Whether the owned-buffer fallback is forced: always under miri, or when
/// `TSUBASA_PILE_NO_MMAP=1` is set (useful for A/B-testing the two paths).
fn force_fallback() -> bool {
    if cfg!(miri) {
        return true;
    }
    std::env::var("TSUBASA_PILE_NO_MMAP").is_ok_and(|v| v == "1")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tsubasa-pilemap-{}-{tag}", std::process::id()))
    }

    fn write_f64_file(path: &std::path::Path, values: &[f64]) -> File {
        let mut f = File::create(path).unwrap();
        for v in values {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        f.sync_all().unwrap();
        File::open(path).unwrap()
    }

    #[test]
    fn mmap_and_fallback_agree_bit_for_bit() {
        let path = temp_path("agree");
        let values: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let mut file = write_f64_file(&path, &values);
        let len = values.len() * 8;

        let mapped = PileMap::map(&mut file, len).unwrap();
        let mut file2 = File::open(&path).unwrap();
        let owned = PileMap::read_into_owned(&mut file2, len).unwrap();
        assert!(!owned.is_mmap());
        assert_eq!(mapped.bytes(), owned.bytes());
        assert_eq!(
            mapped.f64s(0, values.len()).unwrap(),
            owned.f64s(0, values.len()).unwrap()
        );
        assert_eq!(mapped.f64s(8, 3).unwrap(), &values[1..4]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_map_is_empty() {
        let path = temp_path("empty");
        let mut file = write_f64_file(&path, &[]);
        let map = PileMap::map(&mut file, 0).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.f64s(0, 0).unwrap(), &[] as &[f64]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_bounds_and_misaligned_views_are_errors() {
        let path = temp_path("oob");
        let mut file = write_f64_file(&path, &[1.0, 2.0]);
        let map = PileMap::map(&mut file, 16).unwrap();
        assert!(map.f64s(0, 3).is_err());
        assert!(map.f64s(16, 1).is_err());
        assert!(map.f64s(4, 1).is_err(), "offset 4 is not 8-aligned");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn map_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PileMap>();
    }
}
