//! The [`SketchStore`] abstraction shared by the in-memory and disk-backed
//! stores, plus helpers to persist / re-hydrate whole sketch sets.

use std::ops::Range;

use tsubasa_core::error::{Error, Result};
use tsubasa_core::plan::{PlanMethod, TransposedCorrs};
use tsubasa_core::sketch::pair_index;
use tsubasa_core::source::{CorrSource, PairTable};
use tsubasa_core::stats::WindowStats;
use tsubasa_core::{PairSketch, SeriesSketch, SketchSet};

use crate::record::{PairWindowRecord, SeriesWindowRecord};

/// The regular layout of a sketch store: everything is addressed by
/// `(series, window)` or `(pair, window)`, so record offsets are pure
/// arithmetic and no secondary index is required.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreLayout {
    /// Number of series.
    pub n_series: usize,
    /// Number of basic windows per series.
    pub n_windows: usize,
    /// Basic-window size the sketches were computed with.
    pub basic_window: usize,
}

impl StoreLayout {
    /// Number of unordered series pairs.
    pub fn n_pairs(&self) -> usize {
        self.n_series * self.n_series.saturating_sub(1) / 2
    }

    /// Total number of per-series records.
    pub fn series_records(&self) -> usize {
        self.n_series * self.n_windows
    }

    /// Total number of per-pair records.
    pub fn pair_records(&self) -> usize {
        self.n_pairs() * self.n_windows
    }

    /// Flat index of a `(series, window)` record.
    pub fn series_slot(&self, series: usize, window: usize) -> Result<usize> {
        if series >= self.n_series {
            return Err(Error::UnknownSeries(series));
        }
        if window >= self.n_windows {
            return Err(Error::Storage(format!(
                "window {window} out of range ({} windows)",
                self.n_windows
            )));
        }
        Ok(series * self.n_windows + window)
    }

    /// Flat index of a `(pair, window)` record; the pair is given by any
    /// ordering of its two distinct series ids.
    pub fn pair_slot(&self, a: usize, b: usize, window: usize) -> Result<usize> {
        if a == b || a >= self.n_series || b >= self.n_series {
            return Err(Error::UnknownSeries(a.max(b)));
        }
        if window >= self.n_windows {
            return Err(Error::Storage(format!(
                "window {window} out of range ({} windows)",
                self.n_windows
            )));
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        Ok(pair_index(lo, hi, self.n_series) * self.n_windows + window)
    }

    /// Validate that a window range is non-empty and inside the layout.
    pub fn check_windows(&self, windows: &Range<usize>) -> Result<()> {
        if windows.is_empty() || windows.end > self.n_windows {
            return Err(Error::Storage(format!(
                "window range {windows:?} invalid for {} stored windows",
                self.n_windows
            )));
        }
        Ok(())
    }
}

/// A store holding basic-window sketches. Both implementations are safe to
/// share across threads: one writer thread and many reader threads is the
/// intended usage (paper §3.4).
pub trait SketchStore: Send + Sync {
    /// The store's layout.
    fn layout(&self) -> StoreLayout;

    /// Write (or overwrite) a batch of per-series records.
    fn write_series(&self, records: &[SeriesWindowRecord]) -> Result<()>;

    /// Write (or overwrite) a batch of per-pair records.
    fn write_pairs(&self, records: &[PairWindowRecord]) -> Result<()>;

    /// Read the statistics of one series over a range of basic windows.
    fn read_series(&self, series: usize, windows: Range<usize>) -> Result<Vec<WindowStats>>;

    /// Read the records of one pair over a range of basic windows.
    fn read_pair(&self, a: usize, b: usize, windows: Range<usize>)
        -> Result<Vec<PairWindowRecord>>;

    /// Read the records of several pairs over the same range of basic
    /// windows. The default implementation issues one [`SketchStore::read_pair`]
    /// per pair; disk-backed stores override it to coalesce consecutive pairs
    /// into single ranged reads (the batched access pattern of the paper's
    /// query workers).
    fn read_pairs(
        &self,
        pairs: &[(usize, usize)],
        windows: Range<usize>,
    ) -> Result<Vec<Vec<PairWindowRecord>>> {
        pairs
            .iter()
            .map(|&(a, b)| self.read_pair(a, b, windows.clone()))
            .collect()
    }

    /// Flush buffered writes to the backing medium.
    fn flush(&self) -> Result<()>;

    /// Bytes occupied by the stored sketches — the Figure 6d metric.
    fn space_bytes(&self) -> u64;
}

/// The record store as a [`CorrSource`]: the one chunked backend. Records
/// carry both method fields (`corr` and `dft_dist`), so the store cannot
/// distinguish methods by coverage — it reports its full window count for
/// either, and a method-mismatched sketch surfaces through the unified NaN
/// audit (the missing field is stored as NaN) instead of a typed rejection.
/// [`CorrSource::full_table`] is `None`: the store's access pattern is
/// batched ranged record reads, served through
/// [`CorrSource::chunk_table`] on top of [`SketchStore::read_pairs`].
impl CorrSource for dyn SketchStore {
    fn series_count(&self) -> usize {
        self.layout().n_series
    }

    fn window_count(&self, _method: PlanMethod) -> usize {
        self.layout().n_windows
    }

    fn series_stats(&self, windows: Range<usize>) -> Result<Vec<Vec<WindowStats>>> {
        self.layout().check_windows(&windows)?;
        (0..self.layout().n_series)
            .map(|i| self.read_series(i, windows.clone()))
            .collect()
    }

    fn full_table(
        &self,
        _windows: Range<usize>,
        _method: PlanMethod,
    ) -> Result<Option<PairTable<'_>>> {
        Ok(None)
    }

    fn chunk_table(
        &self,
        chunk: &[(usize, usize)],
        windows: Range<usize>,
        method: PlanMethod,
    ) -> Result<TransposedCorrs> {
        self.layout().check_windows(&windows)?;
        let batch = self.read_pairs(chunk, windows.clone())?;
        Ok(TransposedCorrs::from_fn(
            chunk.len(),
            windows.len(),
            |p, k| match method {
                PlanMethod::Exact => batch[p][k].corr,
                PlanMethod::Approximate => {
                    let d = batch[p][k].dft_dist;
                    1.0 - d * d / 2.0
                }
            },
        ))
    }
}

/// Persist an in-memory [`SketchSet`] into a store. `dft_dists`, when given,
/// supplies the per-pair per-window DFT distances of the approximate
/// comparator (packed in the same pair order as `SketchSet::pair_sketches`).
pub fn persist_sketchset(
    store: &dyn SketchStore,
    sketch: &SketchSet,
    dft_dists: Option<&[Vec<f64>]>,
) -> Result<()> {
    let layout = store.layout();
    if layout.n_series != sketch.series_count()
        || layout.n_windows != sketch.window_count()
        || layout.basic_window != sketch.basic_window()
    {
        return Err(Error::SketchMismatch {
            requested: format!(
                "{} series x {} windows (B={})",
                sketch.series_count(),
                sketch.window_count(),
                sketch.basic_window()
            ),
            available: format!(
                "{} series x {} windows (B={})",
                layout.n_series, layout.n_windows, layout.basic_window
            ),
        });
    }

    let mut series_batch = Vec::with_capacity(layout.n_windows);
    for s in sketch.series_sketches() {
        series_batch.clear();
        for (w, stats) in s.windows.iter().enumerate() {
            series_batch.push(SeriesWindowRecord::from_stats(s.series, w, stats));
        }
        store.write_series(&series_batch)?;
    }

    let mut pair_batch = Vec::with_capacity(layout.n_windows);
    for (idx, p) in sketch.pair_sketches().enumerate() {
        pair_batch.clear();
        for (w, &corr) in p.corrs.iter().enumerate() {
            let dft_dist = dft_dists.map(|d| d[idx][w]).unwrap_or(f64::NAN);
            pair_batch.push(PairWindowRecord {
                a: p.a as u32,
                b: p.b as u32,
                window: w as u32,
                corr,
                dft_dist,
            });
        }
        store.write_pairs(&pair_batch)?;
    }
    store.flush()
}

/// Re-hydrate a [`SketchSet`] from a store (the query-time path of the
/// disk-based configuration when raw data is no longer needed).
pub fn load_sketchset(store: &dyn SketchStore) -> Result<SketchSet> {
    let layout = store.layout();
    let mut series = Vec::with_capacity(layout.n_series);
    for s in 0..layout.n_series {
        let windows = store.read_series(s, 0..layout.n_windows)?;
        series.push(SeriesSketch { series: s, windows });
    }
    let mut pairs = Vec::with_capacity(layout.n_pairs());
    for a in 0..layout.n_series {
        for b in (a + 1)..layout.n_series {
            let records = store.read_pair(a, b, 0..layout.n_windows)?;
            pairs.push(PairSketch {
                a,
                b,
                corrs: records.iter().map(|r| r.corr).collect(),
            });
        }
    }
    SketchSet::from_parts(layout.basic_window, layout.n_series, series, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_arithmetic() {
        let l = StoreLayout {
            n_series: 5,
            n_windows: 4,
            basic_window: 10,
        };
        assert_eq!(l.n_pairs(), 10);
        assert_eq!(l.series_records(), 20);
        assert_eq!(l.pair_records(), 40);
        assert_eq!(l.series_slot(2, 3).unwrap(), 11);
        assert_eq!(l.pair_slot(0, 1, 0).unwrap(), 0);
        assert_eq!(l.pair_slot(1, 0, 0).unwrap(), 0); // order-insensitive
        assert_eq!(l.pair_slot(3, 4, 2).unwrap(), 9 * 4 + 2);
    }

    #[test]
    fn layout_rejects_out_of_range() {
        let l = StoreLayout {
            n_series: 3,
            n_windows: 2,
            basic_window: 5,
        };
        assert!(l.series_slot(3, 0).is_err());
        assert!(l.series_slot(0, 2).is_err());
        assert!(l.pair_slot(1, 1, 0).is_err());
        assert!(l.pair_slot(0, 5, 0).is_err());
        assert!(l.check_windows(&(0..0)).is_err());
        assert!(l.check_windows(&(0..3)).is_err());
        assert!(l.check_windows(&(0..2)).is_ok());
    }
}
