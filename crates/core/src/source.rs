//! The backend-agnostic sketch **source** abstraction: one query pipeline
//! over in-memory sketches, record stores, and mapped piles.
//!
//! The paper's query algebra — Lemma 1 exact recombination and the Equation 5
//! approximate recombination over Equation 3 estimates — only ever needs two
//! things from a sketch backend:
//!
//! * the per-series window statistics of the query range (the input of
//!   [`QueryPlan::from_window_stats`](crate::plan::QueryPlan::from_window_stats)),
//!   and
//! * a window-major per-pair table of correlations (exact) or `1 − d²/2`
//!   estimates (approximate) for the same range — the layout
//!   [`QueryPlan::block_kernel`](crate::plan::QueryPlan::block_kernel)
//!   streams.
//!
//! [`CorrSource`] is exactly that contract. A backend serves the table either
//! **whole** ([`CorrSource::full_table`] — zero-copy for mapped piles and
//! in-memory sketches) or **chunk at a time** ([`CorrSource::chunk_table`] —
//! the record store's batched ranged reads), and declares its capabilities
//! per [`PlanMethod`] through [`CorrSource::window_count`]. The engines are
//! written once against this trait; growing a new backend (tiered storage,
//! replicas, remote piles) means implementing it, not forking the pipeline.
//!
//! # The NaN audit
//!
//! Every backend shares one audit convention, implemented in exactly one
//! place ([`audit_nan_chunk`]): the recombination kernel clamps NaN window
//! values to the `0.0` convention, so a NaN in the method's table — the
//! signature of a method-mismatched sketch — would silently produce a
//! plausible-looking correlation. The audit scans the chunk's table columns
//! and reports each affected pair to the sink as a one-slot NaN tile, which
//! the sinks count (never rank or threshold). A NaN table value and a NaN
//! stored record field are equivalent observations: the exact table *is* the
//! stored correlation, and the Equation 3 map `1 − d²/2` is NaN iff the
//! stored distance is. Chunks skipped by Equation 4 pruning are audited only
//! under the engines' opt-in `audit_pruned_chunks` policy — pruning decides
//! from per-series statistics alone, so the skipped columns are otherwise
//! never touched (and, on a mapped pile, never faulted in).

use std::ops::Range;

use crate::error::{Error, Result};
use crate::plan::{CorrView, PlanMethod, TransposedCorrs};
use crate::sketch::{pair_index, SketchSet};
use crate::stats::WindowStats;
use crate::sweep::TileSink;

/// A window-major pair table served by a [`CorrSource`]: either a zero-copy
/// borrow of the backend's own storage (a mapped pile segment, an in-memory
/// sketch's flat table) or an owned gathered buffer (spanning pile segments,
/// or assembled from decoded records). Both present the same [`CorrView`].
pub enum PairTable<'a> {
    /// Zero-copy view straight into the backend's storage.
    Borrowed(CorrView<'a>),
    /// Rows gathered into an owned window-major buffer.
    Owned(TransposedCorrs),
}

impl PairTable<'_> {
    /// The window-major view the sweep kernels consume.
    pub fn view(&self) -> CorrView<'_> {
        match self {
            PairTable::Borrowed(v) => *v,
            PairTable::Owned(t) => t.view(),
        }
    }

    /// Whether this table borrows the backend's storage directly (no copy).
    pub fn is_zero_copy(&self) -> bool {
        matches!(self, PairTable::Borrowed(_))
    }
}

/// A sketch backend the unified query pipeline can recombine from.
///
/// Implementations: [`SketchSet`] (exact, in memory), `DftSketchSet` (both
/// methods, in memory — in `tsubasa-dft`), `dyn SketchStore` (record store)
/// and `SketchPile` (mapped pile) in `tsubasa-storage`.
///
/// The trait is object-safe: serving layers hold `Arc<dyn CorrSource>`
/// payloads and the engines take `&S where S: CorrSource + ?Sized`.
pub trait CorrSource: Send + Sync {
    /// Number of series covered.
    fn series_count(&self) -> usize;

    /// Basic windows answerable under `method` — the capability declaration.
    /// A backend that cannot distinguish methods (the record store holds one
    /// record layout for both) reports its full coverage for either; the
    /// mismatch then surfaces through the NaN audit instead of a typed
    /// rejection.
    fn window_count(&self, method: PlanMethod) -> usize;

    /// Whether [`CorrSource::full_table`] can borrow storage directly
    /// (no copy) for single-segment ranges.
    fn zero_copy(&self) -> bool {
        false
    }

    /// Whether any exact-method windows are answerable.
    fn supports_exact(&self) -> bool {
        self.window_count(PlanMethod::Exact) > 0
    }

    /// Whether any approximate-method windows are answerable.
    fn supports_approx(&self) -> bool {
        self.window_count(PlanMethod::Approximate) > 0
    }

    /// The per-series window statistics of `windows`, series-major
    /// (`out[series][k]`) — the input of
    /// [`QueryPlan::from_window_stats`](crate::plan::QueryPlan::from_window_stats).
    fn series_stats(&self, windows: Range<usize>) -> Result<Vec<Vec<WindowStats>>>;

    /// The full-width pair table for `windows` under `method`, when the
    /// backend can serve one without per-pair reads — `Ok(None)` for
    /// backends that only serve chunked reads (the record store), which
    /// callers answer by streaming [`CorrSource::chunk_table`] instead.
    fn full_table(
        &self,
        windows: Range<usize>,
        method: PlanMethod,
    ) -> Result<Option<PairTable<'_>>>;

    /// The window-major table of one contiguous chunk of packed pairs
    /// (column `p` of the result is `chunk[p]`). The default gathers columns
    /// from [`CorrSource::full_table`]; backends with batched ranged reads
    /// (the record store) override it.
    fn chunk_table(
        &self,
        chunk: &[(usize, usize)],
        windows: Range<usize>,
        method: PlanMethod,
    ) -> Result<TransposedCorrs> {
        let n = self.series_count();
        let table = self.full_table(windows.clone(), method)?.ok_or_else(|| {
            Error::Storage("source serves neither full nor chunked pair tables".into())
        })?;
        let view = table.view();
        Ok(TransposedCorrs::from_fn(
            chunk.len(),
            windows.len(),
            |p, k| {
                let (a, b) = chunk[p];
                view.window_row(k)[pair_index(a, b, n)]
            },
        ))
    }
}

/// The Equation 3 estimate side of a source: an owned window-major table of
/// `1 − d²/2` estimates, the input `ApproxPlan` (in `tsubasa-dft`)
/// recombines through Equation 5. Blanket-implemented for every
/// [`CorrSource`] (including `dyn CorrSource`) on top of the approximate
/// pair table.
pub trait EstSource: CorrSource {
    /// The owned estimate table for `windows` — the backing buffer of an
    /// approximate plan. Bit-identical to the backend's approximate
    /// [`CorrSource::full_table`] values.
    fn est_table(&self, windows: Range<usize>) -> Result<TransposedCorrs> {
        match self.full_table(windows.clone(), PlanMethod::Approximate)? {
            Some(PairTable::Owned(t)) => Ok(t),
            Some(PairTable::Borrowed(v)) => Ok(TransposedCorrs::from_fn(
                v.pair_count(),
                v.window_count(),
                |p, k| v.window_row(k)[p],
            )),
            None => {
                let n = self.series_count();
                let pairs: Vec<(usize, usize)> = (0..n)
                    .flat_map(|a| (a + 1..n).map(move |b| (a, b)))
                    .collect();
                self.chunk_table(&pairs, windows, PlanMethod::Approximate)
            }
        }
    }
}

impl<T: CorrSource + ?Sized> EstSource for T {}

/// **The** NaN-audit hook shared by every backend: scan a chunk's columns of
/// a window-major table for NaN windows and report each affected pair to the
/// sink as a one-slot NaN tile (`sink.consume(a, b, pair, &[NaN])`), which
/// the sinks count as audit metadata — never rank or threshold.
///
/// `view` is either the full-width table (columns addressed by the global
/// packed pair index) or a chunk-width table from
/// [`CorrSource::chunk_table`] (columns addressed by chunk position); the
/// two cases are distinguished by the view's pair count. When the chunk
/// covers the whole triangle the interpretations coincide, so the
/// distinction is unambiguous.
pub fn audit_nan_chunk(
    view: CorrView<'_>,
    chunk: &[(usize, usize)],
    n: usize,
    sink: &mut dyn TileSink,
) {
    let full_width = view.pair_count() == n * n.saturating_sub(1) / 2;
    let w = view.window_count();
    for (idx, &(a, b)) in chunk.iter().enumerate() {
        let p = pair_index(a, b, n);
        let col = if full_width { p } else { idx };
        if (0..w).any(|k| view.window_row(k)[col].is_nan()) {
            sink.consume(a, b, p, &[f64::NAN]);
        }
    }
}

impl CorrSource for SketchSet {
    fn series_count(&self) -> usize {
        SketchSet::series_count(self)
    }

    fn window_count(&self, method: PlanMethod) -> usize {
        match method {
            PlanMethod::Exact => SketchSet::window_count(self),
            // The exact sketch stores no coefficient distances.
            PlanMethod::Approximate => 0,
        }
    }

    fn zero_copy(&self) -> bool {
        true
    }

    fn series_stats(&self, windows: Range<usize>) -> Result<Vec<Vec<WindowStats>>> {
        check_source_windows(self, &windows, PlanMethod::Exact)?;
        (0..SketchSet::series_count(self))
            .map(|i| {
                let sk = self.series_sketch(i)?;
                Ok(windows.clone().map(|w| sk.window(w)).collect())
            })
            .collect()
    }

    fn full_table(
        &self,
        windows: Range<usize>,
        method: PlanMethod,
    ) -> Result<Option<PairTable<'_>>> {
        check_source_windows(self, &windows, method)?;
        Ok(Some(PairTable::Borrowed(self.window_corrs_view(windows))))
    }
}

/// Validate a window range against a source's coverage for `method` — the
/// shared typed-rejection helper of the unified pipeline.
pub fn check_source_windows<S: CorrSource + ?Sized>(
    source: &S,
    windows: &Range<usize>,
    method: PlanMethod,
) -> Result<()> {
    let available = source.window_count(method);
    if windows.start >= windows.end || windows.end > available {
        return Err(Error::SketchMismatch {
            requested: format!("{method:?} windows {windows:?}"),
            available: format!("{method:?} windows 0..{available}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::EdgeSink;
    use crate::SeriesCollection;

    fn sketch() -> SketchSet {
        let c = SeriesCollection::from_rows(
            (0..4)
                .map(|s| {
                    (0..60)
                        .map(|i| (i as f64 * 0.2 + s as f64).sin() + ((i * (s + 2)) % 5) as f64)
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        SketchSet::build(&c, 20).unwrap()
    }

    #[test]
    fn sketchset_source_capabilities_and_tables() {
        let sk = sketch();
        let src: &dyn CorrSource = &sk;
        assert_eq!(src.series_count(), 4);
        assert_eq!(src.window_count(PlanMethod::Exact), 3);
        assert_eq!(src.window_count(PlanMethod::Approximate), 0);
        assert!(src.supports_exact() && !src.supports_approx());
        assert!(src.zero_copy());

        let table = src.full_table(0..3, PlanMethod::Exact).unwrap().unwrap();
        assert!(table.is_zero_copy());
        let view = table.view();
        let direct = sk.window_corrs_view(0..3);
        for k in 0..3 {
            assert_eq!(view.window_row(k), direct.window_row(k));
        }
        // Default chunk gather matches the full table's columns.
        let chunk = [(0usize, 2usize), (0, 3), (1, 2)];
        let chunked = src.chunk_table(&chunk, 1..3, PlanMethod::Exact).unwrap();
        for (p, &(a, b)) in chunk.iter().enumerate() {
            for k in 0..2 {
                assert_eq!(
                    chunked.view().window_row(k)[p],
                    sk.window_corrs_view(1..3).window_row(k)[pair_index(a, b, 4)]
                );
            }
        }
        // Stats match the sketch's own windows.
        let stats = src.series_stats(0..3).unwrap();
        for (i, row) in stats.iter().enumerate() {
            for (k, st) in row.iter().enumerate() {
                assert_eq!(*st, sk.series_sketch(i).unwrap().window(k));
            }
        }
        // The approximate method is a typed mismatch.
        assert!(src.full_table(0..3, PlanMethod::Approximate).is_err());
        assert!(check_source_windows(src, &(0..3), PlanMethod::Approximate).is_err());
        assert!(check_source_windows(src, &(2..2), PlanMethod::Exact).is_err());
        assert!(check_source_windows(src, &(0..4), PlanMethod::Exact).is_err());
    }

    #[test]
    fn nan_audit_counts_identically_on_full_and_chunk_width_views() {
        let n = 4;
        let pairs = n * (n - 1) / 2;
        // Full-width table with a NaN in pair (1, 3)'s second window.
        let poisoned = pair_index(1, 3, n);
        let full = TransposedCorrs::from_fn(pairs, 2, |p, k| {
            if p == poisoned && k == 1 {
                f64::NAN
            } else {
                0.5
            }
        });
        let chunk = [(1usize, 2usize), (1, 3), (2, 3)];
        let mut sink = EdgeSink::new(0.9);
        audit_nan_chunk(full.view(), &chunk, n, &mut sink);
        assert_eq!(sink.finish(n).nan_pair_count(), 1);

        // The same chunk served as a chunk-width table (columns by position).
        let chunk_width = TransposedCorrs::from_fn(chunk.len(), 2, |p, k| {
            full.view().window_row(k)[pair_index(chunk[p].0, chunk[p].1, n)]
        });
        let mut sink = EdgeSink::new(0.9);
        audit_nan_chunk(chunk_width.view(), &chunk, n, &mut sink);
        assert_eq!(sink.finish(n).nan_pair_count(), 1);
    }
}
