//! The baseline comparator: direct all-pair Pearson correlation computed from
//! raw data at query time, with no sketching.
//!
//! This is the algorithm the paper's Figure 5c compares against — query time
//! `O(l* · N²)` in the query-window length `l*`, versus TSUBASA's
//! `O(l*/B · N²)`.

use crate::error::Result;
use crate::matrix::CorrelationMatrix;
use crate::stats::pearson;
use crate::timeseries::{SeriesCollection, SeriesId};
use crate::window::QueryWindow;

/// Pearson correlation of one pair computed directly from the raw values of
/// the query window.
pub fn pair_correlation(
    collection: &SeriesCollection,
    query: QueryWindow,
    i: SeriesId,
    j: SeriesId,
) -> Result<f64> {
    if i == j {
        return Ok(1.0);
    }
    let x = collection.get(i)?.slice(query)?;
    let y = collection.get(j)?.slice(query)?;
    Ok(pearson(x, y))
}

/// All-pair correlation matrix computed directly from raw data — the paper's
/// baseline. Scans `l*` raw points for each of the `N(N-1)/2` pairs.
pub fn correlation_matrix(
    collection: &SeriesCollection,
    query: QueryWindow,
) -> Result<CorrelationMatrix> {
    let n = collection.len();
    let mut matrix = CorrelationMatrix::identity(n);
    for (i, j) in collection.pairs() {
        matrix.set(i, j, pair_correlation(collection, query, i, j)?);
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matrix_matches_pairwise_calls() {
        let c = SeriesCollection::from_rows(vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            vec![2.0, 2.5, 2.0, 4.5, 5.5, 5.0],
            vec![6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
        ])
        .unwrap();
        let w = QueryWindow::new(5, 4).unwrap();
        let m = correlation_matrix(&c, w).unwrap();
        for (i, j) in c.pairs() {
            assert_eq!(m.get(i, j), pair_correlation(&c, w, i, j).unwrap());
        }
        assert_eq!(m.get(1, 1), 1.0);
    }

    #[test]
    fn baseline_rejects_invalid_window() {
        let c = SeriesCollection::from_rows(vec![vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        let w = QueryWindow::new(5, 2).unwrap();
        assert!(correlation_matrix(&c, w).is_err());
    }

    #[test]
    fn baseline_self_correlation_is_one() {
        let c =
            SeriesCollection::from_rows(vec![vec![1.0, 2.0, 3.0], vec![3.0, 1.0, 2.0]]).unwrap();
        let w = QueryWindow::new(2, 3).unwrap();
        assert_eq!(pair_correlation(&c, w, 0, 0).unwrap(), 1.0);
    }
}
