//! Pluggable execution of batches of independent jobs.
//!
//! The parallel sweeps in this workspace all have the same shape: carve the
//! packed all-pairs triangle into disjoint contiguous slices, then run one
//! closure per slice to completion before continuing. [`JobRunner`] abstracts
//! *where* those closures run so the hot paths don't hard-code a threading
//! strategy:
//!
//! * [`SerialRunner`] runs jobs inline on the calling thread — the reference
//!   execution, also what single-worker configurations collapse to.
//! * [`ScopedRunner`] spawns one scoped OS thread per job
//!   ([`std::thread::scope`]) — correct and dependency-free, but it pays
//!   thread startup on every call.
//! * `tsubasa_parallel::WorkerPool` (in the parallel crate) keeps a fixed set
//!   of threads alive across calls, so repeated queries and sliding-network
//!   re-evaluations stop paying that startup cost.
//!
//! The contract every implementation must honor: **`run` returns only after
//! every job has finished executing.** Jobs may borrow from the caller's
//! stack (`Job<'env>`); the blocking contract is what makes those borrows
//! sound for implementations that move jobs to other threads.

/// A unit of work: a closure that owns (or borrows, for the duration of the
/// `run` call) everything it needs. Jobs produced by the sweeps write results
/// through disjoint `&mut` slices and surface errors through captured slots,
/// so the closure itself returns nothing.
pub type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Something that can run a batch of independent jobs to completion.
///
/// Implementations must not return from [`JobRunner::run`] until every job
/// has finished (or panicked — panics must propagate to the caller, not be
/// swallowed, so invariants broken mid-job are never silently ignored).
pub trait JobRunner {
    /// The parallelism this runner provides — callers use it to size their
    /// job batches (e.g. one contiguous pair slice per worker).
    fn worker_count(&self) -> usize;

    /// Run all jobs to completion before returning.
    fn run<'env>(&self, jobs: Vec<Job<'env>>);
}

/// Runs every job inline on the calling thread, in order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialRunner;

impl JobRunner for SerialRunner {
    fn worker_count(&self) -> usize {
        1
    }

    fn run<'env>(&self, jobs: Vec<Job<'env>>) {
        for job in jobs {
            job();
        }
    }
}

/// Spawns one scoped thread per job on every call — the zero-state reference
/// implementation behind [`crate::exact::correlation_matrix_parallel`]. A
/// reusable pool (`tsubasa_parallel::WorkerPool`) amortizes the per-call
/// thread startup this runner pays.
#[derive(Debug, Clone, Copy)]
pub struct ScopedRunner {
    workers: usize,
}

impl ScopedRunner {
    /// A runner advertising `workers` parallelism (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
        }
    }
}

impl JobRunner for ScopedRunner {
    fn worker_count(&self) -> usize {
        self.workers
    }

    fn run<'env>(&self, jobs: Vec<Job<'env>>) {
        if jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(jobs.len());
            for job in jobs {
                handles.push(scope.spawn(job));
            }
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn counting_jobs(counter: &AtomicUsize, jobs: usize) -> Vec<Job<'_>> {
        (0..jobs)
            .map(|_| {
                Box::new(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Job<'_>
            })
            .collect()
    }

    #[test]
    fn serial_runner_runs_everything_inline() {
        let counter = AtomicUsize::new(0);
        SerialRunner.run(counting_jobs(&counter, 5));
        assert_eq!(counter.load(Ordering::SeqCst), 5);
        assert_eq!(SerialRunner.worker_count(), 1);
    }

    #[test]
    fn scoped_runner_completes_all_jobs_before_returning() {
        let counter = AtomicUsize::new(0);
        let runner = ScopedRunner::new(4);
        runner.run(counting_jobs(&counter, 9));
        assert_eq!(counter.load(Ordering::SeqCst), 9);
        assert_eq!(runner.worker_count(), 4);
        assert_eq!(ScopedRunner::new(0).worker_count(), 1);
    }

    #[test]
    fn scoped_runner_jobs_may_write_disjoint_slices() {
        let mut values = vec![0.0f64; 6];
        let (a, b) = values.split_at_mut(3);
        ScopedRunner::new(2).run(vec![
            Box::new(move || a.fill(1.0)),
            Box::new(move || b.fill(2.0)),
        ]);
        assert_eq!(values, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn scoped_runner_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            ScopedRunner::new(2).run(vec![Box::new(|| {}), Box::new(|| panic!("job exploded"))]);
        });
        assert!(result.is_err());
    }
}
