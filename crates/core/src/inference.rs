//! Threshold-matrix inference via correlation bounds (paper §3.5,
//! Algorithm 5).
//!
//! Knowing the correlations `c_xz` and `c_yz` of two series with a shared
//! *anchor* series `z` bounds the correlation of `x` and `y`:
//!
//! ```text
//! c_xz·c_yz − √((1−c_xz²)(1−c_yz²)) ≤ c_xy ≤ c_xz·c_yz + √((1−c_xz²)(1−c_yz²))
//! ```
//!
//! For a threshold θ this can decide many cells of the *boolean* network
//! matrix without ever computing `c_xy`: if the lower bound already exceeds θ
//! (or the upper bound is below −θ) the pair is connected in the
//! absolute-threshold network; if the whole interval lies inside `(−θ, θ)`
//! the pair is disconnected. Only the remaining "uncertain" cells need real
//! correlation computations.
//!
//! Note the decision rules match the paper exactly, which means the matrix
//! being inferred is the **absolute**-threshold network
//! (`|c_xy| ≥ θ`, cf. [`crate::matrix::CorrelationMatrix::threshold_abs`]).

use crate::error::{Error, Result};
use crate::matrix::AdjacencyMatrix;

/// The inclusive bounds on `c_xy` implied by correlations with a shared
/// anchor (paper Equation 7).
pub fn correlation_bounds(c_xz: f64, c_yz: f64) -> (f64, f64) {
    let slack = ((1.0 - c_xz * c_xz).max(0.0) * (1.0 - c_yz * c_yz).max(0.0)).sqrt();
    let centre = c_xz * c_yz;
    ((centre - slack).max(-1.0), (centre + slack).min(1.0))
}

/// What the bounds let us conclude about one cell of the thresholded matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellDecision {
    /// `|c_xy| ≥ θ` is certain: the pair is connected.
    Edge,
    /// `|c_xy| < θ` is certain: the pair is not connected.
    NonEdge,
    /// The bounds straddle the threshold; the correlation must be computed.
    Unknown,
}

/// Decide one cell from anchor correlations `c_xz`, `c_yz` and threshold θ
/// (the colored-region test of the paper's Figure 4).
pub fn decide_cell(c_xz: f64, c_yz: f64, theta: f64) -> CellDecision {
    let (lower, upper) = correlation_bounds(c_xz, c_yz);
    if lower >= theta || upper <= -theta {
        CellDecision::Edge
    } else if lower >= -theta && upper <= theta {
        CellDecision::NonEdge
    } else {
        CellDecision::Unknown
    }
}

/// Outcome of [`infer_threshold_matrix`]: the thresholded network plus
/// counters describing how much work the bounds saved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferenceOutcome {
    /// The absolute-threshold network matrix.
    pub matrix: AdjacencyMatrix,
    /// Pairs whose correlation had to be computed (anchor rows plus cells the
    /// bounds could not decide).
    pub computed_pairs: usize,
    /// Pairs decided purely from the bounds.
    pub inferred_pairs: usize,
}

impl InferenceOutcome {
    /// Fraction of pairs decided without computing their correlation.
    pub fn inferred_fraction(&self) -> f64 {
        let total = self.computed_pairs + self.inferred_pairs;
        if total == 0 {
            0.0
        } else {
            self.inferred_pairs as f64 / total as f64
        }
    }
}

/// Algorithm 5: build the absolute-threshold network matrix over `n` series
/// using correlation-bound inference from `anchors`, calling `corr` only for
/// anchor rows and for cells the bounds cannot decide.
///
/// `corr(i, j)` must return the exact correlation of series `i` and `j`; in
/// TSUBASA it is backed by [`crate::exact::pair_correlation`], so even the
/// "compute the rest" step never rescans raw data.
pub fn infer_threshold_matrix<F>(
    n: usize,
    theta: f64,
    anchors: &[usize],
    mut corr: F,
) -> Result<InferenceOutcome>
where
    F: FnMut(usize, usize) -> f64,
{
    if !(0.0..=1.0).contains(&theta) {
        return Err(Error::InvalidThreshold(theta));
    }
    for &a in anchors {
        if a >= n {
            return Err(Error::UnknownSeries(a));
        }
    }

    // None = undecided, Some(bool) = decided.
    let mut decided: Vec<Option<bool>> = vec![None; n * n.saturating_sub(1) / 2];
    let mut computed = 0usize;
    let mut inferred = 0usize;
    let index = |i: usize, j: usize| crate::sketch::pair_index(i.min(j), i.max(j), n);

    for &anchor in anchors {
        // Stop early if everything is already decided (Algorithm 5 line 3).
        if decided.iter().all(|d| d.is_some()) {
            break;
        }
        // Compute the anchor row exactly; those cells are now decided too.
        let mut row = vec![0.0; n];
        for (j, cell) in row.iter_mut().enumerate() {
            if j == anchor {
                continue;
            }
            let c = corr(anchor, j);
            *cell = c;
            let idx = index(anchor, j);
            if decided[idx].is_none() {
                decided[idx] = Some(c.abs() >= theta);
                computed += 1;
            }
        }
        // Infer the remaining cells from this anchor.
        for j in 0..n {
            if j == anchor {
                continue;
            }
            for k in (j + 1)..n {
                if k == anchor {
                    continue;
                }
                let idx = index(j, k);
                if decided[idx].is_some() {
                    continue;
                }
                match decide_cell(row[j], row[k], theta) {
                    CellDecision::Edge => {
                        decided[idx] = Some(true);
                        inferred += 1;
                    }
                    CellDecision::NonEdge => {
                        decided[idx] = Some(false);
                        inferred += 1;
                    }
                    CellDecision::Unknown => {}
                }
            }
        }
    }

    // Compute-Rest: whatever the bounds could not decide.
    let mut matrix = AdjacencyMatrix::empty(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let idx = index(i, j);
            let edge = match decided[idx] {
                Some(e) => e,
                None => {
                    computed += 1;
                    corr(i, j).abs() >= theta
                }
            };
            matrix.set_edge(i, j, edge);
        }
    }

    Ok(InferenceOutcome {
        matrix,
        computed_pairs: computed,
        inferred_pairs: inferred,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CorrelationMatrix;
    use proptest::prelude::*;

    #[test]
    fn bounds_are_valid_and_contain_truth_for_consistent_triples() {
        // Build three series with known correlations by mixing two factors.
        let base: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let noise: Vec<f64> = (0..200)
            .map(|i| ((i * 37 + 11) % 101) as f64 / 50.0 - 1.0)
            .collect();
        let x: Vec<f64> = base.iter().zip(&noise).map(|(b, n)| b + 0.2 * n).collect();
        let y: Vec<f64> = base
            .iter()
            .zip(&noise)
            .map(|(b, n)| 0.8 * b - 0.3 * n)
            .collect();
        let z: Vec<f64> = base.clone();
        let c_xz = crate::stats::pearson(&x, &z);
        let c_yz = crate::stats::pearson(&y, &z);
        let c_xy = crate::stats::pearson(&x, &y);
        let (lo, hi) = correlation_bounds(c_xz, c_yz);
        assert!(
            lo <= c_xy + 1e-12 && c_xy <= hi + 1e-12,
            "{lo} <= {c_xy} <= {hi}"
        );
        assert!((-1.0..=1.0).contains(&lo) && (-1.0..=1.0).contains(&hi));
    }

    #[test]
    fn decide_cell_regions_match_figure4() {
        // Both anchor correlations very high → lower bound above θ → edge.
        assert_eq!(decide_cell(0.98, 0.97, 0.8), CellDecision::Edge);
        // One high positive, one high negative → strong negative corr → edge.
        assert_eq!(decide_cell(0.98, -0.97, 0.8), CellDecision::Edge);
        // One anchor correlation near 1 pins the interval tightly around the
        // other, which is small → interval inside (−θ, θ) → non-edge.
        assert_eq!(decide_cell(0.99, 0.1, 0.8), CellDecision::NonEdge);
        // Two weak anchor correlations say almost nothing → unknown.
        assert_eq!(decide_cell(0.1, 0.05, 0.9), CellDecision::Unknown);
        // Ambiguous region.
        assert_eq!(decide_cell(0.7, 0.6, 0.8), CellDecision::Unknown);
    }

    /// Helper: ground-truth matrix driving the `corr` closure.
    fn toy_matrix() -> CorrelationMatrix {
        // 4 series: 0 and 1 strongly correlated, 2 anti-correlated with 0,
        // 3 uncorrelated with everything.
        let mut m = CorrelationMatrix::identity(4);
        m.set(0, 1, 0.95);
        m.set(0, 2, -0.9);
        m.set(1, 2, -0.85);
        m.set(0, 3, 0.05);
        m.set(1, 3, 0.1);
        m.set(2, 3, -0.02);
        m
    }

    #[test]
    fn inference_reproduces_direct_thresholding() {
        let truth = toy_matrix();
        let theta = 0.8;
        let expected = truth.threshold_abs(theta).unwrap();
        let outcome =
            infer_threshold_matrix(4, theta, &[0, 1, 2, 3], |i, j| truth.get(i, j)).unwrap();
        assert_eq!(outcome.matrix, expected);
        assert_eq!(outcome.computed_pairs + outcome.inferred_pairs, 6);
    }

    #[test]
    fn inference_with_good_anchor_saves_work() {
        let truth = toy_matrix();
        let outcome = infer_threshold_matrix(4, 0.8, &[0], |i, j| truth.get(i, j)).unwrap();
        assert_eq!(outcome.matrix, truth.threshold_abs(0.8).unwrap());
        assert!(
            outcome.inferred_pairs > 0,
            "anchor 0 should decide some cells"
        );
        assert!(outcome.inferred_fraction() > 0.0);
    }

    #[test]
    fn inference_with_no_anchor_computes_everything() {
        let truth = toy_matrix();
        let outcome = infer_threshold_matrix(4, 0.8, &[], |i, j| truth.get(i, j)).unwrap();
        assert_eq!(outcome.matrix, truth.threshold_abs(0.8).unwrap());
        assert_eq!(outcome.computed_pairs, 6);
        assert_eq!(outcome.inferred_pairs, 0);
        assert_eq!(outcome.inferred_fraction(), 0.0);
    }

    #[test]
    fn inference_validates_inputs() {
        let truth = toy_matrix();
        assert!(infer_threshold_matrix(4, 1.5, &[0], |i, j| truth.get(i, j)).is_err());
        assert!(infer_threshold_matrix(4, 0.5, &[9], |i, j| truth.get(i, j)).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// The bound interval always contains the correlation of any
        /// consistent triple (constructed from a 3-factor model so the
        /// correlation matrix is positive semi-definite).
        #[test]
        fn prop_bounds_contain_consistent_correlation(
            a1 in -1.0f64..1.0, a2 in -1.0f64..1.0,
            b1 in -1.0f64..1.0, b2 in -1.0f64..1.0,
            seed in 0u64..100,
        ) {
            let len = 300usize;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
            };
            let f1: Vec<f64> = (0..len).map(|_| next()).collect();
            let f2: Vec<f64> = (0..len).map(|_| next()).collect();
            let z: Vec<f64> = f1.clone();
            let x: Vec<f64> = (0..len).map(|i| a1 * f1[i] + a2 * f2[i]).collect();
            let y: Vec<f64> = (0..len).map(|i| b1 * f1[i] + b2 * f2[i]).collect();
            let c_xz = crate::stats::pearson(&x, &z);
            let c_yz = crate::stats::pearson(&y, &z);
            let c_xy = crate::stats::pearson(&x, &y);
            let (lo, hi) = correlation_bounds(c_xz, c_yz);
            // Finite samples wobble; allow a small tolerance.
            prop_assert!(c_xy >= lo - 0.15 && c_xy <= hi + 0.15);
        }

        /// Whatever the anchors, inference agrees exactly with direct
        /// thresholding of the ground-truth matrix — provided the matrix is a
        /// *consistent* (positive semi-definite) correlation matrix, which is
        /// guaranteed here by deriving it from actual series sampled from a
        /// random 3-factor model.
        #[test]
        fn prop_inference_matches_direct(
            coeffs in proptest::collection::vec(-1.0f64..1.0, 15),
            theta in 0.1f64..0.95,
            anchor in 0usize..5,
            seed in 0u64..100,
        ) {
            let len = 120usize;
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0
            };
            let factors: Vec<Vec<f64>> = (0..3).map(|_| (0..len).map(|_| next()).collect()).collect();
            let series: Vec<Vec<f64>> = (0..5)
                .map(|s| {
                    (0..len)
                        .map(|t| {
                            (0..3).map(|f| coeffs[s * 3 + f] * factors[f][t]).sum::<f64>()
                        })
                        .collect()
                })
                .collect();
            // Degenerate all-zero series would make correlations trivially 0.
            let mut m = CorrelationMatrix::identity(5);
            for i in 0..5 {
                for j in (i + 1)..5 {
                    m.set(i, j, crate::stats::pearson(&series[i], &series[j]));
                }
            }
            let outcome = infer_threshold_matrix(5, theta, &[anchor], |i, j| m.get(i, j)).unwrap();
            prop_assert_eq!(outcome.matrix, m.threshold_abs(theta).unwrap());
        }
    }
}
