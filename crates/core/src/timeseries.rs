//! Geo-labeled, synchronized time-series and collections thereof.
//!
//! The paper's data model (§2.1): a collection `L = {x_1, ..., x_n}` of
//! synchronized series, one per geographical location. Every series has a
//! value at every tick of the shared time resolution; missing values are
//! interpolated and duplicate observations aggregated upstream (see
//! `tsubasa-data` for those transforms).

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Identifier of a series inside a [`SeriesCollection`] (its index).
pub type SeriesId = usize;

/// A geographical location attached to a series (grid cell centre or station
/// position). Latitude/longitude are in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoLocation {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoLocation {
    /// Create a new location.
    pub fn new(lat: f64, lon: f64) -> Self {
        Self { lat, lon }
    }

    /// Great-circle distance to `other` in kilometres (haversine formula,
    /// mean Earth radius 6371 km). Used by the synthetic data generators to
    /// impose distance-decaying correlation, and handy for network analysis.
    pub fn distance_km(&self, other: &GeoLocation) -> f64 {
        const R: f64 = 6371.0;
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R * a.sqrt().asin()
    }
}

impl Default for GeoLocation {
    fn default() -> Self {
        Self { lat: 0.0, lon: 0.0 }
    }
}

/// A single geo-labeled time-series: the observed values of one climatic
/// variable at one location, one value per time-resolution tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Human-readable name (station id, grid-cell label, ...).
    pub name: String,
    /// Geographical position of the sensor / grid cell.
    pub location: GeoLocation,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Create a series from raw values.
    pub fn new(name: impl Into<String>, location: GeoLocation, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            location,
            values,
        }
    }

    /// Create an anonymous series located at the origin. Mostly useful in
    /// tests and benchmarks.
    pub fn from_values(values: Vec<f64>) -> Self {
        Self::new("", GeoLocation::default(), values)
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series holds no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The observed values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the observed values (used by the streaming layer to
    /// append newly ingested points).
    pub fn values_mut(&mut self) -> &mut Vec<f64> {
        &mut self.values
    }

    /// The sub-sequence selected by a query window (start..=end, inclusive).
    ///
    /// Returns an error if the window does not fit in the series.
    pub fn slice(&self, window: crate::window::QueryWindow) -> Result<&[f64]> {
        let len = self.values.len();
        if window.end >= len || window.len == 0 || window.len > window.end + 1 {
            return Err(Error::InvalidQueryWindow {
                end: window.end,
                len: window.len,
                series_len: len,
            });
        }
        let start = window.start();
        Ok(&self.values[start..=window.end])
    }

    /// Append newly observed points (real-time ingestion).
    pub fn extend_from_slice(&mut self, new_points: &[f64]) {
        self.values.extend_from_slice(new_points);
    }
}

/// A synchronized collection of time-series — the paper's `L`.
///
/// Invariant: every series has the same length (the series are synchronized
/// to a shared time resolution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesCollection {
    series: Vec<TimeSeries>,
}

impl SeriesCollection {
    /// Build a collection from already-synchronized series.
    ///
    /// Fails if the collection is empty or the series lengths differ.
    pub fn new(series: Vec<TimeSeries>) -> Result<Self> {
        if series.is_empty() {
            return Err(Error::EmptyInput(
                "SeriesCollection::new received no series",
            ));
        }
        let expected = series[0].len();
        if expected == 0 {
            return Err(Error::EmptyInput(
                "series in a collection must be non-empty",
            ));
        }
        for (index, s) in series.iter().enumerate() {
            if s.len() != expected {
                return Err(Error::UnalignedSeries {
                    expected,
                    found: s.len(),
                    index,
                });
            }
        }
        Ok(Self { series })
    }

    /// Build an anonymous collection from plain rows of values. Convenient in
    /// examples, tests, and benchmarks.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        Self::new(rows.into_iter().map(TimeSeries::from_values).collect())
    }

    /// Number of series (`N` in the paper's complexity analysis).
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when the collection holds no series. Note [`SeriesCollection::new`]
    /// never produces an empty collection; this exists for completeness.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Length of each series (`L` in the paper's complexity analysis).
    pub fn series_len(&self) -> usize {
        self.series[0].len()
    }

    /// Borrow one series.
    pub fn get(&self, id: SeriesId) -> Result<&TimeSeries> {
        self.series.get(id).ok_or(Error::UnknownSeries(id))
    }

    /// Iterate over the series in id order.
    pub fn iter(&self) -> impl Iterator<Item = &TimeSeries> {
        self.series.iter()
    }

    /// Iterate over `(id, series)` pairs.
    pub fn iter_with_ids(&self) -> impl Iterator<Item = (SeriesId, &TimeSeries)> {
        self.series.iter().enumerate()
    }

    /// Iterate over the ids of all unordered pairs `(i, j)` with `i < j` —
    /// the upper triangle of the correlation matrix. Pearson correlation is
    /// symmetric so only these `N(N-1)/2` pairs are ever computed.
    pub fn pairs(&self) -> impl Iterator<Item = (SeriesId, SeriesId)> + '_ {
        let n = self.series.len();
        (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
    }

    /// Number of unordered pairs.
    pub fn pair_count(&self) -> usize {
        let n = self.series.len();
        n * (n - 1) / 2
    }

    /// Append one chunk of newly observed values to every series.
    ///
    /// `chunk[i]` is appended to series `i`; all chunks must have the same
    /// length to keep the collection synchronized.
    pub fn ingest_chunk(&mut self, chunk: &[Vec<f64>]) -> Result<()> {
        if chunk.len() != self.series.len() {
            return Err(Error::UnalignedSeries {
                expected: self.series.len(),
                found: chunk.len(),
                index: 0,
            });
        }
        let expected = chunk[0].len();
        for (index, points) in chunk.iter().enumerate() {
            if points.len() != expected {
                return Err(Error::UnalignedSeries {
                    expected,
                    found: points.len(),
                    index,
                });
            }
        }
        for (series, points) in self.series.iter_mut().zip(chunk) {
            series.extend_from_slice(points);
        }
        Ok(())
    }

    /// Restrict the collection to the first `n` series (used by the
    /// scalability experiments, which sweep the number of series).
    pub fn take_series(&self, n: usize) -> Result<Self> {
        if n == 0 || n > self.series.len() {
            return Err(Error::EmptyInput("take_series requires 1 <= n <= len"));
        }
        Ok(Self {
            series: self.series[..n].to_vec(),
        })
    }

    /// Restrict every series to its first `len` observations.
    pub fn truncate_length(&self, len: usize) -> Result<Self> {
        if len == 0 || len > self.series_len() {
            return Err(Error::EmptyInput(
                "truncate_length requires 1 <= len <= series_len",
            ));
        }
        let series = self
            .series
            .iter()
            .map(|s| TimeSeries::new(s.name.clone(), s.location, s.values()[..len].to_vec()))
            .collect();
        Self::new(series)
    }

    /// Consume the collection and return the underlying series.
    pub fn into_inner(self) -> Vec<TimeSeries> {
        self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::QueryWindow;

    fn sample() -> SeriesCollection {
        SeriesCollection::from_rows(vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![4.0, 3.0, 2.0, 1.0],
            vec![1.0, 1.0, 1.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn collection_enforces_alignment() {
        let err = SeriesCollection::from_rows(vec![vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert!(matches!(
            err,
            Error::UnalignedSeries {
                expected: 2,
                found: 1,
                index: 1
            }
        ));
    }

    #[test]
    fn collection_rejects_empty() {
        assert!(SeriesCollection::from_rows(vec![]).is_err());
        assert!(SeriesCollection::from_rows(vec![vec![]]).is_err());
    }

    #[test]
    fn pair_iteration_covers_upper_triangle() {
        let c = sample();
        let pairs: Vec<_> = c.pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(c.pair_count(), 3);
    }

    #[test]
    fn slice_respects_query_window() {
        let c = sample();
        let w = QueryWindow::new(3, 2).unwrap();
        assert_eq!(c.get(0).unwrap().slice(w).unwrap(), &[3.0, 4.0]);
    }

    #[test]
    fn slice_rejects_out_of_range() {
        let c = sample();
        let w = QueryWindow::new(10, 2).unwrap();
        assert!(c.get(0).unwrap().slice(w).is_err());
    }

    #[test]
    fn ingest_chunk_appends_to_every_series() {
        let mut c = sample();
        c.ingest_chunk(&[vec![5.0], vec![0.0], vec![1.0]]).unwrap();
        assert_eq!(c.series_len(), 5);
        assert_eq!(c.get(0).unwrap().values()[4], 5.0);
    }

    #[test]
    fn ingest_chunk_rejects_wrong_series_count() {
        let mut c = sample();
        assert!(c.ingest_chunk(&[vec![1.0]]).is_err());
    }

    #[test]
    fn ingest_chunk_rejects_ragged_chunk() {
        let mut c = sample();
        assert!(c
            .ingest_chunk(&[vec![1.0], vec![1.0, 2.0], vec![1.0]])
            .is_err());
    }

    #[test]
    fn take_and_truncate() {
        let c = sample();
        let t = c.take_series(2).unwrap();
        assert_eq!(t.len(), 2);
        let s = c.truncate_length(2).unwrap();
        assert_eq!(s.series_len(), 2);
        assert!(c.take_series(0).is_err());
        assert!(c.truncate_length(100).is_err());
    }

    #[test]
    fn haversine_distance_is_sane() {
        // Rochester NY to Philadelphia PA is roughly 400 km.
        let roc = GeoLocation::new(43.16, -77.61);
        let phl = GeoLocation::new(39.95, -75.17);
        let d = roc.distance_km(&phl);
        assert!((380.0..450.0).contains(&d), "distance was {d}");
        // Distance to self is zero and symmetric.
        assert!(roc.distance_km(&roc) < 1e-9);
        assert!((roc.distance_km(&phl) - phl.distance_km(&roc)).abs() < 1e-9);
    }
}
