//! High-level network construction drivers: the user-facing entry points that
//! stitch together sketching (Algorithm 1), exact recombination (Lemma 1 /
//! Algorithm 2), and the bootstrap of the real-time updater (Algorithm 3).

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::exact;
use crate::incremental::SlidingNetwork;
use crate::matrix::{AdjacencyMatrix, CorrelationMatrix};
use crate::sketch::SketchSet;
use crate::timeseries::SeriesCollection;
use crate::window::QueryWindow;

/// Configuration of a network-construction session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Basic window size `B` used for sketching.
    pub basic_window: usize,
    /// Default correlation threshold θ applied when building the boolean
    /// network matrix.
    pub threshold: f64,
}

impl NetworkConfig {
    /// Create a configuration, validating the threshold range.
    pub fn new(basic_window: usize, threshold: f64) -> Result<Self> {
        if !(-1.0..=1.0).contains(&threshold) {
            return Err(Error::InvalidThreshold(threshold));
        }
        Ok(Self {
            basic_window,
            threshold,
        })
    }
}

/// Historical-data network builder: owns the collection and its sketch and
/// answers arbitrary query-window requests (Algorithm 2) without rescanning
/// raw data for the interior of the window.
#[derive(Debug, Clone)]
pub struct HistoricalBuilder {
    collection: SeriesCollection,
    sketch: SketchSet,
    config: NetworkConfig,
}

impl HistoricalBuilder {
    /// Ingest a collection: sketches every basic window of every series and
    /// every pair (the paper's pre-processing / data-ingestion phase).
    pub fn new(collection: SeriesCollection, config: NetworkConfig) -> Result<Self> {
        let sketch = SketchSet::build(&collection, config.basic_window)?;
        Ok(Self {
            collection,
            sketch,
            config,
        })
    }

    /// Re-use an existing sketch (e.g. re-hydrated from `tsubasa-storage`).
    pub fn with_sketch(
        collection: SeriesCollection,
        sketch: SketchSet,
        config: NetworkConfig,
    ) -> Result<Self> {
        if sketch.basic_window() != config.basic_window || sketch.series_count() != collection.len()
        {
            return Err(Error::SketchMismatch {
                requested: format!("B={} over {} series", config.basic_window, collection.len()),
                available: format!(
                    "B={} over {} series",
                    sketch.basic_window(),
                    sketch.series_count()
                ),
            });
        }
        Ok(Self {
            collection,
            sketch,
            config,
        })
    }

    /// The underlying collection.
    pub fn collection(&self) -> &SeriesCollection {
        &self.collection
    }

    /// The pre-computed sketch.
    pub fn sketch(&self) -> &SketchSet {
        &self.sketch
    }

    /// The session configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Exact correlation matrix on an arbitrary query window.
    pub fn correlation_matrix(&self, query: QueryWindow) -> Result<CorrelationMatrix> {
        exact::correlation_matrix(&self.collection, &self.sketch, query)
    }

    /// Climate network on `query` at the configured threshold
    /// (Algorithm 2 end-to-end).
    pub fn network(&self, query: QueryWindow) -> Result<AdjacencyMatrix> {
        self.network_with_threshold(query, self.config.threshold)
    }

    /// Climate network on `query` at a caller-supplied threshold — the paper
    /// stresses that keeping the full correlation matrix lets users re-apply
    /// arbitrary thresholds at query time without recomputation.
    pub fn network_with_threshold(
        &self,
        query: QueryWindow,
        theta: f64,
    ) -> Result<AdjacencyMatrix> {
        if !(-1.0..=1.0).contains(&theta) {
            return Err(Error::InvalidThreshold(theta));
        }
        self.correlation_matrix(query)?.threshold(theta)
    }

    /// Bootstrap the real-time incremental engine on the most recent
    /// `query_len` points (Algorithm 3 line 2: construct the initial network,
    /// then hand over to chunked ingestion).
    pub fn into_sliding(&self, query_len: usize) -> Result<SlidingNetwork> {
        SlidingNetwork::initialize(&self.collection, &self.sketch, query_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;

    fn wave(seed: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                ((i + seed * 11) as f64 * 0.13).sin() + 0.01 * ((seed * 31 + i * 7) % 13) as f64
            })
            .collect()
    }

    fn builder() -> HistoricalBuilder {
        let c = SeriesCollection::from_rows((0..5).map(|s| wave(s, 160)).collect()).unwrap();
        HistoricalBuilder::new(c, NetworkConfig::new(20, 0.75).unwrap()).unwrap()
    }

    #[test]
    fn config_validates_threshold() {
        assert!(NetworkConfig::new(10, 2.0).is_err());
        assert!(NetworkConfig::new(10, -0.5).is_ok());
    }

    #[test]
    fn builder_matches_baseline() {
        let b = builder();
        let query = QueryWindow::new(159, 100).unwrap();
        let m = b.correlation_matrix(query).unwrap();
        let direct = baseline::correlation_matrix(b.collection(), query).unwrap();
        assert!(m.max_abs_diff(&direct) < 1e-9);
    }

    #[test]
    fn network_uses_configured_threshold() {
        let b = builder();
        let query = QueryWindow::new(159, 120).unwrap();
        let net = b.network(query).unwrap();
        let expected = b
            .correlation_matrix(query)
            .unwrap()
            .threshold(0.75)
            .unwrap();
        assert_eq!(net, expected);
    }

    #[test]
    fn network_with_custom_threshold_and_validation() {
        let b = builder();
        let query = QueryWindow::new(159, 120).unwrap();
        assert!(b.network_with_threshold(query, 1.5).is_err());
        let loose = b.network_with_threshold(query, 0.1).unwrap();
        let tight = b.network_with_threshold(query, 0.99).unwrap();
        assert!(loose.edge_count() >= tight.edge_count());
    }

    #[test]
    fn with_sketch_rejects_mismatch() {
        let b = builder();
        let other_cfg = NetworkConfig::new(10, 0.5).unwrap();
        let err =
            HistoricalBuilder::with_sketch(b.collection().clone(), b.sketch().clone(), other_cfg)
                .unwrap_err();
        assert!(matches!(err, Error::SketchMismatch { .. }));
        // Matching config round-trips fine.
        assert!(HistoricalBuilder::with_sketch(
            b.collection().clone(),
            b.sketch().clone(),
            b.config(),
        )
        .is_ok());
    }

    #[test]
    fn into_sliding_bootstraps_realtime_engine() {
        let b = builder();
        let sliding = b.into_sliding(100).unwrap();
        assert_eq!(sliding.series_count(), 5);
        assert_eq!(sliding.window_count(), 5);
        assert!(b.into_sliding(55).is_err());
    }
}
