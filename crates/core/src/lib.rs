//! # tsubasa-core
//!
//! Core library of the TSUBASA reproduction (SIGMOD 2022): exact pairwise
//! Pearson correlation of large collections of synchronized time-series using
//! the *basic window* model, plus the machinery needed to turn correlation
//! matrices into climate networks.
//!
//! The central ideas implemented here:
//!
//! * **Sketching (Algorithm 1)** — one pass over the data computes, for every
//!   basic window, the mean and standard deviation of every series and the
//!   Pearson correlation of every pair of series. See [`sketch`].
//! * **Exact recombination (Lemma 1)** — the Pearson correlation of an
//!   arbitrary query window is recovered *exactly* from those per-window
//!   statistics, including query windows whose boundaries fall inside a basic
//!   window. See [`exact`].
//! * **Query planning** — all-pairs queries precompute the per-series half of
//!   the Lemma 1 recombination once per query window into a flat
//!   [`plan::QueryPlan`] table, then evaluate every pair with an
//!   allocation-free kernel (optionally across threads with
//!   [`exact::correlation_matrix_parallel`]). See [`plan`].
//! * **Incremental update (Lemma 2)** — for real-time sliding windows the
//!   correlation after a new basic window arrives is derived from the previous
//!   value plus the statistics of the evicted and arriving windows only.
//!   See [`incremental`].
//! * **Network construction (Algorithms 2 & 3)** — thresholding the
//!   correlation matrix yields the climate network adjacency matrix.
//!   See [`matrix`] and [`construct`].
//! * **Threshold-matrix inference (Algorithm 5)** — correlation bounds from a
//!   shared anchor series decide many cells of the thresholded matrix without
//!   computing them. See [`inference`].
//!
//! The DFT-based approximate comparator lives in the companion crate
//! `tsubasa-dft`; disk-backed sketch storage in `tsubasa-storage`; the
//! parallel engine in `tsubasa-parallel`; streaming ingestion in
//! `tsubasa-stream`.
//!
//! ## Quick example
//!
//! ```
//! use tsubasa_core::prelude::*;
//!
//! // Three tiny synchronized series.
//! let collection = SeriesCollection::from_rows(vec![
//!     vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
//!     vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0],
//!     vec![8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
//! ])
//! .unwrap();
//!
//! // Sketch with basic windows of 4 points.
//! let sketch = SketchSet::build(&collection, 4).unwrap();
//!
//! // Exact correlation matrix on the full range, then threshold at 0.9.
//! let window = QueryWindow::new(7, 8).unwrap();
//! let matrix = exact::correlation_matrix(&collection, &sketch, window).unwrap();
//! let network = matrix.threshold(0.9).unwrap();
//!
//! assert_eq!(network.edge_count(), 1); // series 0 and 1 move together
//! assert!(matrix.get(0, 2) < -0.99);   // series 2 is anti-correlated
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod baseline;
pub mod capacity;
pub mod construct;
pub mod delta;
pub mod error;
pub mod exact;
pub mod incremental;
pub mod inference;
pub mod matrix;
pub mod plan;
pub mod runner;
pub mod sketch;
pub mod source;
pub mod stats;
pub mod sweep;
pub mod timeseries;
pub mod window;

pub use delta::{EdgeDelta, EdgeWatch};
pub use error::{Error, Result};
pub use matrix::{AdjacencyMatrix, CorrelationMatrix};
pub use plan::{PlanKey, PlanMethod, QueryPlan};
pub use runner::{Job, JobRunner, ScopedRunner, SerialRunner};
pub use sketch::{PairSketch, SeriesSketch, SketchSet};
pub use source::{audit_nan_chunk, check_source_windows, CorrSource, EstSource, PairTable};
pub use stats::WindowStats;
pub use sweep::{EdgeList, EdgeSink, RankedEdge, StatsSink, TileSink, TopK, TopKSink, ZnormSweep};
pub use timeseries::{GeoLocation, SeriesCollection, SeriesId, TimeSeries};
pub use window::{BasicWindowing, QueryWindow, WindowSegmentation, WindowSpan};

/// Convenient glob import for downstream users:
/// `use tsubasa_core::prelude::*;`.
pub mod prelude {
    pub use crate::baseline;
    pub use crate::capacity::{min_basic_window_for_budget, recommend_basic_window, SketchPlan};
    pub use crate::construct::{HistoricalBuilder, NetworkConfig};
    pub use crate::delta::{EdgeDelta, EdgeWatch};
    pub use crate::error::{Error, Result};
    pub use crate::exact;
    pub use crate::incremental::{SlidingNetwork, SlidingPair};
    pub use crate::inference;
    pub use crate::matrix::{AdjacencyMatrix, CorrelationMatrix};
    pub use crate::plan::{PlanKey, PlanMethod, QueryPlan};
    pub use crate::sketch::{PairSketch, SeriesSketch, SketchSet};
    pub use crate::source::{audit_nan_chunk, CorrSource, EstSource, PairTable};
    pub use crate::stats::{pearson, WindowStats};
    pub use crate::sweep::{
        EdgeList, EdgeSink, RankedEdge, StatsSink, TileSink, TopK, TopKSink, ZnormSweep,
    };
    pub use crate::timeseries::{GeoLocation, SeriesCollection, SeriesId, TimeSeries};
    pub use crate::window::{BasicWindowing, QueryWindow, WindowSegmentation, WindowSpan};
}
