//! Incremental correlation maintenance for real-time data (paper Lemma 2 and
//! Algorithm 3).
//!
//! A real-time query window `w = ("now", m)` always covers the `m` most
//! recent points. Data arrives in chunks of one basic window (`B` points per
//! series); when a chunk completes, the window slides forward by `B`: the
//! oldest basic window falls out and the new one enters. Lemma 2 derives the
//! new correlation from
//!
//! * the previous correlation, previous window standard deviations and means,
//! * the statistics of the *evicted* first basic window, and
//! * the statistics of the *arriving* basic window,
//!
//! without touching any other data. [`lemma2_update`] is the pure formula;
//! [`SlidingPair`] maintains one pair and [`SlidingNetwork`] maintains the
//! complete correlation matrix / climate network.
//!
//! One deliberate deviation from the paper's notation: the mean-shift term
//! `α` is divided by the *new* total length `T' = T − B_1 + B_{ns+1}` rather
//! than `T`. The two coincide for the equal-size basic windows used in every
//! experiment; the `T'` form stays exact when the evicted and arriving
//! windows have different lengths.

use std::collections::VecDeque;

use crate::delta::{DeltaBoundTables, EdgeDelta, EdgeWatch, SlideSweepInputs};
use crate::error::{Error, Result};
use crate::exact::{self, WindowContribution};
use crate::matrix::{AdjacencyMatrix, CorrelationMatrix};
use crate::plan::QueryPlan;
use crate::runner::{JobRunner, SerialRunner};
use crate::sketch::SketchSet;
use crate::stats::{clamp_corr, normalize_into, tiled_pair_corrs_into, WindowStats};
use crate::timeseries::SeriesCollection;

/// Summary of one series over the current sliding query window, maintained
/// incrementally from per-basic-window statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingSeriesState {
    windows: VecDeque<WindowStats>,
    /// Σ_j B_j · mean_j  (= sum of all raw values in the window).
    sum: f64,
    /// Σ_j B_j · (σ_j² + mean_j²)  (= sum of squared raw values).
    sum_sq: f64,
    /// Σ_j B_j  (= number of raw values, `T`).
    total: usize,
}

impl SlidingSeriesState {
    /// Build the state from the per-window statistics of the initial query
    /// window (oldest first).
    pub fn new(windows: Vec<WindowStats>) -> Self {
        let mut state = Self {
            windows: VecDeque::new(),
            sum: 0.0,
            sum_sq: 0.0,
            total: 0,
        };
        for w in windows {
            state.push_back(w);
        }
        state
    }

    fn push_back(&mut self, stats: WindowStats) {
        self.sum += stats.sum();
        self.sum_sq += stats.sum_of_squares();
        self.total += stats.len;
        self.windows.push_back(stats);
    }

    fn pop_front(&mut self) -> Option<WindowStats> {
        let evicted = self.windows.pop_front()?;
        self.sum -= evicted.sum();
        self.sum_sq -= evicted.sum_of_squares();
        self.total -= evicted.len;
        Some(evicted)
    }

    /// Slide the window: evict the oldest basic window, append the new one.
    /// Returns the evicted statistics.
    pub fn slide(&mut self, arriving: WindowStats) -> Option<WindowStats> {
        let evicted = self.pop_front();
        self.push_back(arriving);
        evicted
    }

    /// Number of raw points currently covered (`T`).
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// Mean of the current query window.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Population variance of the current query window.
    pub fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        (self.sum_sq / self.total as f64 - mean * mean).max(0.0)
    }

    /// Population standard deviation of the current query window.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Statistics of the oldest basic window still inside the query window.
    pub fn front(&self) -> Option<WindowStats> {
        self.windows.front().copied()
    }

    /// Number of basic windows currently covered (`ns`).
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Statistics of every basic window currently inside the query window,
    /// oldest first. Snapshot paths ([`SlidingNetwork::snapshot_sketch`])
    /// use this to rebuild a [`SeriesSketch`](crate::sketch::SeriesSketch)
    /// from the live sliding state.
    pub fn window_stats(&self) -> impl Iterator<Item = WindowStats> + '_ {
        self.windows.iter().copied()
    }
}

/// The pure Lemma 2 update: correlation of the slid window from the previous
/// correlation plus the evicted and arriving basic-window statistics.
///
/// * `total_len` — `T`, the raw length of the previous query window.
/// * `mean_x`, `mean_y`, `std_x`, `std_y` — statistics of the previous query
///   window (means are needed to express the δ terms; Lemma 1 lets the caller
///   maintain them incrementally so they are never recomputed from raw data).
/// * `corr_t` — the previous correlation.
/// * `evicted`, `arriving` — statistics of the basic window leaving/entering
///   the query window and their per-pair correlations `c_1`, `c_{ns+1}`.
#[allow(clippy::too_many_arguments)]
pub fn lemma2_update(
    total_len: f64,
    mean_x: f64,
    mean_y: f64,
    std_x: f64,
    std_y: f64,
    corr_t: f64,
    evicted: &WindowContribution,
    arriving: &WindowContribution,
) -> f64 {
    let b1 = evicted.x.len as f64;
    let bn = arriving.x.len as f64;
    let new_total = total_len - b1 + bn;
    if new_total <= 0.0 {
        return 0.0;
    }

    // δ terms are offsets from the *old* query-window mean, per Lemma 2.
    let dx1 = evicted.x.mean - mean_x;
    let dy1 = evicted.y.mean - mean_y;
    let dxn = arriving.x.mean - mean_x;
    let dyn_ = arriving.y.mean - mean_y;

    // Shift of the query-window mean caused by the slide.
    let alpha_x = (bn * dxn - b1 * dx1) / new_total;
    let alpha_y = (bn * dyn_ - b1 * dy1) / new_total;

    let numerator = total_len * std_x * std_y * corr_t
        + bn * (arriving.x.std * arriving.y.std * arriving.corr + dxn * dyn_)
        - b1 * (evicted.x.std * evicted.y.std * evicted.corr + dx1 * dy1)
        - new_total * alpha_x * alpha_y;

    let var_x_term = total_len * std_x * std_x + bn * (arriving.x.std.powi(2) + dxn * dxn)
        - b1 * (evicted.x.std.powi(2) + dx1 * dx1)
        - new_total * alpha_x * alpha_x;
    let var_y_term = total_len * std_y * std_y + bn * (arriving.y.std.powi(2) + dyn_ * dyn_)
        - b1 * (evicted.y.std.powi(2) + dy1 * dy1)
        - new_total * alpha_y * alpha_y;

    // NaN anywhere in the inputs (NaN observations poison the arriving
    // window's statistics, and from there every aggregate) must stay NaN so
    // the lenient thresholding sinks can audit the pair. The old behaviour
    // let `clamp_corr` silently map NaN to 0.0 — a plausible-looking
    // correlation fabricated from undefined data.
    if numerator.is_nan() || var_x_term.is_nan() || var_y_term.is_nan() {
        return f64::NAN;
    }
    if var_x_term <= 0.0 || var_y_term <= 0.0 {
        return 0.0;
    }
    clamp_corr(numerator / (var_x_term.sqrt() * var_y_term.sqrt()))
}

/// Incrementally maintained correlation of a single pair of streams over a
/// sliding query window. Useful on its own for monitoring one link; the
/// all-pair engine is [`SlidingNetwork`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlidingPair {
    x: SlidingSeriesState,
    y: SlidingSeriesState,
    pair_corrs: VecDeque<f64>,
    corr: f64,
}

impl SlidingPair {
    /// Initialize from the raw values of the initial query window, cut into
    /// basic windows of `basic_window` points. The window length must be a
    /// positive multiple of `basic_window` (the real-time model of §3.1.2).
    pub fn new(x: &[f64], y: &[f64], basic_window: usize) -> Result<Self> {
        if basic_window == 0 || x.len() < basic_window {
            return Err(Error::InvalidBasicWindow {
                window: basic_window,
                series_len: x.len(),
            });
        }
        if x.len() != y.len() || !x.len().is_multiple_of(basic_window) {
            return Err(Error::ChunkSizeMismatch {
                expected: basic_window,
                found: x.len(),
            });
        }
        let ns = x.len() / basic_window;
        let mut xw = Vec::with_capacity(ns);
        let mut yw = Vec::with_capacity(ns);
        let mut corrs = VecDeque::with_capacity(ns);
        let mut parts = Vec::with_capacity(ns);
        for j in 0..ns {
            let range = j * basic_window..(j + 1) * basic_window;
            let part = WindowContribution::from_raw(&x[range.clone()], &y[range]);
            xw.push(part.x);
            yw.push(part.y);
            corrs.push_back(part.corr);
            parts.push(part);
        }
        // Keep the pearson convention: a constant window starts at 0.0
        // (only `DegenerateWindow` is mapped; other errors would propagate).
        let corr = exact::degenerate_to_zero(exact::combine(&parts))?;
        Ok(Self {
            x: SlidingSeriesState::new(xw),
            y: SlidingSeriesState::new(yw),
            pair_corrs: corrs,
            corr,
        })
    }

    /// Current correlation over the sliding window.
    pub fn correlation(&self) -> f64 {
        self.corr
    }

    /// Slide the window by one basic window given the newly arrived chunk of
    /// raw points (`chunk_x.len() == chunk_y.len() == B`).
    pub fn ingest(&mut self, chunk_x: &[f64], chunk_y: &[f64]) -> Result<f64> {
        let expected = self.x.front().map(|w| w.len).unwrap_or(0);
        if chunk_x.len() != expected || chunk_y.len() != expected {
            return Err(Error::ChunkSizeMismatch {
                expected,
                found: chunk_x.len(),
            });
        }
        let arriving = WindowContribution::from_raw(chunk_x, chunk_y);
        let (sx, sy, c_new) = (arriving.x, arriving.y, arriving.corr);
        let evicted = WindowContribution {
            x: self.x.front().expect("non-empty window"),
            y: self.y.front().expect("non-empty window"),
            corr: *self.pair_corrs.front().expect("non-empty window"),
        };
        self.corr = lemma2_update(
            self.x.total_len() as f64,
            self.x.mean(),
            self.y.mean(),
            self.x.std(),
            self.y.std(),
            self.corr,
            &evicted,
            &arriving,
        );
        self.x.slide(sx);
        self.y.slide(sy);
        self.pair_corrs.pop_front();
        self.pair_corrs.push_back(c_new);
        Ok(self.corr)
    }
}

/// Incrementally maintained all-pair correlation matrix and climate network
/// over a sliding real-time query window (Algorithm 3's update step).
///
/// Initialization reuses the flat [`QueryPlan`] kernel over the historical
/// sketch; every [`SlidingNetwork::ingest`] then applies Lemma 2 to all
/// pairs from a flat snapshot of the per-series sliding state.
///
/// ```
/// use tsubasa_core::prelude::*;
///
/// let historical = SeriesCollection::from_rows(vec![
///     vec![1.0, 2.0, 3.0, 4.0, 5.0, 7.0],
///     vec![6.0, 5.0, 4.0, 3.0, 2.0, 0.0],
/// ])
/// .unwrap();
/// let sketch = SketchSet::build(&historical, 2).unwrap();
/// // Query window: the 4 most recent points (2 basic windows of 2).
/// let mut net = SlidingNetwork::initialize(&historical, &sketch, 4).unwrap();
/// assert!(net.correlation(0, 1) < -0.99); // anti-correlated
///
/// // One basic window of new observations per series slides the window.
/// net.ingest(&[vec![8.0, 9.0], vec![-1.0, -2.0]]).unwrap();
/// assert_eq!(net.window_count(), 2);
/// assert!(net.correlation(0, 1) < -0.99);
/// ```
#[derive(Debug, Clone)]
pub struct SlidingNetwork {
    basic_window: usize,
    n: usize,
    series: Vec<SlidingSeriesState>,
    /// Per basic window inside the query window: packed per-pair
    /// correlations, oldest window first.
    pair_windows: VecDeque<Vec<f64>>,
    /// Current packed per-pair correlations over the sliding window.
    corrs: Vec<f64>,
    /// Active edge subscription ([`SlidingNetwork::subscribe_edges`]): when
    /// set, every ingest also maintains the θ-thresholded edge set and emits
    /// an [`EdgeDelta`].
    watch: Option<EdgeWatch>,
}

impl SlidingNetwork {
    /// Build the initial state from historical data: the query window covers
    /// the most recent `query_len` points of `collection` (which must be a
    /// positive multiple of the sketch's basic window and fit inside the
    /// sketched range).
    pub fn initialize(
        collection: &SeriesCollection,
        sketch: &SketchSet,
        query_len: usize,
    ) -> Result<Self> {
        let b = sketch.basic_window();
        if query_len == 0 || !query_len.is_multiple_of(b) {
            return Err(Error::InvalidQueryWindow {
                end: collection.series_len().saturating_sub(1),
                len: query_len,
                series_len: collection.series_len(),
            });
        }
        let ns = query_len / b;
        let available = sketch.window_count();
        if ns > available {
            return Err(Error::SketchMismatch {
                requested: format!("{ns} basic windows"),
                available: format!("{available} sketched windows"),
            });
        }
        let first_window = available - ns;
        let n = collection.len();

        let series: Vec<SlidingSeriesState> = (0..n)
            .map(|i| {
                let sk = sketch.series_sketch(i)?;
                Ok(SlidingSeriesState::new(
                    (first_window..available).map(|w| sk.window(w)).collect(),
                ))
            })
            .collect::<Result<_>>()?;

        let mut pair_windows = VecDeque::with_capacity(ns);
        for w in first_window..available {
            let mut per_pair = Vec::with_capacity(n * (n - 1) / 2);
            for (i, j) in collection.pairs() {
                per_pair.push(sketch.pair_sketch(i, j)?.corrs[w]);
            }
            pair_windows.push_back(per_pair);
        }

        // One shared QueryPlan replaces the per-pair contribution vectors of
        // the old initialization: the per-series half of Lemma 1 is computed
        // once and the per-pair kernel is allocation-free (bit-identical to
        // `exact::pair_correlation_aligned`).
        let plan = QueryPlan::build_aligned(sketch, first_window..available)?;
        let mut corrs = Vec::with_capacity(n * (n - 1) / 2);
        for (i, j) in collection.pairs() {
            corrs.push(plan.pair_correlation_aligned(sketch, i, j)?);
        }

        Ok(Self {
            basic_window: b,
            n,
            series,
            pair_windows,
            corrs,
            watch: None,
        })
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.n
    }

    /// The basic-window (chunk) size expected by [`SlidingNetwork::ingest`].
    pub fn basic_window(&self) -> usize {
        self.basic_window
    }

    /// Number of basic windows in the sliding query window.
    pub fn window_count(&self) -> usize {
        self.pair_windows.len()
    }

    /// Slide the network forward by one basic window. `chunk[i]` holds the
    /// `B` newly observed points of series `i`. This is the
    /// `UpdateNetwork` step of Algorithm 3 (Lemma 2 applied to every pair),
    /// run inline on the calling thread; [`SlidingNetwork::ingest_in`] is the
    /// same update fanned out over a [`JobRunner`].
    pub fn ingest(&mut self, chunk: &[Vec<f64>]) -> Result<()> {
        self.ingest_in(&SerialRunner, chunk)
    }

    /// [`SlidingNetwork::ingest`] with the per-pair Lemma 2 sweep split into
    /// disjoint contiguous slices of the packed correlation triangle, one per
    /// worker of `runner`. Hand the same reusable pool
    /// (`tsubasa_parallel::WorkerPool`) to every call so repeated slides stop
    /// paying thread startup. The result is identical to the serial
    /// [`SlidingNetwork::ingest`] for any worker count (each pair's update
    /// reads only shared snapshots and its own slot).
    pub fn ingest_in(&mut self, runner: &dyn JobRunner, chunk: &[Vec<f64>]) -> Result<()> {
        if chunk.len() != self.n {
            return Err(Error::UnalignedSeries {
                expected: self.n,
                found: chunk.len(),
                index: 0,
            });
        }
        for points in chunk {
            if points.len() != self.basic_window {
                return Err(Error::ChunkSizeMismatch {
                    expected: self.basic_window,
                    found: points.len(),
                });
            }
        }
        let n = self.n;
        let b = self.basic_window;

        // Sketch the arriving basic window: per-series statistics...
        let arriving_stats: Vec<WindowStats> = chunk
            .iter()
            .map(|points| WindowStats::from_values(points))
            .collect();
        // ...and per-pair correlations through the tiled batch kernel: the
        // chunk is z-normalized once (structure-of-arrays, one contiguous row
        // per series) and every pair collapses to a dot product.
        let mut z = vec![0.0f64; n * b];
        for (i, points) in chunk.iter().enumerate() {
            normalize_into(points, &arriving_stats[i], &mut z[i * b..(i + 1) * b]);
        }
        let mut arriving_corrs = vec![0.0f64; self.corrs.len()];
        tiled_pair_corrs_into(&z, n, b, &mut arriving_corrs);
        drop(z);

        // Snapshot the per-series sliding state into flat arrays once — the
        // same precompute-then-sweep shape as the QueryPlan kernel — instead
        // of re-reading deque fronts and aggregates `n − 1` times per series
        // inside the pair loop.
        let fronts: Vec<WindowStats> = self
            .series
            .iter()
            .map(|s| s.front().expect("non-empty"))
            .collect();
        let totals: Vec<f64> = self.series.iter().map(|s| s.total_len() as f64).collect();
        let means: Vec<f64> = self.series.iter().map(|s| s.mean()).collect();
        let stds: Vec<f64> = self.series.iter().map(|s| s.std()).collect();

        // Apply Lemma 2 to every pair before mutating any per-series state,
        // one disjoint contiguous slice of the packed triangle per worker.
        // The evicted window's correlations are moved out up front so the
        // sweep can borrow `self.corrs` mutably alongside them. With an
        // active subscription the same sweep also maintains the θ edge set
        // through the per-series change bound (see [`crate::delta`]).
        let evicted_corrs = self.pair_windows.pop_front().expect("non-empty window");
        let tables = self.watch.as_ref().map(|_| {
            DeltaBoundTables::build(
                &self.series,
                &fronts,
                &totals,
                &means,
                &stds,
                &arriving_stats,
            )
        });
        let inputs = SlideSweepInputs {
            n,
            evicted_corrs: &evicted_corrs,
            arriving_corrs: &arriving_corrs,
            fronts: &fronts,
            totals: &totals,
            means: &means,
            stds: &stds,
            arriving_stats: &arriving_stats,
        };
        crate::delta::slide_pair_sweep(
            runner,
            &inputs,
            &mut self.corrs,
            self.watch.as_mut().zip(tables.as_ref()),
        );

        // Now slide the per-series and per-window state (the evicted pair
        // correlations were already popped above).
        for (state, stats) in self.series.iter_mut().zip(&arriving_stats) {
            state.slide(*stats);
        }
        self.pair_windows.push_back(arriving_corrs);
        Ok(())
    }

    /// Current correlation of one pair.
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.corrs[crate::sketch::pair_index(a, b, self.n)]
    }

    /// Snapshot of the current correlation matrix.
    pub fn correlation_matrix(&self) -> CorrelationMatrix {
        CorrelationMatrix::from_upper_triangle(self.n, self.corrs.clone())
    }

    /// Snapshot of the current climate network at threshold `theta`. The
    /// lenient thresholding keeps this path infallible: NaN correlations
    /// (possible once NaN observations are ingested — the sliding
    /// recombination deliberately keeps them NaN instead of fabricating a
    /// value) are counted on the returned matrix's
    /// [`nan_pair_count`](AdjacencyMatrix::nan_pair_count), never silently
    /// dropped.
    pub fn network(&self, theta: f64) -> AdjacencyMatrix {
        self.correlation_matrix().threshold_lenient(theta)
    }

    /// Subscribe to edge-level changes of the θ-thresholded network: returns
    /// the baseline snapshot (identical to [`SlidingNetwork::network`] at
    /// `theta`, NaN audit included), and from the next
    /// [`SlidingNetwork::ingest`] on, [`SlidingNetwork::changed_edges`]
    /// carries the [`EdgeDelta`] of the latest tick. Only pairs whose
    /// per-pair change bound straddles θ are re-checked against their
    /// computed correlation (see [`crate::delta`]); applying each delta to
    /// the previous snapshot reproduces a full re-threshold bit-for-bit.
    /// Re-subscribing replaces any previous subscription.
    pub fn subscribe_edges(&mut self, theta: f64) -> Result<AdjacencyMatrix> {
        let (watch, baseline) = EdgeWatch::new(theta, self.n, &self.corrs)?;
        self.watch = Some(watch);
        Ok(baseline)
    }

    /// The [`EdgeDelta`] emitted by the most recent ingest tick, or `None`
    /// when there is no active subscription or no tick has happened since
    /// subscribing.
    pub fn changed_edges(&self) -> Option<&EdgeDelta> {
        self.watch.as_ref().and_then(|w| w.last())
    }

    /// Drop the active edge subscription, if any, so subsequent ingests stop
    /// paying the (small) per-pair certification cost.
    pub fn unsubscribe_edges(&mut self) {
        self.watch = None;
    }

    /// Freeze the sliding state into an immutable [`SketchSet`] covering
    /// exactly the basic windows currently inside the query window (oldest
    /// first, re-indexed from 0). The snapshot shares no storage with the
    /// live network, so an epoch-publication layer can hand it out behind an
    /// `Arc` while ingestion keeps sliding. Queries planned against the
    /// snapshot are bit-identical to planning against the original sketch
    /// over the same windows: per-window statistics and correlations are
    /// copied, never recomputed.
    pub fn snapshot_sketch(&self) -> Result<SketchSet> {
        let ns = self.pair_windows.len();
        let n_pairs = self.corrs.len();
        let series: Vec<crate::sketch::SeriesSketch> = self
            .series
            .iter()
            .enumerate()
            .map(|(id, state)| crate::sketch::SeriesSketch {
                series: id,
                windows: state.window_stats().collect(),
            })
            .collect();
        // `pair_windows` is already window-major (one packed row per basic
        // window, oldest first); flatten it and gather into the pair-major
        // vectors `SketchSet::from_parts` expects.
        let mut flat = Vec::with_capacity(ns * n_pairs);
        for row in &self.pair_windows {
            flat.extend_from_slice(row);
        }
        let per_pair = crate::sketch::gather_pair_rows(&flat, n_pairs, ns);
        let pairs: Vec<crate::sketch::PairSketch> = per_pair
            .into_iter()
            .enumerate()
            .map(|(p, corrs)| {
                let (a, b) = crate::sketch::unpack_pair_index(p, self.n);
                crate::sketch::PairSketch { a, b, corrs }
            })
            .collect();
        SketchSet::from_parts(self.basic_window, self.n, series, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::window::QueryWindow;
    use proptest::prelude::*;

    fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
                (i as f64 * 0.07).cos() * 1.5 + 0.5 * noise
            })
            .collect()
    }

    #[test]
    fn sliding_series_state_tracks_mean_and_std() {
        let data = lcg_series(5, 60);
        let windows: Vec<WindowStats> = (0..3)
            .map(|j| WindowStats::from_values(&data[j * 20..(j + 1) * 20]))
            .collect();
        let state = SlidingSeriesState::new(windows);
        let direct = WindowStats::from_values(&data[0..60]);
        assert_eq!(state.total_len(), 60);
        assert!((state.mean() - direct.mean).abs() < 1e-10);
        assert!((state.std() - direct.std).abs() < 1e-10);
    }

    #[test]
    fn sliding_series_state_slide_updates_aggregates() {
        let data = lcg_series(6, 80);
        let mut state = SlidingSeriesState::new(
            (0..3)
                .map(|j| WindowStats::from_values(&data[j * 20..(j + 1) * 20]))
                .collect(),
        );
        let arriving = WindowStats::from_values(&data[60..80]);
        let evicted = state.slide(arriving).unwrap();
        assert_eq!(evicted.len, 20);
        let direct = WindowStats::from_values(&data[20..80]);
        assert!((state.mean() - direct.mean).abs() < 1e-10);
        assert!((state.std() - direct.std).abs() < 1e-10);
        assert_eq!(state.window_count(), 3);
    }

    #[test]
    fn lemma2_matches_from_scratch_single_pair() {
        let b = 10;
        let x = lcg_series(1, 100);
        let y = lcg_series(2, 100);
        // Initial window covers indices 0..60; slide twice to 20..80.
        let mut pair = SlidingPair::new(&x[0..60], &y[0..60], b).unwrap();
        for step in 0..2 {
            let lo = 60 + step * b;
            pair.ingest(&x[lo..lo + b], &y[lo..lo + b]).unwrap();
            let window_start = (step + 1) * b;
            let direct = crate::stats::pearson(&x[window_start..lo + b], &y[window_start..lo + b]);
            assert!(
                (pair.correlation() - direct).abs() < 1e-9,
                "step {step}: {} vs {direct}",
                pair.correlation()
            );
        }
    }

    #[test]
    fn sliding_pair_rejects_bad_chunk() {
        let x = lcg_series(3, 40);
        let y = lcg_series(4, 40);
        let mut pair = SlidingPair::new(&x, &y, 10).unwrap();
        assert!(pair.ingest(&x[0..5], &y[0..5]).is_err());
        assert!(SlidingPair::new(&x[0..35], &y[0..35], 10).is_err());
        assert!(SlidingPair::new(&x, &y, 0).is_err());
    }

    fn build_network(
        n: usize,
        len: usize,
        b: usize,
        query: usize,
    ) -> (SeriesCollection, SlidingNetwork) {
        let c = SeriesCollection::from_rows(
            (0..n).map(|s| lcg_series(s as u64 * 13 + 1, len)).collect(),
        )
        .unwrap();
        let sketch = SketchSet::build(&c, b).unwrap();
        let net = SlidingNetwork::initialize(&c, &sketch, query).unwrap();
        (c, net)
    }

    #[test]
    fn sliding_network_initialization_matches_baseline() {
        let (c, net) = build_network(5, 200, 20, 120);
        let query = QueryWindow::new(199, 120).unwrap();
        let direct = baseline::correlation_matrix(&c, query).unwrap();
        let incr = net.correlation_matrix();
        assert!(incr.max_abs_diff(&direct) < 1e-9);
    }

    #[test]
    fn sliding_network_tracks_baseline_over_many_slides() {
        let n = 4;
        let b = 15;
        let query_len = 90;
        let total = 400;
        let full: Vec<Vec<f64>> = (0..n)
            .map(|s| lcg_series(s as u64 * 7 + 3, total))
            .collect();
        // Historical prefix of 150 points; stream the rest chunk by chunk.
        let hist_len = 150;
        let c = SeriesCollection::from_rows(full.iter().map(|s| s[..hist_len].to_vec()).collect())
            .unwrap();
        let sketch = SketchSet::build(&c, b).unwrap();
        let mut net = SlidingNetwork::initialize(&c, &sketch, query_len).unwrap();

        let mut now = hist_len;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = full.iter().map(|s| s[now..now + b].to_vec()).collect();
            net.ingest(&chunk).unwrap();
            now += b;

            // Compare against a from-scratch baseline on the same window.
            let cur = SeriesCollection::from_rows(full.iter().map(|s| s[..now].to_vec()).collect())
                .unwrap();
            let query = QueryWindow::latest(now, query_len).unwrap();
            let direct = baseline::correlation_matrix(&cur, query).unwrap();
            let diff = net.correlation_matrix().max_abs_diff(&direct);
            assert!(diff < 1e-7, "drift {diff} at now={now}");
        }
        assert!(
            now > hist_len + 10 * b,
            "the loop must have exercised many slides"
        );
    }

    #[test]
    fn ingest_in_is_identical_across_worker_counts() {
        use crate::runner::ScopedRunner;
        let n = 5;
        let b = 10;
        let total = 260;
        let full: Vec<Vec<f64>> = (0..n)
            .map(|s| lcg_series(s as u64 * 3 + 2, total))
            .collect();
        let hist = 160;
        let c =
            SeriesCollection::from_rows(full.iter().map(|s| s[..hist].to_vec()).collect()).unwrap();
        let sketch = SketchSet::build(&c, b).unwrap();
        let serial = SlidingNetwork::initialize(&c, &sketch, 80).unwrap();
        let mut nets = [serial.clone(), serial.clone(), serial];
        let runners: Vec<ScopedRunner> = [1usize, 3, 8]
            .iter()
            .map(|&w| ScopedRunner::new(w))
            .collect();
        let mut now = hist;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = full.iter().map(|s| s[now..now + b].to_vec()).collect();
            for (net, runner) in nets.iter_mut().zip(&runners) {
                net.ingest_in(runner, &chunk).unwrap();
            }
            now += b;
            let m0 = nets[0].correlation_matrix();
            assert_eq!(m0, nets[1].correlation_matrix());
            assert_eq!(m0, nets[2].correlation_matrix());
        }
    }

    #[test]
    fn subscribed_deltas_track_full_rethreshold() {
        let n = 5;
        let b = 10;
        let total = 300;
        let theta = 0.2;
        let full: Vec<Vec<f64>> = (0..n)
            .map(|s| lcg_series(s as u64 * 11 + 5, total))
            .collect();
        let hist = 120;
        let c =
            SeriesCollection::from_rows(full.iter().map(|s| s[..hist].to_vec()).collect()).unwrap();
        let sketch = SketchSet::build(&c, b).unwrap();
        let mut net = SlidingNetwork::initialize(&c, &sketch, 80).unwrap();
        assert!(net.changed_edges().is_none());

        let mut snapshot = net.subscribe_edges(theta).unwrap();
        assert_eq!(snapshot, net.network(theta));

        let mut now = hist;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = full.iter().map(|s| s[now..now + b].to_vec()).collect();
            net.ingest(&chunk).unwrap();
            now += b;

            let delta = net.changed_edges().expect("subscribed").clone();
            assert_eq!(delta.total_pairs, n * (n - 1) / 2);
            delta.apply_to(&mut snapshot).unwrap();
            let expected = net.network(theta);
            assert_eq!(snapshot, expected, "edge drift at now={now}");
            assert_eq!(snapshot.nan_pair_count(), expected.nan_pair_count());
        }

        net.unsubscribe_edges();
        let chunk: Vec<Vec<f64>> = full.iter().map(|s| s[..b].to_vec()).collect();
        net.ingest(&chunk).unwrap();
        assert!(net.changed_edges().is_none());
    }

    #[test]
    fn subscribe_rejects_invalid_threshold() {
        let (_, mut net) = build_network(3, 100, 10, 50);
        assert!(matches!(
            net.subscribe_edges(2.0),
            Err(Error::InvalidThreshold(_))
        ));
    }

    #[test]
    fn sliding_network_rejects_malformed_chunks() {
        let (_, mut net) = build_network(3, 100, 10, 50);
        // Wrong series count.
        assert!(net.ingest(&[vec![0.0; 10]]).is_err());
        // Wrong chunk length.
        assert!(net
            .ingest(&[vec![0.0; 5], vec![0.0; 5], vec![0.0; 5]])
            .is_err());
    }

    #[test]
    fn initialize_rejects_misaligned_query() {
        let c = SeriesCollection::from_rows(vec![lcg_series(1, 100), lcg_series(2, 100)]).unwrap();
        let sketch = SketchSet::build(&c, 10).unwrap();
        assert!(SlidingNetwork::initialize(&c, &sketch, 0).is_err());
        assert!(SlidingNetwork::initialize(&c, &sketch, 35).is_err());
        assert!(SlidingNetwork::initialize(&c, &sketch, 200).is_err());
        assert!(SlidingNetwork::initialize(&c, &sketch, 100).is_ok());
    }

    #[test]
    fn network_snapshot_thresholds_current_state() {
        let (_, net) = build_network(4, 150, 15, 90);
        let m = net.correlation_matrix();
        let g = net.network(0.2);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(g.has_edge(i, j), m.get(i, j) > 0.2);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Lemma 2 applied repeatedly stays numerically glued to the
        /// from-scratch computation.
        #[test]
        fn prop_incremental_matches_direct(
            seed in 0u64..500,
            b in 5usize..20,
            ns in 3usize..8,
            slides in 1usize..6,
        ) {
            let query_len = b * ns;
            let total = query_len + b * slides + 10;
            let x = lcg_series(seed, total);
            let y = lcg_series(seed + 99, total);
            let mut pair = SlidingPair::new(&x[..query_len], &y[..query_len], b).unwrap();
            for s in 0..slides {
                let lo = query_len + s * b;
                pair.ingest(&x[lo..lo + b], &y[lo..lo + b]).unwrap();
                let start = (s + 1) * b;
                let direct = crate::stats::pearson(&x[start..lo + b], &y[start..lo + b]);
                prop_assert!((pair.correlation() - direct).abs() < 1e-7);
            }
        }
    }
}
