//! Correlation matrices and thresholded (boolean) network matrices.
//!
//! Both types store only the strict upper triangle of the symmetric `n × n`
//! matrix; the diagonal is implicit (1.0 for correlations, no self-loop for
//! networks). This halves memory, which matters when `n` reaches the tens of
//! thousands of grid cells used in the scalability experiments.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::sketch::pair_index;

/// A symmetric all-pair Pearson correlation matrix with an implicit unit
/// diagonal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    n: usize,
    /// Packed strict upper triangle, row-major: (0,1), (0,2), ..., (n-2,n-1).
    values: Vec<f64>,
}

impl CorrelationMatrix {
    /// The `n × n` identity-like matrix: every off-diagonal correlation 0.
    pub fn identity(n: usize) -> Self {
        Self {
            n,
            values: vec![0.0; n * n.saturating_sub(1) / 2],
        }
    }

    /// Build a matrix from the packed strict upper triangle.
    ///
    /// Panics if the length does not equal `n(n-1)/2` — constructing from a
    /// mismatched buffer is a programming error.
    pub fn from_upper_triangle(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            n * n.saturating_sub(1) / 2,
            "upper triangle of an {n}x{n} matrix has {} entries",
            n * n.saturating_sub(1) / 2
        );
        Self { n, values }
    }

    /// Number of series (rows/columns).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate 0 × 0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The correlation of series `i` and `j` (symmetric; 1.0 on the
    /// diagonal).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of range");
        if i == j {
            return 1.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.values[pair_index(a, b, self.n)]
    }

    /// Set the correlation of the unordered pair `(i, j)`, `i != j`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.n && j < self.n && i != j, "invalid pair ({i},{j})");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.values[pair_index(a, b, self.n)] = value;
    }

    /// The packed strict upper triangle, row-major.
    pub fn upper_triangle(&self) -> &[f64] {
        &self.values
    }

    /// Apply a correlation threshold θ and return the boolean network matrix:
    /// an edge between `i` and `j` iff `corr(i,j) > θ` (the paper thresholds
    /// on positive correlation; use [`CorrelationMatrix::threshold_abs`] for
    /// |corr| thresholding).
    ///
    /// Errors with [`Error::NanCorrelations`] if any entry is NaN — NaN
    /// appears in matrices assembled from store records whose sketch method
    /// does not match the query method, and treating it as "no edge" would
    /// silently yield a plausible-looking but wrong network. Callers that
    /// accept missing pairs use [`CorrelationMatrix::threshold_lenient`].
    pub fn threshold(&self, theta: f64) -> Result<AdjacencyMatrix> {
        let net = self.apply_threshold(theta, false);
        if net.nan_pairs > 0 {
            return Err(Error::NanCorrelations {
                pairs: net.nan_pairs,
            });
        }
        Ok(net)
    }

    /// Threshold on the absolute correlation: edge iff `|corr(i,j)| > θ`.
    /// Climate-network studies that treat strong anti-correlation as
    /// information flow use this variant. Same NaN policy as
    /// [`CorrelationMatrix::threshold`].
    pub fn threshold_abs(&self, theta: f64) -> Result<AdjacencyMatrix> {
        let net = self.apply_threshold(theta, true);
        if net.nan_pairs > 0 {
            return Err(Error::NanCorrelations {
                pairs: net.nan_pairs,
            });
        }
        Ok(net)
    }

    /// Lenient variant of [`CorrelationMatrix::threshold`]: NaN entries get
    /// no edge, and their count is recorded on the result
    /// ([`AdjacencyMatrix::nan_pair_count`]) so the caller can audit how many
    /// pairs were skipped.
    pub fn threshold_lenient(&self, theta: f64) -> AdjacencyMatrix {
        self.apply_threshold(theta, false)
    }

    /// Lenient variant of [`CorrelationMatrix::threshold_abs`]; see
    /// [`CorrelationMatrix::threshold_lenient`].
    pub fn threshold_abs_lenient(&self, theta: f64) -> AdjacencyMatrix {
        self.apply_threshold(theta, true)
    }

    fn apply_threshold(&self, theta: f64, abs: bool) -> AdjacencyMatrix {
        let mut nan_pairs = 0usize;
        let edges = self
            .values
            .iter()
            .map(|&c| {
                if c.is_nan() {
                    nan_pairs += 1;
                    false
                } else if abs {
                    c.abs() > theta
                } else {
                    c > theta
                }
            })
            .collect();
        AdjacencyMatrix {
            n: self.n,
            edges,
            nan_pairs,
        }
    }

    /// Maximum absolute difference to another matrix of the same size —
    /// convenient for comparing exact vs approximate matrices.
    pub fn max_abs_diff(&self, other: &CorrelationMatrix) -> f64 {
        assert_eq!(self.n, other.n, "matrices must have the same size");
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Mean absolute difference to another matrix of the same size.
    pub fn mean_abs_diff(&self, other: &CorrelationMatrix) -> f64 {
        assert_eq!(self.n, other.n, "matrices must have the same size");
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / self.values.len() as f64
    }

    /// Iterate over `(i, j, corr)` for every unordered pair.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n;
        (0..n)
            .flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
            .zip(self.values.iter().copied())
            .map(|((i, j), c)| (i, j, c))
    }
}

/// The boolean climate-network matrix obtained by thresholding a
/// [`CorrelationMatrix`]: `edges[pair] == true` means the two locations are
/// connected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdjacencyMatrix {
    n: usize,
    edges: Vec<bool>,
    /// Pairs whose correlation was NaN when this network was thresholded
    /// leniently (always 0 for the strict constructors). Excluded from
    /// equality: two networks with the same topology compare equal.
    nan_pairs: usize,
}

/// Equality is over the topology (node count + edge set) only; the NaN audit
/// count is metadata and deliberately ignored.
impl PartialEq for AdjacencyMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

impl Eq for AdjacencyMatrix {}

impl AdjacencyMatrix {
    /// An edge-less network over `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self {
            n,
            edges: vec![false; n * n.saturating_sub(1) / 2],
            nan_pairs: 0,
        }
    }

    /// Build from the packed strict upper triangle.
    pub fn from_upper_triangle(n: usize, edges: Vec<bool>) -> Self {
        assert_eq!(edges.len(), n * n.saturating_sub(1) / 2);
        Self {
            n,
            edges,
            nan_pairs: 0,
        }
    }

    /// Build from an iterator of `(i, j)` node pairs (order-insensitive,
    /// self-loops rejected by the same assertion as
    /// [`AdjacencyMatrix::set_edge`]). This is how streamed edge lists become
    /// networks without a dense correlation matrix in between.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        let mut net = Self::empty(n);
        for (i, j) in edges {
            net.set_edge(i, j, true);
        }
        net
    }

    /// Number of pairs whose correlation was NaN when this network was built
    /// by a lenient thresholding pass (0 for strict/explicit constructors).
    pub fn nan_pair_count(&self) -> usize {
        self.nan_pairs
    }

    /// Record the number of NaN correlations skipped while building this
    /// network (used by streamed sinks, which observe NaN tile by tile).
    pub fn set_nan_pair_count(&mut self, count: usize) {
        self.nan_pairs = count;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate 0-node network.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether nodes `i` and `j` are connected (no self-loops).
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n);
        if i == j {
            return false;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.edges[pair_index(a, b, self.n)]
    }

    /// Add or remove the edge between `i` and `j`.
    pub fn set_edge(&mut self, i: usize, j: usize, present: bool) {
        assert!(i < self.n && j < self.n && i != j);
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.edges[pair_index(a, b, self.n)] = present;
    }

    /// Number of edges in the network — one of the two accuracy measures of
    /// the paper's Figure 5a.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().filter(|&&e| e).count()
    }

    /// Edge density: edges divided by the number of possible edges.
    pub fn density(&self) -> f64 {
        if self.edges.is_empty() {
            return 0.0;
        }
        self.edge_count() as f64 / self.edges.len() as f64
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        (0..self.n)
            .filter(|&j| j != i && self.has_edge(i, j))
            .count()
    }

    /// The correlation similarity ratio `D_p` of the paper (§4.1): the
    /// fraction of unordered pairs on which the two networks agree.
    ///
    /// `D_p = 2 Σ_{i<j} (1 − |a_ij − b_ij|) / (n(n−1))`.
    pub fn similarity_ratio(&self, other: &AdjacencyMatrix) -> f64 {
        assert_eq!(self.n, other.n, "networks must have the same node count");
        if self.edges.is_empty() {
            return 1.0;
        }
        let agreeing = self
            .edges
            .iter()
            .zip(&other.edges)
            .filter(|(a, b)| a == b)
            .count();
        agreeing as f64 / self.edges.len() as f64
    }

    /// Iterate over the `(i, j)` node pairs that are connected.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let n = self.n;
        (0..n)
            .flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
            .zip(self.edges.iter())
            .filter(|(_, &e)| e)
            .map(|(pair, _)| pair)
    }

    /// The packed strict upper triangle.
    pub fn upper_triangle(&self) -> &[bool] {
        &self.edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_matrix_get_set_symmetry() {
        let mut m = CorrelationMatrix::identity(4);
        m.set(1, 3, 0.7);
        m.set(3, 0, -0.2);
        assert_eq!(m.get(1, 3), 0.7);
        assert_eq!(m.get(3, 1), 0.7);
        assert_eq!(m.get(0, 3), -0.2);
        assert_eq!(m.get(2, 2), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn correlation_matrix_get_out_of_range_panics() {
        CorrelationMatrix::identity(3).get(0, 3);
    }

    #[test]
    fn threshold_produces_expected_edges() {
        let mut m = CorrelationMatrix::identity(3);
        m.set(0, 1, 0.9);
        m.set(0, 2, -0.95);
        m.set(1, 2, 0.5);
        let net = m.threshold(0.75).unwrap();
        assert!(net.has_edge(0, 1));
        assert!(!net.has_edge(0, 2));
        assert!(!net.has_edge(1, 2));
        assert_eq!(net.edge_count(), 1);
        assert_eq!(net.nan_pair_count(), 0);

        let net_abs = m.threshold_abs(0.75).unwrap();
        assert!(net_abs.has_edge(0, 2));
        assert_eq!(net_abs.edge_count(), 2);
    }

    #[test]
    fn strict_threshold_rejects_nan() {
        let mut m = CorrelationMatrix::identity(3);
        m.set(0, 1, 0.9);
        m.set(0, 2, f64::NAN);
        m.set(1, 2, f64::NAN);
        assert_eq!(m.threshold(0.5), Err(Error::NanCorrelations { pairs: 2 }));
        assert_eq!(
            m.threshold_abs(0.5),
            Err(Error::NanCorrelations { pairs: 2 })
        );
    }

    #[test]
    fn lenient_threshold_counts_nan_and_skips() {
        let mut m = CorrelationMatrix::identity(3);
        m.set(0, 1, 0.9);
        m.set(0, 2, f64::NAN);
        m.set(1, 2, 0.1);
        let net = m.threshold_lenient(0.5);
        assert!(net.has_edge(0, 1));
        assert!(!net.has_edge(0, 2));
        assert_eq!(net.edge_count(), 1);
        assert_eq!(net.nan_pair_count(), 1);
        let net_abs = m.threshold_abs_lenient(0.5);
        assert_eq!(net_abs.nan_pair_count(), 1);
    }

    #[test]
    fn equality_ignores_nan_audit_count() {
        let a = AdjacencyMatrix::from_edges(3, [(0, 1)]);
        let mut b = AdjacencyMatrix::from_edges(3, [(1, 0)]);
        b.set_nan_pair_count(2);
        assert_eq!(a, b);
        assert_eq!(b.nan_pair_count(), 2);
    }

    #[test]
    fn similarity_ratio_matches_paper_example() {
        // The paper's §4.1 example: 3-node networks A and B that agree on two
        // of the three off-diagonal pairs → D_p = 2/3.
        let a = AdjacencyMatrix::from_upper_triangle(3, vec![true, false, true]);
        let b = AdjacencyMatrix::from_upper_triangle(3, vec![false, false, true]);
        assert!((a.similarity_ratio(&b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(a.similarity_ratio(&a), 1.0);
        // Symmetric.
        assert_eq!(a.similarity_ratio(&b), b.similarity_ratio(&a));
    }

    #[test]
    fn degree_density_and_edge_iteration() {
        let mut net = AdjacencyMatrix::empty(4);
        net.set_edge(0, 1, true);
        net.set_edge(2, 0, true);
        assert_eq!(net.degree(0), 2);
        assert_eq!(net.degree(3), 0);
        assert!((net.density() - 2.0 / 6.0).abs() < 1e-12);
        let edges: Vec<_> = net.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2)]);
        assert!(!net.has_edge(1, 1));
    }

    #[test]
    fn diff_metrics() {
        let mut a = CorrelationMatrix::identity(3);
        let mut b = CorrelationMatrix::identity(3);
        a.set(0, 1, 0.5);
        b.set(0, 1, 0.1);
        b.set(1, 2, 0.2);
        assert!((a.max_abs_diff(&b) - 0.4).abs() < 1e-12);
        assert!((a.mean_abs_diff(&b) - (0.4 + 0.0 + 0.2) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iter_pairs_yields_all_upper_triangle_entries() {
        let mut m = CorrelationMatrix::identity(3);
        m.set(0, 1, 0.1);
        m.set(0, 2, 0.2);
        m.set(1, 2, 0.3);
        let got: Vec<_> = m.iter_pairs().collect();
        assert_eq!(got, vec![(0, 1, 0.1), (0, 2, 0.2), (1, 2, 0.3)]);
    }

    #[test]
    fn empty_and_single_node_matrices() {
        let m = CorrelationMatrix::identity(1);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.threshold(0.5).unwrap().edge_count(), 0);
        let e = AdjacencyMatrix::empty(0);
        assert!(e.is_empty());
        assert_eq!(e.density(), 0.0);
    }
}
