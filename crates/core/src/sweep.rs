//! The streaming tile-at-a-time sweep layer: produce [`QueryPlan::block_kernel`]
//! tiles, hand them to a consumer, discard them — never materializing the
//! `N(N−1)/2` pair triangle.
//!
//! Every dense query path (matrix construction, thresholding, ranking)
//! allocates the full packed triangle: ~50 GB of `f64` per window layer at
//! `N = 100 000`. The paper's national-scale scenarios (§4.3) need the
//! *answers* — the thresholded network, the strongest edges, aggregates —
//! not the triangle itself. This module inverts the control flow:
//!
//! * a [`CorrProvider`] serves per-window correlations for one tile of pairs
//!   at a time (zero-copy from a window-major table when one exists,
//!   recomputed on the fly by [`ZnormSweep`] when not);
//! * [`sweep_run`] drives [`QueryPlan::block_kernel`] over same-row tiles of
//!   at most `tile_len` pairs and hands each finished tile to a
//!   [`TileSink`];
//! * the sinks fold tiles into bounded state: [`EdgeSink`] keeps only the
//!   pairs above a threshold, [`TopKSink`] a k-bounded heap of the strongest
//!   edges, [`StatsSink`] running aggregates.
//!
//! Working memory is `O(tile)` — two scratch buffers of `tile_len` (times
//! `w` for providers without a resident table) — independent of `N`.
//!
//! # Tile pruning (Equation 4)
//!
//! [`CorrelationBounds`] precomputes, per series, the Cauchy–Schwarz split
//! `s_i = √(Σ_k B_k σ_ik² / den_i)`, `t_i = √(Σ_k B_k δ_ik² / den_i)` of the
//! Lemma 1 denominator. Since every per-window correlation is clamped to
//! `≤ 1`, `corr(i, j) ≤ s_i s_j + t_i t_j` — an `O(1)`-per-pair sound upper
//! bound. When the driver is given bounds and the sink reports a tile's
//! bound as skippable ([`TileSink::tile_skippable`]), the whole tile is
//! dropped without evaluating a single kernel — the tile-granular analogue
//! of the paper's Equation 4 pruning radius `√(2(1−θ))` (a bound `b < θ`
//! is exactly a distance `√(2(1−b))` outside the radius).
//!
//! # NaN policy
//!
//! Sinks never silently drop NaN correlations: each NaN is counted and the
//! count is surfaced on the result ([`EdgeList::nan_pair_count`],
//! [`TopK::nan_pairs`]) — the same lenient-with-audit rule as
//! [`CorrelationMatrix::threshold_lenient`]. Plan-based sweeps cannot
//! produce NaN (the kernel clamps), but [`sweep_matrix`] streams existing
//! matrices — including NaN-bearing ones assembled from store records —
//! through the same sinks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::Range;

use crate::error::{Error, Result};
use crate::matrix::{AdjacencyMatrix, CorrelationMatrix};
use crate::plan::{row_segments, CorrView, QueryPlan};
use crate::sketch::pair_index;
use crate::stats::{normalize_into, normalized_dot_corr, WindowStats};
use crate::timeseries::SeriesCollection;
use crate::window::BasicWindowing;

/// Default tile size of the streaming sweeps: large enough to amortize the
/// per-tile dispatch, small enough that two scratch buffers stay deep in
/// cache.
pub const DEFAULT_TILE_PAIRS: usize = 1024;

/// Safety pad added to every upper bound: the bound and the kernel reorder
/// floating-point accumulation differently, so the analytic inequality holds
/// only up to rounding. `1e-9` is ten times the workspace's `1e-10` kernel
/// tolerance contract.
const BOUND_PAD: f64 = 1e-9;

/// A consumer of finished correlation tiles. `consume` receives the
/// correlations of the contiguous same-row pair tile
/// `(i, j0), …, (i, j0 + corrs.len() − 1)` (packed index of the first pair
/// in `pair0`); the buffer is reused, so implementations must copy out what
/// they keep.
pub trait TileSink {
    /// Fold one finished tile into the sink's state.
    fn consume(&mut self, i: usize, j0: usize, pair0: usize, corrs: &[f64]);

    /// Whether a tile whose correlations are all `≤ upper_bound` can be
    /// dropped without being evaluated. Default: never (sinks that need to
    /// observe every pair keep it that way).
    fn tile_skippable(&self, upper_bound: f64) -> bool {
        let _ = upper_bound;
        false
    }

    /// Notification that the driver dropped the tile
    /// `(i, j0), …, (i, j0 + len − 1)` after [`TileSink::tile_skippable`]
    /// approved it.
    fn tile_skipped(&mut self, i: usize, j0: usize, len: usize) {
        let _ = (i, j0, len);
    }
}

/// Per-series upper-bound components for tile pruning: for any pair,
/// `corr(i, j) ≤ s_i s_j + t_i t_j` (see the [module docs](self) for the
/// derivation). Built once per query plan in `O(N · w)`; each tile bound is
/// then `O(tile)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationBounds {
    s: Vec<f64>,
    t: Vec<f64>,
}

impl CorrelationBounds {
    /// Precompute the bound components from a query plan (exact or the
    /// shared plan inside an approximate plan).
    pub fn from_plan(plan: &QueryPlan) -> Self {
        let (s, t) = plan.bound_components();
        Self { s, t }
    }

    /// Sound (padded) upper bound on `corr(i, j)`.
    pub fn pair_bound(&self, i: usize, j: usize) -> f64 {
        self.s[i] * self.s[j] + self.t[i] * self.t[j] + BOUND_PAD
    }

    /// Sound (padded) upper bound over the tile `(i, j0 .. j0 + len)`.
    pub fn tile_bound(&self, i: usize, j0: usize, len: usize) -> f64 {
        let (si, ti) = (self.s[i], self.t[i]);
        let mut best = f64::NEG_INFINITY;
        for p in 0..len {
            let v = si * self.s[j0 + p] + ti * self.t[j0 + p];
            if v > best {
                best = v;
            }
        }
        best + BOUND_PAD
    }
}

/// A source of per-window pair correlations for the plan's *full* windows,
/// served tile by tile.
pub trait CorrProvider {
    /// Number of windows served per pair — must equal the driving plan's
    /// [`QueryPlan::full_windows`]`.len()`.
    fn window_count(&self) -> usize;

    /// A resident window-major table covering **all** packed pairs, if one
    /// exists. When this returns `Some`, the driver streams it zero-copy and
    /// never calls [`CorrProvider::fill_tile`].
    fn full_view(&self) -> Option<CorrView<'_>> {
        None
    }

    /// Fill `out` (window-major, `window_count() × np` where
    /// `np = out.len() / window_count()`) with the per-window correlations of
    /// the tile `(i, j0), …, (i, j0 + np − 1)`.
    fn fill_tile(&self, i: usize, j0: usize, out: &mut [f64]);
}

impl CorrProvider for CorrView<'_> {
    fn window_count(&self) -> usize {
        CorrView::window_count(self)
    }

    fn full_view(&self) -> Option<CorrView<'_>> {
        Some(*self)
    }

    fn fill_tile(&self, _i: usize, _j0: usize, _out: &mut [f64]) {
        unreachable!("full-view providers are streamed zero-copy")
    }
}

/// Drive [`QueryPlan::block_kernel`] over the contiguous packed-triangle run
/// `run`, in same-row tiles of at most `tile_len` pairs, feeding each
/// finished tile to `sink` and discarding it. With `bounds`, tiles the sink
/// reports skippable are dropped before any kernel work (Equation 4 tile
/// pruning).
///
/// Working memory: one `tile_len` output buffer, plus a
/// `window_count × tile_len` scratch buffer for providers without a resident
/// table — independent of the series count.
pub fn sweep_run(
    plan: &QueryPlan,
    provider: &dyn CorrProvider,
    bounds: Option<&CorrelationBounds>,
    run: Range<usize>,
    tile_len: usize,
    sink: &mut dyn TileSink,
) {
    let n = plan.series_count();
    let w = plan.full_windows().len();
    assert_eq!(
        provider.window_count(),
        w,
        "provider must cover the plan's full windows"
    );
    let tile_len = tile_len.max(1);
    let full = provider.full_view();
    let mut out = vec![0.0f64; tile_len];
    let mut scratch = if full.is_some() {
        Vec::new()
    } else {
        vec![0.0f64; w * tile_len]
    };

    for (i, j0, len) in row_segments(run.start, run.len(), n) {
        let mut off = 0;
        while off < len {
            let np = (len - off).min(tile_len);
            let j = j0 + off;
            off += np;
            if let Some(b) = bounds {
                if sink.tile_skippable(b.tile_bound(i, j, np)) {
                    sink.tile_skipped(i, j, np);
                    continue;
                }
            }
            let pair0 = pair_index(i, j, n);
            match full {
                Some(view) => plan.block_kernel(i, j, view, pair0, &mut out[..np]),
                None => {
                    provider.fill_tile(i, j, &mut scratch[..w * np]);
                    let view = CorrView::new(&scratch[..w * np], np, w);
                    plan.block_kernel(i, j, view, 0, &mut out[..np]);
                }
            }
            sink.consume(i, j, pair0, &out[..np]);
        }
    }
}

/// Stream an existing dense [`CorrelationMatrix`] through a sink, tile by
/// tile — the bridge that lets matrices assembled elsewhere (including
/// NaN-bearing ones re-hydrated from store records) reuse the streamed
/// consumers and their NaN accounting.
pub fn sweep_matrix(matrix: &CorrelationMatrix, tile_len: usize, sink: &mut dyn TileSink) {
    let n = matrix.len();
    let values = matrix.upper_triangle();
    let tile_len = tile_len.max(1);
    let mut cursor = 0;
    for (i, j0, len) in row_segments(0, values.len(), n) {
        let mut off = 0;
        while off < len {
            let np = (len - off).min(tile_len);
            sink.consume(
                i,
                j0 + off,
                cursor + off,
                &values[cursor + off..cursor + off + np],
            );
            off += np;
        }
        cursor += len;
    }
}

/// How [`EdgeSink`] compares a correlation against its threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeRule {
    /// `c > θ` — the dense [`CorrelationMatrix::threshold`] semantics.
    Greater,
    /// `c ≥ θ` — the approximate path's in-radius semantics
    /// (`√(2(1−c)) ≤ √(2(1−θ))`).
    AtLeast,
    /// `|c| > θ` — the dense [`CorrelationMatrix::threshold_abs`] semantics.
    AbsGreater,
}

/// Threshold sink: keeps only the `(i, j)` pairs whose correlation passes
/// the threshold, counts NaN pairs, and drops whole tiles whose upper bound
/// cannot pass.
#[derive(Debug, Clone)]
pub struct EdgeSink {
    theta: f64,
    rule: EdgeRule,
    edges: Vec<(usize, usize)>,
    nan_pairs: usize,
    skipped_pairs: usize,
}

impl EdgeSink {
    /// Strict-greater sink (`c > θ`), matching
    /// [`CorrelationMatrix::threshold`].
    pub fn new(theta: f64) -> Self {
        Self::with_rule(theta, EdgeRule::Greater)
    }

    /// At-least sink (`c ≥ θ`), matching the approximate path's pruning
    /// radius (`distance ≤ √(2(1−θ))`).
    pub fn new_inclusive(theta: f64) -> Self {
        Self::with_rule(theta, EdgeRule::AtLeast)
    }

    /// Absolute-value sink (`|c| > θ`), matching
    /// [`CorrelationMatrix::threshold_abs`].
    pub fn new_abs(theta: f64) -> Self {
        Self::with_rule(theta, EdgeRule::AbsGreater)
    }

    fn with_rule(theta: f64, rule: EdgeRule) -> Self {
        Self {
            theta,
            rule,
            edges: Vec::new(),
            nan_pairs: 0,
            skipped_pairs: 0,
        }
    }

    /// Pairs dropped by tile pruning without being evaluated.
    pub fn skipped_pairs(&self) -> usize {
        self.skipped_pairs
    }

    /// Finish the sweep: the accumulated edge list over `n` nodes.
    pub fn finish(self, n: usize) -> EdgeList {
        EdgeList {
            n,
            edges: self.edges,
            nan_pairs: self.nan_pairs,
        }
    }
}

impl TileSink for EdgeSink {
    fn consume(&mut self, i: usize, j0: usize, _pair0: usize, corrs: &[f64]) {
        for (p, &c) in corrs.iter().enumerate() {
            if c.is_nan() {
                self.nan_pairs += 1;
                continue;
            }
            let hit = match self.rule {
                EdgeRule::Greater => c > self.theta,
                EdgeRule::AtLeast => c >= self.theta,
                EdgeRule::AbsGreater => c.abs() > self.theta,
            };
            if hit {
                self.edges.push((i, j0 + p));
            }
        }
    }

    fn tile_skippable(&self, upper_bound: f64) -> bool {
        // `|corr| ≤ s_i s_j + t_i t_j` too (every |c_k| ≤ 1), so the same
        // bound is sound for the absolute rule.
        match self.rule {
            EdgeRule::Greater | EdgeRule::AbsGreater => upper_bound <= self.theta,
            EdgeRule::AtLeast => upper_bound < self.theta,
        }
    }

    fn tile_skipped(&mut self, _i: usize, _j0: usize, len: usize) {
        self.skipped_pairs += len;
    }
}

/// The streamed counterpart of an [`AdjacencyMatrix`]: the edges that passed
/// a threshold sweep, with the NaN audit count, at `O(edges)` memory instead
/// of `O(N²)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    n: usize,
    edges: Vec<(usize, usize)>,
    nan_pairs: usize,
}

impl EdgeList {
    /// Assemble an edge list from parts (used by the parallel engine's
    /// per-partition merge).
    pub fn from_parts(n: usize, edges: Vec<(usize, usize)>, nan_pairs: usize) -> Self {
        Self {
            n,
            edges,
            nan_pairs,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The `(i, j)` node pairs that are connected, `i < j`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Pairs whose correlation was NaN during the sweep (skipped, not
    /// edges) — the lenient-thresholding audit count.
    pub fn nan_pair_count(&self) -> usize {
        self.nan_pairs
    }

    /// Add externally observed NaN pairs to the audit count (the disk
    /// engine counts method-mismatched store records before recombination).
    pub fn add_nan_pairs(&mut self, extra: usize) {
        self.nan_pairs += extra;
    }

    /// Append another partition's edges (parallel merge). Panics when the
    /// node counts disagree.
    pub fn absorb(&mut self, other: EdgeList) {
        assert_eq!(self.n, other.n, "edge lists cover different node counts");
        self.edges.extend(other.edges);
        self.nan_pairs += other.nan_pairs;
    }

    /// Materialize the dense boolean matrix (only sensible for small `N`;
    /// the point of the edge list is not to need this).
    pub fn to_adjacency(&self) -> AdjacencyMatrix {
        let mut net = AdjacencyMatrix::from_edges(self.n, self.edges.iter().copied());
        net.set_nan_pair_count(self.nan_pairs);
        net
    }
}

/// One ranked edge of a [`TopK`] result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedEdge {
    /// First node (`i < j`).
    pub i: usize,
    /// Second node.
    pub j: usize,
    /// The pair's correlation.
    pub corr: f64,
}

/// Heap entry: strength order is descending correlation under
/// [`f64::total_cmp`], ties broken by ascending packed pair index (so the
/// ordering is total and NaN can never panic a sort — NaN is filtered and
/// counted before entries are built).
#[derive(Debug, Clone, Copy)]
struct HeapEdge {
    corr: f64,
    pair: usize,
    i: usize,
    j: usize,
}

impl Ord for HeapEdge {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.corr
            .total_cmp(&other.corr)
            .then_with(|| other.pair.cmp(&self.pair))
    }
}

impl PartialOrd for HeapEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for HeapEdge {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for HeapEdge {}

/// Top-k sink: a k-bounded min-heap of the strongest edges. NaN
/// correlations are excluded from ranking and counted. With bounds, tiles
/// whose upper bound cannot beat the current k-th strongest edge are
/// dropped.
#[derive(Debug, Clone)]
pub struct TopKSink {
    k: usize,
    heap: BinaryHeap<Reverse<HeapEdge>>,
    nan_pairs: usize,
    skipped_pairs: usize,
}

impl TopKSink {
    /// A sink keeping the `k` strongest edges.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.min(1 << 20)),
            nan_pairs: 0,
            skipped_pairs: 0,
        }
    }

    /// Pairs dropped by tile pruning without being evaluated.
    pub fn skipped_pairs(&self) -> usize {
        self.skipped_pairs
    }

    /// Merge another sink's kept edges (parallel per-partition merge): the
    /// result is the global top-k of both sinks' observed pairs.
    pub fn absorb(&mut self, other: TopKSink) {
        self.nan_pairs += other.nan_pairs;
        self.skipped_pairs += other.skipped_pairs;
        for Reverse(e) in other.heap {
            self.push(e);
        }
    }

    fn push(&mut self, e: HeapEdge) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Reverse(e));
        } else if let Some(weakest) = self.heap.peek() {
            if e > weakest.0 {
                self.heap.pop();
                self.heap.push(Reverse(e));
            }
        }
    }

    /// Finish the sweep: edges sorted strongest first (descending
    /// [`f64::total_cmp`] on the correlation, ties by ascending pair index).
    pub fn finish(self) -> TopK {
        let mut entries: Vec<HeapEdge> = self.heap.into_iter().map(|Reverse(e)| e).collect();
        entries.sort_by(|a, b| b.cmp(a));
        TopK {
            edges: entries
                .into_iter()
                .map(|e| RankedEdge {
                    i: e.i,
                    j: e.j,
                    corr: e.corr,
                })
                .collect(),
            nan_pairs: self.nan_pairs,
        }
    }
}

impl TileSink for TopKSink {
    fn consume(&mut self, i: usize, j0: usize, pair0: usize, corrs: &[f64]) {
        for (p, &c) in corrs.iter().enumerate() {
            if c.is_nan() {
                self.nan_pairs += 1;
                continue;
            }
            self.push(HeapEdge {
                corr: c,
                pair: pair0 + p,
                i,
                j: j0 + p,
            });
        }
    }

    fn tile_skippable(&self, upper_bound: f64) -> bool {
        if self.k == 0 {
            return true;
        }
        match self.heap.peek() {
            // Strict: a tile at exactly the k-th strength could still win a
            // pair-index tie, so only strictly weaker tiles are dropped.
            Some(weakest) if self.heap.len() == self.k => upper_bound < weakest.0.corr,
            _ => false,
        }
    }

    fn tile_skipped(&mut self, _i: usize, _j0: usize, len: usize) {
        self.skipped_pairs += len;
    }
}

/// The result of a top-k sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TopK {
    /// The k strongest edges, strongest first.
    pub edges: Vec<RankedEdge>,
    /// Pairs whose correlation was NaN (excluded from ranking).
    pub nan_pairs: usize,
}

/// Aggregate sink: running count / sum / min / max over every observed
/// correlation, with NaN and pruning audit counts — network statistics
/// without any per-pair storage at all.
#[derive(Debug, Clone)]
pub struct StatsSink {
    count: usize,
    nan_pairs: usize,
    skipped_pairs: usize,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StatsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsSink {
    /// An empty aggregate sink.
    pub fn new() -> Self {
        Self {
            count: 0,
            nan_pairs: 0,
            skipped_pairs: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Number of (non-NaN) correlations observed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean of the observed correlations (0.0 when none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observed correlation (`+∞` when none).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed correlation (`−∞` when none).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// NaN correlations observed (excluded from the aggregates).
    pub fn nan_pair_count(&self) -> usize {
        self.nan_pairs
    }

    /// Pairs dropped by tile pruning.
    pub fn skipped_pairs(&self) -> usize {
        self.skipped_pairs
    }
}

impl TileSink for StatsSink {
    fn consume(&mut self, _i: usize, _j0: usize, _pair0: usize, corrs: &[f64]) {
        for &c in corrs {
            if c.is_nan() {
                self.nan_pairs += 1;
                continue;
            }
            self.count += 1;
            self.sum += c;
            if c < self.min {
                self.min = c;
            }
            if c > self.max {
                self.max = c;
            }
        }
    }

    fn tile_skipped(&mut self, _i: usize, _j0: usize, len: usize) {
        self.skipped_pairs += len;
    }
}

/// A sketch-free, triangle-free exact streaming path: z-normalize every
/// basic window of every series once (`O(N · L)` memory — the size of the
/// data itself) and serve each tile's per-window correlations as dot
/// products over contiguous rows. This is the provider that scales past the
/// point where even *building* a [`crate::sketch::SketchSet`] would
/// materialize the pair triangle.
#[derive(Debug, Clone)]
pub struct ZnormSweep {
    n: usize,
    w: usize,
    bw: usize,
    /// `z[(k·n + i)·bw ..]` is window `k` of series `i`, z-scored.
    z: Vec<f64>,
    plan: QueryPlan,
    bounds: CorrelationBounds,
}

impl ZnormSweep {
    /// Build the provider for an aligned range of basic windows, computing
    /// per-window statistics and z-scores straight from the raw data.
    pub fn build(
        collection: &SeriesCollection,
        basic_window: usize,
        windows: Range<usize>,
    ) -> Result<Self> {
        let windowing = BasicWindowing::new(basic_window)?;
        let complete = windowing.complete_windows(collection.series_len());
        if windows.is_empty() || windows.end > complete {
            return Err(Error::SketchMismatch {
                requested: format!("basic windows {windows:?}"),
                available: format!("{complete} complete windows"),
            });
        }
        let n = collection.len();
        let w = windows.len();
        let mut z = vec![0.0f64; n * w * basic_window];
        let mut stats: Vec<Vec<WindowStats>> = Vec::with_capacity(n);
        for (i, series) in collection.iter_with_ids() {
            let values = series.values();
            let mut row = Vec::with_capacity(w);
            for (kk, k) in windows.clone().enumerate() {
                let span = windowing.window_span(k);
                let st = WindowStats::from_values(span.slice(values));
                let slot = &mut z[(kk * n + i) * basic_window..(kk * n + i + 1) * basic_window];
                normalize_into(span.slice(values), &st, slot);
                row.push(st);
            }
            stats.push(row);
        }
        let plan = QueryPlan::from_window_stats(&stats)?;
        let bounds = CorrelationBounds::from_plan(&plan);
        Ok(Self {
            n,
            w,
            bw: basic_window,
            z,
            plan,
            bounds,
        })
    }

    /// Number of series covered.
    pub fn series_count(&self) -> usize {
        self.n
    }

    /// Number of basic windows covered.
    pub fn window_count(&self) -> usize {
        self.w
    }

    /// The shared per-series recombination plan.
    pub fn plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// The precomputed tile-pruning bounds.
    pub fn bounds(&self) -> &CorrelationBounds {
        &self.bounds
    }

    /// Number of unordered pairs.
    pub fn pair_count(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    /// Run a sweep over all pairs into `sink`, with optional tile pruning.
    pub fn sweep_into(&self, prune: bool, tile_len: usize, sink: &mut dyn TileSink) {
        let bounds = prune.then_some(&self.bounds);
        sweep_run(
            &self.plan,
            self,
            bounds,
            0..self.pair_count(),
            tile_len,
            sink,
        );
    }

    /// The thresholded network (`c > θ`, the dense
    /// [`CorrelationMatrix::threshold`] semantics) as a streamed edge list.
    /// Every pair is observed — no pruning — so the edge set equals the
    /// dense path's exactly.
    pub fn network_streamed(&self, theta: f64) -> Result<EdgeList> {
        if !(-1.0..=1.0).contains(&theta) {
            return Err(Error::InvalidThreshold(theta));
        }
        let mut sink = EdgeSink::new(theta);
        self.sweep_into(false, DEFAULT_TILE_PAIRS, &mut sink);
        Ok(sink.finish(self.n))
    }

    /// The `k` strongest edges, with tile pruning against the running k-th
    /// strength.
    pub fn top_k(&self, k: usize) -> TopK {
        let mut sink = TopKSink::new(k);
        self.sweep_into(true, DEFAULT_TILE_PAIRS, &mut sink);
        sink.finish()
    }
}

impl CorrProvider for ZnormSweep {
    fn window_count(&self) -> usize {
        self.w
    }

    fn fill_tile(&self, i: usize, j0: usize, out: &mut [f64]) {
        let np = out.len() / self.w;
        for kk in 0..self.w {
            let base = kk * self.n;
            let zi = &self.z[(base + i) * self.bw..(base + i + 1) * self.bw];
            let row = &mut out[kk * np..(kk + 1) * np];
            for (p, slot) in row.iter_mut().enumerate() {
                let j = j0 + p;
                let zj = &self.z[(base + j) * self.bw..(base + j + 1) * self.bw];
                *slot = normalized_dot_corr(zi, zj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use crate::sketch::SketchSet;

    fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
                (i as f64 * 0.17).sin() * 2.0 + noise
            })
            .collect()
    }

    fn test_collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows((0..n).map(|s| lcg_series(s as u64 + 1, len)).collect())
            .unwrap()
    }

    #[test]
    fn edge_sink_counts_nan_and_applies_rules() {
        let mut strict = EdgeSink::new(0.5);
        strict.consume(0, 1, 0, &[0.9, f64::NAN, 0.5, 0.2]);
        let list = strict.finish(5);
        assert_eq!(list.edges(), &[(0, 1)]);
        assert_eq!(list.nan_pair_count(), 1);

        let mut incl = EdgeSink::new_inclusive(0.5);
        incl.consume(0, 1, 0, &[0.9, f64::NAN, 0.5, 0.2]);
        assert_eq!(incl.finish(5).edges(), &[(0, 1), (0, 3)]);

        let mut abs = EdgeSink::new_abs(0.5);
        abs.consume(0, 1, 0, &[-0.9, f64::NAN, 0.5, 0.2]);
        assert_eq!(abs.finish(5).edges(), &[(0, 1)]);
    }

    #[test]
    fn edge_sink_skippability_respects_rule_boundaries() {
        let strict = EdgeSink::new(0.5);
        assert!(strict.tile_skippable(0.5)); // c > 0.5 impossible when ub == 0.5
        assert!(!strict.tile_skippable(0.6));
        let incl = EdgeSink::new_inclusive(0.5);
        assert!(!incl.tile_skippable(0.5)); // c == 0.5 is an edge
        assert!(incl.tile_skippable(0.4999));
    }

    #[test]
    fn top_k_orders_by_total_cmp_and_pair_index() {
        let mut sink = TopKSink::new(3);
        // Pairs 0..5 of a 4-node triangle; includes a NaN and a tie.
        sink.consume(0, 1, 0, &[0.5, f64::NAN, 0.9]);
        sink.consume(1, 2, 3, &[0.9, -0.3, 0.7]);
        let top = sink.finish();
        assert_eq!(top.nan_pairs, 1);
        // Tie at 0.9 between pair 2 (0,3) and pair 3 (1,2): lower pair wins.
        assert_eq!(top.edges.len(), 3);
        assert_eq!((top.edges[0].i, top.edges[0].j), (0, 3));
        assert_eq!((top.edges[1].i, top.edges[1].j), (1, 2));
        assert!((top.edges[2].corr - 0.7).abs() < 1e-15);
    }

    #[test]
    fn top_k_absorb_merges_partitions() {
        let mut a = TopKSink::new(2);
        a.consume(0, 1, 0, &[0.1, 0.8]);
        let mut b = TopKSink::new(2);
        b.consume(2, 3, 7, &[0.9, f64::NAN]);
        a.absorb(b);
        let top = a.finish();
        assert_eq!(top.nan_pairs, 1);
        assert_eq!(top.edges.len(), 2);
        assert!((top.edges[0].corr - 0.9).abs() < 1e-15);
        assert!((top.edges[1].corr - 0.8).abs() < 1e-15);
    }

    #[test]
    fn top_k_zero_keeps_nothing_and_skips_everything() {
        let mut sink = TopKSink::new(0);
        sink.consume(0, 1, 0, &[0.9]);
        assert!(sink.tile_skippable(1.0));
        assert!(sink.finish().edges.is_empty());
    }

    #[test]
    fn stats_sink_aggregates_and_counts() {
        let mut sink = StatsSink::new();
        sink.consume(0, 1, 0, &[0.5, f64::NAN, -0.25]);
        sink.tile_skipped(1, 2, 10);
        assert_eq!(sink.count(), 2);
        assert_eq!(sink.nan_pair_count(), 1);
        assert_eq!(sink.skipped_pairs(), 10);
        assert!((sink.mean() - 0.125).abs() < 1e-15);
        assert_eq!(sink.min(), -0.25);
        assert_eq!(sink.max(), 0.5);
    }

    #[test]
    fn sweep_matrix_matches_lenient_threshold() {
        let mut m = CorrelationMatrix::identity(4);
        m.set(0, 1, 0.9);
        m.set(0, 2, f64::NAN);
        m.set(1, 3, 0.7);
        m.set(2, 3, -0.8);
        for tile in [1, 2, 64] {
            let mut sink = EdgeSink::new(0.6);
            sweep_matrix(&m, tile, &mut sink);
            let streamed = sink.finish(4).to_adjacency();
            let dense = m.threshold_lenient(0.6);
            assert_eq!(streamed, dense, "tile={tile}");
            assert_eq!(streamed.nan_pair_count(), dense.nan_pair_count());
        }
    }

    #[test]
    fn znorm_sweep_network_matches_dense_threshold() {
        let c = test_collection(8, 160);
        let b = 20;
        let sweep = ZnormSweep::build(&c, b, 0..8).unwrap();
        let sketch = SketchSet::build(&c, b).unwrap();
        let dense = exact::correlation_matrix_aligned(&sketch, 0..8).unwrap();
        for theta in [-0.5, 0.0, 0.3, 0.9] {
            let streamed = sweep.network_streamed(theta).unwrap();
            let reference = dense.threshold(theta).unwrap();
            assert_eq!(streamed.to_adjacency(), reference, "theta={theta}");
        }
        assert!(sweep.network_streamed(1.5).is_err());
    }

    #[test]
    fn znorm_sweep_top_k_matches_sorted_dense() {
        let c = test_collection(7, 120);
        let b = 15;
        let sweep = ZnormSweep::build(&c, b, 0..8).unwrap();
        let sketch = SketchSet::build(&c, b).unwrap();
        let dense = exact::correlation_matrix_aligned(&sketch, 0..8).unwrap();
        let mut all: Vec<(usize, usize, f64)> = dense.iter_pairs().collect();
        all.sort_by(|a, b| {
            b.2.total_cmp(&a.2)
                .then_with(|| pair_index(a.0, a.1, 7).cmp(&pair_index(b.0, b.1, 7)))
        });
        for k in [0, 1, 5, 21, 100] {
            let top = sweep.top_k(k);
            assert_eq!(top.edges.len(), k.min(all.len()), "k={k}");
            for (got, want) in top.edges.iter().zip(&all) {
                assert_eq!((got.i, got.j), (want.0, want.1), "k={k}");
                assert!((got.corr - want.2).abs() <= 1e-10);
            }
        }
    }

    #[test]
    fn bounds_dominate_every_pair_correlation() {
        let c = test_collection(6, 180);
        let sweep = ZnormSweep::build(&c, 30, 0..6).unwrap();
        let sketch = SketchSet::build(&c, 30).unwrap();
        let dense = exact::correlation_matrix_aligned(&sketch, 0..6).unwrap();
        let bounds = sweep.bounds();
        for (i, j, corr) in dense.iter_pairs() {
            assert!(
                corr <= bounds.pair_bound(i, j),
                "pair ({i},{j}): {corr} > {}",
                bounds.pair_bound(i, j)
            );
        }
    }

    #[test]
    fn pruned_sweep_agrees_with_unpruned_threshold() {
        let c = test_collection(9, 200);
        let sweep = ZnormSweep::build(&c, 25, 0..8).unwrap();
        let theta = 0.4;
        let mut pruned = EdgeSink::new(theta);
        sweep.sweep_into(true, 4, &mut pruned);
        let skipped = pruned.skipped_pairs();
        let pruned = pruned.finish(9);
        let unpruned = sweep.network_streamed(theta).unwrap();
        assert_eq!(pruned.edges(), unpruned.edges());
        // Audit counts stay consistent: observed + skipped = all pairs.
        assert!(skipped <= sweep.pair_count());
    }

    #[test]
    fn znorm_sweep_validates_inputs() {
        let c = test_collection(3, 100);
        assert!(ZnormSweep::build(&c, 20, 0..9).is_err());
        assert!(ZnormSweep::build(&c, 20, 2..2).is_err());
        let sweep = ZnormSweep::build(&c, 20, 0..5).unwrap();
        assert_eq!(sweep.series_count(), 3);
        assert_eq!(sweep.window_count(), 5);
        assert_eq!(sweep.pair_count(), 3);
    }

    #[test]
    fn edge_list_parts_and_absorb() {
        let mut a = EdgeList::from_parts(5, vec![(0, 1)], 1);
        let b = EdgeList::from_parts(5, vec![(2, 4)], 2);
        a.absorb(b);
        a.add_nan_pairs(1);
        assert_eq!(a.edge_count(), 2);
        assert_eq!(a.nan_pair_count(), 4);
        assert_eq!(a.node_count(), 5);
        let adj = a.to_adjacency();
        assert!(adj.has_edge(0, 1));
        assert!(adj.has_edge(4, 2));
        assert_eq!(adj.nan_pair_count(), 4);
    }
}
