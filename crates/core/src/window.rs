//! Query windows, basic windows, and the mapping between them.
//!
//! A *query window* `w = (e, l)` selects the sub-sequence of length `l`
//! ending at (and including) timestamp `e` — exactly the paper's definition
//! (§2.1). A *basic window* of size `B` is the unit of sketching: the stream
//! is cut into consecutive chunks `[j·B, (j+1)·B)`.
//!
//! TSUBASA's Lemma 1 removes the classic restriction that `l` must be an
//! integral multiple of `B`. [`WindowSegmentation`] is the mapping that makes
//! this possible: it decomposes a query window into
//!
//! * an optional *partial head* (the tail of the basic window containing the
//!   query start),
//! * a run of *full* basic windows whose statistics come from the sketch, and
//! * an optional *partial tail* (the head of the basic window containing the
//!   query end).
//!
//! Partial spans are re-sketched from raw data at query time; full windows
//! reuse the pre-computed statistics.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// A user query window `w = (e, l)`: the `l` points ending at index `e`
/// (inclusive). Indices are 0-based positions in the synchronized stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryWindow {
    /// Inclusive end index of the window.
    pub end: usize,
    /// Number of points in the window.
    pub len: usize,
}

impl QueryWindow {
    /// Create a query window ending at `end` (inclusive) containing `len`
    /// points. Fails if the window would start before index 0 or is empty.
    pub fn new(end: usize, len: usize) -> Result<Self> {
        if len == 0 || len > end + 1 {
            return Err(Error::InvalidQueryWindow {
                end,
                len,
                series_len: end + 1,
            });
        }
        Ok(Self { end, len })
    }

    /// The query window covering the `len` most recent points of a stream
    /// currently holding `now` points — the paper's `w = ("now", l)`.
    pub fn latest(now: usize, len: usize) -> Result<Self> {
        if now == 0 {
            return Err(Error::EmptyInput("latest() on an empty stream"));
        }
        Self::new(now - 1, len)
    }

    /// First index covered by the window (inclusive).
    pub fn start(&self) -> usize {
        self.end + 1 - self.len
    }

    /// Half-open span `[start, end+1)` covered by the window.
    pub fn span(&self) -> WindowSpan {
        WindowSpan {
            start: self.start(),
            end: self.end + 1,
        }
    }

    /// Check that the window fits inside a series of `series_len` points.
    pub fn validate(&self, series_len: usize) -> Result<()> {
        if self.end >= series_len {
            return Err(Error::InvalidQueryWindow {
                end: self.end,
                len: self.len,
                series_len,
            });
        }
        Ok(())
    }

    /// Slide the window forward by `step` points, keeping its length. This is
    /// the real-time `("now", l)` window after `step` new points arrive.
    pub fn advanced(&self, step: usize) -> QueryWindow {
        QueryWindow {
            end: self.end + step,
            len: self.len,
        }
    }
}

/// A half-open index range `[start, end)` over the raw stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WindowSpan {
    /// First index covered (inclusive).
    pub start: usize,
    /// One past the last index covered.
    pub end: usize,
}

impl WindowSpan {
    /// Number of points in the span.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True for the degenerate empty span.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Slice `values` by this span.
    pub fn slice<'a>(&self, values: &'a [f64]) -> &'a [f64] {
        &values[self.start..self.end]
    }
}

/// The basic-window configuration: fixed window size `B` applied from index
/// zero of the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BasicWindowing {
    /// Number of points per basic window (`B`).
    pub size: usize,
}

impl BasicWindowing {
    /// Create a basic-window configuration. `size` must be at least 1.
    pub fn new(size: usize) -> Result<Self> {
        if size == 0 {
            return Err(Error::InvalidBasicWindow {
                window: 0,
                series_len: 0,
            });
        }
        Ok(Self { size })
    }

    /// Number of *complete* basic windows available in a stream of
    /// `series_len` points. A trailing remainder shorter than `B` is not
    /// sketched (it is always re-computed from raw data when a query touches
    /// it, and the streaming layer waits for a full chunk before updating).
    pub fn complete_windows(&self, series_len: usize) -> usize {
        series_len / self.size
    }

    /// The half-open span of raw indices covered by basic window `j`.
    pub fn window_span(&self, j: usize) -> WindowSpan {
        WindowSpan {
            start: j * self.size,
            end: (j + 1) * self.size,
        }
    }

    /// Index of the basic window containing raw index `i`.
    pub fn window_of(&self, i: usize) -> usize {
        i / self.size
    }

    /// Decompose a query window into partial head / full windows / partial
    /// tail. See the module documentation.
    pub fn segment(&self, query: QueryWindow) -> WindowSegmentation {
        let span = query.span();
        let b = self.size;
        let first_window = span.start / b;
        let last_window = (span.end - 1) / b; // window containing the last covered index

        if first_window == last_window {
            // The whole query lies inside a single basic window. Whether it
            // covers that window exactly or only part of it decides between a
            // single full window and a single partial span.
            let w = self.window_span(first_window);
            if w.start == span.start && w.end == span.end {
                return WindowSegmentation {
                    head: None,
                    full: first_window..first_window + 1,
                    tail: None,
                };
            }
            return WindowSegmentation {
                head: Some(span),
                full: 0..0,
                tail: None,
            };
        }

        // Partial head: the query starts inside basic window `first_window`
        // but does not cover it from the beginning.
        let head = if span.start.is_multiple_of(b) {
            None
        } else {
            Some(WindowSpan {
                start: span.start,
                end: (first_window + 1) * b,
            })
        };
        // Partial tail: the query ends inside basic window `last_window`
        // before its last point.
        let tail = if span.end.is_multiple_of(b) {
            None
        } else {
            Some(WindowSpan {
                start: last_window * b,
                end: span.end,
            })
        };

        let full_start = if head.is_some() {
            first_window + 1
        } else {
            first_window
        };
        let full_end = if tail.is_some() {
            last_window
        } else {
            last_window + 1
        };

        WindowSegmentation {
            head,
            full: full_start..full_end,
            tail,
        }
    }
}

/// Decomposition of a query window into sketched and re-computed pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSegmentation {
    /// Raw span preceding the first full basic window (needs on-the-fly
    /// sketching), if the query start is unaligned.
    pub head: Option<WindowSpan>,
    /// Range of basic-window indices fully covered by the query; their
    /// statistics come from the pre-computed sketch.
    pub full: std::ops::Range<usize>,
    /// Raw span following the last full basic window, if the query end is
    /// unaligned.
    pub tail: Option<WindowSpan>,
}

impl WindowSegmentation {
    /// True when the query aligns exactly with basic-window boundaries — the
    /// "special case" of Lemma 1 used by Algorithms 1–3.
    pub fn is_aligned(&self) -> bool {
        self.head.is_none() && self.tail.is_none()
    }

    /// Number of full basic windows covered.
    pub fn full_count(&self) -> usize {
        self.full.len()
    }

    /// Total number of raw points covered (sanity check against the query
    /// length).
    pub fn total_points(&self, basic_window: usize) -> usize {
        self.head.map_or(0, |s| s.len())
            + self.full.len() * basic_window
            + self.tail.map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_window_start_and_span() {
        let w = QueryWindow::new(9, 4).unwrap();
        assert_eq!(w.start(), 6);
        assert_eq!(w.span(), WindowSpan { start: 6, end: 10 });
        assert_eq!(w.span().len(), 4);
    }

    #[test]
    fn query_window_rejects_invalid() {
        assert!(QueryWindow::new(3, 0).is_err());
        assert!(QueryWindow::new(3, 5).is_err());
        assert!(QueryWindow::new(3, 4).is_ok()); // starts exactly at 0
    }

    #[test]
    fn latest_window_matches_now_semantics() {
        let w = QueryWindow::latest(100, 30).unwrap();
        assert_eq!(w.end, 99);
        assert_eq!(w.start(), 70);
        assert!(QueryWindow::latest(0, 1).is_err());
    }

    #[test]
    fn advanced_slides_forward() {
        let w = QueryWindow::new(9, 4).unwrap();
        let v = w.advanced(5);
        assert_eq!(v.end, 14);
        assert_eq!(v.len, 4);
    }

    #[test]
    fn basic_windowing_rejects_zero() {
        assert!(BasicWindowing::new(0).is_err());
    }

    #[test]
    fn complete_windows_ignores_remainder() {
        let b = BasicWindowing::new(4).unwrap();
        assert_eq!(b.complete_windows(16), 4);
        assert_eq!(b.complete_windows(17), 4);
        assert_eq!(b.complete_windows(3), 0);
    }

    #[test]
    fn segment_aligned_query() {
        let b = BasicWindowing::new(5).unwrap();
        // Query covering indices 5..20: exactly basic windows 1, 2, 3.
        let q = QueryWindow::new(19, 15).unwrap();
        let seg = b.segment(q);
        assert!(seg.is_aligned());
        assert_eq!(seg.full, 1..4);
        assert_eq!(seg.total_points(5), 15);
    }

    #[test]
    fn segment_unaligned_both_ends() {
        let b = BasicWindowing::new(5).unwrap();
        // Indices 3..=12 (len 10): head 3..5, full window 1 (5..10), tail 10..13.
        let q = QueryWindow::new(12, 10).unwrap();
        let seg = b.segment(q);
        assert_eq!(seg.head, Some(WindowSpan { start: 3, end: 5 }));
        assert_eq!(seg.full, 1..2);
        assert_eq!(seg.tail, Some(WindowSpan { start: 10, end: 13 }));
        assert_eq!(seg.total_points(5), 10);
    }

    #[test]
    fn segment_unaligned_head_only() {
        let b = BasicWindowing::new(5).unwrap();
        // Indices 2..=9 (len 8): head 2..5, full window 1 (5..10), no tail.
        let q = QueryWindow::new(9, 8).unwrap();
        let seg = b.segment(q);
        assert_eq!(seg.head, Some(WindowSpan { start: 2, end: 5 }));
        assert_eq!(seg.full, 1..2);
        assert_eq!(seg.tail, None);
    }

    #[test]
    fn segment_unaligned_tail_only() {
        let b = BasicWindowing::new(5).unwrap();
        // Indices 5..=11 (len 7): no head, full window 1, tail 10..12.
        let q = QueryWindow::new(11, 7).unwrap();
        let seg = b.segment(q);
        assert_eq!(seg.head, None);
        assert_eq!(seg.full, 1..2);
        assert_eq!(seg.tail, Some(WindowSpan { start: 10, end: 12 }));
    }

    #[test]
    fn segment_inside_single_window() {
        let b = BasicWindowing::new(10).unwrap();
        // Indices 2..=7, entirely inside basic window 0 but not covering it.
        let q = QueryWindow::new(7, 6).unwrap();
        let seg = b.segment(q);
        assert_eq!(seg.head, Some(WindowSpan { start: 2, end: 8 }));
        assert_eq!(seg.full, 0..0);
        assert_eq!(seg.tail, None);
        assert_eq!(seg.total_points(10), 6);
    }

    #[test]
    fn segment_exactly_one_window() {
        let b = BasicWindowing::new(10).unwrap();
        let q = QueryWindow::new(19, 10).unwrap();
        let seg = b.segment(q);
        assert!(seg.is_aligned());
        assert_eq!(seg.full, 1..2);
    }

    #[test]
    fn segment_spanning_two_windows_unaligned() {
        let b = BasicWindowing::new(10).unwrap();
        // Indices 5..=14: head 5..10, tail 10..15, zero full windows.
        let q = QueryWindow::new(14, 10).unwrap();
        let seg = b.segment(q);
        assert_eq!(seg.head, Some(WindowSpan { start: 5, end: 10 }));
        assert_eq!(seg.full, 1..1);
        assert_eq!(seg.full_count(), 0);
        assert_eq!(seg.tail, Some(WindowSpan { start: 10, end: 15 }));
        assert_eq!(seg.total_points(10), 10);
    }

    #[test]
    fn window_of_and_window_span_agree() {
        let b = BasicWindowing::new(7).unwrap();
        for i in 0..100 {
            let j = b.window_of(i);
            let span = b.window_span(j);
            assert!(span.start <= i && i < span.end);
        }
    }
}
