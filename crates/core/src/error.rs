//! Error type shared by the TSUBASA core crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by the core sketching and correlation machinery.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A collection was constructed from series of differing lengths, or with
    /// no series at all.
    UnalignedSeries {
        /// Length of the first series.
        expected: usize,
        /// Length of the offending series.
        found: usize,
        /// Index of the offending series in the input.
        index: usize,
    },
    /// An empty series or empty collection was supplied where data is
    /// required.
    EmptyInput(&'static str),
    /// A basic-window size of zero, or larger than the series, was requested.
    InvalidBasicWindow {
        /// The requested basic window size.
        window: usize,
        /// The series length it was applied to.
        series_len: usize,
    },
    /// A query window is empty, or does not fit inside the available data.
    InvalidQueryWindow {
        /// End timestamp (inclusive index) of the query window.
        end: usize,
        /// Requested length.
        len: usize,
        /// Length of the underlying series.
        series_len: usize,
    },
    /// A series id was out of range for the collection / sketch it was used
    /// with.
    UnknownSeries(usize),
    /// A sketch was built with a different basic-window configuration than
    /// the one requested at query time.
    SketchMismatch {
        /// What the caller asked for.
        requested: String,
        /// What the sketch actually contains.
        available: String,
    },
    /// A correlation threshold outside `[-1, 1]` was supplied.
    InvalidThreshold(f64),
    /// The incremental updater was fed a chunk whose size does not match the
    /// configured basic window.
    ChunkSizeMismatch {
        /// Expected chunk length (the basic window size).
        expected: usize,
        /// Length of the chunk actually delivered.
        found: usize,
    },
    /// A query window over which at least one series is constant: the
    /// correlation denominator is non-positive and Pearson correlation is
    /// undefined. Callers that prefer the classic "constant ⇒ 0.0"
    /// convention (e.g. matrix construction) map this error to `0.0`
    /// explicitly instead of the old silent fallback.
    DegenerateWindow {
        /// Number of raw points covered by the degenerate query window.
        points: usize,
    },
    /// Thresholding (or ranking) ran into NaN correlations. NaN legitimately
    /// appears in matrices assembled from store records whose sketch method
    /// does not match the query method; treating those entries as "no edge"
    /// silently produced a plausible-looking but wrong network. The strict
    /// API surfaces them instead; the `*_lenient` variants skip and count
    /// them for callers that opt in.
    NanCorrelations {
        /// Number of pairs whose correlation was NaN.
        pairs: usize,
    },
    /// A dense all-pairs buffer would exceed the configured memory budget
    /// (`TSUBASA_DENSE_LIMIT_BYTES`, default 32 GiB). The streamed sweep API
    /// (`network_streamed` / `top_k`) covers the same queries in O(tile)
    /// memory.
    TooLarge {
        /// Bytes the dense buffer would require (u128: the product can
        /// overflow u64 for adversarial inputs).
        bytes: u128,
        /// The configured limit in bytes.
        limit: u64,
    },
    /// Two network snapshots (or a snapshot and the delta/tracker state it is
    /// applied to) cover different node sets, so edge-level comparison or
    /// delta application is undefined. Earlier versions panicked here; the
    /// dynamics path now surfaces the mismatch as a typed error.
    Mismatch {
        /// Node count expected by the receiving side.
        expected: usize,
        /// Node count actually supplied.
        found: usize,
    },
    /// Catch-all for storage-layer and I/O failures surfaced through the core
    /// API (the storage crate wraps `std::io::Error` into this).
    Storage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnalignedSeries {
                expected,
                found,
                index,
            } => write!(
                f,
                "series {index} has length {found}, expected {expected}: all series in a \
                 collection must be synchronized to the same length"
            ),
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::InvalidBasicWindow { window, series_len } => write!(
                f,
                "invalid basic window size {window} for series of length {series_len}"
            ),
            Error::InvalidQueryWindow {
                end,
                len,
                series_len,
            } => write!(
                f,
                "query window (end={end}, len={len}) does not fit in series of length {series_len}"
            ),
            Error::UnknownSeries(id) => write!(f, "unknown series id {id}"),
            Error::SketchMismatch {
                requested,
                available,
            } => write!(
                f,
                "sketch mismatch: requested {requested}, sketch contains {available}"
            ),
            Error::InvalidThreshold(t) => {
                write!(
                    f,
                    "correlation threshold {t} outside the valid range [-1, 1]"
                )
            }
            Error::DegenerateWindow { points } => write!(
                f,
                "degenerate query window: a series is constant over all {points} covered points, \
                 so its Pearson correlation is undefined"
            ),
            Error::ChunkSizeMismatch { expected, found } => write!(
                f,
                "ingested chunk of {found} points, but the basic window size is {expected}"
            ),
            Error::NanCorrelations { pairs } => write!(
                f,
                "{pairs} pair correlation(s) are NaN (missing or method-mismatched sketch \
                 records); use the *_lenient thresholding variants to skip and count them"
            ),
            Error::TooLarge { bytes, limit } => write!(
                f,
                "dense correlation buffer would need {bytes} bytes, over the {limit}-byte \
                 budget (TSUBASA_DENSE_LIMIT_BYTES); use the streamed API \
                 (network_streamed / top_k) instead"
            ),
            Error::Mismatch { expected, found } => write!(
                f,
                "node count mismatch: snapshots must cover the same node set \
                 (expected {expected} nodes, found {found})"
            ),
            Error::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_human_readable() {
        let e = Error::UnalignedSeries {
            expected: 10,
            found: 8,
            index: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("series 3"));
        assert!(msg.contains("length 8"));
        assert!(msg.contains("expected 10"));
    }

    #[test]
    fn io_errors_convert_to_storage() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing page");
        let e: Error = io.into();
        match e {
            Error::Storage(msg) => assert!(msg.contains("missing page")),
            other => panic!("expected Storage, got {other:?}"),
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }

    #[test]
    fn threshold_error_mentions_range() {
        assert!(Error::InvalidThreshold(1.5).to_string().contains("[-1, 1]"));
    }

    #[test]
    fn nan_correlations_error_counts_pairs() {
        let msg = Error::NanCorrelations { pairs: 7 }.to_string();
        assert!(msg.contains("7 pair"));
        assert!(msg.contains("lenient"));
    }

    #[test]
    fn too_large_error_points_at_streamed_api() {
        let msg = Error::TooLarge {
            bytes: 1 << 40,
            limit: 1 << 30,
        }
        .to_string();
        assert!(msg.contains("network_streamed"));
        assert!(msg.contains("TSUBASA_DENSE_LIMIT_BYTES"));
    }
}
