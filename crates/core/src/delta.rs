//! Delta-maintained climate networks: per-tick edge subscriptions over the
//! sliding updaters (semi-naive evaluation of the thresholded network).
//!
//! [`crate::incremental::SlidingNetwork`] keeps every pair's correlation
//! exact under Lemma 2, but a consumer that wants the *network* still paid
//! `O(N²)` per tick: clone the matrix, re-threshold all pairs, diff the two
//! snapshots. This module turns that recompute-and-diff loop into an
//! incremental one: an [`EdgeWatch`] pinned to a threshold θ rides along with
//! the per-pair slide sweep and emits an [`EdgeDelta`] — exactly the edges
//! that appeared and vanished this tick — with no materialized matrix, no
//! re-threshold pass, and no allocation proportional to the unchanged pairs.
//!
//! # The per-pair change bound
//!
//! Write the Lemma 2 numerator for pair `(x, y)` as computed by
//! [`lemma2_update`]:
//!
//! ```text
//! N = T·σx·σy·c_old + Bn(σxn·σyn·c_n + dxn·dyn) − B1(σx1·σy1·c_1 + dx1·dy1)
//!     − T'·αx·αy
//! ```
//!
//! and split it into a *center* that uses only the pair-local correlations
//!
//! ```text
//! C = T·σx·σy·c_old + Bn·σxn·σyn·c_n − B1·σx1·σy1·c_1
//!   = g_x·g_y·c_old + a_x·a_y·c_n − e_x·e_y·c_1
//! ```
//!
//! with the per-series factors `g_i = √T·σ_i`, `e_i = √B1·σ_i,evicted`,
//! `a_i = √Bn·σ_i,arriving`. By Lemma 1's covariance decomposition,
//! `T·σx·σy·c_old = Σ_{k∈old} B_k·σxk·σyk·c_k + Σ_{k∈old} B_k·δxk·δyk` with
//! `δik = μ_ik − μ_i` (offset of window `k`'s mean from the old query mean),
//! so the remainder is the *difference of the two mean-shift sums*:
//!
//! ```text
//! N − C = Σ_{k∈new} B_k·δ'xk·δ'yk − Σ_{k∈old} B_k·δxk·δyk
//! ```
//!
//! (`δ'ik = μ_ik − μ'_i` offsets against the new query mean). A naive bound
//! here (Cauchy–Schwarz on each sum separately) is hopeless on climate-like
//! data — between-window mean variance is a large fraction of total
//! variance, so the radius swallows θ. But the difference collapses: on the
//! `W = T − B1` points shared by both windows, the quadratic `μ_xk·μ_yk`
//! terms cancel,
//!
//! ```text
//! δ'xk·δ'yk − δxk·δyk = μ_xk(μ_y − μ'_y) + μ_yk(μ_x − μ'_x)
//!                       + (μ'_x·μ'_y − μ_x·μ_y)
//! ```
//!
//! leaving sums *linear* in the window means, which reduce to per-series
//! aggregates (`S_i = Σ_{k∈shared} B_k·μ_ik`, i.e. the shared points' sum).
//! With `Δμ_i = μ_i − μ'_i`, `u_i = μ_i1 − μ_i`, `v_i = μ_i,arr − μ'_i`:
//!
//! ```text
//! N − C = Δμ_y·S_x + Δμ_x·S_y + W·(μ'_x·μ'_y − μ_x·μ_y)
//!         + Bn·v_x·v_y − B1·u_x·u_y
//! ```
//!
//! — exact in real arithmetic, `O(1)` per pair from per-series tables. The
//! Lemma 2 denominator factors per series as well (`√(var term)` depends
//! only on one series), so with `D = den'_x·den'_y` and `V = C + (N − C)`
//! the certification only needs a pad `R` covering same-tick floating-point
//! rounding between this factored arithmetic and [`lemma2_update`]'s (the
//! identity is algebra on the very values the update reads). Since clamping
//! to `[−1, 1]` never moves a value across a threshold `θ ∈ [−1, 1)` from
//! the side these comparisons place it on:
//!
//! * `V + R ≤ θ·D` certifies **no edge** (and a finite, non-NaN pair);
//! * `V − R > θ·D` (with `θ < 1`) certifies **edge**;
//! * anything else — including any NaN, a degenerate (non-positive) variance
//!   term, an underflowed denominator, or a correlation within `R/D` of θ —
//!   falls through to a *re-check* against the freshly computed correlation
//!   with the exact `threshold_lenient` semantics (NaN pairs are counted,
//!   never dropped).
//!
//! Every quantity in the test is per-series (`O(N·ns)` per tick to build the
//! [`DeltaBoundTables`]) except the three correlations `c_old`, `c_1`, `c_n`,
//! which the sweep already holds. The pad is scaled by a per-series
//! magnitude envelope whose product dominates the absolute sum of the
//! recombination's terms, so a pair only re-checks when its correlation sits
//! within relative rounding distance of θ. The `delta_agreement` suite
//! pins the resulting guarantee: previous snapshot + emitted delta equals a
//! full re-threshold bit-for-bit, with zero false negatives from the pruning
//! bound.
//!
//! The DFT engine reuses the same machinery verbatim: Equation 6 is Lemma 2
//! over distance-derived window correlations `ĉ = 1 − d²/2`, so certifying
//! `ĉ` against θ is the correlation-domain mirror of Equation 4's radius
//! predicate `d ≶ √(2(1 − θ))`.

use crate::error::{Error, Result};
use crate::exact::WindowContribution;
use crate::incremental::{lemma2_update, SlidingSeriesState};
use crate::matrix::AdjacencyMatrix;
use crate::plan::{even_sizes, row_segments};
use crate::runner::{Job, JobRunner};
use crate::stats::WindowStats;

/// Pad applied to the certification interval, scaled by the magnitudes
/// involved, to cover same-tick floating-point rounding between the bound's
/// factored arithmetic and [`lemma2_update`]'s.
const DELTA_BOUND_PAD: f64 = 1e-9;

/// The edge-level change of one ingest tick, as emitted by a subscribed
/// sliding updater: applying `appeared`/`vanished` to the previous snapshot
/// reproduces a full re-threshold of the post-tick correlations exactly
/// (same edge set, same NaN audit).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgeDelta {
    /// Node (series) count of the network the delta applies to.
    pub nodes: usize,
    /// Pairs `(i, j)`, `i < j`, that became edges this tick, in ascending
    /// packed-pair order.
    pub appeared: Vec<(usize, usize)>,
    /// Pairs that stopped being edges this tick, in ascending packed-pair
    /// order.
    pub vanished: Vec<(usize, usize)>,
    /// Pairs whose post-tick correlation is NaN (audited, never silently
    /// skipped) — the `nan_pair_count` a full lenient re-threshold would
    /// report.
    pub nan_pairs: usize,
    /// Pairs the bound could not certify on one side of θ, re-checked
    /// against the computed correlation.
    pub rechecked_pairs: usize,
    /// Total pairs swept this tick (`N(N−1)/2`).
    pub total_pairs: usize,
}

impl EdgeDelta {
    /// Apply this delta to the snapshot it was emitted against, advancing it
    /// to the post-tick network (edge bits and NaN audit count). Returns
    /// [`Error::Mismatch`] when the snapshot covers a different node set.
    pub fn apply_to(&self, snapshot: &mut AdjacencyMatrix) -> Result<()> {
        if snapshot.len() != self.nodes {
            return Err(Error::Mismatch {
                expected: self.nodes,
                found: snapshot.len(),
            });
        }
        for &(i, j) in &self.appeared {
            snapshot.set_edge(i, j, true);
        }
        for &(i, j) in &self.vanished {
            snapshot.set_edge(i, j, false);
        }
        snapshot.set_nan_pair_count(self.nan_pairs);
        Ok(())
    }

    /// `true` when the tick changed no edge (the NaN count may still differ
    /// from the previous tick's).
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.vanished.is_empty()
    }
}

/// A θ-pinned subscription over a sliding updater's edge set: holds the
/// current edge bits and, after every ingest tick, the [`EdgeDelta`] the
/// watched slide sweep emitted.
#[derive(Debug, Clone)]
pub struct EdgeWatch {
    theta: f64,
    nodes: usize,
    edges: Vec<bool>,
    last: Option<EdgeDelta>,
}

impl EdgeWatch {
    /// Subscribe at threshold `theta` over the current packed correlations.
    /// Returns the watch plus the baseline snapshot (identical to a lenient
    /// re-threshold of `corrs`, NaN audit included) that subsequent deltas
    /// advance.
    pub fn new(theta: f64, nodes: usize, corrs: &[f64]) -> Result<(Self, AdjacencyMatrix)> {
        if !(-1.0..=1.0).contains(&theta) {
            return Err(Error::InvalidThreshold(theta));
        }
        let mut edges = vec![false; corrs.len()];
        let mut nan_pairs = 0usize;
        for (slot, &c) in edges.iter_mut().zip(corrs) {
            if c.is_nan() {
                nan_pairs += 1;
            } else {
                *slot = c > theta;
            }
        }
        let mut baseline = AdjacencyMatrix::from_upper_triangle(nodes, edges.clone());
        baseline.set_nan_pair_count(nan_pairs);
        Ok((
            Self {
                theta,
                nodes,
                edges,
                last: None,
            },
            baseline,
        ))
    }

    /// The subscribed threshold θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The delta emitted by the most recent ingest tick (`None` before the
    /// first tick after subscribing).
    pub fn last(&self) -> Option<&EdgeDelta> {
        self.last.as_ref()
    }
}

/// Per-series certification tables for one ingest tick, `O(N·ns)` to build:
/// every per-pair bound in the watched sweep is a product of two entries.
/// See the module docs for the derivation.
#[derive(Debug, Clone)]
pub struct DeltaBoundTables {
    /// `√T·σ_i` over the old query window (`g_x·g_y·c_old` is the old
    /// covariance term of the Lemma 2 numerator).
    g: Vec<f64>,
    /// `√B1·σ` of the evicted basic window.
    e: Vec<f64>,
    /// `√Bn·σ` of the arriving basic window.
    a: Vec<f64>,
    /// Query-window mean before the slide (`μ_i`).
    mu_old: Vec<f64>,
    /// Query-window mean after the slide (`μ'_i`).
    mu_new: Vec<f64>,
    /// Weighted shared-window mean sum `S_i = Σ_{k∈shared} B_k·μ_ik` — the
    /// raw sum of the points both windows share.
    s: Vec<f64>,
    /// Evicted window's mean offset from the old query mean
    /// (`u_i = μ_i1 − μ_i`).
    u: Vec<f64>,
    /// Arriving window's mean offset from the new query mean
    /// (`v_i = μ_i,arr − μ'_i`).
    v: Vec<f64>,
    /// Shared point count `W = T − B1` (per series; equal across aligned
    /// series).
    w: Vec<f64>,
    /// Evicted basic-window length `B1`.
    b1: Vec<f64>,
    /// Arriving basic-window length `Bn`.
    bn: Vec<f64>,
    /// Per-series magnitude envelope: `pad_i·pad_j` upper-bounds (within a
    /// small constant) the absolute sum of every term in the pair's
    /// recombination, so one multiply scales the rounding pad.
    pad: Vec<f64>,
    /// `√(var term)` of the slid window — the per-series factor of the
    /// Lemma 2 denominator. NaN when the variance term is non-positive or
    /// NaN, which forces every pair of the series into the re-check path
    /// (mirroring `lemma2_update`'s degenerate 0.0 return).
    den_new: Vec<f64>,
}

impl DeltaBoundTables {
    /// Build the tables for the tick that evicts `fronts[i]` and appends
    /// `arriving[i]`, from the same pre-slide snapshots the sweep reads.
    pub fn build(
        series: &[SlidingSeriesState],
        fronts: &[WindowStats],
        totals: &[f64],
        means: &[f64],
        stds: &[f64],
        arriving: &[WindowStats],
    ) -> Self {
        let n = series.len();
        let mut tables = Self {
            g: Vec::with_capacity(n),
            e: Vec::with_capacity(n),
            a: Vec::with_capacity(n),
            mu_old: Vec::with_capacity(n),
            mu_new: Vec::with_capacity(n),
            s: Vec::with_capacity(n),
            u: Vec::with_capacity(n),
            v: Vec::with_capacity(n),
            w: Vec::with_capacity(n),
            b1: Vec::with_capacity(n),
            bn: Vec::with_capacity(n),
            pad: Vec::with_capacity(n),
            den_new: Vec::with_capacity(n),
        };
        for i in 0..n {
            let (t, mu, sd) = (totals[i], means[i], stds[i]);
            let (ev, ar) = (fronts[i], arriving[i]);
            let (b1, bn) = (ev.len as f64, ar.len as f64);
            let t_new = t - b1 + bn;

            // The variance term exactly as `lemma2_update` computes it, so
            // the certified interval brackets the value the sweep divides by.
            let d1 = ev.mean - mu;
            let dn = ar.mean - mu;
            let alpha = (bn * dn - b1 * d1) / t_new;
            let vt = t * sd * sd + bn * (ar.std.powi(2) + dn * dn)
                - b1 * (ev.std.powi(2) + d1 * d1)
                - t_new * alpha * alpha;
            tables
                .den_new
                .push(if vt > 0.0 { vt.sqrt() } else { f64::NAN });

            tables.g.push(t.sqrt() * sd);
            tables.e.push(b1.sqrt() * ev.std);
            tables.a.push(bn.sqrt() * ar.std);

            // The shared points' raw sum, accumulated window by window (every
            // basic window except the evicted front survives the slide).
            let mut shared_sum = 0.0;
            for w in series[i].window_stats().skip(1) {
                shared_sum += w.sum();
            }
            let mu_new = (shared_sum + ar.sum()) / t_new;
            let v = ar.mean - mu_new;
            let w = t - b1;
            tables.mu_old.push(mu);
            tables.mu_new.push(mu_new);
            tables.s.push(shared_sum);
            tables.u.push(d1);
            tables.v.push(v);
            tables.w.push(w);
            tables.b1.push(b1);
            tables.bn.push(bn);

            // Every per-pair term is a product of one entry of this series'
            // envelope and one of the partner's (|c| ≤ 1 for the three
            // correlation factors), so `pad_i·pad_j` dominates the absolute
            // sum of the recombination up to a small constant — folded into
            // `DELTA_BOUND_PAD`'s slack.
            let den = *tables.den_new.last().expect("pushed above");
            tables.pad.push(
                tables.g[i]
                    + tables.e[i]
                    + tables.a[i]
                    + shared_sum.abs()
                    + (mu - mu_new).abs()
                    + w.sqrt() * (mu.abs() + mu_new.abs())
                    + b1.sqrt() * d1.abs()
                    + bn.sqrt() * v.abs()
                    + den,
            );
        }
        tables
    }
}

/// The flat pre-slide snapshots both sliding engines feed to the per-pair
/// sweep: per-series aggregates of the old query window, the evicted and
/// arriving basic-window statistics, and the packed per-pair correlations of
/// the evicted and arriving windows (the DFT engine converts its coefficient
/// distances with `ĉ = 1 − d²/2` first — Equation 6 is Lemma 2 over those).
#[derive(Debug)]
pub struct SlideSweepInputs<'a> {
    /// Number of series.
    pub n: usize,
    /// Packed per-pair correlations of the evicted basic window (`c_1`).
    pub evicted_corrs: &'a [f64],
    /// Packed per-pair correlations of the arriving basic window (`c_{ns+1}`).
    pub arriving_corrs: &'a [f64],
    /// Statistics of each series' evicted (front) basic window.
    pub fronts: &'a [WindowStats],
    /// `T` per series (raw length of the old query window).
    pub totals: &'a [f64],
    /// Mean per series over the old query window.
    pub means: &'a [f64],
    /// Standard deviation per series over the old query window.
    pub stds: &'a [f64],
    /// Statistics of each series' arriving basic window.
    pub arriving_stats: &'a [WindowStats],
}

impl SlideSweepInputs<'_> {
    #[inline]
    fn update_pair(&self, i: usize, j: usize, idx: usize, corr_t: f64) -> f64 {
        let evicted = WindowContribution {
            x: self.fronts[i],
            y: self.fronts[j],
            corr: self.evicted_corrs[idx],
        };
        let arriving = WindowContribution {
            x: self.arriving_stats[i],
            y: self.arriving_stats[j],
            corr: self.arriving_corrs[idx],
        };
        lemma2_update(
            self.totals[i],
            self.means[i],
            self.means[j],
            self.stds[i],
            self.stds[j],
            corr_t,
            &evicted,
            &arriving,
        )
    }
}

/// Per-worker change accumulator for the watched sweep. Workers own disjoint
/// ascending pair ranges, so concatenating the scratches in worker order
/// yields the delta's ascending pair order without a sort.
#[derive(Debug, Default)]
struct DeltaScratch {
    appeared: Vec<(usize, usize)>,
    vanished: Vec<(usize, usize)>,
    nan_pairs: usize,
    rechecked: usize,
}

/// Carve a buffer into disjoint contiguous mutable slices of `sizes`, in
/// order (the generic twin of [`crate::plan::carve_packed_slices`], needed
/// here for the watch's edge bits).
fn carve_mut<'a, T>(mut values: &'a mut [T], sizes: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let (chunk, rest) = values.split_at_mut(size);
        out.push(chunk);
        values = rest;
    }
    out
}

/// Apply the per-pair sliding update (Lemma 2 / Equation 6) to every pair of
/// `corrs`, one disjoint contiguous slice of the packed triangle per worker
/// of `runner` — the sweep shared by
/// [`SlidingNetwork::ingest_in`](crate::incremental::SlidingNetwork::ingest_in)
/// and `SlidingApproxNetwork::ingest_in`. Identical to a serial sweep for
/// any worker count: each pair reads only the shared snapshots and writes
/// its own slot.
///
/// With a `watch`, the same sweep additionally maintains the subscribed edge
/// set: each pair is first certified against the watch's θ through the
/// per-series change bound (see the module docs), falling back to a re-check
/// of the freshly computed correlation only when the bound straddles θ; the
/// resulting [`EdgeDelta`] lands in [`EdgeWatch::last`].
pub fn slide_pair_sweep(
    runner: &dyn JobRunner,
    inputs: &SlideSweepInputs<'_>,
    corrs: &mut [f64],
    watch: Option<(&mut EdgeWatch, &DeltaBoundTables)>,
) {
    let n = inputs.n;
    let total = corrs.len();
    let workers = runner.worker_count().max(1).min(total.max(1));
    let sizes: Vec<usize> = even_sizes(total, workers)
        .into_iter()
        .filter(|&s| s > 0)
        .collect();
    let starts: Vec<usize> = sizes
        .iter()
        .scan(0usize, |acc, s| {
            let start = *acc;
            *acc += s;
            Some(start)
        })
        .collect();
    let corr_slices = carve_mut(corrs, &sizes);

    match watch {
        None => {
            let jobs: Vec<Job<'_>> = starts
                .iter()
                .zip(corr_slices)
                .map(|(&start, slice)| {
                    Box::new(move || {
                        let mut cursor = 0;
                        for (i, j0, len) in row_segments(start, slice.len(), n) {
                            for p in 0..len {
                                let j = j0 + p;
                                slice[cursor] =
                                    inputs.update_pair(i, j, start + cursor, slice[cursor]);
                                cursor += 1;
                            }
                        }
                    }) as Job<'_>
                })
                .collect();
            runner.run(jobs);
        }
        Some((watch, tables)) => {
            let theta = watch.theta;
            let edge_slices = carve_mut(&mut watch.edges, &sizes);
            let mut scratches: Vec<DeltaScratch> =
                (0..sizes.len()).map(|_| DeltaScratch::default()).collect();
            let jobs: Vec<Job<'_>> = starts
                .iter()
                .zip(corr_slices)
                .zip(edge_slices)
                .zip(scratches.iter_mut())
                .map(|(((&start, slice), edges), scratch)| {
                    Box::new(move || {
                        let mut cursor = 0;
                        for (i, j0, len) in row_segments(start, slice.len(), n) {
                            for p in 0..len {
                                let j = j0 + p;
                                let idx = start + cursor;
                                let c_new = inputs.update_pair(i, j, idx, slice[cursor]);
                                let c_old = std::mem::replace(&mut slice[cursor], c_new);

                                // Certify the slid correlation against θ from
                                // per-series tables; multiply the interval
                                // test through by the (positive) denominator
                                // so no division happens per pair. See the
                                // module docs: `value` recombines the Lemma 2
                                // numerator exactly (in real arithmetic), so
                                // the radius is the rounding pad alone,
                                // scaled by the terms' absolute sum to cover
                                // their cancellation.
                                let d = tables.den_new[i] * tables.den_new[j];
                                let cg = c_old * tables.g[i] * tables.g[j];
                                let ca = tables.a[i] * tables.a[j] * inputs.arriving_corrs[idx];
                                let ce = tables.e[i] * tables.e[j] * inputs.evicted_corrs[idx];
                                let t1 = (tables.mu_old[j] - tables.mu_new[j]) * tables.s[i];
                                let t2 = (tables.mu_old[i] - tables.mu_new[i]) * tables.s[j];
                                let cross_new = tables.mu_new[i] * tables.mu_new[j];
                                let cross_old = tables.mu_old[i] * tables.mu_old[j];
                                let t3 = tables.w[i] * (cross_new - cross_old);
                                let t4 = tables.bn[i] * tables.v[i] * tables.v[j];
                                let t5 = tables.b1[i] * tables.u[i] * tables.u[j];
                                let value = cg + ca - ce + t1 + t2 + t3 + t4 - t5;
                                let pad = DELTA_BOUND_PAD * tables.pad[i] * tables.pad[j];
                                let theta_d = theta * d;
                                // NaN anywhere makes both certifications
                                // false, so NaN pairs always re-check (and
                                // are counted, never skipped).
                                let (bit, is_nan) =
                                    if d > f64::MIN_POSITIVE && value + pad <= theta_d {
                                        (false, false)
                                    } else if d > f64::MIN_POSITIVE
                                        && theta < 1.0
                                        && value - pad > theta_d
                                    {
                                        (true, false)
                                    } else {
                                        scratch.rechecked += 1;
                                        if c_new.is_nan() {
                                            (false, true)
                                        } else {
                                            (c_new > theta, false)
                                        }
                                    };
                                scratch.nan_pairs += usize::from(is_nan);
                                if bit != edges[cursor] {
                                    edges[cursor] = bit;
                                    if bit {
                                        scratch.appeared.push((i, j));
                                    } else {
                                        scratch.vanished.push((i, j));
                                    }
                                }
                                cursor += 1;
                            }
                        }
                    }) as Job<'_>
                })
                .collect();
            runner.run(jobs);

            let mut delta = EdgeDelta {
                nodes: watch.nodes,
                total_pairs: total,
                ..EdgeDelta::default()
            };
            for scratch in scratches {
                delta.appeared.extend(scratch.appeared);
                delta.vanished.extend(scratch.vanished);
                delta.nan_pairs += scratch.nan_pairs;
                delta.rechecked_pairs += scratch.rechecked;
            }
            watch.last = Some(delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CorrelationMatrix;

    #[test]
    fn watch_baseline_matches_lenient_threshold() {
        let corrs = vec![0.9, -0.2, f64::NAN, 0.31, 0.3, 0.8];
        let (watch, baseline) = EdgeWatch::new(0.3, 4, &corrs).unwrap();
        let expected = CorrelationMatrix::from_upper_triangle(4, corrs).threshold_lenient(0.3);
        assert_eq!(baseline, expected);
        assert_eq!(baseline.nan_pair_count(), expected.nan_pair_count());
        assert_eq!(watch.theta(), 0.3);
        assert!(watch.last().is_none());
    }

    #[test]
    fn watch_rejects_invalid_theta() {
        assert!(matches!(
            EdgeWatch::new(1.5, 3, &[0.0; 3]),
            Err(Error::InvalidThreshold(_))
        ));
        assert!(matches!(
            EdgeWatch::new(f64::NAN, 3, &[0.0; 3]),
            Err(Error::InvalidThreshold(_))
        ));
    }

    #[test]
    fn apply_to_rejects_mismatched_node_counts() {
        let delta = EdgeDelta {
            nodes: 4,
            ..EdgeDelta::default()
        };
        let mut wrong = AdjacencyMatrix::empty(3);
        assert!(matches!(
            delta.apply_to(&mut wrong),
            Err(Error::Mismatch {
                expected: 4,
                found: 3
            })
        ));
    }

    #[test]
    fn apply_to_advances_edges_and_nan_audit() {
        let mut snapshot = AdjacencyMatrix::empty(3);
        snapshot.set_edge(0, 1, true);
        let delta = EdgeDelta {
            nodes: 3,
            appeared: vec![(1, 2)],
            vanished: vec![(0, 1)],
            nan_pairs: 2,
            rechecked_pairs: 3,
            total_pairs: 3,
        };
        delta.apply_to(&mut snapshot).unwrap();
        assert!(!snapshot.has_edge(0, 1));
        assert!(snapshot.has_edge(1, 2));
        assert_eq!(snapshot.nan_pair_count(), 2);
        assert!(!delta.is_empty());
        assert!(EdgeDelta::default().is_empty());
    }
}
