//! Capacity planning: the space/usability trade-off of §3.3.
//!
//! The sketch stores `L/B · (2N + N(N−1)/2)` floating-point values, so the
//! basic-window size `B` controls both the space overhead and the usability
//! of arbitrary query windows: a large `B` shrinks the sketch but makes the
//! partial head/tail windows of unaligned queries expensive
//! (`O(l*/B + B)` per pair). This module exposes the formulas the paper's
//! discussion uses so deployments can pick `B` deliberately.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};

/// Description of a planned sketch deployment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SketchPlan {
    /// Number of series (`N`).
    pub n_series: usize,
    /// Length of each series (`L`).
    pub series_len: usize,
    /// Basic-window size (`B`).
    pub basic_window: usize,
}

impl SketchPlan {
    /// Number of complete basic windows per series.
    pub fn windows(&self) -> usize {
        self.series_len / self.basic_window
    }

    /// Number of stored floating-point values — the paper's
    /// ψ = L/B · (2N + N(N−1)/2).
    pub fn stored_floats(&self) -> usize {
        self.windows() * (2 * self.n_series + self.n_series * (self.n_series - 1) / 2)
    }

    /// Stored bytes assuming `f64` statistics.
    pub fn stored_bytes(&self) -> usize {
        self.stored_floats() * std::mem::size_of::<f64>()
    }

    /// Per-pair cost (in touched sketch entries / raw points) of a query of
    /// length `query_len` whose boundaries may fall inside basic windows:
    /// `l*/B` interior windows plus up to `2B` raw points for the partial
    /// head and tail. This is the `O(l*/B + B)` expression of §3.3.
    pub fn generic_query_cost(&self, query_len: usize) -> usize {
        query_len / self.basic_window + 2 * self.basic_window
    }
}

/// Default budget for dense all-pairs buffers: 32 GiB.
pub const DEFAULT_DENSE_LIMIT_BYTES: u64 = 32 << 30;

/// The in-effect dense-buffer budget: `TSUBASA_DENSE_LIMIT_BYTES` when set
/// (`0` disables the check entirely), else
/// [`DEFAULT_DENSE_LIMIT_BYTES`].
pub fn dense_limit_bytes() -> Option<u64> {
    match std::env::var("TSUBASA_DENSE_LIMIT_BYTES")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(0) => None,
        Some(limit) => Some(limit),
        None => Some(DEFAULT_DENSE_LIMIT_BYTES),
    }
}

/// Check that a dense buffer of `pairs × windows` f64 values fits the
/// configured budget, erroring with [`Error::TooLarge`] (which points at the
/// streamed sweep API) instead of letting the allocator abort the process.
/// The product saturates in u128, so adversarially large requests fail
/// cleanly rather than overflowing.
pub fn check_dense_budget(pairs: usize, windows: usize) -> Result<()> {
    let Some(limit) = dense_limit_bytes() else {
        return Ok(());
    };
    let bytes = (pairs as u128)
        .saturating_mul(windows as u128)
        .saturating_mul(std::mem::size_of::<f64>() as u128);
    if bytes > limit as u128 {
        return Err(Error::TooLarge { bytes, limit });
    }
    Ok(())
}

/// The largest basic-window size is bounded below by the space budget: the
/// sketch of `n_series` series of length `series_len` fits in `budget_bytes`
/// only if `B` is at least this value. Returns an error when even `B =
/// series_len` (a single window) does not fit.
pub fn min_basic_window_for_budget(
    n_series: usize,
    series_len: usize,
    budget_bytes: usize,
) -> Result<usize> {
    if n_series == 0 || series_len == 0 {
        return Err(Error::EmptyInput(
            "capacity planning needs a non-empty dataset",
        ));
    }
    let per_window_floats = 2 * n_series + n_series * (n_series - 1) / 2;
    let per_window_bytes = per_window_floats * std::mem::size_of::<f64>();
    if per_window_bytes == 0 || budget_bytes < per_window_bytes {
        return Err(Error::Storage(format!(
            "budget of {budget_bytes} bytes cannot hold even one basic window \
             ({per_window_bytes} bytes per window for {n_series} series)"
        )));
    }
    let max_windows = budget_bytes / per_window_bytes;
    // L/B <= max_windows  ⇒  B >= ceil(L / max_windows).
    Ok(series_len.div_ceil(max_windows).max(1))
}

/// Pick a basic-window size that minimizes the generic (unaligned) query cost
/// `l*/B + 2B` for a typical query length, subject to the space budget. The
/// unconstrained optimum is `B ≈ √(l*/2)`; the space budget can only push it
/// upward.
pub fn recommend_basic_window(
    n_series: usize,
    series_len: usize,
    typical_query_len: usize,
    budget_bytes: usize,
) -> Result<usize> {
    let floor = min_basic_window_for_budget(n_series, series_len, budget_bytes)?;
    let optimum = ((typical_query_len as f64 / 2.0).sqrt().round() as usize).max(1);
    Ok(optimum.max(floor).min(series_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::SketchSet;
    use crate::timeseries::SeriesCollection;

    #[test]
    fn dense_budget_check_flags_oversized_requests() {
        // Within any sane default budget.
        assert!(check_dense_budget(1_000, 10).is_ok());
        // u128 arithmetic: usize::MAX² pairs × windows must not panic.
        let huge = check_dense_budget(usize::MAX, usize::MAX);
        match huge {
            Err(Error::TooLarge { bytes, limit }) => {
                assert!(bytes > limit as u128);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn stored_floats_matches_actual_sketch() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|s| {
                (0..120)
                    .map(|i| ((i * (s + 1)) as f64 * 0.3).sin())
                    .collect()
            })
            .collect();
        let collection = SeriesCollection::from_rows(rows).unwrap();
        let sketch = SketchSet::build(&collection, 20).unwrap();
        let plan = SketchPlan {
            n_series: 6,
            series_len: 120,
            basic_window: 20,
        };
        assert_eq!(plan.stored_floats(), sketch.stored_floats());
        assert_eq!(plan.stored_bytes(), sketch.stored_floats() * 8);
        assert_eq!(plan.windows(), 6);
    }

    #[test]
    fn min_basic_window_respects_budget() {
        let n = 100;
        let len = 10_000;
        // A generous budget allows small windows.
        let b_small = min_basic_window_for_budget(n, len, 1 << 30).unwrap();
        assert_eq!(b_small, 1);
        // A tight budget forces larger windows; the resulting plan must fit.
        let budget = 10 * 1024 * 1024;
        let b = min_basic_window_for_budget(n, len, budget).unwrap();
        let plan = SketchPlan {
            n_series: n,
            series_len: len,
            basic_window: b,
        };
        assert!(
            plan.stored_bytes() <= budget,
            "{} > {budget}",
            plan.stored_bytes()
        );
        // One window smaller would overflow the budget (or be impossible).
        if b > 1 {
            let tighter = SketchPlan {
                n_series: n,
                series_len: len,
                basic_window: b - 1,
            };
            assert!(tighter.stored_bytes() > budget);
        }
    }

    #[test]
    fn min_basic_window_rejects_impossible_budgets() {
        assert!(min_basic_window_for_budget(1_000, 1_000, 8).is_err());
        assert!(min_basic_window_for_budget(0, 1_000, 1 << 20).is_err());
    }

    #[test]
    fn generic_query_cost_has_interior_plus_edges_shape() {
        let plan = |b: usize| SketchPlan {
            n_series: 10,
            series_len: 100_000,
            basic_window: b,
        };
        let l = 10_000;
        // Cost is high for tiny B (many windows) and for huge B (big partial
        // windows), lower in between.
        let tiny = plan(10).generic_query_cost(l);
        let mid = plan(70).generic_query_cost(l);
        let huge = plan(5_000).generic_query_cost(l);
        assert!(mid < tiny);
        assert!(mid < huge);
    }

    #[test]
    fn recommendation_balances_budget_and_query_cost() {
        // Unconstrained: B ≈ sqrt(l/2).
        let b = recommend_basic_window(50, 8_760, 3_000, 1 << 30).unwrap();
        assert_eq!(b, ((3_000f64 / 2.0).sqrt().round()) as usize);
        // Constrained: the budget floor dominates.
        let floor = min_basic_window_for_budget(50, 8_760, 200 * 1024).unwrap();
        let constrained = recommend_basic_window(50, 8_760, 3_000, 200 * 1024).unwrap();
        assert!(constrained >= floor);
        // Never exceeds the series length.
        let capped = recommend_basic_window(5, 100, 1_000_000, 1 << 30).unwrap();
        assert!(capped <= 100);
    }
}
