//! Per-window summary statistics and Pearson correlation primitives.
//!
//! Everything in TSUBASA reduces to three numbers per basic window and series
//! (length, mean, standard deviation) plus one number per basic window and
//! pair (the within-window Pearson correlation). This module computes those
//! statistics in a single pass and defines the numerical conventions used by
//! the rest of the workspace:
//!
//! * standard deviations are *population* (1/N) standard deviations — this is
//!   what makes the Lemma 1 recombination exact;
//! * the Pearson correlation of a window with zero variance in either input
//!   is defined as `0.0` (the covariance term vanishes; the mean-offset terms
//!   of Lemma 1 still carry the information that is recoverable).

use serde::{Deserialize, Serialize};

/// Summary statistics of one window of one series: the per-basic-window
/// sketch entry stored by Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WindowStats {
    /// Number of points in the window (`B_j`; all equal for the default
    /// equal-size segmentation, different for partial head/tail windows).
    pub len: usize,
    /// Arithmetic mean of the window.
    pub mean: f64,
    /// Population standard deviation of the window.
    pub std: f64,
}

impl WindowStats {
    /// Compute the statistics of one window in a single pass.
    ///
    /// Uses Welford's algorithm so that very long windows with large means do
    /// not lose precision to catastrophic cancellation.
    pub fn from_values(values: &[f64]) -> Self {
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for (i, &v) in values.iter().enumerate() {
            let delta = v - mean;
            mean += delta / (i as f64 + 1.0);
            m2 += delta * (v - mean);
        }
        let len = values.len();
        let std = if len == 0 {
            0.0
        } else {
            (m2 / len as f64).max(0.0).sqrt()
        };
        Self { len, mean, std }
    }

    /// Population variance of the window.
    pub fn variance(&self) -> f64 {
        self.std * self.std
    }

    /// Sum of the values in the window (`len · mean`).
    pub fn sum(&self) -> f64 {
        self.len as f64 * self.mean
    }

    /// Sum of squared values in the window (`len · (σ² + mean²)`), the second
    /// raw moment times the length. Used by the incremental updater.
    pub fn sum_of_squares(&self) -> f64 {
        self.len as f64 * (self.variance() + self.mean * self.mean)
    }

    /// True when the window is (numerically) constant.
    pub fn is_constant(&self) -> bool {
        self.std == 0.0
    }
}

/// Joint statistics of one pair of aligned windows: the per-pair sketch entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairWindowStats {
    /// Pearson correlation of the two windows (0.0 when either is constant).
    pub corr: f64,
}

/// Pearson's correlation coefficient of two equally-long slices
/// (paper Equation 1), computed directly from the raw values.
///
/// Returns `0.0` when either slice has zero variance or fewer than two
/// points. Panics if the slices have different lengths (a programming error,
/// not a data error — all series in a collection are synchronized).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(
        x.len(),
        y.len(),
        "pearson() requires equally long slices ({} vs {})",
        x.len(),
        y.len()
    );
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let (sx, sy) = joint_stats(x, y);
    if sx.std == 0.0 || sy.std == 0.0 {
        return 0.0;
    }
    let mut cov = 0.0;
    for i in 0..n {
        cov += (x[i] - sx.mean) * (y[i] - sy.mean);
    }
    cov /= n as f64;
    clamp_corr(cov / (sx.std * sy.std))
}

/// Covariance (population, 1/N) of two equally-long slices.
pub fn covariance(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n == 0 {
        return 0.0;
    }
    let mx = x.iter().sum::<f64>() / n as f64;
    let my = y.iter().sum::<f64>() / n as f64;
    x.iter()
        .zip(y)
        .map(|(&a, &b)| (a - mx) * (b - my))
        .sum::<f64>()
        / n as f64
}

/// One-pass computation of the window statistics of two aligned windows.
/// Slightly cheaper than two separate [`WindowStats::from_values`] calls
/// because the loop is shared; used on the hot sketching path.
pub fn joint_stats(x: &[f64], y: &[f64]) -> (WindowStats, WindowStats) {
    debug_assert_eq!(x.len(), y.len());
    let mut mean_x = 0.0f64;
    let mut m2_x = 0.0f64;
    let mut mean_y = 0.0f64;
    let mut m2_y = 0.0f64;
    for i in 0..x.len() {
        let k = i as f64 + 1.0;
        let dx = x[i] - mean_x;
        mean_x += dx / k;
        m2_x += dx * (x[i] - mean_x);
        let dy = y[i] - mean_y;
        mean_y += dy / k;
        m2_y += dy * (y[i] - mean_y);
    }
    let n = x.len();
    let nf = n as f64;
    let std_x = if n == 0 {
        0.0
    } else {
        (m2_x / nf).max(0.0).sqrt()
    };
    let std_y = if n == 0 {
        0.0
    } else {
        (m2_y / nf).max(0.0).sqrt()
    };
    (
        WindowStats {
            len: n,
            mean: mean_x,
            std: std_x,
        },
        WindowStats {
            len: n,
            mean: mean_y,
            std: std_y,
        },
    )
}

/// Compute both window statistics and the Pearson correlation of a pair of
/// aligned windows in a single fused pass — the workhorse of Algorithm 1 and
/// of partial-window handling at query time.
pub fn sketch_pair(x: &[f64], y: &[f64]) -> (WindowStats, WindowStats, f64) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let mut mean_x = 0.0f64;
    let mut m2_x = 0.0f64;
    let mut mean_y = 0.0f64;
    let mut m2_y = 0.0f64;
    let mut cov = 0.0f64;
    for i in 0..n {
        let k = i as f64 + 1.0;
        let dx = x[i] - mean_x;
        mean_x += dx / k;
        let dy = y[i] - mean_y;
        mean_y += dy / k;
        m2_x += dx * (x[i] - mean_x);
        m2_y += dy * (y[i] - mean_y);
        // Co-moment update (Welford-style covariance).
        cov += dx * (y[i] - mean_y);
    }
    let nf = n as f64;
    let (std_x, std_y, corr) = if n == 0 {
        (0.0, 0.0, 0.0)
    } else {
        let var_x = (m2_x / nf).max(0.0);
        let var_y = (m2_y / nf).max(0.0);
        let std_x = var_x.sqrt();
        let std_y = var_y.sqrt();
        let corr = if std_x == 0.0 || std_y == 0.0 {
            0.0
        } else {
            clamp_corr((cov / nf) / (std_x * std_y))
        };
        (std_x, std_y, corr)
    };
    (
        WindowStats {
            len: n,
            mean: mean_x,
            std: std_x,
        },
        WindowStats {
            len: n,
            mean: mean_y,
            std: std_y,
        },
        corr,
    )
}

/// Pearson correlation of two aligned windows whose per-series statistics
/// have already been computed.
///
/// This is the hot-path sibling of [`sketch_pair`] used wherever per-series
/// window statistics are shared across many pairs (sketching all `N(N−1)/2`
/// pairs, streaming ingestion): instead of re-running the full Welford pass
/// per pair, only the centered cross-product `Σ (x_t − x̄)(y_t − ȳ)` remains
/// to be computed — one multiply-add per point instead of two divisions and
/// five multiply-adds.
///
/// The result is bit-identical to [`pearson`] when `sx`/`sy` were produced by
/// [`WindowStats::from_values`] (or the per-series half of [`sketch_pair`] /
/// [`joint_stats`]) over the same slices, because `pearson` centers with the
/// same Welford means.
pub fn pair_corr_from_stats(x: &[f64], y: &[f64], sx: &WindowStats, sy: &WindowStats) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), sx.len);
    let n = x.len();
    if n == 0 || sx.std == 0.0 || sy.std == 0.0 {
        return 0.0;
    }
    let mut cov = 0.0;
    for i in 0..n {
        cov += (x[i] - sx.mean) * (y[i] - sy.mean);
    }
    cov /= n as f64;
    clamp_corr(cov / (sx.std * sy.std))
}

/// Clamp a correlation value into `[-1, 1]`, absorbing the tiny excursions
/// floating-point recombination can produce.
pub fn clamp_corr(c: f64) -> f64 {
    if c.is_nan() {
        0.0
    } else {
        c.clamp(-1.0, 1.0)
    }
}

/// Write the z-scores of one window into `out`: `z_t = (x_t − μ) / σ` under
/// the window's precomputed statistics.
///
/// This is the normalization step of the tiled batch kernels: once every
/// window of every series is normalized, the Pearson correlation of any
/// aligned window pair collapses to a plain dot product
/// (`corr = Σ z_x z_y / B`), which [`tiled_pair_corrs_into`] evaluates with
/// multiple independent accumulators so the backend can vectorize it.
///
/// A constant window (`σ = 0`) normalizes to an all-zero row, so downstream
/// dot products yield the `0.0`-correlation convention of [`pearson`] with no
/// per-pair branching.
pub fn normalize_into(values: &[f64], stats: &WindowStats, out: &mut [f64]) {
    debug_assert_eq!(values.len(), out.len());
    debug_assert_eq!(values.len(), stats.len);
    if stats.std == 0.0 {
        out.fill(0.0);
        return;
    }
    let inv = 1.0 / stats.std;
    for (slot, &v) in out.iter_mut().zip(values) {
        *slot = (v - stats.mean) * inv;
    }
}

/// Dot product with four independent accumulator lanes.
///
/// The reference correlation loops ([`pearson`], [`pair_corr_from_stats`])
/// accumulate into a single variable, which chains every addition behind the
/// previous one; the four lanes here are independent, so the compiler can
/// keep several floating-point additions in flight (and pack lanes into SIMD
/// registers). Splitting the sum reorders the additions — callers get the
/// tolerance contract of the tiled kernels, not bit-equality with the
/// reference path.
#[inline]
pub(crate) fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let octs = a.len() / 8 * 8;
    // Eight lanes: two 4-wide AVX accumulator chains (or four 2-wide SSE2
    // chains at the baseline), enough independence to cover the FP-add
    // latency either way.
    let mut acc = [0.0f64; 8];
    for (ca, cb) in a[..octs].chunks_exact(8).zip(b[..octs].chunks_exact(8)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
        acc[4] += ca[4] * cb[4];
        acc[5] += ca[5] * cb[5];
        acc[6] += ca[6] * cb[6];
        acc[7] += ca[7] * cb[7];
    }
    let mut tail = 0.0;
    for (x, y) in a[octs..].iter().zip(&b[octs..]) {
        tail += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// Pearson correlation of two windows given their *normalized* (z-scored)
/// values: `clamp(Σ z_x z_y / B)`. Rows produced by [`normalize_into`] for
/// constant windows are all zero, so the convention `corr = 0.0` falls out of
/// the arithmetic.
#[inline]
pub fn normalized_dot_corr(zx: &[f64], zy: &[f64]) -> f64 {
    debug_assert_eq!(zx.len(), zy.len());
    if zx.is_empty() {
        return 0.0;
    }
    clamp_corr(dot_unrolled(zx, zy) / zx.len() as f64)
}

/// One row against a tile of four rows: four dot products sharing every load
/// of `a`, each with two independent accumulator lanes. This is the inner
/// kernel of the `Z·Zᵀ` sweep — the 1×4 tile quarters the loop overhead and
/// the `a`-traffic of four separate [`dot_unrolled`] calls.
#[inline]
fn dot_1x4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> [f64; 4] {
    let len = a.len();
    // Re-slice to the shared length so the optimizer can prove every access
    // below in-bounds (and vectorize) instead of checking per element.
    let (b0, b1, b2, b3) = (&b0[..len], &b1[..len], &b2[..len], &b3[..len]);
    let pairs = len / 2 * 2;
    let mut acc = [[0.0f64; 2]; 4];
    let mut t = 0;
    while t < pairs {
        let a0 = a[t];
        let a1 = a[t + 1];
        acc[0][0] += a0 * b0[t];
        acc[0][1] += a1 * b0[t + 1];
        acc[1][0] += a0 * b1[t];
        acc[1][1] += a1 * b1[t + 1];
        acc[2][0] += a0 * b2[t];
        acc[2][1] += a1 * b2[t + 1];
        acc[3][0] += a0 * b3[t];
        acc[3][1] += a1 * b3[t + 1];
        t += 2;
    }
    if pairs < len {
        let a0 = a[pairs];
        acc[0][0] += a0 * b0[pairs];
        acc[1][0] += a0 * b1[pairs];
        acc[2][0] += a0 * b2[pairs];
        acc[3][0] += a0 * b3[pairs];
    }
    [
        acc[0][0] + acc[0][1],
        acc[1][0] + acc[1][1],
        acc[2][0] + acc[2][1],
        acc[3][0] + acc[3][1],
    ]
}

/// Squared-difference sum with eight independent accumulator lanes — the
/// distance sibling of [`dot_unrolled`]. Every term is non-negative, so
/// reordering the accumulation across lanes never cancels; agreement with a
/// serial left-to-right sum is at the last-ulp level.
#[inline]
fn dist_sq_unrolled(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let octs = a.len() / 8 * 8;
    let mut acc = [0.0f64; 8];
    for (ca, cb) in a[..octs].chunks_exact(8).zip(b[..octs].chunks_exact(8)) {
        for lane in 0..8 {
            let d = ca[lane] - cb[lane];
            acc[lane] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[octs..].iter().zip(&b[octs..]) {
        let d = x - y;
        tail += d * d;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// One row against a tile of four rows: four squared Euclidean distances
/// sharing every load of `a` — the distance sibling of [`dot_1x4`], used by
/// the DFT comparator's coefficient-distance sweep.
#[inline]
fn dist_sq_1x4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> [f64; 4] {
    let len = a.len();
    let (b0, b1, b2, b3) = (&b0[..len], &b1[..len], &b2[..len], &b3[..len]);
    let pairs = len / 2 * 2;
    let mut acc = [[0.0f64; 2]; 4];
    let mut t = 0;
    while t < pairs {
        let a0 = a[t];
        let a1 = a[t + 1];
        let d00 = a0 - b0[t];
        let d01 = a1 - b0[t + 1];
        acc[0][0] += d00 * d00;
        acc[0][1] += d01 * d01;
        let d10 = a0 - b1[t];
        let d11 = a1 - b1[t + 1];
        acc[1][0] += d10 * d10;
        acc[1][1] += d11 * d11;
        let d20 = a0 - b2[t];
        let d21 = a1 - b2[t + 1];
        acc[2][0] += d20 * d20;
        acc[2][1] += d21 * d21;
        let d30 = a0 - b3[t];
        let d31 = a1 - b3[t + 1];
        acc[3][0] += d30 * d30;
        acc[3][1] += d31 * d31;
        t += 2;
    }
    if pairs < len {
        let a0 = a[pairs];
        let d0 = a0 - b0[pairs];
        let d1 = a0 - b1[pairs];
        let d2 = a0 - b2[pairs];
        let d3 = a0 - b3[pairs];
        acc[0][0] += d0 * d0;
        acc[1][0] += d1 * d1;
        acc[2][0] += d2 * d2;
        acc[3][0] += d3 * d3;
    }
    [
        acc[0][0] + acc[0][1],
        acc[1][0] + acc[1][1],
        acc[2][0] + acc[2][1],
        acc[3][0] + acc[3][1],
    ]
}

/// All-pairs squared Euclidean distances from a block of contiguous rows: the
/// distance-flavoured generalization of [`tiled_pair_corrs_into`], used by the
/// DFT comparator's coefficient-distance sweep.
///
/// `rows` holds `n` rows of `len` values each, contiguous per row
/// (`rows[i·len .. (i+1)·len]` is row `i`); `out` receives the `n(n−1)/2`
/// squared distances `‖r_i − r_j‖²` in packed upper-triangle order
/// ([`crate::sketch::pair_index`]). The sweep walks row `i` against 1×4 tiles
/// of later rows (same shape as the `Z·Zᵀ` sweep) so `r_i` stays cache-hot
/// while the tile rows stream past.
///
/// Unlike the correlation kernel there is no per-element normalization or
/// clamping, and every accumulated term is non-negative, so lane reordering
/// cannot cancel: agreement with a serial difference-square sum is at the
/// last-ulp level (the ≤ `1e-10` contract of the tiled suites holds with a
/// wide margin).
pub fn tiled_pair_dist_sq_into(rows: &[f64], n: usize, len: usize, out: &mut [f64]) {
    debug_assert_eq!(rows.len(), n * len);
    debug_assert_eq!(out.len(), n * n.saturating_sub(1) / 2);
    if len == 0 {
        out.fill(0.0);
        return;
    }
    let row = |r: usize| &rows[r * len..(r + 1) * len];
    let mut p = 0;
    for i in 0..n {
        let ri = row(i);
        let mut j = i + 1;
        while j + 4 <= n {
            let d = dist_sq_1x4(ri, row(j), row(j + 1), row(j + 2), row(j + 3));
            out[p..p + 4].copy_from_slice(&d);
            p += 4;
            j += 4;
        }
        while j < n {
            out[p] = dist_sq_unrolled(ri, row(j));
            p += 1;
            j += 1;
        }
    }
}

/// All-pairs window correlations from a block of normalized series rows: the
/// tiled `Z·Zᵀ` kernel of the batch sketching path.
///
/// `z` holds `n` normalized rows of `len` points each, contiguous per series
/// (`z[i·len .. (i+1)·len]` is series `i`, as filled by [`normalize_into`]);
/// `out` receives the `n(n−1)/2` correlations of the window in packed
/// upper-triangle order ([`crate::sketch::pair_index`]).
///
/// The sweep walks row `i` against 1×4 tiles of later rows, so `z_i` stays
/// cache-hot (and is loaded once per tile instead of once per pair) while
/// the tile rows stream past; the remainder pairs fall back to the single
/// unrolled dot. Agreement with the scalar reference
/// ([`pair_corr_from_stats`] over the raw window) is within `1e-10`
/// absolute, pinned by the `tiled_kernel_agreement` property suite.
pub fn tiled_pair_corrs_into(z: &[f64], n: usize, len: usize, out: &mut [f64]) {
    debug_assert_eq!(z.len(), n * len);
    debug_assert_eq!(out.len(), n * n.saturating_sub(1) / 2);
    if len == 0 {
        out.fill(0.0);
        return;
    }
    let inv = 1.0 / len as f64;
    let row = |r: usize| &z[r * len..(r + 1) * len];
    let mut p = 0;
    for i in 0..n {
        let zi = row(i);
        let mut j = i + 1;
        while j + 4 <= n {
            let d = dot_1x4(zi, row(j), row(j + 1), row(j + 2), row(j + 3));
            out[p] = clamp_corr(d[0] * inv);
            out[p + 1] = clamp_corr(d[1] * inv);
            out[p + 2] = clamp_corr(d[2] * inv);
            out[p + 3] = clamp_corr(d[3] * inv);
            p += 4;
            j += 4;
        }
        while j < n {
            out[p] = clamp_corr(dot_unrolled(zi, row(j)) * inv);
            p += 1;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_stats(values: &[f64]) -> (f64, f64) {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn window_stats_matches_naive() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 8.0, -2.0];
        let s = WindowStats::from_values(&v);
        let (mean, std) = naive_stats(&v);
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.std - std).abs() < 1e-12);
        assert_eq!(s.len, 7);
    }

    #[test]
    fn window_stats_handles_empty_and_singleton() {
        let e = WindowStats::from_values(&[]);
        assert_eq!(e.len, 0);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.std, 0.0);
        let s = WindowStats::from_values(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std, 0.0);
        assert!(s.is_constant());
    }

    #[test]
    fn sum_and_sum_of_squares_roundtrip() {
        let v = [3.0, -1.0, 4.0, 1.0, 5.0];
        let s = WindowStats::from_values(&v);
        let sum: f64 = v.iter().sum();
        let sq: f64 = v.iter().map(|x| x * x).sum();
        assert!((s.sum() - sum).abs() < 1e-10);
        assert!((s.sum_of_squares() - sq).abs() < 1e-10);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        let z = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_series_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
        assert_eq!(pearson(&y, &x), 0.0);
        assert_eq!(pearson(&x, &x), 0.0);
    }

    #[test]
    fn pearson_is_translation_and_scale_invariant() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 1.0, 7.0, 3.0, 9.0];
        let c0 = pearson(&x, &y);
        let xs: Vec<f64> = x.iter().map(|v| 3.0 * v + 100.0).collect();
        let ys: Vec<f64> = y.iter().map(|v| 0.5 * v - 7.0).collect();
        let c1 = pearson(&xs, &ys);
        assert!((c0 - c1).abs() < 1e-12);
        // Negative scaling flips the sign.
        let xn: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&xn, &y) + c0).abs() < 1e-12);
    }

    #[test]
    fn sketch_pair_agrees_with_separate_computation() {
        let x = [0.3, 1.7, -2.2, 5.0, 4.4, 0.0, 1.0];
        let y = [1.3, -0.7, 2.2, 3.0, -4.4, 2.0, 0.5];
        let (sx, sy, c) = sketch_pair(&x, &y);
        let ex = WindowStats::from_values(&x);
        let ey = WindowStats::from_values(&y);
        assert!((sx.mean - ex.mean).abs() < 1e-12);
        assert!((sy.std - ey.std).abs() < 1e-12);
        assert!((c - pearson(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn joint_stats_agrees_with_separate_computation() {
        let x = [9.0, 1.0, 4.0];
        let y = [2.0, 2.0, 5.0];
        let (sx, sy) = joint_stats(&x, &y);
        assert!((sx.mean - WindowStats::from_values(&x).mean).abs() < 1e-12);
        assert!((sy.std - WindowStats::from_values(&y).std).abs() < 1e-12);
    }

    #[test]
    fn covariance_matches_definition() {
        let x = [1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0];
        // mx=2, my=3, cov = ((-1)(-2) + 0 + (1)(2)) / 3 = 4/3
        assert!((covariance(&x, &y) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(covariance(&[], &[]), 0.0);
    }

    #[test]
    fn pair_corr_from_stats_is_bit_identical_to_pearson() {
        let x = [0.3, 1.7, -2.2, 5.0, 4.4, 0.0, 1.0];
        let y = [1.3, -0.7, 2.2, 3.0, -4.4, 2.0, 0.5];
        let sx = WindowStats::from_values(&x);
        let sy = WindowStats::from_values(&y);
        let fast = pair_corr_from_stats(&x, &y, &sx, &sy);
        assert_eq!(fast.to_bits(), pearson(&x, &y).to_bits());
        // Constant input keeps the 0.0 convention.
        let c = [2.0; 7];
        let sc = WindowStats::from_values(&c);
        assert_eq!(pair_corr_from_stats(&c, &y, &sc, &sy), 0.0);
    }

    #[test]
    fn tiled_pair_corrs_agree_with_scalar_reference() {
        // n = 7 exercises both the 1×4 tile and the remainder path; odd
        // window length exercises the odd-element tail of the kernels.
        let n = 7;
        let len = 23;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|s| {
                (0..len)
                    .map(|t| {
                        ((t * 3 + s * 7) % 11) as f64 * 0.7 - (s as f64) + (t as f64 * 0.21).sin()
                    })
                    .collect()
            })
            .collect();
        let stats: Vec<WindowStats> = rows.iter().map(|r| WindowStats::from_values(r)).collect();
        let mut z = vec![0.0f64; n * len];
        for (i, r) in rows.iter().enumerate() {
            normalize_into(r, &stats[i], &mut z[i * len..(i + 1) * len]);
        }
        let mut out = vec![0.0f64; n * (n - 1) / 2];
        tiled_pair_corrs_into(&z, n, len, &mut out);
        let mut p = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let reference = pair_corr_from_stats(&rows[i], &rows[j], &stats[i], &stats[j]);
                assert!(
                    (out[p] - reference).abs() <= 1e-10,
                    "pair ({i},{j}): {} vs {reference}",
                    out[p]
                );
                p += 1;
            }
        }
    }

    #[test]
    fn tiled_pair_dist_sq_agrees_with_scalar_reference() {
        // n = 7 exercises the 1×4 tile and the remainder path; odd row
        // length exercises the odd-element tail of both kernels.
        let n = 7;
        let len = 23;
        let rows: Vec<f64> = (0..n * len)
            .map(|t| ((t * 13 + 5) % 19) as f64 * 0.31 - (t as f64 * 0.17).cos())
            .collect();
        let mut out = vec![0.0f64; n * (n - 1) / 2];
        tiled_pair_dist_sq_into(&rows, n, len, &mut out);
        let mut p = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let reference: f64 = rows[i * len..(i + 1) * len]
                    .iter()
                    .zip(&rows[j * len..(j + 1) * len])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                assert!(
                    (out[p] - reference).abs() <= 1e-12 * reference.max(1.0),
                    "pair ({i},{j}): {} vs {reference}",
                    out[p]
                );
                p += 1;
            }
        }
        // Identical rows have exactly zero distance (no cancellation noise).
        let two = [1.5, -2.25, 3.0, 1.5, -2.25, 3.0];
        let mut d = vec![9.0f64; 1];
        tiled_pair_dist_sq_into(&two, 2, 3, &mut d);
        assert_eq!(d, vec![0.0]);
        // Zero-length rows keep the 0.0 convention.
        let mut empty_out = vec![9.0f64; 1];
        tiled_pair_dist_sq_into(&[], 2, 0, &mut empty_out);
        assert_eq!(empty_out, vec![0.0]);
    }

    #[test]
    fn normalize_into_zeroes_constant_windows() {
        let constant = [4.0; 9];
        let stats = WindowStats::from_values(&constant);
        let mut z = [9.9; 9];
        normalize_into(&constant, &stats, &mut z);
        assert_eq!(z, [0.0; 9]);
        assert_eq!(normalized_dot_corr(&z, &z), 0.0);
        assert_eq!(normalized_dot_corr(&[], &[]), 0.0);
    }

    #[test]
    fn clamp_corr_behaviour() {
        assert_eq!(clamp_corr(1.0000001), 1.0);
        assert_eq!(clamp_corr(-1.5), -1.0);
        assert_eq!(clamp_corr(f64::NAN), 0.0);
        assert_eq!(clamp_corr(0.3), 0.3);
    }

    #[test]
    #[should_panic(expected = "equally long")]
    fn pearson_panics_on_length_mismatch() {
        pearson(&[1.0, 2.0], &[1.0]);
    }

    proptest! {
        #[test]
        fn prop_pearson_bounded(
            x in proptest::collection::vec(-1e6f64..1e6, 2..200),
            y in proptest::collection::vec(-1e6f64..1e6, 2..200),
        ) {
            let n = x.len().min(y.len());
            let c = pearson(&x[..n], &y[..n]);
            prop_assert!((-1.0..=1.0).contains(&c));
        }

        #[test]
        fn prop_pearson_symmetric(
            x in proptest::collection::vec(-1e3f64..1e3, 2..100),
            y in proptest::collection::vec(-1e3f64..1e3, 2..100),
        ) {
            let n = x.len().min(y.len());
            let a = pearson(&x[..n], &y[..n]);
            let b = pearson(&y[..n], &x[..n]);
            prop_assert!((a - b).abs() < 1e-10);
        }

        #[test]
        fn prop_self_correlation_is_one(
            x in proptest::collection::vec(-1e3f64..1e3, 3..100),
        ) {
            let s = WindowStats::from_values(&x);
            prop_assume!(s.std > 1e-9);
            let c = pearson(&x, &x);
            prop_assert!((c - 1.0).abs() < 1e-9);
        }

        #[test]
        fn prop_welford_matches_naive(
            x in proptest::collection::vec(-1e5f64..1e5, 1..300),
        ) {
            let s = WindowStats::from_values(&x);
            let n = x.len() as f64;
            let mean = x.iter().sum::<f64>() / n;
            let var = x.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            prop_assert!((s.mean - mean).abs() < 1e-6);
            prop_assert!((s.std - var.sqrt()).abs() < 1e-6);
        }
    }
}
