//! The precomputed per-query evaluation plan behind the all-pairs paths.
//!
//! TSUBASA's Lemma 1 recombines the correlation of a query window from
//! per-basic-window statistics. Done naively — as the reference per-pair path
//! [`crate::exact::pair_correlation`] does — every one of the `N(N−1)/2`
//! pairs re-derives the *per-series* part of the recombination: the
//! length-weighted query-window mean `x̄`, the per-window mean offsets
//! `δ_xj = x̄_j − x̄`, and the whole denominator `Σ_j B_j (σ_xj² + δ_xj²)`.
//! Each series' values are recomputed `N−1` times, and every pair allocates a
//! scratch `Vec` of window contributions.
//!
//! [`QueryPlan`] factors that waste out. Built **once per query window**, it
//! stores flat `Vec<f64>` tables (row = series, column = window of the plan,
//! in `[head?, full basic windows…, tail?]` order):
//!
//! * `stds[i·w + k]` — `σ` of series `i` in plan window `k`,
//! * `deltas[i·w + k]` — `δ = mean_k − x̄_i`,
//! * per series: the query-window mean `x̄_i` and the full denominator
//!   `den_i = Σ_k B_k (σ² + δ²)`,
//! * shared: the window lengths `B_k` and the total query length `T`.
//!
//! The per-pair kernel that remains is allocation-free and touches only
//! cache-friendly flat rows plus the pair's contiguous per-window correlation
//! slice from the sketch:
//!
//! ```text
//! num(i,j) = Σ_k B_k (σ_ik σ_jk c_k + δ_ik δ_jk)
//! corr(i,j) = num / (√den_i √den_j)
//! ```
//!
//! Partial head/tail windows of unaligned queries contribute their raw
//! centered cross-product through [`crate::stats::pair_corr_from_stats`]
//! (per-series partial statistics live in the plan), exactly as the
//! reference path does. Every arithmetic operation is performed with the
//! same operands in the same order as [`crate::exact::combine`], so the plan
//! kernel is **bit-for-bit identical** to the reference path — a property the
//! `flat_kernel_equivalence` test suite asserts over 256 random
//! configurations.
//!
//! # Example
//!
//! ```
//! use tsubasa_core::plan::QueryPlan;
//! use tsubasa_core::{exact, QueryWindow, SeriesCollection, SketchSet};
//!
//! let collection = SeriesCollection::from_rows(vec![
//!     vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0],
//!     vec![2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0],
//!     vec![9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 1.0],
//! ])
//! .unwrap();
//! let sketch = SketchSet::build(&collection, 4).unwrap();
//!
//! // An unaligned query window (indices 1..=6) — the plan re-sketches the
//! // partial head/tail and reuses the sketched interior.
//! let query = QueryWindow::new(6, 6).unwrap();
//! let plan = QueryPlan::build(&collection, &sketch, query).unwrap();
//!
//! let fast = plan.pair_correlation(&collection, &sketch, 0, 1).unwrap();
//! let reference = exact::pair_correlation(&collection, &sketch, query, 0, 1).unwrap();
//! assert_eq!(fast.to_bits(), reference.to_bits());
//! ```

use std::ops::Range;

use crate::error::{Error, Result};
use crate::sketch::SketchSet;
use crate::stats::{
    clamp_corr, normalize_into, normalized_dot_corr, pair_corr_from_stats, WindowStats,
};
use crate::timeseries::{SeriesCollection, SeriesId};
use crate::window::{QueryWindow, WindowSpan};

/// A flat, per-query-window table of combined per-series statistics: the
/// precomputed half of the Lemma 1 recombination, shared by all pairs.
///
/// Built with [`QueryPlan::build`] (arbitrary query windows, needs raw data
/// for partial head/tail), [`QueryPlan::build_aligned`] (sketch-only, for
/// windows aligned to basic-window boundaries) or
/// [`QueryPlan::from_window_stats`] (from statistics read back from a
/// [`tsubasa-storage`-style](crate::sketch) store). See the [module
/// documentation](crate::plan) for the layout and an example.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Number of series covered.
    n: usize,
    /// Number of plan windows (`head? + full + tail?`).
    w: usize,
    /// The range of full basic-window indices into the sketch.
    full: Range<usize>,
    /// Raw span of the partial head window, if the query start is unaligned.
    head: Option<WindowSpan>,
    /// Raw span of the partial tail window, if the query end is unaligned.
    tail: Option<WindowSpan>,
    /// Window lengths `B_k` (shared by all series), one per plan window.
    lens: Vec<f64>,
    /// Total raw points covered (`T = Σ B_k`).
    total: f64,
    /// `σ` per series per plan window, row-major (`n × w`).
    stds: Vec<f64>,
    /// `δ = mean_k − x̄_i` per series per plan window, row-major (`n × w`).
    deltas: Vec<f64>,
    /// Length-weighted query-window mean per series.
    means: Vec<f64>,
    /// Denominator `Σ_k B_k (σ² + δ²)` per series (`T ·` population variance).
    dens: Vec<f64>,
    /// Per-series statistics of the partial head window (empty when aligned);
    /// the kernel combines them with the raw cross-product per pair.
    head_stats: Vec<WindowStats>,
    /// Per-series statistics of the partial tail window (empty when aligned).
    tail_stats: Vec<WindowStats>,
    /// Window-major transpose of `stds` (`stds_t[k·n + i] = stds[i·w + k]`),
    /// built by `finalize` for the tiled [`QueryPlan::block_kernel`]: a tile
    /// of pairs `(i, j0..)` reads `σ_j` of one window as a contiguous slice.
    stds_t: Vec<f64>,
    /// Window-major transpose of `deltas`, companion of `stds_t`.
    deltas_t: Vec<f64>,
    /// Z-normalized partial-head values, one contiguous row per series
    /// (`n × head_len`; empty when aligned). Lets the block kernel evaluate
    /// head contributions as dot products instead of re-centering raw data
    /// per pair.
    head_z: Vec<f64>,
    /// Z-normalized partial-tail values (`n × tail_len`; empty when aligned).
    tail_z: Vec<f64>,
}

impl QueryPlan {
    /// Build the plan for an arbitrary query window: interior basic windows
    /// come from `sketch`, partial head/tail statistics are computed from the
    /// raw data in `collection`.
    pub fn build(
        collection: &SeriesCollection,
        sketch: &SketchSet,
        query: QueryWindow,
    ) -> Result<Self> {
        query.validate(collection.series_len())?;
        let seg = sketch.windowing().segment(query);
        if seg.full.end > sketch.window_count() {
            return Err(Error::SketchMismatch {
                requested: format!("basic windows up to {}", seg.full.end),
                available: format!("{} sketched windows", sketch.window_count()),
            });
        }
        let n = collection.len();
        let w = seg.full_count() + seg.head.is_some() as usize + seg.tail.is_some() as usize;

        let mut plan = Self::empty(n, w, seg.full.clone(), seg.head, seg.tail);
        let mut row: Vec<WindowStats> = Vec::with_capacity(w);
        for (i, series) in collection.iter_with_ids() {
            let values = series.values();
            let sk = sketch.series_sketch(i)?;
            row.clear();
            if let Some(head) = seg.head {
                let stats = WindowStats::from_values(head.slice(values));
                plan.head_stats.push(stats);
                let base = plan.head_z.len();
                plan.head_z.resize(base + head.len(), 0.0);
                normalize_into(head.slice(values), &stats, &mut plan.head_z[base..]);
                row.push(stats);
            }
            for k in seg.full.clone() {
                row.push(sk.window(k));
            }
            if let Some(tail) = seg.tail {
                let stats = WindowStats::from_values(tail.slice(values));
                plan.tail_stats.push(stats);
                let base = plan.tail_z.len();
                plan.tail_z.resize(base + tail.len(), 0.0);
                normalize_into(tail.slice(values), &stats, &mut plan.tail_z[base..]);
                row.push(stats);
            }
            plan.push_series_row(&row);
        }
        plan.finalize()
    }

    /// Build a sketch-only plan over a range of basic-window indices — the
    /// aligned "special case" of Lemma 1 used by Algorithms 1–3. No raw data
    /// is needed.
    pub fn build_aligned(sketch: &SketchSet, windows: Range<usize>) -> Result<Self> {
        if windows.end > sketch.window_count() || windows.is_empty() {
            return Err(Error::SketchMismatch {
                requested: format!("basic windows {windows:?}"),
                available: format!("{} sketched windows", sketch.window_count()),
            });
        }
        let n = sketch.series_count();
        let w = windows.len();
        let mut plan = Self::empty(n, w, windows.clone(), None, None);
        let mut row: Vec<WindowStats> = Vec::with_capacity(w);
        for i in 0..n {
            let sk = sketch.series_sketch(i)?;
            row.clear();
            row.extend(windows.clone().map(|k| sk.window(k)));
            plan.push_series_row(&row);
        }
        plan.finalize()
    }

    /// Build an aligned plan from per-series window statistics that were read
    /// back from a sketch store (`stats[i][k]` is the `k`-th window of series
    /// `i`). This is the constructor the parallel disk engine uses: the store
    /// already served the statistics, so no [`SketchSet`] exists in memory.
    pub fn from_window_stats(stats: &[Vec<WindowStats>]) -> Result<Self> {
        let n = stats.len();
        let w = stats.first().map_or(0, |row| row.len());
        if n == 0 || w == 0 {
            return Err(Error::EmptyInput("window statistics for a query plan"));
        }
        if let Some(bad) = stats.iter().find(|row| row.len() != w) {
            return Err(Error::SketchMismatch {
                requested: format!("{w} windows per series"),
                available: format!("{} windows", bad.len()),
            });
        }
        let mut plan = Self::empty(n, w, 0..w, None, None);
        for row in stats {
            plan.push_series_row(row);
        }
        plan.finalize()
    }

    fn empty(
        n: usize,
        w: usize,
        full: Range<usize>,
        head: Option<WindowSpan>,
        tail: Option<WindowSpan>,
    ) -> Self {
        Self {
            n,
            w,
            full,
            head,
            tail,
            lens: Vec::with_capacity(w),
            total: 0.0,
            stds: Vec::with_capacity(n * w),
            deltas: Vec::with_capacity(n * w),
            means: Vec::with_capacity(n),
            dens: Vec::with_capacity(n),
            head_stats: Vec::new(),
            tail_stats: Vec::new(),
            stds_t: Vec::new(),
            deltas_t: Vec::new(),
            head_z: Vec::new(),
            tail_z: Vec::new(),
        }
    }

    /// Fold one series' window-statistics sequence into the flat tables.
    ///
    /// The arithmetic mirrors [`crate::exact::combine`] operation for
    /// operation (same iterator `sum` for `T` and the weighted mean, same
    /// accumulation expression and order for the denominator) so the kernel
    /// stays bit-identical to the reference path.
    fn push_series_row(&mut self, row: &[WindowStats]) {
        debug_assert_eq!(row.len(), self.w);
        if self.lens.is_empty() {
            self.lens.extend(row.iter().map(|s| s.len as f64));
            self.total = row.iter().map(|s| s.len as f64).sum();
        }
        let mean = row.iter().map(|s| s.len as f64 * s.mean).sum::<f64>() / self.total;
        let mut den = 0.0;
        for s in row {
            let b = s.len as f64;
            let d = s.mean - mean;
            self.stds.push(s.std);
            self.deltas.push(d);
            den += b * (s.std * s.std + d * d);
        }
        self.means.push(mean);
        self.dens.push(den);
    }

    fn finalize(mut self) -> Result<Self> {
        if self.total == 0.0 {
            return Err(Error::DegenerateWindow { points: 0 });
        }
        // Window-major transposes for the block kernel: one allocation each,
        // filled once per query — every tile evaluation then streams
        // contiguous `σ_j` / `δ_j` slices instead of striding per-series rows.
        self.stds_t = transpose(&self.stds, self.n, self.w);
        self.deltas_t = transpose(&self.deltas, self.n, self.w);
        Ok(self)
    }

    /// Number of series covered by the plan.
    pub fn series_count(&self) -> usize {
        self.n
    }

    /// Number of plan windows (partial head/tail included).
    pub fn window_count(&self) -> usize {
        self.w
    }

    /// The range of full basic-window indices the plan covers in the sketch.
    pub fn full_windows(&self) -> Range<usize> {
        self.full.clone()
    }

    /// True when the query aligns with basic-window boundaries (no partial
    /// head or tail) — the case where the kernel never touches raw data.
    pub fn is_aligned(&self) -> bool {
        self.head.is_none() && self.tail.is_none()
    }

    /// Total raw points covered by the query window (`T`).
    pub fn total_len(&self) -> f64 {
        self.total
    }

    /// Length-weighted query-window mean of series `i`.
    pub fn mean(&self, i: SeriesId) -> f64 {
        self.means[i]
    }

    /// `T ·` population variance of series `i` over the query window — the
    /// Lemma 1 denominator `Σ_k B_k (σ² + δ²)`.
    pub fn denominator(&self, i: SeriesId) -> f64 {
        self.dens[i]
    }

    /// True when series `i` is constant over the query window (its Lemma 1
    /// denominator is non-positive), i.e. the pair correlations involving it
    /// are degenerate.
    pub fn is_degenerate(&self, i: SeriesId) -> bool {
        self.dens[i] <= 0.0
    }

    /// Per-series Cauchy–Schwarz split of the Lemma 1 numerator: for series
    /// `i`, `s_i = √(Σ_k B_k σ_ik² / den_i)` and
    /// `t_i = √(Σ_k B_k δ_ik² / den_i)` (so `s_i² + t_i² = 1`). Because every
    /// per-window correlation is ≤ 1,
    /// `corr(i,j) ≤ s_i s_j + t_i t_j` — the per-tile upper bound behind the
    /// streamed sweep's Equation 4 pruning (see [`crate::sweep`]). Degenerate
    /// series get `(0, 0)`, matching their `corr = 0` convention.
    pub(crate) fn bound_components(&self) -> (Vec<f64>, Vec<f64>) {
        let mut s = Vec::with_capacity(self.n);
        let mut t = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let den = self.dens[i];
            if den <= 0.0 {
                s.push(0.0);
                t.push(0.0);
                continue;
            }
            let mut ss = 0.0;
            let mut tt = 0.0;
            for k in 0..self.w {
                let b = self.lens[k];
                let sd = self.stds[i * self.w + k];
                let dl = self.deltas[i * self.w + k];
                ss += b * sd * sd;
                tt += b * dl * dl;
            }
            s.push((ss / den).sqrt());
            t.push((tt / den).sqrt());
        }
        (s, t)
    }

    /// The allocation-free all-pairs kernel: correlation of series `i` and
    /// `j` given the pair's per-window correlations for the plan's *full*
    /// windows (`full_corrs.len() == full_windows().len()`) and, for
    /// unaligned plans, the raw series values for the partial head/tail.
    ///
    /// Returns `0.0` for a degenerate (constant-series) pair, matching the
    /// convention of the matrix paths.
    ///
    /// # Panics
    ///
    /// Panics when `full_corrs` has the wrong length or when `raw` is `None`
    /// for an unaligned plan — both are programming errors that would
    /// otherwise produce a plausible but wrong correlation. The length check
    /// is one branch per pair, negligible next to the per-window loop.
    pub fn pair_kernel(
        &self,
        i: SeriesId,
        j: SeriesId,
        full_corrs: &[f64],
        raw: Option<(&[f64], &[f64])>,
    ) -> f64 {
        assert_eq!(
            full_corrs.len(),
            self.full.len(),
            "pair_kernel needs one correlation per full plan window"
        );
        let w = self.w;
        let (sx, sy) = (
            &self.stds[i * w..(i + 1) * w],
            &self.stds[j * w..(j + 1) * w],
        );
        let (dx, dy) = (
            &self.deltas[i * w..(i + 1) * w],
            &self.deltas[j * w..(j + 1) * w],
        );

        let mut num = 0.0;
        let mut k = 0;
        if let Some(head) = self.head {
            let (xs, ys) = raw.expect("unaligned plan kernel requires raw series data");
            let (hx, hy) = (&self.head_stats[i], &self.head_stats[j]);
            let c = pair_corr_from_stats(head.slice(xs), head.slice(ys), hx, hy);
            num += self.lens[k] * (hx.std * hy.std * c + dx[k] * dy[k]);
            k += 1;
        }
        for &c in full_corrs {
            num += self.lens[k] * (sx[k] * sy[k] * c + dx[k] * dy[k]);
            k += 1;
        }
        if let Some(tail) = self.tail {
            let (xs, ys) = raw.expect("unaligned plan kernel requires raw series data");
            let (tx, ty) = (&self.tail_stats[i], &self.tail_stats[j]);
            let c = pair_corr_from_stats(tail.slice(xs), tail.slice(ys), tx, ty);
            num += self.lens[k] * (tx.std * ty.std * c + dx[k] * dy[k]);
        }

        let (den_x, den_y) = (self.dens[i], self.dens[j]);
        if den_x <= 0.0 || den_y <= 0.0 {
            return 0.0;
        }
        clamp_corr(num / (den_x.sqrt() * den_y.sqrt()))
    }

    /// Correlation of one pair through the plan, fetching the pair's
    /// per-window correlation slice from `sketch` and (for unaligned plans)
    /// the raw values from `collection`.
    pub fn pair_correlation(
        &self,
        collection: &SeriesCollection,
        sketch: &SketchSet,
        i: SeriesId,
        j: SeriesId,
    ) -> Result<f64> {
        if i == j {
            return Ok(1.0);
        }
        let pair = sketch.pair_sketch(i, j)?;
        let corrs = &pair.corrs[self.full.clone()];
        let raw = if self.is_aligned() {
            None
        } else {
            Some((collection.get(i)?.values(), collection.get(j)?.values()))
        };
        Ok(self.pair_kernel(i, j, corrs, raw))
    }

    /// Correlation of one pair of an *aligned* plan using only the sketch.
    pub fn pair_correlation_aligned(
        &self,
        sketch: &SketchSet,
        i: SeriesId,
        j: SeriesId,
    ) -> Result<f64> {
        if i == j {
            return Ok(1.0);
        }
        debug_assert!(self.is_aligned(), "aligned kernel on an unaligned plan");
        let pair = sketch.pair_sketch(i, j)?;
        Ok(self.pair_kernel(i, j, &pair.corrs[self.full.clone()], None))
    }

    /// The tiled batch kernel: correlations of the contiguous pair tile
    /// `(i, j0), (i, j0+1), …, (i, j0+out.len()−1)` written into `out`.
    ///
    /// `corrs` is a window-major view of the per-pair sketch correlations
    /// covering exactly the plan's full windows
    /// ([`CorrView::window_count`] `==` [`QueryPlan::full_windows`]`.len()`) —
    /// borrowed zero-copy from [`SketchSet::window_corrs_view`] by the
    /// in-memory sweeps, or from a per-batch [`TransposedCorrs`] by the disk
    /// engine — and `pair_offset` locates pair `(i, j0)` inside its pair
    /// dimension.
    /// Because the tile shares `i`, the inner loop streams four contiguous
    /// arrays (`σ_j`, `δ_j`, `c_k`, `out`) with an independent accumulator
    /// per pair — no reduction chain, so the backend can vectorize across
    /// the tile. Partial head/tail windows of unaligned plans contribute via
    /// dot products over the plan's normalized head/tail rows.
    ///
    /// Accumulation order differs from [`QueryPlan::pair_kernel`] (full
    /// windows first, then head/tail; per-element `1/σ` normalization), so
    /// agreement with the scalar reference is a *tolerance* contract —
    /// ≤ `1e-10` absolute, pinned by the `tiled_kernel_agreement` suite — not
    /// bit-equality. Degenerate (constant-series) pairs yield `0.0` as
    /// everywhere else.
    ///
    /// # Panics
    ///
    /// Panics when the tile exceeds the series range (`j0 ≤ i` or
    /// `j0 + out.len() > n`) or when `corrs` does not cover the plan's full
    /// windows — programming errors that would silently produce wrong tiles.
    pub fn block_kernel(
        &self,
        i: SeriesId,
        j0: SeriesId,
        corrs: CorrView<'_>,
        pair_offset: usize,
        out: &mut [f64],
    ) {
        let np = out.len();
        let n = self.n;
        assert!(
            i < j0 && j0 + np <= n,
            "block_kernel tile ({i}, {j0}..{}) out of range for {n} series",
            j0 + np
        );
        assert_eq!(
            corrs.window_count(),
            self.full.len(),
            "block_kernel needs one transposed correlation row per full plan window"
        );
        let head_off = usize::from(self.head.is_some());
        out.fill(0.0);

        // Full sketched windows: everything the tile touches is contiguous.
        for kk in 0..self.full.len() {
            let k = head_off + kk;
            let lk = self.lens[k];
            let si = self.stds_t[k * n + i];
            let di = self.deltas_t[k * n + i];
            let st = &self.stds_t[k * n + j0..k * n + j0 + np];
            let dt = &self.deltas_t[k * n + j0..k * n + j0 + np];
            let c = &corrs.window_row(kk)[pair_offset..pair_offset + np];
            for p in 0..np {
                out[p] += lk * (si * st[p] * c[p] + di * dt[p]);
            }
        }

        // Partial head/tail: per-pair dot products over normalized rows (the
        // per-series σ/δ of these windows sit at plan-window indices 0 and
        // w−1 of the transposed tables).
        if self.head.is_some() {
            let hl = self.head_z.len() / n;
            let zi = &self.head_z[i * hl..(i + 1) * hl];
            let l0 = self.lens[0];
            for (p, slot) in out.iter_mut().enumerate() {
                let j = j0 + p;
                let zj = &self.head_z[j * hl..(j + 1) * hl];
                let c = normalized_dot_corr(zi, zj);
                *slot += l0
                    * (self.stds_t[i] * self.stds_t[j] * c + self.deltas_t[i] * self.deltas_t[j]);
            }
        }
        if self.tail.is_some() {
            let tl = self.tail_z.len() / n;
            let zi = &self.tail_z[i * tl..(i + 1) * tl];
            let k = self.w - 1;
            let lk = self.lens[k];
            for (p, slot) in out.iter_mut().enumerate() {
                let j = j0 + p;
                let zj = &self.tail_z[j * tl..(j + 1) * tl];
                let c = normalized_dot_corr(zi, zj);
                *slot += lk
                    * (self.stds_t[k * n + i] * self.stds_t[k * n + j] * c
                        + self.deltas_t[k * n + i] * self.deltas_t[k * n + j]);
            }
        }

        // Normalize and clamp; degenerate pairs keep the 0.0 convention.
        let den_i = self.dens[i];
        for (p, slot) in out.iter_mut().enumerate() {
            let den_j = self.dens[j0 + p];
            *slot = if den_i <= 0.0 || den_j <= 0.0 {
                0.0
            } else {
                clamp_corr(*slot / (den_i.sqrt() * den_j.sqrt()))
            };
        }
    }
}

/// Transpose a row-major `rows × cols` table into `cols × rows`.
fn transpose(src: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    debug_assert_eq!(src.len(), rows * cols);
    let mut out = vec![0.0f64; src.len()];
    for r in 0..rows {
        for (c, &v) in src[r * cols..(r + 1) * cols].iter().enumerate() {
            out[c * rows + r] = v;
        }
    }
    out
}

/// A borrowed window-major view of per-pair per-window correlations:
/// `row k` holds `c_k` of every covered pair, contiguous in packed pair
/// order.
///
/// The pair-major layout (one `Vec` per [`crate::sketch::PairSketch`])
/// strides across `N(N−1)/2` separate allocations when a tile of pairs is
/// evaluated; this view is what [`QueryPlan::block_kernel`] streams instead.
/// The in-memory query paths borrow it straight from the sketch's own
/// window-major table ([`SketchSet::window_corrs_view`], zero copies per
/// query); the disk engine materializes an owned [`TransposedCorrs`] per
/// read batch and takes its [`TransposedCorrs::view`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrView<'a> {
    pairs: usize,
    windows: usize,
    /// `data[k · pairs + p]` is window `k` of pair `p`.
    data: &'a [f64],
}

impl<'a> CorrView<'a> {
    /// Wrap a window-major buffer of `windows` rows of `pairs` correlations.
    ///
    /// # Panics
    ///
    /// Panics when the buffer length does not match `pairs · windows`.
    pub fn new(data: &'a [f64], pairs: usize, windows: usize) -> Self {
        assert_eq!(
            data.len(),
            pairs * windows,
            "window-major corr buffer has the wrong shape"
        );
        Self {
            pairs,
            windows,
            data,
        }
    }

    /// Number of pairs covered.
    pub fn pair_count(&self) -> usize {
        self.pairs
    }

    /// Number of windows covered.
    pub fn window_count(&self) -> usize {
        self.windows
    }

    /// The contiguous correlations of all pairs in window `k`.
    pub fn window_row(&self, k: usize) -> &'a [f64] {
        &self.data[k * self.pairs..(k + 1) * self.pairs]
    }
}

/// An owned window-major transposed copy of per-pair per-window correlations
/// — the buffer behind a [`CorrView`] when there is no long-lived
/// window-major table to borrow from (e.g. a batch of records just read
/// from a sketch store by the disk engine).
#[derive(Debug, Clone, PartialEq)]
pub struct TransposedCorrs {
    pairs: usize,
    windows: usize,
    /// `data[k · pairs + p]` is window `k` of pair `p`.
    data: Vec<f64>,
}

impl TransposedCorrs {
    /// Wrap a buffer that is *already* window-major (`data[k · pairs + p]` is
    /// window `k` of pair `p`), taking ownership. This is the constructor for
    /// callers that assemble the table by bulk row copies — e.g. gathering
    /// window rows off a memory-mapped sketch pile — instead of element by
    /// element through [`TransposedCorrs::from_fn`].
    ///
    /// # Panics
    ///
    /// Panics when the buffer length does not match `pairs · windows`.
    pub fn from_vec(data: Vec<f64>, pairs: usize, windows: usize) -> Self {
        assert_eq!(
            data.len(),
            pairs * windows,
            "window-major corr buffer has the wrong shape"
        );
        Self {
            pairs,
            windows,
            data,
        }
    }

    /// Build from a closure `f(p, k)` returning window `k` of pair `p`.
    pub fn from_fn(pairs: usize, windows: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = vec![0.0f64; pairs * windows];
        for (k, row) in data.chunks_exact_mut(pairs.max(1)).enumerate() {
            for (p, slot) in row.iter_mut().enumerate() {
                *slot = f(p, k);
            }
        }
        Self {
            pairs,
            windows,
            data,
        }
    }

    /// The borrowed view the batch kernel consumes.
    pub fn view(&self) -> CorrView<'_> {
        CorrView {
            pairs: self.pairs,
            windows: self.windows,
            data: &self.data,
        }
    }
}

/// Decompose a contiguous run of packed upper-triangle pair indices
/// (`start..start + count` in row-major order over `n` series) into
/// same-row segments `(i, j_start, len)` — the tiles
/// [`QueryPlan::block_kernel`] consumes. Both matrix sweeps and the disk
/// engine partition pairs into contiguous packed runs, so every partition is
/// a short list of these segments.
pub fn row_segments(start: usize, count: usize, n: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    if count == 0 {
        return out;
    }
    let (mut i, mut j) = crate::sketch::unpack_pair_index(start, n);
    let mut remaining = count;
    while remaining > 0 {
        let take = (n - j).min(remaining);
        out.push((i, j, take));
        remaining -= take;
        i += 1;
        j = i + 1;
    }
    out
}

/// Split `total` work items into `parts` contiguous runs whose sizes differ
/// by at most one — the partition policy shared by
/// [`crate::exact::correlation_matrix_parallel`] and the parallel engine's
/// `partition_pairs`, and the contiguity contract [`carve_packed_slices`]
/// relies on. `parts == 0` is clamped to 1.
pub fn even_sizes(total: usize, parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let base = total / parts;
    let remainder = total % parts;
    (0..parts)
        .map(|p| base + usize::from(p < remainder))
        .collect()
}

/// Carve a flat packed-triangle buffer into disjoint contiguous mutable
/// slices of the given `sizes`, in order.
///
/// This is the sharing primitive of the parallel all-pairs sweeps: because
/// pair partitions are contiguous runs of the row-major packed upper
/// triangle, each worker can own one of these slices and write its
/// correlations without synchronization or a merge step. Used by
/// [`crate::exact::correlation_matrix_parallel`] and the parallel disk
/// engine.
///
/// # Panics
///
/// Panics if the sizes sum to more than `values.len()`.
pub fn carve_packed_slices(
    mut values: &mut [f64],
    sizes: impl IntoIterator<Item = usize>,
) -> Vec<&mut [f64]> {
    let mut out = Vec::new();
    for size in sizes {
        let (chunk, rest) = values.split_at_mut(size);
        out.push(chunk);
        values = rest;
    }
    out
}

/// The fan-out prologue shared by the parallel matrix sweep and the
/// sliding-network update: split a packed-triangle buffer into one
/// contiguous slice per worker ([`even_sizes`] + [`carve_packed_slices`]),
/// each tagged with the packed index of its first pair so the worker can
/// recover `(i, j)` coordinates via [`row_segments`].
pub fn carve_for_workers(values: &mut [f64], workers: usize) -> Vec<(usize, &mut [f64])> {
    let sizes = even_sizes(values.len(), workers);
    let starts: Vec<usize> = sizes
        .iter()
        .scan(0, |acc, s| {
            let start = *acc;
            *acc += s;
            Some(start)
        })
        .collect();
    starts
        .into_iter()
        .zip(carve_packed_slices(values, sizes.iter().copied()))
        .collect()
}

/// Which recombination a cached plan evaluates: the exact Lemma 1 kernel
/// ([`QueryPlan`]) or the approximate Equation 5 kernel (`ApproxPlan` in
/// `tsubasa-dft`). Part of [`PlanKey`], the cache identity of a built plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PlanMethod {
    /// Exact Lemma 1 recombination over per-window Pearson correlations.
    Exact,
    /// Approximate Equation 5 recombination over DFT coefficient distances.
    Approximate,
}

/// The cache identity of a built per-query plan: which immutable sketch
/// snapshot it was built against (the *epoch*), which aligned basic-window
/// range it covers, and which recombination method it evaluates.
///
/// Plans are pure functions of these three coordinates — a plan built twice
/// from the same epoch's sketch over the same windows is bit-identical — so a
/// `(PlanKey → plan)` cache can serve repeated query windows without paying
/// the `O(n·ns)` table build, as long as epochs are published immutably
/// (append-only snapshots, never edited in place). `tsubasa-serve`'s plan
/// cache keys on exactly this type; it lives here so any caching layer
/// agrees on the identity of a plan.
///
/// ```
/// use std::collections::HashMap;
/// use tsubasa_core::plan::{PlanKey, PlanMethod};
///
/// let key = PlanKey::new(3, 2..8, PlanMethod::Exact);
/// let mut cache: HashMap<PlanKey, &str> = HashMap::new();
/// cache.insert(key, "a built plan");
/// assert_eq!(cache.get(&PlanKey::new(3, 2..8, PlanMethod::Exact)), Some(&"a built plan"));
/// assert_eq!(cache.get(&PlanKey::new(4, 2..8, PlanMethod::Exact)), None); // other epoch
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanKey {
    /// Id of the immutable sketch snapshot (epoch) the plan reads.
    pub epoch: u64,
    /// Start of the aligned basic-window range the plan covers.
    pub window_start: usize,
    /// End (exclusive) of the aligned basic-window range.
    pub window_end: usize,
    /// Which recombination the plan evaluates.
    pub method: PlanMethod,
}

impl PlanKey {
    /// Key for a plan over `windows` of epoch `epoch` using `method`.
    pub fn new(epoch: u64, windows: Range<usize>, method: PlanMethod) -> Self {
        Self {
            epoch,
            window_start: windows.start,
            window_end: windows.end,
            method,
        }
    }

    /// The aligned basic-window range this key covers.
    pub fn windows(&self) -> Range<usize> {
        self.window_start..self.window_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;

    fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
                (i as f64 * 0.13).sin() * 2.0 + noise
            })
            .collect()
    }

    fn test_collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows((0..n).map(|s| lcg_series(s as u64 + 1, len)).collect())
            .unwrap()
    }

    #[test]
    fn plan_matches_reference_path_bitwise_aligned() {
        let c = test_collection(5, 200);
        let sketch = SketchSet::build(&c, 25).unwrap();
        let query = QueryWindow::new(199, 150).unwrap();
        let plan = QueryPlan::build(&c, &sketch, query).unwrap();
        assert!(plan.is_aligned());
        for (i, j) in c.pairs() {
            let fast = plan.pair_correlation(&c, &sketch, i, j).unwrap();
            let reference = exact::pair_correlation(&c, &sketch, query, i, j).unwrap();
            assert_eq!(fast.to_bits(), reference.to_bits(), "pair ({i},{j})");
        }
    }

    #[test]
    fn plan_matches_reference_path_bitwise_unaligned() {
        let c = test_collection(4, 200);
        let sketch = SketchSet::build(&c, 30).unwrap();
        // Both boundaries unaligned: indices 37..=171.
        let query = QueryWindow::new(171, 135).unwrap();
        let plan = QueryPlan::build(&c, &sketch, query).unwrap();
        assert!(!plan.is_aligned());
        for (i, j) in c.pairs() {
            let fast = plan.pair_correlation(&c, &sketch, i, j).unwrap();
            let reference = exact::pair_correlation(&c, &sketch, query, i, j).unwrap();
            assert_eq!(fast.to_bits(), reference.to_bits(), "pair ({i},{j})");
        }
    }

    #[test]
    fn aligned_builder_matches_general_builder() {
        let c = test_collection(4, 120);
        let sketch = SketchSet::build(&c, 20).unwrap();
        let query = QueryWindow::new(119, 80).unwrap(); // windows 2..6
        let from_query = QueryPlan::build(&c, &sketch, query).unwrap();
        let from_range = QueryPlan::build_aligned(&sketch, 2..6).unwrap();
        assert_eq!(from_query, from_range);
        let a = from_range.pair_correlation_aligned(&sketch, 0, 3).unwrap();
        let b = exact::pair_correlation(&c, &sketch, query, 0, 3).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn from_window_stats_matches_aligned_builder() {
        let c = test_collection(3, 100);
        let sketch = SketchSet::build(&c, 10).unwrap();
        let stats: Vec<Vec<WindowStats>> = (0..3)
            .map(|i| {
                (2..8)
                    .map(|k| sketch.series_sketch(i).unwrap().window(k))
                    .collect()
            })
            .collect();
        let from_stats = QueryPlan::from_window_stats(&stats).unwrap();
        let aligned = QueryPlan::build_aligned(&sketch, 2..8).unwrap();
        // `full` ranges differ (store plans are 0-based) but the numeric
        // tables must agree.
        assert_eq!(from_stats.dens, aligned.dens);
        assert_eq!(from_stats.means, aligned.means);
        assert_eq!(from_stats.stds, aligned.stds);
        assert_eq!(from_stats.deltas, aligned.deltas);
    }

    #[test]
    fn accessors_expose_window_shape() {
        let c = test_collection(3, 100);
        let sketch = SketchSet::build(&c, 10).unwrap();
        let query = QueryWindow::new(97, 93).unwrap(); // head 5..10, tail 90..98
        let plan = QueryPlan::build(&c, &sketch, query).unwrap();
        assert_eq!(plan.series_count(), 3);
        assert_eq!(plan.full_windows(), 1..9);
        assert_eq!(plan.window_count(), 8 + 2);
        assert_eq!(plan.total_len(), 93.0);
        assert!(!plan.is_degenerate(0));
    }

    #[test]
    fn degenerate_series_yield_zero_pairs() {
        let c = SeriesCollection::from_rows(vec![vec![5.0; 60], lcg_series(1, 60)]).unwrap();
        let sketch = SketchSet::build(&c, 10).unwrap();
        let plan = QueryPlan::build_aligned(&sketch, 1..5).unwrap();
        assert!(plan.is_degenerate(0));
        assert!(!plan.is_degenerate(1));
        assert_eq!(plan.pair_correlation_aligned(&sketch, 0, 1).unwrap(), 0.0);
    }

    #[test]
    fn carve_packed_slices_covers_disjoint_ranges() {
        let mut values = vec![0.0; 10];
        let chunks = carve_packed_slices(&mut values, [4, 0, 3, 3]);
        assert_eq!(
            chunks.iter().map(|c| c.len()).collect::<Vec<_>>(),
            vec![4, 0, 3, 3]
        );
        for (w, chunk) in chunks.into_iter().enumerate() {
            for slot in chunk.iter_mut() {
                *slot = w as f64;
            }
        }
        assert_eq!(
            values,
            vec![0.0, 0.0, 0.0, 0.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0]
        );
    }

    #[test]
    fn block_kernel_matches_scalar_kernel_aligned() {
        let c = test_collection(6, 180);
        let sketch = SketchSet::build(&c, 20).unwrap();
        let plan = QueryPlan::build_aligned(&sketch, 1..8).unwrap();
        let corrs_t = sketch.window_corrs_view(1..8);
        let n = c.len();
        for i in 0..n - 1 {
            let mut tile = vec![0.0f64; n - 1 - i];
            plan.block_kernel(
                i,
                i + 1,
                corrs_t,
                crate::sketch::pair_index(i, i + 1, n),
                &mut tile,
            );
            for (p, &got) in tile.iter().enumerate() {
                let j = i + 1 + p;
                let reference = plan.pair_correlation_aligned(&sketch, i, j).unwrap();
                assert!(
                    (got - reference).abs() <= 1e-10,
                    "pair ({i},{j}): {got} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn block_kernel_matches_scalar_kernel_unaligned() {
        let c = test_collection(5, 200);
        let sketch = SketchSet::build(&c, 30).unwrap();
        // Head and tail both partial.
        let query = QueryWindow::new(171, 135).unwrap();
        let plan = QueryPlan::build(&c, &sketch, query).unwrap();
        assert!(!plan.is_aligned());
        let corrs_t = sketch.window_corrs_view(plan.full_windows());
        let n = c.len();
        for i in 0..n - 1 {
            let mut tile = vec![0.0f64; n - 1 - i];
            plan.block_kernel(
                i,
                i + 1,
                corrs_t,
                crate::sketch::pair_index(i, i + 1, n),
                &mut tile,
            );
            for (p, &got) in tile.iter().enumerate() {
                let j = i + 1 + p;
                let reference = plan.pair_correlation(&c, &sketch, i, j).unwrap();
                assert!(
                    (got - reference).abs() <= 1e-10,
                    "pair ({i},{j}): {got} vs {reference}"
                );
            }
        }
    }

    #[test]
    fn block_kernel_zeroes_degenerate_pairs() {
        let c =
            SeriesCollection::from_rows(vec![vec![5.0; 60], lcg_series(1, 60), lcg_series(2, 60)])
                .unwrap();
        let sketch = SketchSet::build(&c, 10).unwrap();
        let plan = QueryPlan::build_aligned(&sketch, 0..6).unwrap();
        let corrs_t = sketch.window_corrs_view(0..6);
        let mut tile = vec![9.0f64; 2];
        plan.block_kernel(0, 1, corrs_t, 0, &mut tile);
        assert_eq!(tile, vec![0.0, 0.0]);
    }

    #[test]
    fn corr_views_mirror_pair_sketches() {
        let c = test_collection(4, 120);
        let sketch = SketchSet::build(&c, 20).unwrap();
        let t = sketch.window_corrs_view(2..6);
        assert_eq!(t.pair_count(), 6);
        assert_eq!(t.window_count(), 4);
        for (p, pair) in sketch.pair_sketches().enumerate() {
            for kk in 0..4 {
                assert_eq!(t.window_row(kk)[p], pair.corrs[2 + kk]);
            }
        }
        let f = TransposedCorrs::from_fn(3, 2, |p, k| (p * 10 + k) as f64);
        assert_eq!(f.view().window_row(1), &[1.0, 11.0, 21.0]);
        assert_eq!(f.view().pair_count(), 3);
    }

    #[test]
    fn row_segments_cover_packed_runs() {
        let n = 6; // 15 pairs
                   // The whole triangle from 0 decomposes into the 5 rows.
        assert_eq!(
            row_segments(0, 15, n),
            vec![(0, 1, 5), (1, 2, 4), (2, 3, 3), (3, 4, 2), (4, 5, 1)]
        );
        // A run starting mid-row splits the first row.
        assert_eq!(row_segments(2, 5, n), vec![(0, 3, 3), (1, 2, 2)]);
        assert!(row_segments(4, 0, n).is_empty());
        // Segments re-concatenate to exactly the run's pairs.
        let segs = row_segments(7, 6, n);
        let mut rebuilt = Vec::new();
        for (i, j0, len) in segs {
            for p in 0..len {
                rebuilt.push(crate::sketch::pair_index(i, j0 + p, n));
            }
        }
        assert_eq!(rebuilt, (7..13).collect::<Vec<_>>());
    }

    #[test]
    fn builders_validate_inputs() {
        let c = test_collection(3, 100);
        let sketch = SketchSet::build(&c, 20).unwrap();
        assert!(QueryPlan::build_aligned(&sketch, 0..9).is_err());
        assert!(QueryPlan::build_aligned(&sketch, 2..2).is_err());
        assert!(QueryPlan::from_window_stats(&[]).is_err());
        let ragged = vec![
            vec![WindowStats::from_values(&[1.0, 2.0]); 3],
            vec![WindowStats::from_values(&[1.0, 2.0]); 2],
        ];
        assert!(QueryPlan::from_window_stats(&ragged).is_err());
        let too_long = QueryWindow::new(200, 10).unwrap();
        assert!(QueryPlan::build(&c, &sketch, too_long).is_err());
    }
}
