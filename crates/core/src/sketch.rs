//! One-pass basic-window sketching (paper Algorithm 1).
//!
//! The sketch of a collection consists of
//!
//! * per series, per basic window: mean and population standard deviation
//!   ([`SeriesSketch`]), and
//! * per unordered pair of series, per basic window: the Pearson correlation
//!   of the two aligned windows ([`PairSketch`]).
//!
//! Both are computed in a single pass over the raw data and are all that
//! Lemma 1 needs to recombine the exact correlation of any query window. The
//! space cost matches the paper's analysis: `L/B · (2N + N(N-1)/2)` floats.
//!
//! # The tiled batch kernel
//!
//! [`SketchSet::build`] evaluates the `N(N−1)/2` pair passes as a batch
//! kernel over **window-major, structure-of-arrays data**: every basic window
//! of every series is z-normalized once (`z = (x − μ)/σ`, stored contiguous
//! per window), after which each window's pair correlations are plain dot
//! products over contiguous rows ([`crate::stats::tiled_pair_corrs_into`],
//! a cache-blocked `Z·Zᵀ` sweep with unrolled accumulator lanes). Dividing by
//! `σ` per element instead of once at the end reorders the floating-point
//! operations, so the tiled sketch agrees with the scalar reference within
//! `1e-10` absolute rather than bit-for-bit; [`SketchSet::build_reference`]
//! keeps the scalar per-pair path available as the reference implementation,
//! and the `tiled_kernel_agreement` property suite pins the tolerance.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::stats::{normalize_into, pair_corr_from_stats, tiled_pair_corrs_into, WindowStats};
use crate::timeseries::{SeriesCollection, SeriesId};
use crate::window::BasicWindowing;

/// Per-basic-window statistics of one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSketch {
    /// Which series these statistics describe.
    pub series: SeriesId,
    /// Statistics of basic windows `0..ns`, in order.
    pub windows: Vec<WindowStats>,
}

impl SeriesSketch {
    /// Sketch one series under the given basic-window configuration.
    pub fn build(series: SeriesId, values: &[f64], windowing: BasicWindowing) -> Self {
        let ns = windowing.complete_windows(values.len());
        let windows = (0..ns)
            .map(|j| WindowStats::from_values(windowing.window_span(j).slice(values)))
            .collect();
        Self { series, windows }
    }

    /// Number of sketched basic windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Statistics of basic window `j`.
    pub fn window(&self, j: usize) -> WindowStats {
        self.windows[j]
    }

    /// Append the statistics of one newly completed basic window (real-time
    /// ingestion path).
    pub fn push_window(&mut self, stats: WindowStats) {
        self.windows.push(stats);
    }
}

/// Per-basic-window correlations of one unordered pair of series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairSketch {
    /// The smaller series id of the pair.
    pub a: SeriesId,
    /// The larger series id of the pair.
    pub b: SeriesId,
    /// Pearson correlation of the aligned basic windows `0..ns`, in order
    /// (`c_j` in the paper).
    pub corrs: Vec<f64>,
}

impl PairSketch {
    /// Number of sketched basic windows.
    pub fn window_count(&self) -> usize {
        self.corrs.len()
    }
}

/// Index of the unordered pair `(i, j)`, `i < j`, in a packed upper-triangle
/// layout of an `n × n` symmetric matrix (diagonal excluded).
///
/// Row `i` starts after `i` rows of decreasing length `n-1, n-2, ...`.
pub fn pair_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n, "pair_index requires i < j < n");
    // Offset of row i: sum_{k<i} (n-1-k) = i*(2n-i-1)/2
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Map a packed upper-triangle index back to its unordered pair `(i, j)`,
/// `i < j` — the inverse of [`pair_index`]. The parallel sweeps use it to
/// locate the first pair of a contiguous packed run
/// (see [`crate::plan::row_segments`]).
pub fn unpack_pair_index(p: usize, n: usize) -> (usize, usize) {
    let mut i = 0;
    let mut row_start = 0;
    loop {
        let row_len = n - 1 - i;
        if p < row_start + row_len {
            return (i, i + 1 + p - row_start);
        }
        row_start += row_len;
        i += 1;
    }
}

/// The complete sketch of a collection: every [`SeriesSketch`] plus every
/// [`PairSketch`], produced by one pass over the raw data (Algorithm 1).
///
/// Pair correlations are held in **both** layouts: the pair-major
/// [`PairSketch`] vectors (the per-pair API every scalar path slices) and a
/// window-major flat table (`window_corrs[w·P + p]`, packed pair order) that
/// the tiled query kernel streams without any per-query transposition —
/// [`SketchSet::window_corrs_view`] hands out a zero-copy view. The two are
/// maintained together by every constructor and by
/// [`SketchSet::push_window`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchSet {
    basic_window: usize,
    n_series: usize,
    series: Vec<SeriesSketch>,
    pairs: Vec<PairSketch>,
    /// Window-major copy of all pair correlations (`ns × P`, row `w` holds
    /// `c_w` of every pair in packed order).
    ///
    /// Derived redundantly from `pairs`. The serde derives above are
    /// workspace-local marker traits (nothing serializes a `SketchSet`
    /// through them today); if the real serde crate is ever swapped in,
    /// exclude this field (`#[serde(skip)]`) and rebuild it from `pairs` via
    /// `scatter_pair_rows` after deserialization — both so old payloads stay
    /// readable and so a hand-edited payload cannot desynchronize the two
    /// layouts.
    window_corrs: Vec<f64>,
}

/// Pair-block size of the cache-blocked layout conversions: one tile reads a
/// contiguous 512-byte run of a window row while keeping 64 per-pair write
/// streams open, instead of striding the whole `ns × P` table per pair.
const LAYOUT_TILE: usize = 64;

/// Cache-blocked gather of a window-major flat table (`flat[w·P + p]`) into
/// per-pair vectors (`out[p][w]`). Shared by every sketch that keeps its
/// per-pair values in both layouts (this crate's correlations, the DFT
/// comparator's distances).
pub fn gather_pair_rows(flat: &[f64], n_pairs: usize, ns: usize) -> Vec<Vec<f64>> {
    debug_assert_eq!(flat.len(), n_pairs * ns);
    let mut out: Vec<Vec<f64>> = (0..n_pairs).map(|_| vec![0.0f64; ns]).collect();
    for p0 in (0..n_pairs).step_by(LAYOUT_TILE) {
        let p1 = (p0 + LAYOUT_TILE).min(n_pairs);
        for w in 0..ns {
            let row = &flat[w * n_pairs..(w + 1) * n_pairs];
            for p in p0..p1 {
                out[p][w] = row[p];
            }
        }
    }
    out
}

/// Cache-blocked scatter of pair-major values into a window-major flat table
/// — the inverse of [`gather_pair_rows`], generalized over an accessor
/// `f(p, w)` so callers with different pair-major containers share the one
/// blocking scheme. Used when a sketch is assembled from pair-major parts
/// (store rehydration, partition merges, the scalar reference builders).
pub fn scatter_pair_rows_with(
    n_pairs: usize,
    ns: usize,
    mut f: impl FnMut(usize, usize) -> f64,
) -> Vec<f64> {
    let mut flat = vec![0.0f64; n_pairs * ns];
    for p0 in (0..n_pairs).step_by(LAYOUT_TILE) {
        let p1 = (p0 + LAYOUT_TILE).min(n_pairs);
        for w in 0..ns {
            let row = &mut flat[w * n_pairs..(w + 1) * n_pairs];
            for (slot, p) in row[p0..p1].iter_mut().zip(p0..p1) {
                *slot = f(p, w);
            }
        }
    }
    flat
}

/// [`scatter_pair_rows_with`] over [`PairSketch`] vectors.
fn scatter_pair_rows(pairs: &[PairSketch], ns: usize) -> Vec<f64> {
    scatter_pair_rows_with(pairs.len(), ns, |p, w| pairs[p].corrs[w])
}

impl SketchSet {
    /// Sketch an entire collection with basic windows of `basic_window`
    /// points (Algorithm 1, statistics-only lines 4–7 and 12).
    ///
    /// The per-series statistics are computed first; the `N(N−1)/2` pair
    /// passes are then evaluated as a tiled batch kernel: every window of
    /// every series is z-normalized once into a window-major
    /// structure-of-arrays buffer, and each window's pair correlations become
    /// dot products over contiguous rows
    /// ([`crate::stats::tiled_pair_corrs_into`]). The result agrees with the
    /// scalar reference path ([`SketchSet::build_reference`]) within `1e-10`
    /// absolute on every correlation (see the module docs for why the two
    /// are not bit-identical).
    ///
    /// Fails if the basic window is zero or longer than the series.
    pub fn build(collection: &SeriesCollection, basic_window: usize) -> Result<Self> {
        let series_len = collection.series_len();
        if basic_window == 0 || basic_window > series_len {
            return Err(Error::InvalidBasicWindow {
                window: basic_window,
                series_len,
            });
        }
        let windowing = BasicWindowing::new(basic_window)?;
        let ns = windowing.complete_windows(series_len);
        let n = collection.len();
        let n_pairs = n * n.saturating_sub(1) / 2;
        crate::capacity::check_dense_budget(n_pairs, ns)?;
        let b = basic_window;

        let series: Vec<SeriesSketch> = collection
            .iter_with_ids()
            .map(|(id, s)| SeriesSketch::build(id, s.values(), windowing))
            .collect();

        // Per window: z-normalize one window of every series into the n × B
        // structure-of-arrays scratch (row i is series i, contiguous), then
        // compute all of the window's pair correlations at once, written
        // window-major (flat[w·P + p]) so the kernel streams contiguous
        // memory. The scratch is O(n·B), reused across windows — only one
        // window block is ever live, never a normalized copy of the whole
        // dataset.
        let mut z = vec![0.0f64; n * b];
        let mut flat = vec![0.0f64; ns * n_pairs];
        for w in 0..ns {
            let span = windowing.window_span(w);
            for (i, s) in collection.iter_with_ids() {
                normalize_into(
                    span.slice(s.values()),
                    &series[i].windows[w],
                    &mut z[i * b..(i + 1) * b],
                );
            }
            tiled_pair_corrs_into(&z, n, b, &mut flat[w * n_pairs..(w + 1) * n_pairs]);
        }
        drop(z);

        // Pair-major vectors via a cache-blocked gather; the window-major
        // flat table is kept as-is for the query kernel.
        let rows = gather_pair_rows(&flat, n_pairs, ns);
        let mut pairs = Vec::with_capacity(n_pairs);
        for ((i, j), corrs) in collection.pairs().zip(rows) {
            pairs.push(PairSketch { a: i, b: j, corrs });
        }

        Ok(Self {
            basic_window,
            n_series: n,
            series,
            pairs,
            window_corrs: flat,
        })
    }

    /// The scalar reference sketch: identical shapes and statistics to
    /// [`SketchSet::build`], with every pair correlation computed by the
    /// reference centered-cross-product pass ([`pair_corr_from_stats`]) over
    /// the raw window slices.
    ///
    /// This path is the arithmetic yardstick the tiled kernel is tested
    /// against (≤ `1e-10` absolute per correlation); it is kept for that
    /// role, not for speed.
    pub fn build_reference(collection: &SeriesCollection, basic_window: usize) -> Result<Self> {
        let series_len = collection.series_len();
        if basic_window == 0 || basic_window > series_len {
            return Err(Error::InvalidBasicWindow {
                window: basic_window,
                series_len,
            });
        }
        let windowing = BasicWindowing::new(basic_window)?;
        let ns = windowing.complete_windows(series_len);
        let n = collection.len();

        let series: Vec<SeriesSketch> = collection
            .iter_with_ids()
            .map(|(id, s)| SeriesSketch::build(id, s.values(), windowing))
            .collect();

        let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
        for (i, j) in collection.pairs() {
            let x = collection.get(i)?.values();
            let y = collection.get(j)?.values();
            let mut corrs = Vec::with_capacity(ns);
            for w in 0..ns {
                let span = windowing.window_span(w);
                let c = pair_corr_from_stats(
                    span.slice(x),
                    span.slice(y),
                    &series[i].windows[w],
                    &series[j].windows[w],
                );
                corrs.push(c);
            }
            pairs.push(PairSketch { a: i, b: j, corrs });
        }

        let ns = series.first().map_or(0, |s| s.windows.len());
        let window_corrs = scatter_pair_rows(&pairs, ns);
        Ok(Self {
            basic_window,
            n_series: n,
            series,
            pairs,
            window_corrs,
        })
    }

    /// Construct a sketch set from already-computed parts. Used by the
    /// storage layer when re-hydrating sketches from disk and by the parallel
    /// sketcher when merging partition outputs. The window-major correlation
    /// table is rebuilt from the pair-major parts.
    pub fn from_parts(
        basic_window: usize,
        n_series: usize,
        series: Vec<SeriesSketch>,
        pairs: Vec<PairSketch>,
    ) -> Result<Self> {
        if basic_window == 0 {
            return Err(Error::InvalidBasicWindow {
                window: 0,
                series_len: 0,
            });
        }
        if series.len() != n_series || pairs.len() != n_series * n_series.saturating_sub(1) / 2 {
            return Err(Error::SketchMismatch {
                requested: format!(
                    "{n_series} series / {} pairs",
                    n_series * (n_series - 1) / 2
                ),
                available: format!("{} series / {} pairs", series.len(), pairs.len()),
            });
        }
        let ns = series.first().map_or(0, |s| s.windows.len());
        if let Some(bad) = pairs.iter().find(|p| p.corrs.len() != ns) {
            return Err(Error::SketchMismatch {
                requested: format!("{ns} windows per pair"),
                available: format!(
                    "{} windows for pair ({}, {})",
                    bad.corrs.len(),
                    bad.a,
                    bad.b
                ),
            });
        }
        let window_corrs = scatter_pair_rows(&pairs, ns);
        Ok(Self {
            basic_window,
            n_series,
            series,
            pairs,
            window_corrs,
        })
    }

    /// The basic-window size (`B`) this sketch was built with.
    pub fn basic_window(&self) -> usize {
        self.basic_window
    }

    /// The basic-window configuration as a [`BasicWindowing`].
    pub fn windowing(&self) -> BasicWindowing {
        BasicWindowing {
            size: self.basic_window,
        }
    }

    /// Number of series covered.
    pub fn series_count(&self) -> usize {
        self.n_series
    }

    /// Number of sketched basic windows per series.
    pub fn window_count(&self) -> usize {
        self.series.first().map_or(0, |s| s.windows.len())
    }

    /// Per-window statistics of one series.
    pub fn series_sketch(&self, id: SeriesId) -> Result<&SeriesSketch> {
        self.series.get(id).ok_or(Error::UnknownSeries(id))
    }

    /// Per-window correlations of one unordered pair (order of the arguments
    /// does not matter).
    pub fn pair_sketch(&self, i: SeriesId, j: SeriesId) -> Result<&PairSketch> {
        if i == j || i >= self.n_series || j >= self.n_series {
            return Err(Error::UnknownSeries(i.max(j)));
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        Ok(&self.pairs[pair_index(a, b, self.n_series)])
    }

    /// Iterate over all pair sketches.
    pub fn pair_sketches(&self) -> impl Iterator<Item = &PairSketch> {
        self.pairs.iter()
    }

    /// Iterate over all series sketches.
    pub fn series_sketches(&self) -> impl Iterator<Item = &SeriesSketch> {
        self.series.iter()
    }

    /// Append the sketch of one newly completed basic window: per-series
    /// statistics and per-pair correlations, in the same packed order as the
    /// stored sketches. Used by the streaming layer.
    pub fn push_window(
        &mut self,
        series_stats: Vec<WindowStats>,
        pair_corrs: Vec<f64>,
    ) -> Result<()> {
        if series_stats.len() != self.n_series
            || pair_corrs.len() != self.n_series * (self.n_series - 1) / 2
        {
            return Err(Error::SketchMismatch {
                requested: format!("{} series / {} pairs", series_stats.len(), pair_corrs.len()),
                available: format!(
                    "{} series / {} pairs",
                    self.n_series,
                    self.n_series * (self.n_series - 1) / 2
                ),
            });
        }
        for (sketch, stats) in self.series.iter_mut().zip(series_stats) {
            sketch.push_window(stats);
        }
        // The packed order of `pair_corrs` is exactly one new window-major
        // row, so the flat table grows by a contiguous append.
        self.window_corrs.extend_from_slice(&pair_corrs);
        for (sketch, c) in self.pairs.iter_mut().zip(pair_corrs) {
            sketch.corrs.push(c);
        }
        Ok(())
    }

    /// Zero-copy window-major view of the pair correlations over the basic
    /// windows in `full` — the table [`crate::plan::QueryPlan::block_kernel`]
    /// streams. Row `k` of the view is `c_{full.start+k}` of every pair in
    /// packed order.
    ///
    /// # Panics
    ///
    /// Panics when `full` exceeds the sketched window range.
    pub fn window_corrs_view(&self, full: std::ops::Range<usize>) -> crate::plan::CorrView<'_> {
        let n_pairs = self.n_series * self.n_series.saturating_sub(1) / 2;
        crate::plan::CorrView::new(
            &self.window_corrs[full.start * n_pairs..full.end * n_pairs],
            n_pairs,
            full.len(),
        )
    }

    /// Number of floats stored by the sketch — the paper's space-overhead
    /// quantity ψ = L/B · (2N + N(N-1)/2). Used by the Figure 6d experiment.
    pub fn stored_floats(&self) -> usize {
        let ns = self.window_count();
        ns * (2 * self.n_series + self.n_series * (self.n_series - 1) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;

    fn collection() -> SeriesCollection {
        SeriesCollection::from_rows(vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0],
            vec![2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0],
            vec![9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 7;
        let mut seen = vec![false; n * (n - 1) / 2];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = pair_index(i, j, n);
                assert!(!seen[idx], "duplicate index for ({i},{j})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn build_produces_expected_shapes() {
        let c = collection();
        let sketch = SketchSet::build(&c, 4).unwrap();
        assert_eq!(sketch.basic_window(), 4);
        assert_eq!(sketch.series_count(), 3);
        assert_eq!(sketch.window_count(), 2);
        assert_eq!(sketch.pair_sketches().count(), 3);
        assert_eq!(sketch.stored_floats(), 2 * (2 * 3 + 3));
    }

    #[test]
    fn build_rejects_bad_basic_window() {
        let c = collection();
        assert!(SketchSet::build(&c, 0).is_err());
        assert!(SketchSet::build(&c, 9).is_err());
        assert!(SketchSet::build(&c, 8).is_ok());
    }

    #[test]
    fn sketch_statistics_match_direct_computation() {
        let c = collection();
        let sketch = SketchSet::build(&c, 4).unwrap();
        let s0 = sketch.series_sketch(0).unwrap();
        let direct = WindowStats::from_values(&c.get(0).unwrap().values()[0..4]);
        assert!((s0.window(0).mean - direct.mean).abs() < 1e-12);
        assert!((s0.window(0).std - direct.std).abs() < 1e-12);

        let p01 = sketch.pair_sketch(0, 1).unwrap();
        let direct_c = pearson(
            &c.get(0).unwrap().values()[4..8],
            &c.get(1).unwrap().values()[4..8],
        );
        assert!((p01.corrs[1] - direct_c).abs() < 1e-12);
    }

    #[test]
    fn pair_sketch_is_order_insensitive() {
        let c = collection();
        let sketch = SketchSet::build(&c, 4).unwrap();
        let ab = sketch.pair_sketch(0, 2).unwrap();
        let ba = sketch.pair_sketch(2, 0).unwrap();
        assert_eq!(ab, ba);
        assert!(sketch.pair_sketch(1, 1).is_err());
        assert!(sketch.pair_sketch(0, 5).is_err());
    }

    #[test]
    fn tiled_build_matches_reference_path() {
        let rows: Vec<Vec<f64>> = (0..7)
            .map(|s| {
                (0..95)
                    .map(|i| {
                        ((i as f64 * 0.31 + s as f64).sin() * 3.0)
                            + ((i * 7 + s * 13) % 17) as f64 * 0.25
                    })
                    .collect()
            })
            .collect();
        let c = SeriesCollection::from_rows(rows).unwrap();
        for b in [4usize, 13, 31] {
            let tiled = SketchSet::build(&c, b).unwrap();
            let reference = SketchSet::build_reference(&c, b).unwrap();
            // Per-series statistics share the same code path: identical.
            assert_eq!(tiled.series, reference.series);
            for (t, r) in tiled.pairs.iter().zip(&reference.pairs) {
                assert_eq!((t.a, t.b), (r.a, r.b));
                for (ct, cr) in t.corrs.iter().zip(&r.corrs) {
                    assert!(
                        (ct - cr).abs() <= 1e-10,
                        "pair ({},{}) B={b}: {ct} vs {cr}",
                        t.a,
                        t.b
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_build_keeps_constant_window_convention() {
        // Series 0 is constant: every correlation involving it is 0.0 in both
        // the tiled and the reference sketch.
        let c = SeriesCollection::from_rows(vec![
            vec![3.0; 24],
            (0..24).map(|i| (i as f64 * 0.4).sin()).collect(),
        ])
        .unwrap();
        let tiled = SketchSet::build(&c, 6).unwrap();
        let reference = SketchSet::build_reference(&c, 6).unwrap();
        assert_eq!(tiled.pair_sketch(0, 1).unwrap().corrs, vec![0.0; 4]);
        assert_eq!(tiled, reference);
    }

    #[test]
    fn trailing_remainder_is_not_sketched() {
        let c = SeriesCollection::from_rows(vec![vec![1.0; 10], vec![2.0; 10]]).unwrap();
        let sketch = SketchSet::build(&c, 4).unwrap();
        // 10 / 4 = 2 complete windows; the trailing 2 points are ignored.
        assert_eq!(sketch.window_count(), 2);
    }

    #[test]
    fn push_window_extends_all_sketches() {
        let c = collection();
        let mut sketch = SketchSet::build(&c, 4).unwrap();
        let stats = vec![
            WindowStats {
                len: 4,
                mean: 0.0,
                std: 1.0
            };
            3
        ];
        sketch.push_window(stats, vec![0.5, 0.2, -0.1]).unwrap();
        assert_eq!(sketch.window_count(), 3);
        assert_eq!(sketch.pair_sketch(1, 2).unwrap().corrs.len(), 3);
    }

    #[test]
    fn push_window_rejects_wrong_arity() {
        let c = collection();
        let mut sketch = SketchSet::build(&c, 4).unwrap();
        let err = sketch.push_window(vec![], vec![]).unwrap_err();
        assert!(matches!(err, Error::SketchMismatch { .. }));
    }

    #[test]
    fn from_parts_validates_counts() {
        let c = collection();
        let sketch = SketchSet::build(&c, 4).unwrap();
        let series: Vec<_> = sketch.series_sketches().cloned().collect();
        let pairs: Vec<_> = sketch.pair_sketches().cloned().collect();
        assert!(SketchSet::from_parts(4, 3, series.clone(), pairs.clone()).is_ok());
        assert!(SketchSet::from_parts(4, 4, series, pairs).is_err());
    }
}
