//! One-pass basic-window sketching (paper Algorithm 1).
//!
//! The sketch of a collection consists of
//!
//! * per series, per basic window: mean and population standard deviation
//!   ([`SeriesSketch`]), and
//! * per unordered pair of series, per basic window: the Pearson correlation
//!   of the two aligned windows ([`PairSketch`]).
//!
//! Both are computed in a single pass over the raw data and are all that
//! Lemma 1 needs to recombine the exact correlation of any query window. The
//! space cost matches the paper's analysis: `L/B · (2N + N(N-1)/2)` floats.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::stats::{pair_corr_from_stats, WindowStats};
use crate::timeseries::{SeriesCollection, SeriesId};
use crate::window::BasicWindowing;

/// Per-basic-window statistics of one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSketch {
    /// Which series these statistics describe.
    pub series: SeriesId,
    /// Statistics of basic windows `0..ns`, in order.
    pub windows: Vec<WindowStats>,
}

impl SeriesSketch {
    /// Sketch one series under the given basic-window configuration.
    pub fn build(series: SeriesId, values: &[f64], windowing: BasicWindowing) -> Self {
        let ns = windowing.complete_windows(values.len());
        let windows = (0..ns)
            .map(|j| WindowStats::from_values(windowing.window_span(j).slice(values)))
            .collect();
        Self { series, windows }
    }

    /// Number of sketched basic windows.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Statistics of basic window `j`.
    pub fn window(&self, j: usize) -> WindowStats {
        self.windows[j]
    }

    /// Append the statistics of one newly completed basic window (real-time
    /// ingestion path).
    pub fn push_window(&mut self, stats: WindowStats) {
        self.windows.push(stats);
    }
}

/// Per-basic-window correlations of one unordered pair of series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairSketch {
    /// The smaller series id of the pair.
    pub a: SeriesId,
    /// The larger series id of the pair.
    pub b: SeriesId,
    /// Pearson correlation of the aligned basic windows `0..ns`, in order
    /// (`c_j` in the paper).
    pub corrs: Vec<f64>,
}

impl PairSketch {
    /// Number of sketched basic windows.
    pub fn window_count(&self) -> usize {
        self.corrs.len()
    }
}

/// Index of the unordered pair `(i, j)`, `i < j`, in a packed upper-triangle
/// layout of an `n × n` symmetric matrix (diagonal excluded).
///
/// Row `i` starts after `i` rows of decreasing length `n-1, n-2, ...`.
pub fn pair_index(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i < j && j < n, "pair_index requires i < j < n");
    // Offset of row i: sum_{k<i} (n-1-k) = i*(2n-i-1)/2
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// The complete sketch of a collection: every [`SeriesSketch`] plus every
/// [`PairSketch`], produced by one pass over the raw data (Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchSet {
    basic_window: usize,
    n_series: usize,
    series: Vec<SeriesSketch>,
    pairs: Vec<PairSketch>,
}

impl SketchSet {
    /// Sketch an entire collection with basic windows of `basic_window`
    /// points (Algorithm 1, statistics-only lines 4–7 and 12).
    ///
    /// The per-series statistics are computed first; the `N(N−1)/2` pair
    /// passes then reuse them and only evaluate the centered cross-product
    /// per window ([`pair_corr_from_stats`]) instead of re-deriving both
    /// series' running statistics for every pair.
    ///
    /// Fails if the basic window is zero or longer than the series.
    pub fn build(collection: &SeriesCollection, basic_window: usize) -> Result<Self> {
        let series_len = collection.series_len();
        if basic_window == 0 || basic_window > series_len {
            return Err(Error::InvalidBasicWindow {
                window: basic_window,
                series_len,
            });
        }
        let windowing = BasicWindowing::new(basic_window)?;
        let ns = windowing.complete_windows(series_len);
        let n = collection.len();

        let series: Vec<SeriesSketch> = collection
            .iter_with_ids()
            .map(|(id, s)| SeriesSketch::build(id, s.values(), windowing))
            .collect();

        let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
        for (i, j) in collection.pairs() {
            let x = collection.get(i)?.values();
            let y = collection.get(j)?.values();
            let mut corrs = Vec::with_capacity(ns);
            for w in 0..ns {
                let span = windowing.window_span(w);
                let c = pair_corr_from_stats(
                    span.slice(x),
                    span.slice(y),
                    &series[i].windows[w],
                    &series[j].windows[w],
                );
                corrs.push(c);
            }
            pairs.push(PairSketch { a: i, b: j, corrs });
        }

        Ok(Self {
            basic_window,
            n_series: n,
            series,
            pairs,
        })
    }

    /// Construct a sketch set from already-computed parts. Used by the
    /// storage layer when re-hydrating sketches from disk and by the parallel
    /// sketcher when merging partition outputs.
    pub fn from_parts(
        basic_window: usize,
        n_series: usize,
        series: Vec<SeriesSketch>,
        pairs: Vec<PairSketch>,
    ) -> Result<Self> {
        if basic_window == 0 {
            return Err(Error::InvalidBasicWindow {
                window: 0,
                series_len: 0,
            });
        }
        if series.len() != n_series || pairs.len() != n_series * n_series.saturating_sub(1) / 2 {
            return Err(Error::SketchMismatch {
                requested: format!(
                    "{n_series} series / {} pairs",
                    n_series * (n_series - 1) / 2
                ),
                available: format!("{} series / {} pairs", series.len(), pairs.len()),
            });
        }
        Ok(Self {
            basic_window,
            n_series,
            series,
            pairs,
        })
    }

    /// The basic-window size (`B`) this sketch was built with.
    pub fn basic_window(&self) -> usize {
        self.basic_window
    }

    /// The basic-window configuration as a [`BasicWindowing`].
    pub fn windowing(&self) -> BasicWindowing {
        BasicWindowing {
            size: self.basic_window,
        }
    }

    /// Number of series covered.
    pub fn series_count(&self) -> usize {
        self.n_series
    }

    /// Number of sketched basic windows per series.
    pub fn window_count(&self) -> usize {
        self.series.first().map_or(0, |s| s.windows.len())
    }

    /// Per-window statistics of one series.
    pub fn series_sketch(&self, id: SeriesId) -> Result<&SeriesSketch> {
        self.series.get(id).ok_or(Error::UnknownSeries(id))
    }

    /// Per-window correlations of one unordered pair (order of the arguments
    /// does not matter).
    pub fn pair_sketch(&self, i: SeriesId, j: SeriesId) -> Result<&PairSketch> {
        if i == j || i >= self.n_series || j >= self.n_series {
            return Err(Error::UnknownSeries(i.max(j)));
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        Ok(&self.pairs[pair_index(a, b, self.n_series)])
    }

    /// Iterate over all pair sketches.
    pub fn pair_sketches(&self) -> impl Iterator<Item = &PairSketch> {
        self.pairs.iter()
    }

    /// Iterate over all series sketches.
    pub fn series_sketches(&self) -> impl Iterator<Item = &SeriesSketch> {
        self.series.iter()
    }

    /// Append the sketch of one newly completed basic window: per-series
    /// statistics and per-pair correlations, in the same packed order as the
    /// stored sketches. Used by the streaming layer.
    pub fn push_window(
        &mut self,
        series_stats: Vec<WindowStats>,
        pair_corrs: Vec<f64>,
    ) -> Result<()> {
        if series_stats.len() != self.n_series
            || pair_corrs.len() != self.n_series * (self.n_series - 1) / 2
        {
            return Err(Error::SketchMismatch {
                requested: format!("{} series / {} pairs", series_stats.len(), pair_corrs.len()),
                available: format!(
                    "{} series / {} pairs",
                    self.n_series,
                    self.n_series * (self.n_series - 1) / 2
                ),
            });
        }
        for (sketch, stats) in self.series.iter_mut().zip(series_stats) {
            sketch.push_window(stats);
        }
        for (sketch, c) in self.pairs.iter_mut().zip(pair_corrs) {
            sketch.corrs.push(c);
        }
        Ok(())
    }

    /// Number of floats stored by the sketch — the paper's space-overhead
    /// quantity ψ = L/B · (2N + N(N-1)/2). Used by the Figure 6d experiment.
    pub fn stored_floats(&self) -> usize {
        let ns = self.window_count();
        ns * (2 * self.n_series + self.n_series * (self.n_series - 1) / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pearson;

    fn collection() -> SeriesCollection {
        SeriesCollection::from_rows(vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0],
            vec![2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0],
            vec![9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 7;
        let mut seen = vec![false; n * (n - 1) / 2];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = pair_index(i, j, n);
                assert!(!seen[idx], "duplicate index for ({i},{j})");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn build_produces_expected_shapes() {
        let c = collection();
        let sketch = SketchSet::build(&c, 4).unwrap();
        assert_eq!(sketch.basic_window(), 4);
        assert_eq!(sketch.series_count(), 3);
        assert_eq!(sketch.window_count(), 2);
        assert_eq!(sketch.pair_sketches().count(), 3);
        assert_eq!(sketch.stored_floats(), 2 * (2 * 3 + 3));
    }

    #[test]
    fn build_rejects_bad_basic_window() {
        let c = collection();
        assert!(SketchSet::build(&c, 0).is_err());
        assert!(SketchSet::build(&c, 9).is_err());
        assert!(SketchSet::build(&c, 8).is_ok());
    }

    #[test]
    fn sketch_statistics_match_direct_computation() {
        let c = collection();
        let sketch = SketchSet::build(&c, 4).unwrap();
        let s0 = sketch.series_sketch(0).unwrap();
        let direct = WindowStats::from_values(&c.get(0).unwrap().values()[0..4]);
        assert!((s0.window(0).mean - direct.mean).abs() < 1e-12);
        assert!((s0.window(0).std - direct.std).abs() < 1e-12);

        let p01 = sketch.pair_sketch(0, 1).unwrap();
        let direct_c = pearson(
            &c.get(0).unwrap().values()[4..8],
            &c.get(1).unwrap().values()[4..8],
        );
        assert!((p01.corrs[1] - direct_c).abs() < 1e-12);
    }

    #[test]
    fn pair_sketch_is_order_insensitive() {
        let c = collection();
        let sketch = SketchSet::build(&c, 4).unwrap();
        let ab = sketch.pair_sketch(0, 2).unwrap();
        let ba = sketch.pair_sketch(2, 0).unwrap();
        assert_eq!(ab, ba);
        assert!(sketch.pair_sketch(1, 1).is_err());
        assert!(sketch.pair_sketch(0, 5).is_err());
    }

    #[test]
    fn trailing_remainder_is_not_sketched() {
        let c = SeriesCollection::from_rows(vec![vec![1.0; 10], vec![2.0; 10]]).unwrap();
        let sketch = SketchSet::build(&c, 4).unwrap();
        // 10 / 4 = 2 complete windows; the trailing 2 points are ignored.
        assert_eq!(sketch.window_count(), 2);
    }

    #[test]
    fn push_window_extends_all_sketches() {
        let c = collection();
        let mut sketch = SketchSet::build(&c, 4).unwrap();
        let stats = vec![
            WindowStats {
                len: 4,
                mean: 0.0,
                std: 1.0
            };
            3
        ];
        sketch.push_window(stats, vec![0.5, 0.2, -0.1]).unwrap();
        assert_eq!(sketch.window_count(), 3);
        assert_eq!(sketch.pair_sketch(1, 2).unwrap().corrs.len(), 3);
    }

    #[test]
    fn push_window_rejects_wrong_arity() {
        let c = collection();
        let mut sketch = SketchSet::build(&c, 4).unwrap();
        let err = sketch.push_window(vec![], vec![]).unwrap_err();
        assert!(matches!(err, Error::SketchMismatch { .. }));
    }

    #[test]
    fn from_parts_validates_counts() {
        let c = collection();
        let sketch = SketchSet::build(&c, 4).unwrap();
        let series: Vec<_> = sketch.series_sketches().cloned().collect();
        let pairs: Vec<_> = sketch.pair_sketches().cloned().collect();
        assert!(SketchSet::from_parts(4, 3, series.clone(), pairs.clone()).is_ok());
        assert!(SketchSet::from_parts(4, 4, series, pairs).is_err());
    }
}
