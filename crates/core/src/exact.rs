//! Exact recombination of Pearson correlation from basic-window statistics
//! (paper Lemma 1) and the historical network-construction path built on it
//! (Algorithm 2).
//!
//! The central function is [`combine`], which implements the generalized
//! Lemma 1 for basic windows of arbitrary (possibly unequal) sizes:
//!
//! ```text
//!              Σ_j B_j (σ_xj σ_yj c_j + δ_xj δ_yj)
//! Corr(x,y) = ───────────────────────────────────────────────
//!             √(Σ_i B_i (σ_xi² + δ_xi²)) √(Σ_i B_i (σ_yi² + δ_yi²))
//! ```
//!
//! with `δ_xj = x̄_j − x̄` where `x̄` is the length-weighted mean of the query
//! window (`Σ B_k x̄_k / Σ B_k`; with equal-size windows this is exactly the
//! paper's `Σ x̄_k / ns`).
//!
//! [`pair_correlation`] applies the decomposition of
//! [`crate::window::BasicWindowing::segment`] so that query windows whose
//! boundaries fall *inside* a basic window are handled exactly: the partial
//! head and tail are re-sketched from raw data, the interior windows come
//! from the pre-computed sketch.
//!
//! The all-pairs entry points ([`correlation_matrix`],
//! [`correlation_matrix_aligned`], [`correlation_matrix_parallel`]) do *not*
//! loop over [`pair_correlation`]: they build a [`crate::plan::QueryPlan`]
//! once per query and evaluate the packed triangle row tile by row tile with
//! the plan's batch kernel ([`QueryPlan::block_kernel`]) against the
//! sketch's window-major correlation table (borrowed zero-copy through
//! [`SketchSet::window_corrs_view`]). The batch kernel reorders the
//! floating-point accumulation, so the matrix paths agree with the per-pair
//! reference within `1e-10` absolute (the `tiled_kernel_agreement` property
//! suite pins this) rather than bit-for-bit; the scalar plan kernel
//! ([`QueryPlan::pair_kernel`]) remains bit-identical to [`pair_correlation`].

use crate::capacity::check_dense_budget;
use crate::error::{Error, Result};
use crate::matrix::CorrelationMatrix;
use crate::plan::{row_segments, CorrView, QueryPlan};
use crate::runner::{Job, JobRunner, ScopedRunner};
use crate::sketch::{pair_index, SketchSet};
use crate::stats::{clamp_corr, WindowStats};
use crate::sweep::{
    sweep_run, CorrelationBounds, EdgeList, EdgeSink, TopK, TopKSink, DEFAULT_TILE_PAIRS,
};
use crate::timeseries::{SeriesCollection, SeriesId};
use crate::window::QueryWindow;

/// The contribution of one basic window (full or partial) to a pairwise
/// correlation: the two per-series statistics plus the within-window
/// correlation `c_j`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowContribution {
    /// Statistics of this window of the first series.
    pub x: WindowStats,
    /// Statistics of this window of the second series.
    pub y: WindowStats,
    /// Pearson correlation of the two windows.
    pub corr: f64,
}

impl WindowContribution {
    /// Sketch a raw (partial) window pair on the fly: per-series statistics
    /// first, then the centered cross-product for the correlation
    /// ([`crate::stats::pair_corr_from_stats`]). Within this function that
    /// split is not a saving — it makes three passes where the old fused
    /// Welford pass made one — but it keeps every per-window correlation in
    /// the workspace (sketch build, plan head/tail handling, sliding
    /// updates) on the *same* arithmetic, which is what the bit-for-bit
    /// equivalence between the reference path and the
    /// [`crate::plan::QueryPlan`] kernel rests on.
    pub fn from_raw(x: &[f64], y: &[f64]) -> Self {
        let sx = WindowStats::from_values(x);
        let sy = WindowStats::from_values(y);
        let c = crate::stats::pair_corr_from_stats(x, y, &sx, &sy);
        Self {
            x: sx,
            y: sy,
            corr: c,
        }
    }
}

/// Exact Pearson correlation of the concatenation of the given windows
/// (Lemma 1, generalized to arbitrary window lengths).
///
/// Fails with [`Error::DegenerateWindow`] when the concatenated window has
/// zero variance in either series (a constant series), or when no points are
/// covered at all — Pearson correlation is undefined there. Callers that
/// want the classic "constant ⇒ 0.0" convention of
/// [`crate::stats::pearson`] map the error explicitly, as
/// [`pair_correlation`] does.
pub fn combine(parts: &[WindowContribution]) -> Result<f64> {
    let total: f64 = parts.iter().map(|p| p.x.len as f64).sum();
    if total == 0.0 {
        return Err(Error::DegenerateWindow { points: 0 });
    }
    // Length-weighted means of the whole query window.
    let mean_x = parts.iter().map(|p| p.x.len as f64 * p.x.mean).sum::<f64>() / total;
    let mean_y = parts.iter().map(|p| p.y.len as f64 * p.y.mean).sum::<f64>() / total;

    let mut num = 0.0;
    let mut den_x = 0.0;
    let mut den_y = 0.0;
    for p in parts {
        let b = p.x.len as f64;
        let dx = p.x.mean - mean_x;
        let dy = p.y.mean - mean_y;
        num += b * (p.x.std * p.y.std * p.corr + dx * dy);
        den_x += b * (p.x.std * p.x.std + dx * dx);
        den_y += b * (p.y.std * p.y.std + dy * dy);
    }
    if den_x <= 0.0 || den_y <= 0.0 {
        return Err(Error::DegenerateWindow {
            points: total as usize,
        });
    }
    Ok(clamp_corr(num / (den_x.sqrt() * den_y.sqrt())))
}

/// Map the [`Error::DegenerateWindow`] produced by a constant series to the
/// `0.0` correlation convention of [`crate::stats::pearson`], passing every
/// other error through. The matrix-construction paths use this so that
/// constant series yield isolated nodes instead of failing the whole query.
pub(crate) fn degenerate_to_zero(r: Result<f64>) -> Result<f64> {
    match r {
        Err(Error::DegenerateWindow { .. }) => Ok(0.0),
        other => other,
    }
}

/// Variance-recombination identity used in the proof of Lemma 1: the
/// population variance of the concatenation of windows is
/// `Σ B_i (σ_i² + δ_i²) / T`. Exposed because the incremental updater and the
/// property tests rely on it.
pub fn combined_variance(parts: &[WindowStats]) -> f64 {
    let total: f64 = parts.iter().map(|p| p.len as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mean = parts.iter().map(|p| p.len as f64 * p.mean).sum::<f64>() / total;
    parts
        .iter()
        .map(|p| p.len as f64 * (p.std * p.std + (p.mean - mean).powi(2)))
        .sum::<f64>()
        / total
}

/// Gather the [`WindowContribution`]s of one pair for one query window,
/// combining sketched interior windows with raw partial head/tail windows.
fn gather_contributions(
    collection: &SeriesCollection,
    sketch: &SketchSet,
    query: QueryWindow,
    i: SeriesId,
    j: SeriesId,
) -> Result<Vec<WindowContribution>> {
    query.validate(collection.series_len())?;
    let windowing = sketch.windowing();
    let seg = windowing.segment(query);
    if seg.full.end > sketch.window_count() {
        return Err(Error::SketchMismatch {
            requested: format!("basic windows up to {}", seg.full.end),
            available: format!("{} sketched windows", sketch.window_count()),
        });
    }

    let xs = collection.get(i)?.values();
    let ys = collection.get(j)?.values();
    let series_x = sketch.series_sketch(i)?;
    let series_y = sketch.series_sketch(j)?;
    let pair = sketch.pair_sketch(i, j)?;
    // When the caller passes (i, j) with i > j the pair sketch still refers
    // to (min, max); correlation is symmetric so the value is unaffected.

    let mut parts = Vec::with_capacity(
        seg.full_count() + seg.head.is_some() as usize + seg.tail.is_some() as usize,
    );
    if let Some(head) = seg.head {
        parts.push(WindowContribution::from_raw(head.slice(xs), head.slice(ys)));
    }
    for w in seg.full.clone() {
        parts.push(WindowContribution {
            x: series_x.window(w),
            y: series_y.window(w),
            corr: pair.corrs[w],
        });
    }
    if let Some(tail) = seg.tail {
        parts.push(WindowContribution::from_raw(tail.slice(xs), tail.slice(ys)));
    }
    Ok(parts)
}

/// Exact Pearson correlation of series `i` and `j` on `query`, recombined
/// from the sketch (Lemma 1). Arbitrary query windows are supported; the
/// partial head/tail, if any, are sketched from the raw data in `collection`.
///
/// This is the *reference* per-pair path: it materializes the
/// [`WindowContribution`]s of the pair and recombines them with [`combine`].
/// The all-pairs entry points ([`correlation_matrix`],
/// [`correlation_matrix_parallel`]) instead share a precomputed
/// [`crate::plan::QueryPlan`] across pairs and produce bit-identical values;
/// the equality is asserted by the `flat_kernel_equivalence` property tests.
///
/// A constant series yields `0.0` (the [`crate::stats::pearson`]
/// convention), mapped explicitly from [`Error::DegenerateWindow`].
pub fn pair_correlation(
    collection: &SeriesCollection,
    sketch: &SketchSet,
    query: QueryWindow,
    i: SeriesId,
    j: SeriesId,
) -> Result<f64> {
    if i == j {
        return Ok(1.0);
    }
    let parts = gather_contributions(collection, sketch, query, i, j)?;
    degenerate_to_zero(combine(&parts))
}

/// Exact correlation of a pair using *only* the sketch, for a query window
/// aligned to basic-window boundaries given as a range of basic-window
/// indices. This is the path the disk-based/parallel engine uses (no raw data
/// required at query time).
pub fn pair_correlation_aligned(
    sketch: &SketchSet,
    windows: std::ops::Range<usize>,
    i: SeriesId,
    j: SeriesId,
) -> Result<f64> {
    if i == j {
        return Ok(1.0);
    }
    if windows.end > sketch.window_count() || windows.is_empty() {
        return Err(Error::SketchMismatch {
            requested: format!("basic windows {windows:?}"),
            available: format!("{} sketched windows", sketch.window_count()),
        });
    }
    let sx = sketch.series_sketch(i)?;
    let sy = sketch.series_sketch(j)?;
    let pair = sketch.pair_sketch(i, j)?;
    let parts: Vec<WindowContribution> = windows
        .map(|w| WindowContribution {
            x: sx.window(w),
            y: sy.window(w),
            corr: pair.corrs[w],
        })
        .collect();
    degenerate_to_zero(combine(&parts))
}

/// Exact all-pair correlation matrix on `query` (the correlation-matrix step
/// of Algorithm 2), recombined from the sketch through a shared
/// [`QueryPlan`].
///
/// ```
/// use tsubasa_core::prelude::*;
///
/// let collection = SeriesCollection::from_rows(vec![
///     vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
///     vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0],
/// ])
/// .unwrap();
/// let sketch = SketchSet::build(&collection, 4).unwrap();
/// let query = QueryWindow::new(7, 8).unwrap();
/// let matrix = exact::correlation_matrix(&collection, &sketch, query).unwrap();
/// assert!((matrix.get(0, 1) - 1.0).abs() < 1e-12); // perfectly correlated
/// ```
pub fn correlation_matrix(
    collection: &SeriesCollection,
    sketch: &SketchSet,
    query: QueryWindow,
) -> Result<CorrelationMatrix> {
    let n = collection.len();
    let plan = QueryPlan::build(collection, sketch, query)?;
    if n < 2 {
        return Ok(CorrelationMatrix::identity(n));
    }
    check_dense_budget(n * (n - 1) / 2, 1)?;
    let corrs_t = sketch.window_corrs_view(plan.full_windows());
    let mut values = vec![0.0f64; n * (n - 1) / 2];
    sweep_packed_run(&plan, corrs_t, 0, &mut values);
    Ok(CorrelationMatrix::from_upper_triangle(n, values))
}

/// All-pair correlation matrix over an aligned range of basic windows, using
/// only the sketch (shared [`QueryPlan`] evaluated through the batch kernel,
/// no raw data touched).
pub fn correlation_matrix_aligned(
    sketch: &SketchSet,
    windows: std::ops::Range<usize>,
) -> Result<CorrelationMatrix> {
    let n = sketch.series_count();
    let plan = QueryPlan::build_aligned(sketch, windows)?;
    if n < 2 {
        return Ok(CorrelationMatrix::identity(n));
    }
    check_dense_budget(n * (n - 1) / 2, 1)?;
    let corrs_t = sketch.window_corrs_view(plan.full_windows());
    let mut values = vec![0.0f64; n * (n - 1) / 2];
    sweep_packed_run(&plan, corrs_t, 0, &mut values);
    Ok(CorrelationMatrix::from_upper_triangle(n, values))
}

/// The thresholded network (`c > θ`, the semantics of
/// [`CorrelationMatrix::threshold`]) computed through the streaming sweep:
/// the packed triangle is never materialized; each
/// [`QueryPlan::block_kernel`] tile is thresholded and discarded. The edge
/// set equals `correlation_matrix(..)?.threshold(theta)` exactly — same
/// kernel, same values, tile boundaries don't change any pair's arithmetic —
/// at `O(tile + edges)` memory. Every pair is observed (no pruning), so NaN
/// accounting is exhaustive.
pub fn network_streamed(
    collection: &SeriesCollection,
    sketch: &SketchSet,
    query: QueryWindow,
    theta: f64,
) -> Result<EdgeList> {
    if !(-1.0..=1.0).contains(&theta) {
        return Err(Error::InvalidThreshold(theta));
    }
    let plan = QueryPlan::build(collection, sketch, query)?;
    let mut sink = EdgeSink::new(theta);
    streamed_sweep(sketch, &plan, None, &mut sink);
    Ok(sink.finish(collection.len()))
}

/// [`network_streamed`] for an aligned range of basic windows (sketch-only,
/// no raw data touched).
pub fn network_streamed_aligned(
    sketch: &SketchSet,
    windows: std::ops::Range<usize>,
    theta: f64,
) -> Result<EdgeList> {
    if !(-1.0..=1.0).contains(&theta) {
        return Err(Error::InvalidThreshold(theta));
    }
    let plan = QueryPlan::build_aligned(sketch, windows)?;
    let mut sink = EdgeSink::new(theta);
    streamed_sweep(sketch, &plan, None, &mut sink);
    Ok(sink.finish(sketch.series_count()))
}

/// The `k` strongest edges of the query window, streamed: a k-bounded heap
/// replaces the dense triangle, and tiles whose Equation-4 upper bound
/// cannot beat the current k-th strength are skipped before any kernel work.
/// Ranking is total ([`f64::total_cmp`], ties by ascending pair index) and
/// equals the sorted dense matrix's top k.
pub fn top_k(
    collection: &SeriesCollection,
    sketch: &SketchSet,
    query: QueryWindow,
    k: usize,
) -> Result<TopK> {
    let plan = QueryPlan::build(collection, sketch, query)?;
    let bounds = CorrelationBounds::from_plan(&plan);
    let mut sink = TopKSink::new(k);
    streamed_sweep(sketch, &plan, Some(&bounds), &mut sink);
    Ok(sink.finish())
}

/// [`top_k`] for an aligned range of basic windows (sketch-only).
pub fn top_k_aligned(
    sketch: &SketchSet,
    windows: std::ops::Range<usize>,
    k: usize,
) -> Result<TopK> {
    let plan = QueryPlan::build_aligned(sketch, windows)?;
    let bounds = CorrelationBounds::from_plan(&plan);
    let mut sink = TopKSink::new(k);
    streamed_sweep(sketch, &plan, Some(&bounds), &mut sink);
    Ok(sink.finish())
}

/// Shared body of the streamed entry points: borrow the sketch's
/// window-major table for the plan's full windows and sweep all pairs into
/// the sink.
fn streamed_sweep(
    sketch: &SketchSet,
    plan: &QueryPlan,
    bounds: Option<&CorrelationBounds>,
    sink: &mut dyn crate::sweep::TileSink,
) {
    let n = plan.series_count();
    if n < 2 {
        return;
    }
    let corrs_t = sketch.window_corrs_view(plan.full_windows());
    sweep_run(
        plan,
        &corrs_t,
        bounds,
        0..n * (n - 1) / 2,
        DEFAULT_TILE_PAIRS,
        sink,
    );
}

/// Evaluate the contiguous packed-triangle run `start..start + out.len()`
/// through the plan's batch kernel, one same-row tile at a time. This is the
/// unit of work both the serial and the parallel sweeps execute — a worker's
/// chunk boundary never changes any pair's arithmetic, so the matrix is
/// independent of the worker count.
fn sweep_packed_run(plan: &QueryPlan, corrs_t: CorrView<'_>, start: usize, out: &mut [f64]) {
    let n = plan.series_count();
    let mut cursor = 0;
    for (i, j0, len) in row_segments(start, out.len(), n) {
        plan.block_kernel(
            i,
            j0,
            corrs_t,
            pair_index(i, j0, n),
            &mut out[cursor..cursor + len],
        );
        cursor += len;
    }
}

/// Multi-threaded in-memory all-pairs sweep: the same batch kernel as
/// [`correlation_matrix`], with the packed upper triangle split into
/// contiguous disjoint slices evaluated by `workers` threads that share the
/// read-only plan.
///
/// The result is identical to [`correlation_matrix`] regardless of the
/// worker count (every pair's accumulation is independent, so chunk
/// boundaries don't change the arithmetic). `workers == 0` is clamped to 1;
/// counts above the number of pairs are clamped down.
///
/// This convenience wrapper spawns scoped threads on every call
/// ([`ScopedRunner`]); query-heavy callers should build a reusable
/// `tsubasa_parallel::WorkerPool` once and call
/// [`correlation_matrix_parallel_in`] to stop paying thread startup per
/// query.
pub fn correlation_matrix_parallel(
    collection: &SeriesCollection,
    sketch: &SketchSet,
    query: QueryWindow,
    workers: usize,
) -> Result<CorrelationMatrix> {
    correlation_matrix_parallel_in(&ScopedRunner::new(workers), collection, sketch, query)
}

/// [`correlation_matrix_parallel`] on a caller-provided [`JobRunner`] — pass
/// a reusable worker pool to amortize thread startup across repeated
/// queries.
pub fn correlation_matrix_parallel_in(
    runner: &dyn JobRunner,
    collection: &SeriesCollection,
    sketch: &SketchSet,
    query: QueryWindow,
) -> Result<CorrelationMatrix> {
    let n = collection.len();
    let total = n * n.saturating_sub(1) / 2;
    let workers = runner.worker_count().max(1).min(total.max(1));
    if workers <= 1 || total == 0 {
        return correlation_matrix(collection, sketch, query);
    }
    check_dense_budget(total, 1)?;
    let plan = QueryPlan::build(collection, sketch, query)?;
    let corrs_t = sketch.window_corrs_view(plan.full_windows());
    let mut values = vec![0.0f64; total];

    let plan_ref = &plan;
    let jobs: Vec<Job<'_>> = crate::plan::carve_for_workers(&mut values, workers)
        .into_iter()
        .map(|(start, chunk)| {
            Box::new(move || sweep_packed_run(plan_ref, corrs_t, start, chunk)) as Job<'_>
        })
        .collect();
    runner.run(jobs);
    Ok(CorrelationMatrix::from_upper_triangle(n, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::stats::pearson;
    use proptest::prelude::*;

    fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
        // Small deterministic pseudo-random series without pulling `rand`
        // into the unit tests of the hot path.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
                (i as f64 * 0.1).sin() * 2.0 + noise
            })
            .collect()
    }

    fn test_collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows((0..n).map(|s| lcg_series(s as u64 + 1, len)).collect())
            .unwrap()
    }

    #[test]
    fn combine_single_window_equals_direct_pearson() {
        let x = lcg_series(1, 50);
        let y = lcg_series(2, 50);
        let part = WindowContribution::from_raw(&x, &y);
        assert!((combine(&[part]).unwrap() - pearson(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn combine_rejects_degenerate_windows() {
        // A constant series has zero variance: the denominator is 0 and the
        // correlation is undefined — a typed error, not a silent 0.0.
        let constant = vec![5.0; 30];
        let y = lcg_series(2, 30);
        let part = WindowContribution::from_raw(&constant, &y);
        let err = combine(&[part]).unwrap_err();
        assert!(matches!(err, Error::DegenerateWindow { points: 30 }));
        // No points at all is degenerate too.
        assert!(matches!(
            combine(&[]).unwrap_err(),
            Error::DegenerateWindow { points: 0 }
        ));
    }

    #[test]
    fn lemma1_equals_direct_pearson_aligned() {
        let x = lcg_series(7, 120);
        let y = lcg_series(9, 120);
        // Split into 6 windows of 20 and recombine.
        let parts: Vec<WindowContribution> = (0..6)
            .map(|w| {
                WindowContribution::from_raw(&x[w * 20..(w + 1) * 20], &y[w * 20..(w + 1) * 20])
            })
            .collect();
        let direct = pearson(&x, &y);
        assert!((combine(&parts).unwrap() - direct).abs() < 1e-10);
    }

    #[test]
    fn lemma1_equals_direct_pearson_unequal_windows() {
        let x = lcg_series(3, 100);
        let y = lcg_series(4, 100);
        // Deliberately unequal window sizes: 13 + 40 + 40 + 7.
        let cuts = [0usize, 13, 53, 93, 100];
        let parts: Vec<WindowContribution> = cuts
            .windows(2)
            .map(|c| WindowContribution::from_raw(&x[c[0]..c[1]], &y[c[0]..c[1]]))
            .collect();
        assert!((combine(&parts).unwrap() - pearson(&x, &y)).abs() < 1e-10);
    }

    #[test]
    fn combined_variance_matches_direct() {
        let x = lcg_series(11, 90);
        let parts: Vec<WindowStats> = (0..3)
            .map(|w| WindowStats::from_values(&x[w * 30..(w + 1) * 30]))
            .collect();
        let direct = WindowStats::from_values(&x).variance();
        assert!((combined_variance(&parts) - direct).abs() < 1e-10);
    }

    #[test]
    fn pair_correlation_matches_baseline_on_aligned_window() {
        let c = test_collection(5, 200);
        let sketch = SketchSet::build(&c, 25).unwrap();
        let query = QueryWindow::new(199, 150).unwrap(); // indices 50..=199, aligned
        for (i, j) in c.pairs() {
            let exact = pair_correlation(&c, &sketch, query, i, j).unwrap();
            let direct = baseline::pair_correlation(&c, query, i, j).unwrap();
            assert!(
                (exact - direct).abs() < 1e-10,
                "pair ({i},{j}): {exact} vs {direct}"
            );
        }
    }

    #[test]
    fn pair_correlation_matches_baseline_on_arbitrary_window() {
        let c = test_collection(4, 200);
        let sketch = SketchSet::build(&c, 30).unwrap();
        // Start and end both unaligned: indices 37..=171.
        let query = QueryWindow::new(171, 135).unwrap();
        for (i, j) in c.pairs() {
            let exact = pair_correlation(&c, &sketch, query, i, j).unwrap();
            let direct = baseline::pair_correlation(&c, query, i, j).unwrap();
            assert!(
                (exact - direct).abs() < 1e-10,
                "pair ({i},{j}): {exact} vs {direct}"
            );
        }
    }

    #[test]
    fn pair_correlation_window_inside_single_basic_window() {
        let c = test_collection(3, 100);
        let sketch = SketchSet::build(&c, 50).unwrap();
        let query = QueryWindow::new(40, 20).unwrap(); // inside basic window 0
        let exact = pair_correlation(&c, &sketch, query, 0, 1).unwrap();
        let direct = baseline::pair_correlation(&c, query, 0, 1).unwrap();
        assert!((exact - direct).abs() < 1e-10);
    }

    #[test]
    fn self_correlation_is_one() {
        let c = test_collection(3, 100);
        let sketch = SketchSet::build(&c, 20).unwrap();
        let query = QueryWindow::new(99, 80).unwrap();
        assert_eq!(pair_correlation(&c, &sketch, query, 2, 2).unwrap(), 1.0);
    }

    #[test]
    fn aligned_helper_matches_full_path() {
        let c = test_collection(4, 120);
        let sketch = SketchSet::build(&c, 20).unwrap();
        let query = QueryWindow::new(119, 80).unwrap(); // windows 2..6
        let a = pair_correlation_aligned(&sketch, 2..6, 0, 3).unwrap();
        let b = pair_correlation(&c, &sketch, query, 0, 3).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn aligned_helper_rejects_bad_range() {
        let c = test_collection(3, 100);
        let sketch = SketchSet::build(&c, 20).unwrap();
        assert!(pair_correlation_aligned(&sketch, 0..9, 0, 1).is_err());
        assert!(pair_correlation_aligned(&sketch, 2..2, 0, 1).is_err());
    }

    #[test]
    fn matrix_construction_is_symmetric_with_unit_diagonal() {
        let c = test_collection(6, 150);
        let sketch = SketchSet::build(&c, 25).unwrap();
        let query = QueryWindow::new(149, 100).unwrap();
        let m = correlation_matrix(&c, &sketch, query).unwrap();
        for i in 0..6 {
            assert_eq!(m.get(i, i), 1.0);
            for j in 0..6 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let c = test_collection(7, 240);
        let sketch = SketchSet::build(&c, 25).unwrap();
        // Unaligned window so the partial-window path is exercised too.
        let query = QueryWindow::new(233, 180).unwrap();
        let serial = correlation_matrix(&c, &sketch, query).unwrap();
        for workers in [1, 2, 3, 8, 100] {
            let parallel = correlation_matrix_parallel(&c, &sketch, query, workers).unwrap();
            assert_eq!(serial, parallel, "workers={workers}");
        }
        // workers == 0 is clamped, not an error.
        assert_eq!(
            correlation_matrix_parallel(&c, &sketch, query, 0).unwrap(),
            serial
        );
    }

    #[test]
    fn unpack_pair_index_inverts_pair_index() {
        let n = 9;
        for i in 0..n {
            for j in (i + 1)..n {
                let p = crate::sketch::pair_index(i, j, n);
                assert_eq!(crate::sketch::unpack_pair_index(p, n), (i, j));
            }
        }
    }

    #[test]
    fn matrix_sweep_stays_within_tolerance_of_pair_reference() {
        let c = test_collection(6, 200);
        let sketch = SketchSet::build(&c, 30).unwrap();
        // Unaligned on both ends so head/tail tiles are exercised.
        let query = QueryWindow::new(187, 150).unwrap();
        let m = correlation_matrix(&c, &sketch, query).unwrap();
        for (i, j) in c.pairs() {
            let reference = pair_correlation(&c, &sketch, query, i, j).unwrap();
            assert!(
                (m.get(i, j) - reference).abs() <= 1e-10,
                "pair ({i},{j}): {} vs {reference}",
                m.get(i, j)
            );
        }
    }

    #[test]
    fn query_beyond_sketched_windows_errors() {
        let c = test_collection(3, 105);
        // 105/20 = 5 sketched windows covering 0..100; a query ending at 104
        // needs a partial tail beyond the sketch, which is fine, but a query
        // whose *full* windows exceed the sketch must error.
        let sketch = SketchSet::build(&c, 20).unwrap();
        let query = QueryWindow::new(104, 100).unwrap();
        // This query's tail (100..105) is partial and is computed from raw
        // data, so it should succeed.
        assert!(pair_correlation(&c, &sketch, query, 0, 1).is_ok());
        // A query window that doesn't fit the series errors.
        let too_long = QueryWindow::new(200, 10).unwrap();
        assert!(pair_correlation(&c, &sketch, too_long, 0, 1).is_err());
    }

    #[test]
    fn constant_series_yield_zero_correlation() {
        let c = SeriesCollection::from_rows(vec![vec![5.0; 60], lcg_series(1, 60)]).unwrap();
        let sketch = SketchSet::build(&c, 10).unwrap();
        let query = QueryWindow::new(59, 40).unwrap();
        assert_eq!(pair_correlation(&c, &sketch, query, 0, 1).unwrap(), 0.0);
    }

    #[test]
    fn network_streamed_matches_dense_threshold() {
        let c = test_collection(7, 200);
        let sketch = SketchSet::build(&c, 25).unwrap();
        // Unaligned window so head/tail tiles are exercised.
        let query = QueryWindow::new(187, 150).unwrap();
        let dense = correlation_matrix(&c, &sketch, query).unwrap();
        for theta in [-0.4, 0.0, 0.35, 0.9] {
            let streamed = network_streamed(&c, &sketch, query, theta).unwrap();
            let reference = dense.threshold(theta).unwrap();
            assert_eq!(streamed.to_adjacency(), reference, "theta={theta}");
            assert_eq!(streamed.nan_pair_count(), 0);
        }
        assert!(matches!(
            network_streamed(&c, &sketch, query, 1.5),
            Err(Error::InvalidThreshold(_))
        ));
    }

    #[test]
    fn network_streamed_aligned_matches_dense() {
        let c = test_collection(6, 180);
        let sketch = SketchSet::build(&c, 20).unwrap();
        let dense = correlation_matrix_aligned(&sketch, 1..8).unwrap();
        let streamed = network_streamed_aligned(&sketch, 1..8, 0.25).unwrap();
        assert_eq!(streamed.to_adjacency(), dense.threshold(0.25).unwrap());
    }

    #[test]
    fn top_k_matches_sorted_dense_matrix() {
        let c = test_collection(6, 200);
        let sketch = SketchSet::build(&c, 25).unwrap();
        let query = QueryWindow::new(191, 160).unwrap();
        let dense = correlation_matrix(&c, &sketch, query).unwrap();
        let n = c.len();
        let mut all: Vec<(usize, usize, f64)> = dense.iter_pairs().collect();
        all.sort_by(|a, b| {
            b.2.total_cmp(&a.2)
                .then_with(|| pair_index(a.0, a.1, n).cmp(&pair_index(b.0, b.1, n)))
        });
        for k in [0, 1, 4, 15, 50] {
            let top = top_k(&c, &sketch, query, k).unwrap();
            assert_eq!(top.edges.len(), k.min(all.len()), "k={k}");
            for (got, want) in top.edges.iter().zip(&all) {
                assert_eq!((got.i, got.j), (want.0, want.1), "k={k}");
                assert_eq!(got.corr, want.2, "k={k}");
            }
        }
        let aligned = top_k_aligned(&sketch, 0..8, 3).unwrap();
        assert_eq!(aligned.edges.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Lemma 1 recombination equals the direct Pearson computation for
        /// random data, random basic-window sizes, and random (arbitrary,
        /// unaligned) query windows.
        #[test]
        fn prop_lemma1_equals_direct(
            seed in 0u64..1000,
            series_len in 60usize..240,
            basic in 5usize..40,
            start_off in 0usize..30,
            end_off in 0usize..30,
        ) {
            let c = SeriesCollection::from_rows(vec![
                lcg_series(seed, series_len),
                lcg_series(seed + 17, series_len),
            ]).unwrap();
            let sketch = SketchSet::build(&c, basic).unwrap();
            let start = start_off.min(series_len - 2);
            let end = series_len - 1 - end_off.min(series_len - 2 - start);
            prop_assume!(end > start);
            let query = QueryWindow::new(end, end - start + 1).unwrap();
            let exact = pair_correlation(&c, &sketch, query, 0, 1).unwrap();
            let direct = baseline::pair_correlation(&c, query, 0, 1).unwrap();
            prop_assert!((exact - direct).abs() < 1e-8, "{exact} vs {direct}");
        }

        /// The recombined value is always a valid correlation.
        #[test]
        fn prop_combined_in_range(
            seed in 0u64..1000,
            len in 40usize..160,
            basic in 4usize..20,
        ) {
            let c = SeriesCollection::from_rows(vec![
                lcg_series(seed, len),
                lcg_series(seed * 31 + 7, len),
            ]).unwrap();
            let sketch = SketchSet::build(&c, basic).unwrap();
            let query = QueryWindow::new(len - 1, len).unwrap();
            let v = pair_correlation(&c, &sketch, query, 0, 1).unwrap();
            prop_assert!((-1.0..=1.0).contains(&v));
        }
    }
}
