//! # tsubasa-data
//!
//! Data substrate of the TSUBASA reproduction: synthetic climate datasets
//! standing in for the two datasets used in the paper's evaluation, plus the
//! data-wrangling transforms the paper assumes have already been applied
//! upstream (synchronization, missing-value interpolation, anomaly
//! computation).
//!
//! ## Substituted datasets
//!
//! | Paper | Here |
//! |---|---|
//! | NCEA / NOAA hourly station data — 157 stations × ~8,760 points | [`station::NceaLikeConfig`] / [`station::generate_ncea_like`] |
//! | Berkeley Earth 1°×1° gridded daily data — 18,638 nodes × 3,652 points | [`grid::BerkeleyLikeConfig`] / [`grid::generate_berkeley_like`] |
//!
//! The generators reproduce the *statistical character* the algorithms care
//! about: strong shared seasonal/diurnal cycles (which make the series
//! "uncooperative" for DFT approximation), distance-decaying spatial
//! correlation (so thresholded networks have structure), slow trends, and
//! autocorrelated noise. All generation is deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod climatology;
pub mod csv;
pub mod grid;
pub mod missing;
pub mod noise;
pub mod station;

pub use climatology::{anomalies, detrend, seasonal_climatology};
pub use grid::{generate_berkeley_like, BerkeleyLikeConfig};
pub use station::{generate_ncea_like, NceaLikeConfig};

/// Commonly used items, for `use tsubasa_data::prelude::*;`.
pub mod prelude {
    pub use crate::climatology::{anomalies, detrend, seasonal_climatology};
    pub use crate::csv::{read_collection_csv, write_collection_csv};
    pub use crate::grid::{generate_berkeley_like, BerkeleyLikeConfig};
    pub use crate::missing::{aggregate_duplicates, inject_missing, interpolate_missing};
    pub use crate::noise::{Ar1, GaussianSampler};
    pub use crate::station::{generate_ncea_like, NceaLikeConfig};
}
