//! NCEA-like synthetic station dataset.
//!
//! Stands in for the NOAA / NCEA hourly station data used by the paper's
//! in-memory experiments: 157 stations across the contiguous US, hourly
//! resolution, ~8,760 points per year. Each synthetic station temperature is
//! the sum of
//!
//! * a shared annual cycle and a diurnal cycle (amplitudes vary with
//!   latitude), making the series strongly "uncooperative" for DFT
//!   approximation, exactly like real temperature data;
//! * a continental-scale AR(1) weather factor shared by all stations;
//! * a handful of regional AR(1) factors whose influence decays with the
//!   distance between the station and the factor's centre — this is what
//!   gives the resulting climate network its spatial structure;
//! * independent AR(1) measurement noise;
//! * optionally, missing values that are then re-interpolated (so the
//!   generated collection exercises the same cleaning path as real data).

use serde::{Deserialize, Serialize};
use tsubasa_core::error::Result;
use tsubasa_core::{GeoLocation, SeriesCollection, TimeSeries};

use crate::climatology::CycleModel;
use crate::missing::{inject_missing, interpolate_missing};
use crate::noise::{Ar1, GaussianSampler};

/// Configuration of the NCEA-like station generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NceaLikeConfig {
    /// Number of stations (series). The paper's dataset has 157.
    pub stations: usize,
    /// Number of hourly observations per station. The paper's dataset has
    /// about 8,760 (one year).
    pub points: usize,
    /// RNG seed; the same seed reproduces the same dataset bit-for-bit.
    pub seed: u64,
    /// Number of regional weather factors.
    pub regions: usize,
    /// e-folding distance (km) of a regional factor's influence.
    pub correlation_length_km: f64,
    /// Fraction of observations dropped and re-interpolated (0 disables).
    pub missing_fraction: f64,
}

impl Default for NceaLikeConfig {
    fn default() -> Self {
        Self {
            stations: 157,
            points: 8_760,
            seed: 42,
            regions: 6,
            correlation_length_km: 900.0,
            missing_fraction: 0.01,
        }
    }
}

impl NceaLikeConfig {
    /// A scaled-down configuration for tests and quick examples.
    pub fn small() -> Self {
        Self {
            stations: 20,
            points: 1_200,
            ..Self::default()
        }
    }
}

/// Generate an NCEA-like station collection.
pub fn generate_ncea_like(config: &NceaLikeConfig) -> Result<SeriesCollection> {
    let mut rng = GaussianSampler::new(config.seed);
    let n = config.stations.max(1);
    let len = config.points.max(2);

    // Station locations: roughly the contiguous US bounding box.
    let locations: Vec<GeoLocation> = (0..n)
        .map(|_| GeoLocation::new(rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)))
        .collect();

    // Regional factor centres and their AR(1) drivers.
    let centres: Vec<GeoLocation> = (0..config.regions.max(1))
        .map(|_| GeoLocation::new(rng.uniform(25.0, 49.0), rng.uniform(-124.0, -67.0)))
        .collect();
    let regional: Vec<Vec<f64>> = (0..centres.len())
        .map(|k| Ar1::new(0.97, 0.6, config.seed ^ (0x5151 + k as u64)).generate(len))
        .collect();
    // Continental factor shared by everyone.
    let continental = Ar1::new(0.98, 0.4, config.seed ^ 0xC017).generate(len);

    let mut series = Vec::with_capacity(n);
    for (s, &loc) in locations.iter().enumerate() {
        // Higher latitudes get colder means and larger annual swings, like
        // the real continental US.
        let cycle = CycleModel {
            base: 25.0 - 0.6 * (loc.lat - 25.0),
            annual_amplitude: 8.0 + 0.4 * (loc.lat - 25.0),
            annual_phase: rng.uniform(-200.0, 200.0),
            diurnal_amplitude: 4.0 + rng.uniform(-1.0, 1.0),
            steps_per_year: 8_760.0,
            steps_per_day: 24.0,
        };
        let weights: Vec<f64> = centres
            .iter()
            .map(|c| (-loc.distance_km(c) / config.correlation_length_km).exp())
            .collect();
        let mut noise = Ar1::new(0.6, 0.8, config.seed ^ (0xBEEF + s as u64));

        let mut values: Vec<f64> = (0..len)
            .map(|t| {
                let regional_signal: f64 =
                    weights.iter().zip(&regional).map(|(w, r)| w * r[t]).sum();
                cycle.value(t) + 1.5 * continental[t] + 2.0 * regional_signal + noise.next_value()
            })
            .collect();

        if config.missing_fraction > 0.0 {
            inject_missing(
                &mut values,
                config.missing_fraction,
                config.seed ^ (0xD00D + s as u64),
            );
            values = interpolate_missing(&values);
        }

        series.push(TimeSeries::new(format!("station-{s:03}"), loc, values));
    }
    SeriesCollection::new(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::stats::{pearson, WindowStats};

    fn small() -> NceaLikeConfig {
        NceaLikeConfig {
            stations: 12,
            points: 2_000,
            seed: 7,
            regions: 4,
            correlation_length_km: 800.0,
            missing_fraction: 0.02,
        }
    }

    #[test]
    fn generator_produces_requested_shape() {
        let c = generate_ncea_like(&small()).unwrap();
        assert_eq!(c.len(), 12);
        assert_eq!(c.series_len(), 2_000);
        // Station metadata present and inside the US box.
        for s in c.iter() {
            assert!(s.name.starts_with("station-"));
            assert!((25.0..=49.0).contains(&s.location.lat));
            assert!((-124.0..=-67.0).contains(&s.location.lon));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate_ncea_like(&small()).unwrap();
        let b = generate_ncea_like(&small()).unwrap();
        assert_eq!(a, b);
        let mut cfg = small();
        cfg.seed = 8;
        let c = generate_ncea_like(&cfg).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn no_missing_values_survive_cleaning() {
        let c = generate_ncea_like(&small()).unwrap();
        for s in c.iter() {
            assert!(s.values().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn series_have_seasonal_variance_and_plausible_means() {
        let c = generate_ncea_like(&small()).unwrap();
        for s in c.iter() {
            let stats = WindowStats::from_values(s.values());
            assert!(stats.std > 1.0, "std {}", stats.std);
            assert!((-30.0..45.0).contains(&stats.mean), "mean {}", stats.mean);
        }
    }

    #[test]
    fn nearby_stations_are_more_correlated_than_distant_ones() {
        let cfg = NceaLikeConfig {
            stations: 30,
            points: 3_000,
            missing_fraction: 0.0,
            ..small()
        };
        let c = generate_ncea_like(&cfg).unwrap();
        // Average correlation of the 5 closest vs the 5 farthest pairs.
        let mut pairs: Vec<(f64, f64)> = c
            .pairs()
            .map(|(i, j)| {
                let a = c.get(i).unwrap();
                let b = c.get(j).unwrap();
                (
                    a.location.distance_km(&b.location),
                    pearson(a.values(), b.values()),
                )
            })
            .collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let near: f64 = pairs.iter().take(5).map(|p| p.1).sum::<f64>() / 5.0;
        let far: f64 = pairs.iter().rev().take(5).map(|p| p.1).sum::<f64>() / 5.0;
        assert!(
            near > far,
            "near-pair correlation {near} should exceed far-pair correlation {far}"
        );
    }

    #[test]
    fn default_config_matches_paper_scale() {
        let d = NceaLikeConfig::default();
        assert_eq!(d.stations, 157);
        assert_eq!(d.points, 8_760);
    }
}
