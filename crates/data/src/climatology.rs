//! Climatology models and anomaly transforms.
//!
//! Climate networks are built on *anomaly* series — departures from the
//! expected (climatological) behaviour at each location (paper §1). This
//! module provides the deterministic cycle models used by the generators and
//! the inverse transform: estimating a periodic climatology from data and
//! subtracting it to obtain anomalies.

/// A deterministic climatological cycle: an annual and an optional diurnal
/// harmonic around a base level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Long-term mean level (e.g. mean temperature in °C).
    pub base: f64,
    /// Amplitude of the annual cycle.
    pub annual_amplitude: f64,
    /// Phase shift of the annual cycle in steps.
    pub annual_phase: f64,
    /// Amplitude of the diurnal cycle (0 for daily-resolution data).
    pub diurnal_amplitude: f64,
    /// Number of time steps per year.
    pub steps_per_year: f64,
    /// Number of time steps per day (0 disables the diurnal term).
    pub steps_per_day: f64,
}

impl CycleModel {
    /// Evaluate the climatology at time step `t`.
    pub fn value(&self, t: usize) -> f64 {
        let t = t as f64;
        let annual = if self.steps_per_year > 0.0 {
            (2.0 * std::f64::consts::PI * (t - self.annual_phase) / self.steps_per_year).sin()
                * self.annual_amplitude
        } else {
            0.0
        };
        let diurnal = if self.steps_per_day > 0.0 && self.diurnal_amplitude != 0.0 {
            (2.0 * std::f64::consts::PI * t / self.steps_per_day).sin() * self.diurnal_amplitude
        } else {
            0.0
        };
        self.base + annual + diurnal
    }

    /// Generate the climatology for `len` steps.
    pub fn generate(&self, len: usize) -> Vec<f64> {
        (0..len).map(|t| self.value(t)).collect()
    }
}

/// Estimate a periodic climatology from observations: the mean of all values
/// sharing the same phase within a period of `period` steps (e.g. 24 for an
/// hourly diurnal climatology, 365 for a daily annual climatology).
///
/// Returns a vector of length `period`; positions with no observations (only
/// possible when `values.len() < period`) fall back to the overall mean.
pub fn seasonal_climatology(values: &[f64], period: usize) -> Vec<f64> {
    assert!(period > 0, "climatology period must be positive");
    let overall = if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    };
    let mut sums = vec![0.0f64; period];
    let mut counts = vec![0usize; period];
    for (t, &v) in values.iter().enumerate() {
        sums[t % period] += v;
        counts[t % period] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { overall } else { s / c as f64 })
        .collect()
}

/// Subtract a periodic climatology from observations, yielding anomalies.
pub fn anomalies(values: &[f64], climatology: &[f64]) -> Vec<f64> {
    assert!(!climatology.is_empty(), "climatology must be non-empty");
    values
        .iter()
        .enumerate()
        .map(|(t, &v)| v - climatology[t % climatology.len()])
        .collect()
}

/// Convenience: estimate the climatology with [`seasonal_climatology`] and
/// subtract it in one step.
pub fn anomalies_with_period(values: &[f64], period: usize) -> Vec<f64> {
    anomalies(values, &seasonal_climatology(values, period))
}

/// Remove a least-squares linear trend from a series, returning the detrended
/// values. Long-term warming trends otherwise dominate Pearson correlations
/// between any two locations.
pub fn detrend(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    if n < 2 {
        return values.to_vec();
    }
    let nf = n as f64;
    let mean_t = (nf - 1.0) / 2.0;
    let mean_v = values.iter().sum::<f64>() / nf;
    let mut cov = 0.0;
    let mut var_t = 0.0;
    for (t, &v) in values.iter().enumerate() {
        let dt = t as f64 - mean_t;
        cov += dt * (v - mean_v);
        var_t += dt * dt;
    }
    let slope = if var_t == 0.0 { 0.0 } else { cov / var_t };
    let intercept = mean_v - slope * mean_t;
    values
        .iter()
        .enumerate()
        .map(|(t, &v)| v - (intercept + slope * t as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::stats::WindowStats;

    #[test]
    fn cycle_model_periodicity() {
        let m = CycleModel {
            base: 10.0,
            annual_amplitude: 5.0,
            annual_phase: 0.0,
            diurnal_amplitude: 0.0,
            steps_per_year: 100.0,
            steps_per_day: 0.0,
        };
        let v = m.generate(300);
        // Period of 100 steps.
        for t in 0..200 {
            assert!((v[t] - v[t + 100]).abs() < 1e-9);
        }
        // Oscillates around the base level.
        let stats = WindowStats::from_values(&v);
        assert!((stats.mean - 10.0).abs() < 0.2);
    }

    #[test]
    fn cycle_model_with_diurnal_term() {
        let m = CycleModel {
            base: 0.0,
            annual_amplitude: 0.0,
            annual_phase: 0.0,
            diurnal_amplitude: 3.0,
            steps_per_year: 8760.0,
            steps_per_day: 24.0,
        };
        let v = m.generate(48);
        assert!((v[0] - v[24]).abs() < 1e-9);
        assert!(v.iter().cloned().fold(f64::MIN, f64::max) > 2.9);
    }

    #[test]
    fn climatology_estimation_recovers_cycle() {
        let m = CycleModel {
            base: 2.0,
            annual_amplitude: 4.0,
            annual_phase: 3.0,
            diurnal_amplitude: 0.0,
            steps_per_year: 50.0,
            steps_per_day: 0.0,
        };
        // 10 full periods → the per-phase mean is the cycle itself.
        let v = m.generate(500);
        let clim = seasonal_climatology(&v, 50);
        for (t, c) in clim.iter().enumerate() {
            assert!((c - m.value(t)).abs() < 1e-9);
        }
        // Anomalies of a purely periodic signal are ~0.
        let anom = anomalies(&v, &clim);
        assert!(anom.iter().all(|a| a.abs() < 1e-9));
    }

    #[test]
    fn anomalies_with_period_composes() {
        let v: Vec<f64> = (0..120).map(|t| (t % 12) as f64 + 100.0).collect();
        let anom = anomalies_with_period(&v, 12);
        assert!(anom.iter().all(|a| a.abs() < 1e-9));
    }

    #[test]
    fn climatology_handles_partial_periods_and_empty_input() {
        let clim = seasonal_climatology(&[1.0, 2.0, 3.0], 5);
        assert_eq!(clim.len(), 5);
        // Unobserved phases fall back to the overall mean (2.0).
        assert_eq!(clim[3], 2.0);
        assert_eq!(clim[4], 2.0);
        let empty = seasonal_climatology(&[], 4);
        assert_eq!(empty, vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn climatology_rejects_zero_period() {
        seasonal_climatology(&[1.0], 0);
    }

    #[test]
    fn detrend_removes_linear_trend() {
        let v: Vec<f64> = (0..100).map(|t| 3.0 + 0.5 * t as f64).collect();
        let d = detrend(&v);
        assert!(d.iter().all(|x| x.abs() < 1e-9));
        // Detrending preserves everything orthogonal to the trend.
        let wiggle: Vec<f64> = (0..100).map(|t| (t as f64 * 0.9).sin()).collect();
        let with_trend: Vec<f64> = wiggle
            .iter()
            .enumerate()
            .map(|(t, w)| w + 0.2 * t as f64)
            .collect();
        let d2 = detrend(&with_trend);
        let c = tsubasa_core::stats::pearson(&d2, &wiggle);
        assert!(c > 0.99, "correlation after detrending {c}");
    }

    #[test]
    fn detrend_short_inputs_are_passthrough() {
        assert_eq!(detrend(&[]), Vec::<f64>::new());
        assert_eq!(detrend(&[5.0]), vec![5.0]);
    }
}
