//! Minimal CSV import/export for [`SeriesCollection`].
//!
//! The format is one row per series:
//!
//! ```text
//! name,lat,lon,v_1,v_2,...,v_m
//! ```
//!
//! It exists so generated datasets and experiment inputs can be inspected,
//! shared, and re-loaded without adding a CSV dependency; the parser is
//! intentionally strict (no quoting/escaping) because the writer never emits
//! anything that needs it.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use tsubasa_core::error::{Error, Result};
use tsubasa_core::{GeoLocation, SeriesCollection, TimeSeries};

/// Write a collection to a CSV file (one row per series).
pub fn write_collection_csv(collection: &SeriesCollection, path: &Path) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut out = BufWriter::new(file);
    for series in collection.iter() {
        write!(
            out,
            "{},{},{}",
            series.name, series.location.lat, series.location.lon
        )?;
        for v in series.values() {
            write!(out, ",{v}")?;
        }
        writeln!(out)?;
    }
    out.flush()?;
    Ok(())
}

/// Read a collection previously written by [`write_collection_csv`].
pub fn read_collection_csv(path: &Path) -> Result<SeriesCollection> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut series = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let name = fields
            .next()
            .ok_or_else(|| Error::Storage(format!("line {line_no}: missing name")))?
            .to_string();
        let lat: f64 = parse_field(fields.next(), line_no, "lat")?;
        let lon: f64 = parse_field(fields.next(), line_no, "lon")?;
        let values: Vec<f64> = fields
            .map(|f| {
                f.trim()
                    .parse::<f64>()
                    .map_err(|e| Error::Storage(format!("line {line_no}: bad value {f:?}: {e}")))
            })
            .collect::<Result<_>>()?;
        series.push(TimeSeries::new(name, GeoLocation::new(lat, lon), values));
    }
    SeriesCollection::new(series)
}

fn parse_field(field: Option<&str>, line_no: usize, what: &str) -> Result<f64> {
    field
        .ok_or_else(|| Error::Storage(format!("line {line_no}: missing {what}")))?
        .trim()
        .parse::<f64>()
        .map_err(|e| Error::Storage(format!("line {line_no}: bad {what}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::station::{generate_ncea_like, NceaLikeConfig};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tsubasa-csv-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_collection() {
        let cfg = NceaLikeConfig {
            stations: 5,
            points: 60,
            ..NceaLikeConfig::small()
        };
        let original = generate_ncea_like(&cfg).unwrap();
        let path = temp_path("roundtrip.csv");
        write_collection_csv(&original, &path).unwrap();
        let loaded = read_collection_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.len(), original.len());
        assert_eq!(loaded.series_len(), original.series_len());
        for (a, b) in original.iter().zip(loaded.iter()) {
            assert_eq!(a.name, b.name);
            assert!((a.location.lat - b.location.lat).abs() < 1e-12);
            for (x, y) in a.values().iter().zip(b.values()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn read_rejects_malformed_rows() {
        let path = temp_path("malformed.csv");
        std::fs::write(&path, "stn,not-a-number,0.0,1.0\n").unwrap();
        let err = read_collection_csv(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, Error::Storage(_)));
    }

    #[test]
    fn read_missing_file_is_an_error() {
        assert!(read_collection_csv(Path::new("/nonexistent/definitely-missing.csv")).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let path = temp_path("blank.csv");
        std::fs::write(&path, "a,1.0,2.0,1,2,3\n\nb,3.0,4.0,4,5,6\n").unwrap();
        let c = read_collection_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(c.len(), 2);
        assert_eq!(c.series_len(), 3);
        assert_eq!(c.get(1).unwrap().values()[2], 6.0);
    }
}
