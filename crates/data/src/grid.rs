//! Berkeley-Earth-like synthetic gridded dataset.
//!
//! Stands in for the Berkeley Earth 1°×1° land temperature grid used by the
//! paper's scalability experiments (18,638 land nodes × 3,652 daily points).
//! Each grid cell's daily anomaly combines
//!
//! * a latitude-band climatology (annual cycle whose amplitude grows with
//!   |latitude|),
//! * a slow global warming trend,
//! * an ENSO-like low-frequency oscillation whose influence on a cell decays
//!   with the cell's distance from the tropical Pacific (a crude
//!   teleconnection pattern — the kind of long-range dependence climate
//!   networks are built to reveal),
//! * spatially correlated regional AR(1) factors, and
//! * cell-local AR(1) noise.
//!
//! The number of cells and points are configurable so the scalability sweeps
//! (Figure 6) can generate exactly the sizes they need.

use serde::{Deserialize, Serialize};
use tsubasa_core::error::Result;
use tsubasa_core::{GeoLocation, SeriesCollection, TimeSeries};

use crate::climatology::CycleModel;
use crate::noise::{Ar1, GaussianSampler};

/// Configuration of the Berkeley-Earth-like grid generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BerkeleyLikeConfig {
    /// Number of grid cells (series). The full paper dataset has 18,638.
    pub cells: usize,
    /// Number of daily observations per cell. The paper dataset has 3,652.
    pub points: usize,
    /// Grid spacing in degrees (1.0 matches the paper's resolution).
    pub resolution_deg: f64,
    /// RNG seed.
    pub seed: u64,
    /// Number of regional factors.
    pub regions: usize,
    /// e-folding distance (km) of regional influence.
    pub correlation_length_km: f64,
    /// Per-decade warming trend in degrees.
    pub trend_per_decade: f64,
}

impl Default for BerkeleyLikeConfig {
    fn default() -> Self {
        Self {
            cells: 18_638,
            points: 3_652,
            resolution_deg: 1.0,
            seed: 4242,
            regions: 12,
            correlation_length_km: 2_000.0,
            trend_per_decade: 0.2,
        }
    }
}

impl BerkeleyLikeConfig {
    /// A scaled-down configuration sized for the scalability sweeps on a
    /// laptop-class machine.
    pub fn with_cells(cells: usize, points: usize) -> Self {
        Self {
            cells,
            points,
            ..Self::default()
        }
    }
}

/// Generate a Berkeley-Earth-like gridded collection. Cells are laid out on a
/// regular latitude/longitude grid over the (land-heavy) northern mid-latitude
/// band and wrap around as many rows as needed to reach `cells`.
pub fn generate_berkeley_like(config: &BerkeleyLikeConfig) -> Result<SeriesCollection> {
    let mut rng = GaussianSampler::new(config.seed);
    let n = config.cells.max(1);
    let len = config.points.max(2);
    let step = config.resolution_deg.max(0.1);

    // Lay the cells on a grid spanning longitudes [-180, 180) and latitudes
    // climbing from -55° in `step` increments (Berkeley Earth is land-only;
    // the exact land mask is irrelevant to the algorithms).
    let cols = (360.0 / step) as usize;
    let locations: Vec<GeoLocation> = (0..n)
        .map(|i| {
            let row = i / cols;
            let col = i % cols;
            GeoLocation::new(-55.0 + row as f64 * step, -180.0 + col as f64 * step)
        })
        .collect();

    // ENSO-like oscillation: slow quasi-periodic index.
    let enso_period_days = 4.0 * 365.0;
    let mut enso_noise = Ar1::new(0.995, 0.05, config.seed ^ 0xE150);
    let enso: Vec<f64> = (0..len)
        .map(|t| {
            (2.0 * std::f64::consts::PI * t as f64 / enso_period_days).sin()
                + enso_noise.next_value()
        })
        .collect();
    let enso_centre = GeoLocation::new(0.0, -140.0);

    // Global trend (per time step; 3652 daily points ≈ one decade).
    let trend_per_step = config.trend_per_decade / 3_652.0;
    // Global mean factor.
    let global = Ar1::new(0.99, 0.15, config.seed ^ 0x6108).generate(len);

    // Regional factors.
    let centres: Vec<GeoLocation> = (0..config.regions.max(1))
        .map(|_| GeoLocation::new(rng.uniform(-55.0, 70.0), rng.uniform(-180.0, 180.0)))
        .collect();
    let regional: Vec<Vec<f64>> = (0..centres.len())
        .map(|k| Ar1::new(0.95, 0.4, config.seed ^ (0x4E61 + k as u64)).generate(len))
        .collect();

    let mut series = Vec::with_capacity(n);
    for (s, &loc) in locations.iter().enumerate() {
        let cycle = CycleModel {
            base: 0.0,
            annual_amplitude: 0.5 + 0.08 * loc.lat.abs(),
            // Southern hemisphere seasons are flipped.
            annual_phase: if loc.lat < 0.0 { 182.0 } else { 0.0 },
            diurnal_amplitude: 0.0,
            steps_per_year: 365.0,
            steps_per_day: 0.0,
        };
        let enso_weight = (-loc.distance_km(&enso_centre) / 6_000.0).exp();
        let weights: Vec<f64> = centres
            .iter()
            .map(|c| (-loc.distance_km(c) / config.correlation_length_km).exp())
            .collect();
        let mut noise = Ar1::new(0.7, 0.5, config.seed ^ (0xCE11 + s as u64));

        let values: Vec<f64> = (0..len)
            .map(|t| {
                let regional_signal: f64 =
                    weights.iter().zip(&regional).map(|(w, r)| w * r[t]).sum();
                cycle.value(t)
                    + trend_per_step * t as f64
                    + 0.8 * global[t]
                    + 1.2 * enso_weight * enso[t]
                    + 1.5 * regional_signal
                    + noise.next_value()
            })
            .collect();

        series.push(TimeSeries::new(format!("cell-{s:05}"), loc, values));
    }
    SeriesCollection::new(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::stats::pearson;

    fn small(cells: usize, points: usize) -> BerkeleyLikeConfig {
        BerkeleyLikeConfig {
            cells,
            points,
            seed: 11,
            regions: 5,
            ..BerkeleyLikeConfig::default()
        }
    }

    #[test]
    fn generator_produces_requested_shape() {
        let c = generate_berkeley_like(&small(50, 730)).unwrap();
        assert_eq!(c.len(), 50);
        assert_eq!(c.series_len(), 730);
        for s in c.iter() {
            assert!(s.values().iter().all(|v| v.is_finite()));
            assert!((-90.0..=90.0).contains(&s.location.lat));
            assert!((-180.0..180.0).contains(&s.location.lon));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate_berkeley_like(&small(30, 365)).unwrap();
        let b = generate_berkeley_like(&small(30, 365)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn neighbouring_cells_are_strongly_correlated() {
        let c = generate_berkeley_like(&small(40, 1460)).unwrap();
        // Cells 0 and 1 are adjacent (1° apart); cells 0 and 39 are far away.
        let near = pearson(c.get(0).unwrap().values(), c.get(1).unwrap().values());
        let far = pearson(c.get(0).unwrap().values(), c.get(39).unwrap().values());
        assert!(near > 0.5, "adjacent-cell correlation {near}");
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn grid_layout_follows_resolution() {
        let c = generate_berkeley_like(&small(10, 365)).unwrap();
        let a = c.get(0).unwrap().location;
        let b = c.get(1).unwrap().location;
        assert!((b.lon - a.lon - 1.0).abs() < 1e-9);
        assert!((b.lat - a.lat).abs() < 1e-9);
    }

    #[test]
    fn default_matches_paper_scale() {
        let d = BerkeleyLikeConfig::default();
        assert_eq!(d.cells, 18_638);
        assert_eq!(d.points, 3_652);
        assert_eq!(d.resolution_deg, 1.0);
    }

    #[test]
    fn with_cells_builder_overrides_size_only() {
        let c = BerkeleyLikeConfig::with_cells(123, 456);
        assert_eq!(c.cells, 123);
        assert_eq!(c.points, 456);
        assert_eq!(c.seed, BerkeleyLikeConfig::default().seed);
    }
}
