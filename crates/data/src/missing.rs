//! Synchronization transforms assumed by the paper's data model (§2.1):
//! interpolating missing observations and aggregating duplicate observations
//! so that every series has exactly one value per time-resolution tick.
//!
//! Missing values are represented as `f64::NAN` so raw sensor exports (which
//! routinely contain gaps) can be passed through unchanged before cleaning.

use crate::noise::GaussianSampler;

/// Replace a random fraction of the values with NaN. Used by the generators
/// and tests to emulate sensor dropouts.
pub fn inject_missing(values: &mut [f64], fraction: f64, seed: u64) {
    let mut rng = GaussianSampler::new(seed);
    for v in values.iter_mut() {
        if rng.uniform(0.0, 1.0) < fraction {
            *v = f64::NAN;
        }
    }
}

/// Fill missing (NaN) values by linear interpolation between the nearest
/// observed neighbours. Leading/trailing gaps are filled with the nearest
/// observed value; an all-missing series becomes all zeros.
pub fn interpolate_missing(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut out = values.to_vec();
    if n == 0 {
        return out;
    }

    // Indices of observed (non-NaN) values.
    let observed: Vec<usize> = (0..n).filter(|&i| !values[i].is_nan()).collect();
    if observed.is_empty() {
        return vec![0.0; n];
    }

    // Leading gap → first observed value.
    let first = observed[0];
    out[..first].fill(values[first]);
    // Trailing gap → last observed value.
    let last = observed[observed.len() - 1];
    out[last + 1..].fill(values[last]);
    // Interior gaps → linear interpolation between the bracketing points.
    for w in observed.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi > lo + 1 {
            let span = (hi - lo) as f64;
            for (off, slot) in out[lo + 1..hi].iter_mut().enumerate() {
                let t = (off + 1) as f64 / span;
                *slot = values[lo] * (1.0 - t) + values[hi] * t;
            }
        }
    }
    out
}

/// Aggregate raw timestamped observations onto a regular grid of `ticks`
/// intervals of length `resolution`, averaging all observations that fall in
/// the same interval. Intervals with no observation are NaN (interpolate
/// afterwards with [`interpolate_missing`]).
///
/// `observations` are `(timestamp, value)` pairs; the grid covers timestamps
/// `[start, start + ticks·resolution)`.
pub fn aggregate_duplicates(
    observations: &[(f64, f64)],
    start: f64,
    resolution: f64,
    ticks: usize,
) -> Vec<f64> {
    assert!(resolution > 0.0, "resolution must be positive");
    let mut sums = vec![0.0f64; ticks];
    let mut counts = vec![0usize; ticks];
    for &(t, v) in observations {
        if t < start {
            continue;
        }
        let idx = ((t - start) / resolution).floor() as usize;
        if idx < ticks {
            sums[idx] += v;
            counts[idx] += 1;
        }
    }
    sums.iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { f64::NAN } else { s / c as f64 })
        .collect()
}

/// Fraction of missing (NaN) values in a series.
pub fn missing_fraction(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| v.is_nan()).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_and_measure_missing() {
        let mut v = vec![1.0; 10_000];
        inject_missing(&mut v, 0.2, 9);
        let frac = missing_fraction(&v);
        assert!((frac - 0.2).abs() < 0.02, "fraction {frac}");
    }

    #[test]
    fn interpolation_fills_interior_gap_linearly() {
        let v = vec![0.0, f64::NAN, f64::NAN, 3.0];
        let filled = interpolate_missing(&v);
        assert_eq!(filled, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn interpolation_fills_edges_with_nearest() {
        let v = vec![f64::NAN, 5.0, f64::NAN, 7.0, f64::NAN, f64::NAN];
        let filled = interpolate_missing(&v);
        assert_eq!(filled, vec![5.0, 5.0, 6.0, 7.0, 7.0, 7.0]);
    }

    #[test]
    fn interpolation_degenerate_cases() {
        assert_eq!(interpolate_missing(&[]), Vec::<f64>::new());
        assert_eq!(interpolate_missing(&[f64::NAN, f64::NAN]), vec![0.0, 0.0]);
        assert_eq!(interpolate_missing(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn aggregation_averages_same_tick_and_marks_gaps() {
        let obs = vec![
            (0.0, 2.0),
            (0.5, 4.0),
            (2.2, 10.0),
            (-1.0, 99.0),
            (9.0, 1.0),
        ];
        let grid = aggregate_duplicates(&obs, 0.0, 1.0, 4);
        assert_eq!(grid[0], 3.0); // two observations averaged
        assert!(grid[1].is_nan()); // empty tick
        assert_eq!(grid[2], 10.0);
        assert!(grid[3].is_nan());
        // Out-of-range observations (t=-1, t=9) are ignored.
    }

    #[test]
    fn aggregation_then_interpolation_produces_clean_series() {
        let obs: Vec<(f64, f64)> = (0..20)
            .filter(|t| t % 3 != 1)
            .map(|t| (t as f64, t as f64))
            .collect();
        let grid = aggregate_duplicates(&obs, 0.0, 1.0, 20);
        assert!(missing_fraction(&grid) > 0.0);
        let clean = interpolate_missing(&grid);
        assert_eq!(missing_fraction(&clean), 0.0);
        // Interpolated values sit between their neighbours.
        for w in clean.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "resolution must be positive")]
    fn aggregation_rejects_zero_resolution() {
        aggregate_duplicates(&[], 0.0, 0.0, 4);
    }
}
