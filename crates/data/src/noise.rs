//! Random primitives for the synthetic generators: seeded Gaussian sampling
//! (Box–Muller, so the workspace does not need `rand_distr`) and AR(1)
//! autocorrelated noise processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded standard-normal sampler based on the Box–Muller transform.
#[derive(Debug, Clone)]
pub struct GaussianSampler {
    rng: StdRng,
    spare: Option<f64>,
}

impl GaussianSampler {
    /// Create a sampler from a seed. The same seed always produces the same
    /// sequence, which keeps every experiment reproducible.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Draw one standard-normal sample.
    pub fn sample(&mut self) -> f64 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Box–Muller: two uniforms → two independent normals.
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Draw a normal sample with the given mean and standard deviation.
    pub fn sample_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.sample()
    }

    /// Draw a uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Draw a uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

/// A first-order autoregressive process `x_t = φ·x_{t-1} + ε_t`,
/// `ε_t ~ N(0, σ²)`. Climate anomalies are strongly autocorrelated; AR(1)
/// noise is the standard minimal model for that persistence.
#[derive(Debug, Clone)]
pub struct Ar1 {
    phi: f64,
    sigma: f64,
    state: f64,
    noise: GaussianSampler,
}

impl Ar1 {
    /// Create an AR(1) process with persistence `phi` (|φ| < 1 for
    /// stationarity) and innovation standard deviation `sigma`.
    pub fn new(phi: f64, sigma: f64, seed: u64) -> Self {
        let mut noise = GaussianSampler::new(seed);
        // Start from the stationary distribution so there is no burn-in
        // transient at the beginning of generated series.
        let stationary_std = if phi.abs() < 1.0 {
            sigma / (1.0 - phi * phi).sqrt()
        } else {
            sigma
        };
        let state = noise.sample() * stationary_std;
        Self {
            phi,
            sigma,
            state,
            noise,
        }
    }

    /// Advance the process one step and return the new value.
    pub fn next_value(&mut self) -> f64 {
        self.state = self.phi * self.state + self.noise.sample() * self.sigma;
        self.state
    }

    /// Generate `len` consecutive values.
    pub fn generate(&mut self, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.next_value()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::stats::{pearson, WindowStats};

    #[test]
    fn gaussian_sampler_is_deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut s = GaussianSampler::new(42);
            (0..10).map(|_| s.sample()).collect()
        };
        let b: Vec<f64> = {
            let mut s = GaussianSampler::new(42);
            (0..10).map(|_| s.sample()).collect()
        };
        let c: Vec<f64> = {
            let mut s = GaussianSampler::new(43);
            (0..10).map(|_| s.sample()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_sampler_has_roughly_standard_moments() {
        let mut s = GaussianSampler::new(7);
        let values: Vec<f64> = (0..20_000).map(|_| s.sample()).collect();
        let stats = WindowStats::from_values(&values);
        assert!(stats.mean.abs() < 0.05, "mean {}", stats.mean);
        assert!((stats.std - 1.0).abs() < 0.05, "std {}", stats.std);
    }

    #[test]
    fn sample_with_scales_and_shifts() {
        let mut s = GaussianSampler::new(3);
        let values: Vec<f64> = (0..20_000).map(|_| s.sample_with(10.0, 2.0)).collect();
        let stats = WindowStats::from_values(&values);
        assert!((stats.mean - 10.0).abs() < 0.1);
        assert!((stats.std - 2.0).abs() < 0.1);
    }

    #[test]
    fn uniform_and_index_stay_in_range() {
        let mut s = GaussianSampler::new(11);
        for _ in 0..1000 {
            let u = s.uniform(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&u));
            assert!(s.index(7) < 7);
        }
    }

    #[test]
    fn ar1_is_autocorrelated() {
        let mut p = Ar1::new(0.9, 1.0, 123);
        let x = p.generate(5000);
        // Lag-1 autocorrelation of an AR(1) with φ=0.9 is ≈ 0.9.
        let lag1 = pearson(&x[..x.len() - 1], &x[1..]);
        assert!(lag1 > 0.8, "lag-1 autocorrelation {lag1}");
    }

    #[test]
    fn ar1_with_zero_phi_is_white_noise() {
        let mut p = Ar1::new(0.0, 1.0, 5);
        let x = p.generate(5000);
        let lag1 = pearson(&x[..x.len() - 1], &x[1..]);
        assert!(lag1.abs() < 0.1, "lag-1 autocorrelation {lag1}");
    }

    #[test]
    fn ar1_stationary_variance_matches_theory() {
        let phi = 0.7f64;
        let sigma = 2.0f64;
        let mut p = Ar1::new(phi, sigma, 99);
        let x = p.generate(50_000);
        let stats = WindowStats::from_values(&x);
        let expected = sigma / (1.0 - phi * phi).sqrt();
        assert!(
            (stats.std - expected).abs() / expected < 0.1,
            "std {} vs expected {expected}",
            stats.std
        );
    }
}
