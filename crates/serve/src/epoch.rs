//! Epoch publication: immutable sketch snapshots behind atomic `Arc` swaps.
//!
//! A query server must answer from a *consistent* view of the sketches while
//! ingestion keeps appending basic windows. The discipline here is
//! append-only publication: every completed basic window freezes the sketch
//! state into an immutable snapshot — an **epoch** — published into an
//! [`EpochStore`] by swapping an `Arc`. Readers clone the `Arc` (no data
//! copy, no lock held across a query) and compute against that snapshot for
//! as long as they like; writers never mutate a published epoch, they only
//! publish the next one. Epoch ids are assigned 1, 2, 3, … in publication
//! order, so a response tagged with an epoch id can be re-checked against
//! exactly the snapshot that produced it.
//!
//! [`EpochIngest`] is the producing side: a [`StreamBuffer`] accumulates raw
//! observations, and each released basic-window chunk is folded into a
//! growing sketch ([`SketchSet::push_window`] /
//! [`DftSketchSet::push_window`]) whose clone becomes the next epoch.
//! Networks that maintain sliding state instead
//! ([`tsubasa_stream::RealTimeNetwork`]) publish through their
//! `publish_epoch()` hook and [`EpochStore::publish_sketches`].
//!
//! For served sets larger than RAM, [`EpochIngest::pile`] appends each
//! completed window to an on-disk [`SketchPile`] instead of growing an
//! owned sketch; the published epoch carries a memory-mapped snapshot of
//! the pile and queries read its window-major tables zero-copy.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use tsubasa_core::error::{Error, Result};
use tsubasa_core::plan::PlanMethod;
use tsubasa_core::source::CorrSource;
use tsubasa_core::stats::{normalize_into, tiled_pair_corrs_into, WindowStats};
use tsubasa_core::{SeriesCollection, SketchSet};
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_storage::pile::{PileWriter, SegmentKind, SketchPile};
use tsubasa_stream::{EpochSketches, StreamBuffer};

/// One immutable published snapshot: the sketches covering every basic
/// window completed up to its publication, identified by a 1-based id.
///
/// An epoch may carry an exact [`SketchSet`], a [`DftSketchSet`], both, or a
/// memory-mapped [`SketchPile`] snapshot. At publication each payload is
/// also bound as a per-method [`CorrSource`] ([`Epoch::source`]) — the query
/// engine answers through that trait alone, so a pile whose `PairEsts`
/// segments are on disk answers approximate queries exactly like an
/// in-memory comparator. Queries for a method the epoch cannot serve fail
/// with a typed error instead of silently degrading.
#[derive(Clone)]
pub struct Epoch {
    id: u64,
    exact: Option<Arc<SketchSet>>,
    approx: Option<Arc<DftSketchSet>>,
    pile: Option<Arc<SketchPile>>,
    exact_src: Option<Arc<dyn CorrSource>>,
    approx_src: Option<Arc<dyn CorrSource>>,
}

impl std::fmt::Debug for Epoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Epoch")
            .field("id", &self.id)
            .field("exact", &self.exact)
            .field("approx", &self.approx)
            .field("pile", &self.pile)
            .field("exact_capable", &self.exact_src.is_some())
            .field("approx_capable", &self.approx_src.is_some())
            .finish()
    }
}

impl Epoch {
    /// The 1-based publication id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The exact sketch snapshot, when this epoch carries one.
    pub fn exact(&self) -> Option<&Arc<SketchSet>> {
        self.exact.as_ref()
    }

    /// The DFT comparator snapshot, when this epoch carries one.
    pub fn approx(&self) -> Option<&Arc<DftSketchSet>> {
        self.approx.as_ref()
    }

    /// The memory-mapped pile snapshot, when this epoch carries one.
    pub fn pile(&self) -> Option<&Arc<SketchPile>> {
        self.pile.as_ref()
    }

    /// The [`CorrSource`] answering `method` queries, when the epoch can
    /// serve that method: the in-memory sketch when one is carried, else the
    /// pile snapshot when its segment coverage supports the method.
    pub fn source(&self, method: PlanMethod) -> Option<&Arc<dyn CorrSource>> {
        match method {
            PlanMethod::Exact => self.exact_src.as_ref(),
            PlanMethod::Approximate => self.approx_src.as_ref(),
        }
    }

    /// Number of series covered.
    pub fn series_count(&self) -> usize {
        match (&self.exact_src, &self.approx_src) {
            (Some(s), _) => s.series_count(),
            (None, Some(s)) => s.series_count(),
            (None, None) => 0,
        }
    }

    /// Basic windows answerable under `method` (0 when the epoch cannot
    /// serve the method at all).
    pub fn windows_for(&self, method: PlanMethod) -> usize {
        self.source(method).map_or(0, |s| s.window_count(method))
    }

    /// Number of basic windows the snapshot covers under *some* query
    /// method. For a pile-backed epoch this is the per-kind segment
    /// coverage, so an estimates-only pile counts its approximate windows.
    pub fn window_count(&self) -> usize {
        self.windows_for(PlanMethod::Exact)
            .max(self.windows_for(PlanMethod::Approximate))
    }
}

/// The published-epoch store: the latest epoch behind an `Arc` swap plus a
/// bounded history of recent epochs, retained by id so in-flight responses
/// can be re-checked against the snapshot that produced them.
///
/// Readers ([`EpochStore::latest`], [`EpochStore::get`]) take a read lock
/// only long enough to clone an `Arc`; publication takes the write lock only
/// for the swap. No lock is ever held while a query computes.
#[derive(Debug)]
pub struct EpochStore {
    latest: RwLock<Option<Arc<Epoch>>>,
    recent: Mutex<VecDeque<Arc<Epoch>>>,
    capacity: usize,
    published: AtomicU64,
}

impl EpochStore {
    /// A store retaining the most recent `capacity` epochs (clamped to at
    /// least 1 — the latest epoch is always retained).
    pub fn new(capacity: usize) -> Self {
        Self {
            latest: RwLock::new(None),
            recent: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            published: AtomicU64::new(0),
        }
    }

    /// Publish the next epoch from its sketch snapshots. At least one method
    /// must be present. Returns the published epoch (already retained).
    pub fn publish(
        &self,
        exact: Option<SketchSet>,
        approx: Option<DftSketchSet>,
    ) -> Result<Arc<Epoch>> {
        if exact.is_none() && approx.is_none() {
            return Err(Error::EmptyInput("an epoch needs at least one sketch"));
        }
        self.publish_epoch(exact.map(Arc::new), approx.map(Arc::new), None)
    }

    /// Publish the next epoch from a memory-mapped pile snapshot. The pile
    /// must cover at least one queryable basic window under some method —
    /// exact (statistics and pair correlations on disk) or approximate
    /// (statistics and pair estimates on disk).
    pub fn publish_pile(&self, pile: SketchPile) -> Result<Arc<Epoch>> {
        if pile.exact_query_windows() == 0 && pile.approx_query_windows() == 0 {
            return Err(Error::EmptyInput(
                "a pile epoch needs at least one queryable window",
            ));
        }
        self.publish_epoch(None, None, Some(Arc::new(pile)))
    }

    fn publish_epoch(
        &self,
        exact: Option<Arc<SketchSet>>,
        approx: Option<Arc<DftSketchSet>>,
        pile: Option<Arc<SketchPile>>,
    ) -> Result<Arc<Epoch>> {
        let id = self.published.fetch_add(1, Ordering::SeqCst) + 1;
        // Bind each method to its answering source at publication: a carried
        // in-memory sketch wins, else the pile when its per-kind segment
        // coverage supports the method.
        let exact_src: Option<Arc<dyn CorrSource>> = match (&exact, &pile) {
            (Some(s), _) => Some(Arc::clone(s) as Arc<dyn CorrSource>),
            (None, Some(p)) if p.exact_query_windows() > 0 => {
                Some(Arc::clone(p) as Arc<dyn CorrSource>)
            }
            _ => None,
        };
        let approx_src: Option<Arc<dyn CorrSource>> = match (&approx, &pile) {
            (Some(s), _) => Some(Arc::clone(s) as Arc<dyn CorrSource>),
            (None, Some(p)) if p.approx_query_windows() > 0 => {
                Some(Arc::clone(p) as Arc<dyn CorrSource>)
            }
            _ => None,
        };
        let epoch = Arc::new(Epoch {
            id,
            exact,
            approx,
            pile,
            exact_src,
            approx_src,
        });
        {
            let mut recent = self.recent.lock().expect("epoch store poisoned");
            recent.push_back(Arc::clone(&epoch));
            while recent.len() > self.capacity {
                recent.pop_front();
            }
        }
        *self.latest.write().expect("epoch store poisoned") = Some(Arc::clone(&epoch));
        Ok(epoch)
    }

    /// Publish a [`tsubasa_stream::RealTimeNetwork::publish_epoch`] payload.
    pub fn publish_sketches(&self, sketches: EpochSketches) -> Result<Arc<Epoch>> {
        self.publish(sketches.exact, sketches.approx)
    }

    /// The most recently published epoch, if any.
    pub fn latest(&self) -> Option<Arc<Epoch>> {
        self.latest.read().expect("epoch store poisoned").clone()
    }

    /// A retained epoch by id. `None` when the id was never published or has
    /// rolled out of the retention window.
    pub fn get(&self, id: u64) -> Option<Arc<Epoch>> {
        let recent = self.recent.lock().expect("epoch store poisoned");
        recent.iter().find(|e| e.id == id).cloned()
    }

    /// Total number of epochs published so far.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::SeqCst)
    }

    /// The oldest epoch id still retained, if any. Epochs below this have
    /// rolled out; plan caches keyed by epoch id can invalidate below it.
    pub fn oldest_retained(&self) -> Option<u64> {
        let recent = self.recent.lock().expect("epoch store poisoned");
        recent.front().map(|e| e.id)
    }
}

enum IngestSketch {
    Exact(SketchSet),
    Dual {
        sketch: DftSketchSet,
        transform: Transform,
    },
    Pile(PileWriter),
}

/// The producing side of epoch publication: buffer raw observations, fold
/// each completed basic window into a growing sketch, and publish one epoch
/// per completed window.
///
/// Three flavors:
///
/// * [`EpochIngest::exact`] grows a plain [`SketchSet`]; epochs answer exact
///   (Lemma 1) queries.
/// * [`EpochIngest::dual`] grows a [`DftSketchSet`], whose
///   [`push_window`](DftSketchSet::push_window) maintains the exact base
///   correlations alongside the coefficient distances — so every epoch
///   carries **both** sketches and answers both query methods.
/// * [`EpochIngest::pile`] appends each completed window to an on-disk
///   [`SketchPile`] instead of growing an owned sketch; epochs carry a
///   memory-mapped snapshot of the pile, so the served set can exceed RAM.
///   The appended rows go through the same `exact_window_parts` kernel as
///   the exact flavor, so pile-served answers are bit-identical to
///   sketch-served ones.
pub struct EpochIngest {
    store: Arc<EpochStore>,
    buffer: StreamBuffer,
    sketch: IngestSketch,
}

impl EpochIngest {
    /// Bootstrap exact-only ingestion from historical data and publish the
    /// first epoch covering it.
    pub fn exact(
        store: Arc<EpochStore>,
        historical: &SeriesCollection,
        basic_window: usize,
    ) -> Result<(Self, Arc<Epoch>)> {
        let sketch = SketchSet::build(historical, basic_window)?;
        let first = store.publish(Some(sketch.clone()), None)?;
        Ok((
            Self {
                store,
                buffer: StreamBuffer::new(historical.len(), basic_window)?,
                sketch: IngestSketch::Exact(sketch),
            },
            first,
        ))
    }

    /// Bootstrap dual-method ingestion (exact base + DFT comparator) from
    /// historical data and publish the first epoch covering it.
    pub fn dual(
        store: Arc<EpochStore>,
        historical: &SeriesCollection,
        basic_window: usize,
        coefficients: usize,
        transform: Transform,
    ) -> Result<(Self, Arc<Epoch>)> {
        let sketch = DftSketchSet::build(historical, basic_window, coefficients, transform)?;
        let first = store.publish(Some(sketch.base().clone()), Some(sketch.clone()))?;
        Ok((
            Self {
                store,
                buffer: StreamBuffer::new(historical.len(), basic_window)?,
                sketch: IngestSketch::Dual { sketch, transform },
            },
            first,
        ))
    }

    /// Bootstrap pile-backed ingestion: sketch every complete basic window
    /// of the historical data into a fresh pile file at `path` and publish
    /// the first epoch as a memory-mapped snapshot of it.
    pub fn pile(
        store: Arc<EpochStore>,
        historical: &SeriesCollection,
        basic_window: usize,
        path: &Path,
    ) -> Result<(Self, Arc<Epoch>)> {
        let buffer = StreamBuffer::new(historical.len(), basic_window)?;
        let mut writer = PileWriter::create(path, historical.len(), basic_window)?;
        let complete = historical.series_len() / basic_window;
        for k in 0..complete {
            let chunk: Vec<Vec<f64>> = historical
                .iter()
                .map(|s| s.values()[k * basic_window..(k + 1) * basic_window].to_vec())
                .collect();
            append_window_to_pile(&mut writer, &chunk)?;
        }
        writer.sync()?;
        let first = store.publish_pile(writer.snapshot()?)?;
        Ok((
            Self {
                store,
                buffer,
                sketch: IngestSketch::Pile(writer),
            },
            first,
        ))
    }

    /// The store this ingest publishes into.
    pub fn store(&self) -> &Arc<EpochStore> {
        &self.store
    }

    /// Feed newly observed points (`updates[i]` are the new points of series
    /// `i`, any length). Every completed basic window extends the sketch and
    /// publishes one epoch; leftovers stay buffered. Returns the epochs
    /// published by this call, oldest first.
    pub fn ingest(&mut self, updates: &[Vec<f64>]) -> Result<Vec<Arc<Epoch>>> {
        let chunks = self.buffer.push(updates)?;
        let mut published = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            match &mut self.sketch {
                IngestSketch::Exact(sketch) => {
                    let (stats, corrs) = exact_window_parts(&chunk);
                    sketch.push_window(stats, corrs)?;
                    published.push(self.store.publish(Some(sketch.clone()), None)?);
                }
                IngestSketch::Dual { sketch, transform } => {
                    sketch.push_window(&chunk, *transform)?;
                    published.push(
                        self.store
                            .publish(Some(sketch.base().clone()), Some(sketch.clone()))?,
                    );
                }
                IngestSketch::Pile(writer) => {
                    append_window_to_pile(writer, &chunk)?;
                    published.push(self.store.publish_pile(writer.snapshot()?)?);
                }
            }
        }
        Ok(published)
    }
}

/// Append one completed basic window to a pile: the `(len, mean, std)`
/// statistics row plus the packed pair-correlation row, both produced by
/// [`exact_window_parts`] — so the pile rows are bit-identical to the same
/// window in an owned [`SketchSet`].
fn append_window_to_pile(writer: &mut PileWriter, chunk: &[Vec<f64>]) -> Result<()> {
    let (stats, corrs) = exact_window_parts(chunk);
    let mut stats_row = Vec::with_capacity(stats.len() * 3);
    for st in &stats {
        stats_row.extend_from_slice(&[st.len as f64, st.mean, st.std]);
    }
    writer.append(SegmentKind::SeriesStats, &stats_row)?;
    writer.append(SegmentKind::PairCorrs, &corrs)?;
    Ok(())
}

/// Mirror in-memory sketches into a pile, window by window: the statistics
/// row, a `PairCorrs` row per window when an exact sketch is given, and a
/// `PairEsts` row (Eq. 3 estimates `1 − d²/2`) per window when a DFT
/// comparator is given. The rows are copied verbatim from the sketches, so a
/// pile epoch built this way answers both methods bit-identically to the
/// sketch-backed epoch it mirrors. Call [`PileWriter::sync`] and snapshot
/// afterwards as usual.
pub fn mirror_sketches_to_pile(
    writer: &mut PileWriter,
    exact: Option<&SketchSet>,
    approx: Option<&DftSketchSet>,
) -> Result<()> {
    let base = match (exact, approx) {
        (Some(s), _) => s,
        (None, Some(a)) => a.base(),
        (None, None) => return Err(Error::EmptyInput("mirroring needs at least one sketch")),
    };
    if let (Some(s), Some(a)) = (exact, approx) {
        if s.series_count() != a.series_count() || s.window_count() != a.window_count() {
            return Err(Error::SketchMismatch {
                requested: format!(
                    "{} series x {} windows (exact)",
                    s.series_count(),
                    s.window_count()
                ),
                available: format!(
                    "{} series x {} windows (approx)",
                    a.series_count(),
                    a.window_count()
                ),
            });
        }
    }
    let n = base.series_count();
    for w in 0..base.window_count() {
        let mut stats_row = Vec::with_capacity(n * 3);
        for i in 0..n {
            let st = base.series_sketch(i)?.window(w);
            stats_row.extend_from_slice(&[st.len as f64, st.mean, st.std]);
        }
        writer.append(SegmentKind::SeriesStats, &stats_row)?;
        if let Some(s) = exact {
            writer.append(
                SegmentKind::PairCorrs,
                s.window_corrs_view(w..w + 1).window_row(0),
            )?;
        }
        if let Some(a) = approx {
            let ests: Vec<f64> = a
                .window_dists_view(w..w + 1)
                .window_row(0)
                .iter()
                .map(|&d| 1.0 - d * d / 2.0)
                .collect();
            writer.append(SegmentKind::PairEsts, &ests)?;
        }
    }
    Ok(())
}

/// Sketch one completed basic window: per-series statistics plus the packed
/// per-pair correlations, through the same z-normalize-then-`Z·Zᵀ` tiled
/// kernel as [`SketchSet::build`] — a window grown here is bit-identical to
/// the same window in a from-scratch sketch.
fn exact_window_parts(chunk: &[Vec<f64>]) -> (Vec<WindowStats>, Vec<f64>) {
    let n = chunk.len();
    let b = chunk.first().map(|p| p.len()).unwrap_or(0);
    let stats: Vec<WindowStats> = chunk
        .iter()
        .map(|points| WindowStats::from_values(points))
        .collect();
    let mut z = vec![0.0f64; n * b];
    for (i, points) in chunk.iter().enumerate() {
        normalize_into(points, &stats[i], &mut z[i * b..(i + 1) * b]);
    }
    let mut corrs = vec![0.0f64; n * n.saturating_sub(1) / 2];
    tiled_pair_corrs_into(&z, n, b, &mut corrs);
    (stats, corrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows(
            (0..n)
                .map(|s| {
                    (0..len)
                        .map(|i| {
                            (i as f64 * 0.13 + s as f64).sin() + ((i * (s + 3)) % 7) as f64 * 0.1
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn store_publishes_sequential_ids_and_retains_by_capacity() {
        let c = collection(3, 60);
        let store = EpochStore::new(2);
        assert!(store.latest().is_none());
        assert!(store.publish(None, None).is_err());
        for expect in 1..=4u64 {
            let sk = SketchSet::build(&c, 20).unwrap();
            let e = store.publish(Some(sk), None).unwrap();
            assert_eq!(e.id(), expect);
            assert_eq!(store.latest().unwrap().id(), expect);
        }
        assert_eq!(store.published(), 4);
        assert_eq!(store.oldest_retained(), Some(3));
        assert!(store.get(2).is_none());
        assert_eq!(store.get(4).unwrap().id(), 4);
    }

    #[test]
    fn exact_ingest_grows_windows_and_matches_rebuild() {
        let full = collection(4, 100);
        let historical = full.truncate_length(60).unwrap();
        let store = Arc::new(EpochStore::new(8));
        let (mut ingest, first) = EpochIngest::exact(Arc::clone(&store), &historical, 20).unwrap();
        assert_eq!(first.id(), 1);
        assert_eq!(first.window_count(), 3);

        // Stream the remaining 40 points in two uneven pushes.
        let push = |lo: usize, hi: usize| -> Vec<Vec<f64>> {
            full.iter().map(|s| s.values()[lo..hi].to_vec()).collect()
        };
        assert!(ingest.ingest(&push(60, 73)).unwrap().is_empty());
        let published = ingest.ingest(&push(73, 100)).unwrap();
        assert_eq!(published.len(), 2);
        assert_eq!(published[1].id(), 3);
        assert_eq!(published[1].window_count(), 5);

        // The grown sketch is bit-identical to a from-scratch build.
        let rebuilt = SketchSet::build(&full, 20).unwrap();
        assert_eq!(published[1].exact().unwrap().as_ref(), &rebuilt);
    }

    #[test]
    fn pile_ingest_appends_windows_and_matches_rebuild() {
        let full = collection(4, 100);
        let historical = full.truncate_length(60).unwrap();
        let store = Arc::new(EpochStore::new(8));
        let path = std::env::temp_dir().join(format!(
            "tsubasa-serve-pile-ingest-{}.pile",
            std::process::id()
        ));
        let (mut ingest, first) =
            EpochIngest::pile(Arc::clone(&store), &historical, 20, &path).unwrap();
        assert_eq!(first.id(), 1);
        assert_eq!(first.window_count(), 3);
        assert_eq!(first.series_count(), 4);
        assert!(first.exact().is_none() && first.approx().is_none());
        assert!(first.pile().is_some());

        let push = |lo: usize, hi: usize| -> Vec<Vec<f64>> {
            full.iter().map(|s| s.values()[lo..hi].to_vec()).collect()
        };
        assert!(ingest.ingest(&push(60, 73)).unwrap().is_empty());
        let published = ingest.ingest(&push(73, 100)).unwrap();
        assert_eq!(published.len(), 2);
        assert_eq!(published[1].id(), 3);
        assert_eq!(published[1].window_count(), 5);

        // Earlier epochs are frozen snapshots: epoch 2 still covers 4 windows.
        assert_eq!(published[0].window_count(), 4);

        // The pile rows are bit-identical to a from-scratch sketch.
        let pile = published[1].pile().unwrap();
        let rebuilt = SketchSet::build(&full, 20).unwrap();
        let table = pile.pair_table(0..5, SegmentKind::PairCorrs).unwrap();
        let view = table.view();
        let rb = rebuilt.window_corrs_view(0..5);
        for k in 0..5 {
            assert_eq!(view.window_row(k), rb.window_row(k));
        }
        let stats = pile.series_stats(0..5).unwrap();
        for (i, row) in stats.iter().enumerate() {
            for (k, st) in row.iter().enumerate() {
                assert_eq!(*st, rebuilt.series_sketch(i).unwrap().window(k));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dual_ingest_publishes_both_methods() {
        let full = collection(3, 80);
        let historical = full.truncate_length(40).unwrap();
        let store = Arc::new(EpochStore::new(8));
        let (mut ingest, first) =
            EpochIngest::dual(Arc::clone(&store), &historical, 20, 20, Transform::Naive).unwrap();
        assert!(first.exact().is_some() && first.approx().is_some());

        let push: Vec<Vec<f64>> = full.iter().map(|s| s.values()[40..80].to_vec()).collect();
        let published = ingest.ingest(&push).unwrap();
        assert_eq!(published.len(), 2);
        let last = &published[1];
        assert_eq!(last.window_count(), 4);

        let rebuilt = DftSketchSet::build(&full, 20, 20, Transform::Naive).unwrap();
        assert_eq!(last.approx().unwrap().as_ref(), &rebuilt);
        assert_eq!(last.exact().unwrap().as_ref(), rebuilt.base());
    }
}
