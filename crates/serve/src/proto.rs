//! Wire protocol for the query server: length-prefixed binary frames.
//!
//! Every message is one frame: a little-endian `u32` byte length followed by
//! that many payload bytes. The first payload byte is the opcode; the rest
//! is a fixed-layout body (all integers little-endian, `f64` carried as raw
//! IEEE-754 bits via [`f64::to_bits`] so correlation thresholds and edge
//! weights round-trip **bit-exactly**).
//!
//! | opcode | direction | body |
//! |--------|-----------|------|
//! | `0x01` | request   | network: method `u8`, last_windows `u32`, theta bits `u64` |
//! | `0x02` | request   | top-k: method `u8`, last_windows `u32`, k `u32` |
//! | `0x03` | request   | stats: empty |
//! | `0x04` | request   | subscribe_deltas: method `u8`, theta bits `u64`, max_frames `u32` (≥ 1) |
//! | `0x81` | response  | network: epoch `u64`, nodes `u32`, nan `u64`, count `u32`, `(u32,u32)`×count |
//! | `0x82` | response  | top-k: epoch `u64`, nan `u64`, count `u32`, `(u32,u32,u64)`×count |
//! | `0x83` | response  | stats: ten `u64`/`u32` counters, see [`StatsReply`] |
//! | `0x84` | response  | delta: epoch `u64`, nodes `u32`, nan `u64`, appeared count `u32` + `(u32,u32)`×, vanished count `u32` + `(u32,u32)`× |
//! | `0xEE` | response  | error: code `u8`, message length `u32`, UTF-8 bytes |
//!
//! `subscribe_deltas` is the one request answered by more than one frame: a
//! baseline `0x81` network reply for the latest epoch, then **exactly**
//! `max_frames` `0x84` delta frames — one per newly *observed* epoch
//! publication (if several epochs land between observations, one cumulative
//! delta against the last streamed epoch is emitted). Afterwards the
//! connection returns to normal request–response. See
//! [`crate::server`] for the streaming loop.
//!
//! Decoding is strict: a body shorter or longer than its layout demands is a
//! [`ProtoError::BadPayload`], never a panic or a silent truncation — the
//! `serve_faults` suite drives this with generated malformed frames.

use std::io::{self, Read, Write};

/// Largest frame a server accepts from a client. Requests are tiny; anything
/// bigger is a garbage or hostile length prefix.
pub const MAX_REQUEST_FRAME: u32 = 4096;

/// Largest frame a client accepts from a server. Edge lists over dense
/// networks can be large, but bounded: 1 GiB is far beyond any n this
/// reproduction handles.
pub const MAX_RESPONSE_FRAME: u32 = 1 << 30;

/// Consecutive mid-frame read timeouts tolerated before the peer is declared
/// stalled. With the ~25 ms poll interval used by the server this is a
/// multi-second budget — generous for a loopback test harness, finite for a
/// wedged peer.
pub const MID_FRAME_STALL_BUDGET: u32 = 400;

const OP_NETWORK: u8 = 0x01;
const OP_TOP_K: u8 = 0x02;
const OP_STATS: u8 = 0x03;
const OP_SUBSCRIBE: u8 = 0x04;
const OP_NETWORK_REPLY: u8 = 0x81;
const OP_TOP_K_REPLY: u8 = 0x82;
const OP_STATS_REPLY: u8 = 0x83;
const OP_DELTA_REPLY: u8 = 0x84;
const OP_ERROR: u8 = 0xEE;

/// Which sketch method a request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Lemma 1 exact recombination.
    Exact,
    /// Equation 5 DFT-sketch approximation.
    Approximate,
}

impl Method {
    fn to_wire(self) -> u8 {
        match self {
            Method::Exact => 0,
            Method::Approximate => 1,
        }
    }

    fn from_wire(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(Method::Exact),
            1 => Ok(Method::Approximate),
            other => Err(ProtoError::BadPayload(format!(
                "unknown method byte 0x{other:02x}"
            ))),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Build the θ-thresholded correlation network over the trailing
    /// `last_windows` basic windows (`0` = all available windows).
    Network {
        /// Exact or approximate path.
        method: Method,
        /// Trailing window count; `0` selects every available window.
        last_windows: u32,
        /// Correlation threshold θ.
        theta: f64,
    },
    /// Report the k most correlated pairs over the trailing windows.
    TopK {
        /// Exact or approximate path.
        method: Method,
        /// Trailing window count; `0` selects every available window.
        last_windows: u32,
        /// Number of edges requested.
        k: u32,
    },
    /// Fetch server/cache/epoch counters.
    Stats,
    /// Stream edge deltas: a baseline network reply for the latest epoch,
    /// then exactly `max_frames` delta frames, one per newly observed epoch
    /// publication.
    SubscribeDeltas {
        /// Exact or approximate path.
        method: Method,
        /// Correlation threshold θ the streamed edge set is pinned to.
        theta: f64,
        /// Number of delta frames to stream before the connection returns to
        /// request–response. Must be ≥ 1; the server rejects 0 with a
        /// [`ErrorCode::Query`] error frame.
        max_frames: u32,
    },
}

/// Body of a delta response frame: the edge-level change between the
/// previously streamed epoch's network and `epoch`'s, at the subscribed θ.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeltaReply {
    /// Epoch this delta advances the subscriber's snapshot to.
    pub epoch: u64,
    /// Node (series) count of that epoch.
    pub nodes: u32,
    /// Pairs whose correlation was NaN in `epoch`'s network (audited, not
    /// dropped).
    pub nan_pairs: u64,
    /// Edges present in `epoch`'s network but not the previously streamed
    /// one, ascending pair order.
    pub appeared: Vec<(u32, u32)>,
    /// Edges present in the previously streamed network but not `epoch`'s,
    /// ascending pair order.
    pub vanished: Vec<(u32, u32)>,
}

/// Body of a stats response: a point-in-time counter snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Latest published epoch id (0 when none yet).
    pub epoch: u64,
    /// Total epochs ever published.
    pub published: u64,
    /// Series count of the latest epoch.
    pub series: u32,
    /// Window count of the latest epoch.
    pub windows: u32,
    /// Requests served (including ones answered with an error frame).
    pub requests: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Connections accepted.
    pub connections: u64,
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
}

/// Error codes carried by `0xEE` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame decoded but its body was malformed.
    Malformed,
    /// The request opcode is not known to this server.
    UnknownOpcode,
    /// The query itself was rejected (bad θ, window out of range, …).
    Query,
    /// The server cannot answer yet, for an unspecified reason (legacy
    /// catch-all; current servers emit one of the structured codes below).
    Unavailable,
    /// Unexpected internal failure.
    Internal,
    /// No epoch has been published yet.
    UnavailableNoEpoch,
    /// The epoch carries no exact-capable source.
    UnavailableNoExact,
    /// The epoch carries no approximate-capable source.
    UnavailableNoApprox,
}

impl ErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnknownOpcode => 2,
            ErrorCode::Query => 3,
            ErrorCode::Unavailable => 4,
            ErrorCode::Internal => 5,
            ErrorCode::UnavailableNoEpoch => 6,
            ErrorCode::UnavailableNoExact => 7,
            ErrorCode::UnavailableNoApprox => 8,
        }
    }

    fn from_wire(b: u8) -> Result<Self, ProtoError> {
        match b {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::UnknownOpcode),
            3 => Ok(ErrorCode::Query),
            4 => Ok(ErrorCode::Unavailable),
            5 => Ok(ErrorCode::Internal),
            6 => Ok(ErrorCode::UnavailableNoEpoch),
            7 => Ok(ErrorCode::UnavailableNoExact),
            8 => Ok(ErrorCode::UnavailableNoApprox),
            other => Err(ProtoError::BadPayload(format!(
                "unknown error code 0x{other:02x}"
            ))),
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Network query result: the edge list above θ.
    Network {
        /// Epoch the answer was computed against.
        epoch: u64,
        /// Node (series) count of that epoch.
        nodes: u32,
        /// Pairs whose correlation was NaN (audited, not dropped).
        nan_pairs: u64,
        /// Edge endpoints `(i, j)` with `i < j`, ascending pair order.
        edges: Vec<(u32, u32)>,
    },
    /// Top-k query result: ranked edges, strongest first.
    TopK {
        /// Epoch the answer was computed against.
        epoch: u64,
        /// Pairs whose correlation was NaN (audited, not dropped).
        nan_pairs: u64,
        /// `(i, j, corr)` sorted by descending correlation.
        edges: Vec<(u32, u32, f64)>,
    },
    /// Stats snapshot.
    Stats(StatsReply),
    /// One frame of a delta subscription stream.
    Delta(DeltaReply),
    /// Typed failure; the connection stays open unless the transport itself
    /// broke.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Protocol-level failures.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection at a clean frame boundary.
    Closed,
    /// The peer closed mid-frame: bytes promised by the length prefix never
    /// arrived.
    Truncated,
    /// The length prefix exceeds the negotiated maximum.
    Oversized {
        /// Length the prefix claimed.
        len: u32,
        /// Maximum this side accepts.
        max: u32,
    },
    /// The peer stopped sending mid-frame for longer than the stall budget.
    Stalled,
    /// The frame's opcode byte is not recognised.
    UnknownOpcode(u8),
    /// The frame's body does not match its opcode's layout.
    BadPayload(String),
    /// Underlying transport error.
    Io(io::Error),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Truncated => write!(f, "frame truncated by peer"),
            ProtoError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds maximum {max}")
            }
            ProtoError::Stalled => write!(f, "peer stalled mid-frame"),
            ProtoError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::BadPayload(msg) => write!(f, "malformed payload: {msg}"),
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// Frame transport
// ---------------------------------------------------------------------------

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read exactly `buf.len()` bytes, tolerating up to [`MID_FRAME_STALL_BUDGET`]
/// consecutive read timeouts. `started` reports whether any frame byte had
/// already been consumed (distinguishes clean close from truncation).
fn read_exact_patient(
    r: &mut impl Read,
    buf: &mut [u8],
    mut started: bool,
) -> Result<(), ProtoError> {
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(if started || filled > 0 {
                    ProtoError::Truncated
                } else {
                    ProtoError::Closed
                });
            }
            Ok(n) => {
                filled += n;
                started = true;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls >= MID_FRAME_STALL_BUDGET {
                    return Err(ProtoError::Stalled);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

/// Read one frame's payload. Returns `Ok(None)` when the connection is idle:
/// the *first* byte of the length prefix timed out, meaning no frame has
/// started — callers use this to poll a shutdown flag between frames. Once
/// any byte has arrived the frame must complete: EOF becomes
/// [`ProtoError::Truncated`] and a stall beyond the budget becomes
/// [`ProtoError::Stalled`].
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Option<Vec<u8>>, ProtoError> {
    let mut prefix = [0u8; 4];
    // First byte: an idle timeout is not an error.
    loop {
        match r.read(&mut prefix[..1]) {
            Ok(0) => return Err(ProtoError::Closed),
            Ok(_) => break,
            Err(e) if is_timeout(&e) => return Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    read_exact_patient(r, &mut prefix[1..], true)?;
    let len = u32::from_le_bytes(prefix);
    if len > max_len {
        return Err(ProtoError::Oversized { len, max: max_len });
    }
    if len == 0 {
        return Err(ProtoError::BadPayload("empty frame".to_string()));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_patient(r, &mut payload, true)?;
    Ok(Some(payload))
}

/// Write one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode a request into a frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Network {
            method,
            last_windows,
            theta,
        } => {
            let mut out = Vec::with_capacity(14);
            out.push(OP_NETWORK);
            out.push(method.to_wire());
            put_u32(&mut out, *last_windows);
            put_u64(&mut out, theta.to_bits());
            out
        }
        Request::TopK {
            method,
            last_windows,
            k,
        } => {
            let mut out = Vec::with_capacity(10);
            out.push(OP_TOP_K);
            out.push(method.to_wire());
            put_u32(&mut out, *last_windows);
            put_u32(&mut out, *k);
            out
        }
        Request::Stats => vec![OP_STATS],
        Request::SubscribeDeltas {
            method,
            theta,
            max_frames,
        } => {
            let mut out = Vec::with_capacity(14);
            out.push(OP_SUBSCRIBE);
            out.push(method.to_wire());
            put_u64(&mut out, theta.to_bits());
            put_u32(&mut out, *max_frames);
            out
        }
    }
}

/// Encode a response into a frame payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Network {
            epoch,
            nodes,
            nan_pairs,
            edges,
        } => {
            let mut out = Vec::with_capacity(25 + edges.len() * 8);
            out.push(OP_NETWORK_REPLY);
            put_u64(&mut out, *epoch);
            put_u32(&mut out, *nodes);
            put_u64(&mut out, *nan_pairs);
            put_u32(&mut out, edges.len() as u32);
            for &(i, j) in edges {
                put_u32(&mut out, i);
                put_u32(&mut out, j);
            }
            out
        }
        Response::TopK {
            epoch,
            nan_pairs,
            edges,
        } => {
            let mut out = Vec::with_capacity(21 + edges.len() * 16);
            out.push(OP_TOP_K_REPLY);
            put_u64(&mut out, *epoch);
            put_u64(&mut out, *nan_pairs);
            put_u32(&mut out, edges.len() as u32);
            for &(i, j, corr) in edges {
                put_u32(&mut out, i);
                put_u32(&mut out, j);
                put_u64(&mut out, corr.to_bits());
            }
            out
        }
        Response::Stats(s) => {
            let mut out = Vec::with_capacity(73);
            out.push(OP_STATS_REPLY);
            put_u64(&mut out, s.epoch);
            put_u64(&mut out, s.published);
            put_u32(&mut out, s.series);
            put_u32(&mut out, s.windows);
            put_u64(&mut out, s.requests);
            put_u64(&mut out, s.errors);
            put_u64(&mut out, s.connections);
            put_u64(&mut out, s.cache_hits);
            put_u64(&mut out, s.cache_misses);
            put_u64(&mut out, s.cache_evictions);
            out
        }
        Response::Delta(d) => {
            let mut out = Vec::with_capacity(29 + (d.appeared.len() + d.vanished.len()) * 8);
            out.push(OP_DELTA_REPLY);
            put_u64(&mut out, d.epoch);
            put_u32(&mut out, d.nodes);
            put_u64(&mut out, d.nan_pairs);
            put_u32(&mut out, d.appeared.len() as u32);
            for &(i, j) in &d.appeared {
                put_u32(&mut out, i);
                put_u32(&mut out, j);
            }
            put_u32(&mut out, d.vanished.len() as u32);
            for &(i, j) in &d.vanished {
                put_u32(&mut out, i);
                put_u32(&mut out, j);
            }
            out
        }
        Response::Error { code, message } => {
            let bytes = message.as_bytes();
            let mut out = Vec::with_capacity(6 + bytes.len());
            out.push(OP_ERROR);
            out.push(code.to_wire());
            put_u32(&mut out, bytes.len() as u32);
            out.extend_from_slice(bytes);
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------------

/// Strict cursor over a frame body: every read is bounds-checked and the
/// caller asserts full consumption, so malformed input surfaces as a typed
/// error instead of a panic or an accepted-but-garbled request.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                ProtoError::BadPayload(format!(
                    "body ends at byte {} but layout needs {} more",
                    self.buf.len(),
                    self.pos + n - self.buf.len()
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::BadPayload(format!(
                "{} trailing bytes after body",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Decode a request frame payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let req = match op {
        OP_NETWORK => Request::Network {
            method: Method::from_wire(c.u8()?)?,
            last_windows: c.u32()?,
            theta: f64::from_bits(c.u64()?),
        },
        OP_TOP_K => Request::TopK {
            method: Method::from_wire(c.u8()?)?,
            last_windows: c.u32()?,
            k: c.u32()?,
        },
        OP_STATS => Request::Stats,
        OP_SUBSCRIBE => Request::SubscribeDeltas {
            method: Method::from_wire(c.u8()?)?,
            theta: f64::from_bits(c.u64()?),
            max_frames: c.u32()?,
        },
        other => return Err(ProtoError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Decode a response frame payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let resp = match op {
        OP_NETWORK_REPLY => {
            let epoch = c.u64()?;
            let nodes = c.u32()?;
            let nan_pairs = c.u64()?;
            let count = c.u32()? as usize;
            let mut edges = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                edges.push((c.u32()?, c.u32()?));
            }
            Response::Network {
                epoch,
                nodes,
                nan_pairs,
                edges,
            }
        }
        OP_TOP_K_REPLY => {
            let epoch = c.u64()?;
            let nan_pairs = c.u64()?;
            let count = c.u32()? as usize;
            let mut edges = Vec::with_capacity(count.min(1 << 20));
            for _ in 0..count {
                edges.push((c.u32()?, c.u32()?, f64::from_bits(c.u64()?)));
            }
            Response::TopK {
                epoch,
                nan_pairs,
                edges,
            }
        }
        OP_STATS_REPLY => Response::Stats(StatsReply {
            epoch: c.u64()?,
            published: c.u64()?,
            series: c.u32()?,
            windows: c.u32()?,
            requests: c.u64()?,
            errors: c.u64()?,
            connections: c.u64()?,
            cache_hits: c.u64()?,
            cache_misses: c.u64()?,
            cache_evictions: c.u64()?,
        }),
        OP_DELTA_REPLY => {
            let epoch = c.u64()?;
            let nodes = c.u32()?;
            let nan_pairs = c.u64()?;
            let appeared_count = c.u32()? as usize;
            let mut appeared = Vec::with_capacity(appeared_count.min(1 << 20));
            for _ in 0..appeared_count {
                appeared.push((c.u32()?, c.u32()?));
            }
            let vanished_count = c.u32()? as usize;
            let mut vanished = Vec::with_capacity(vanished_count.min(1 << 20));
            for _ in 0..vanished_count {
                vanished.push((c.u32()?, c.u32()?));
            }
            Response::Delta(DeltaReply {
                epoch,
                nodes,
                nan_pairs,
                appeared,
                vanished,
            })
        }
        OP_ERROR => {
            let code = ErrorCode::from_wire(c.u8()?)?;
            let len = c.u32()? as usize;
            let bytes = c.take(len)?;
            let message = String::from_utf8(bytes.to_vec())
                .map_err(|_| ProtoError::BadPayload("error message is not UTF-8".to_string()))?;
            Response::Error { code, message }
        }
        other => return Err(ProtoError::UnknownOpcode(other)),
    };
    c.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Network {
                method: Method::Exact,
                last_windows: 0,
                theta: 0.7,
            },
            Request::Network {
                method: Method::Approximate,
                last_windows: 12,
                theta: -0.25,
            },
            Request::TopK {
                method: Method::Exact,
                last_windows: 3,
                k: 10,
            },
            Request::Stats,
            Request::SubscribeDeltas {
                method: Method::Approximate,
                theta: 0.85,
                max_frames: 4,
            },
        ];
        for req in &reqs {
            let payload = encode_request(req);
            assert_eq!(&decode_request(&payload).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip_bit_exact() {
        let resps = [
            Response::Network {
                epoch: 7,
                nodes: 5,
                nan_pairs: 2,
                edges: vec![(0, 1), (2, 4)],
            },
            Response::TopK {
                epoch: 9,
                nan_pairs: 0,
                edges: vec![(1, 3, 0.9999999999999999), (0, 2, -0.5)],
            },
            Response::Stats(StatsReply {
                epoch: 3,
                published: 3,
                series: 8,
                windows: 6,
                requests: 100,
                errors: 1,
                connections: 4,
                cache_hits: 40,
                cache_misses: 6,
                cache_evictions: 2,
            }),
            Response::Delta(DeltaReply {
                epoch: 12,
                nodes: 6,
                nan_pairs: 1,
                appeared: vec![(0, 3), (2, 5)],
                vanished: vec![(1, 4)],
            }),
            Response::Delta(DeltaReply::default()),
            Response::Error {
                code: ErrorCode::Query,
                message: "theta out of range".to_string(),
            },
        ];
        for resp in &resps {
            let payload = encode_response(resp);
            assert_eq!(&decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_bodies_are_typed_errors() {
        // Truncated network request body.
        assert!(matches!(
            decode_request(&[OP_NETWORK, 0, 1, 2]),
            Err(ProtoError::BadPayload(_))
        ));
        // Trailing garbage after a stats request.
        assert!(matches!(
            decode_request(&[OP_STATS, 0xFF]),
            Err(ProtoError::BadPayload(_))
        ));
        // Unknown opcode.
        assert!(matches!(
            decode_request(&[0x42]),
            Err(ProtoError::UnknownOpcode(0x42))
        ));
        // Bad method byte.
        let mut bad = encode_request(&Request::TopK {
            method: Method::Exact,
            last_windows: 1,
            k: 1,
        });
        bad[1] = 9;
        assert!(matches!(
            decode_request(&bad),
            Err(ProtoError::BadPayload(_))
        ));
    }

    #[test]
    fn frame_reader_flags_truncation_and_oversize() {
        use std::io::Cursor as IoCursor;

        // Clean close at a frame boundary.
        let mut empty = IoCursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_frame(&mut empty, MAX_REQUEST_FRAME),
            Err(ProtoError::Closed)
        ));

        // EOF mid-prefix.
        let mut cut = IoCursor::new(vec![3u8, 0]);
        assert!(matches!(
            read_frame(&mut cut, MAX_REQUEST_FRAME),
            Err(ProtoError::Truncated)
        ));

        // EOF mid-body.
        let mut body_cut = IoCursor::new(vec![5u8, 0, 0, 0, 1, 2]);
        assert!(matches!(
            read_frame(&mut body_cut, MAX_REQUEST_FRAME),
            Err(ProtoError::Truncated)
        ));

        // Hostile length prefix.
        let mut huge = IoCursor::new(u32::MAX.to_le_bytes().to_vec());
        assert!(matches!(
            read_frame(&mut huge, MAX_REQUEST_FRAME),
            Err(ProtoError::Oversized { .. })
        ));

        // A well-formed frame round-trips.
        let mut wire = Vec::new();
        write_frame(&mut wire, &[OP_STATS]).unwrap();
        let mut ok = IoCursor::new(wire);
        assert_eq!(
            read_frame(&mut ok, MAX_REQUEST_FRAME).unwrap().unwrap(),
            vec![OP_STATS]
        );
    }
}
