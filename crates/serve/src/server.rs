//! The blocking TCP query server: an accept thread plus one thread per
//! connection, all answering from the shared [`QueryEngine`].
//!
//! Fault policy, pinned by the `serve_faults` suite:
//!
//! * a malformed body or unknown opcode in a *complete* frame is answered
//!   with a typed `0xEE` error frame and the connection keeps serving —
//!   framing stays in sync because the bad frame was fully consumed;
//! * a hostile length prefix (oversized) or a mid-frame truncation/stall
//!   desyncs the framing, so the server answers if it can and closes that
//!   connection — other connections are unaffected;
//! * a panic during query evaluation is caught at the connection boundary
//!   and answered as an internal error; no worker thread is left hung.
//!
//! Shutdown is cooperative: connections poll an atomic flag between frames
//! (reads use a short timeout), the accept loop polls it between accepts,
//! and [`ServerHandle::shutdown`] joins every thread before returning.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use tsubasa_core::plan::PlanMethod;

use crate::proto::{
    decode_request, encode_response, read_frame, write_frame, DeltaReply, ErrorCode, Method,
    ProtoError, Request, Response, StatsReply, MAX_REQUEST_FRAME,
};
use crate::query::{QueryEngine, QueryError, UnavailableReason};

/// How often blocked reads and the accept loop wake to poll the shutdown
/// flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Monotonic serving counters, shared by every connection thread.
#[derive(Debug, Default)]
pub struct ServerStats {
    requests: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
}

impl ServerStats {
    /// Frames answered (successes and error frames alike).
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Frames answered with an error frame.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Connections accepted since start.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }
}

/// A running server. Dropping the handle shuts the server down and joins
/// every thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<QueryEngine>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    accept: Option<thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine answering this server's queries.
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }

    /// Serving counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stop accepting, drain every connection thread, and return once all
    /// threads have exited.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .conns
            .lock()
            .expect("connection registry poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `engine` on
/// background threads.
pub fn start(engine: Arc<QueryEngine>, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let stats = Arc::new(ServerStats::default());
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let engine = Arc::clone(&engine);
        let stats = Arc::clone(&stats);
        let shutdown = Arc::clone(&shutdown);
        let conns = Arc::clone(&conns);
        thread::spawn(move || {
            while !shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        stats.connections.fetch_add(1, Ordering::Relaxed);
                        let engine = Arc::clone(&engine);
                        let stats = Arc::clone(&stats);
                        let shutdown = Arc::clone(&shutdown);
                        let handle = thread::spawn(move || {
                            handle_connection(stream, &engine, &stats, &shutdown);
                        });
                        conns
                            .lock()
                            .expect("connection registry poisoned")
                            .push(handle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(POLL_INTERVAL);
                    }
                    Err(_) => thread::sleep(POLL_INTERVAL),
                }
            }
        })
    };

    Ok(ServerHandle {
        addr: local,
        engine,
        stats,
        shutdown,
        accept: Some(accept),
        conns,
    })
}

fn handle_connection(
    mut stream: TcpStream,
    engine: &QueryEngine,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) {
    // Accepted sockets may inherit the listener's non-blocking flag on some
    // platforms; the frame reader expects timeout-based blocking reads.
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));

    while !shutdown.load(Ordering::Relaxed) {
        let payload = match read_frame(&mut stream, MAX_REQUEST_FRAME) {
            Ok(None) => continue, // idle: poll the shutdown flag
            Ok(Some(payload)) => payload,
            Err(ProtoError::Closed) => break,
            Err(ProtoError::BadPayload(msg)) => {
                // An empty frame: fully consumed, framing still in sync.
                if answer_error(&mut stream, stats, ErrorCode::Malformed, &msg).is_err() {
                    break;
                }
                continue;
            }
            Err(ProtoError::Oversized { len, max }) => {
                // The prefix itself is garbage; we cannot resync, so answer
                // (best effort) and close this connection.
                let msg = format!("frame length {len} exceeds maximum {max}");
                let _ = answer_error(&mut stream, stats, ErrorCode::Malformed, &msg);
                break;
            }
            // Truncated / Stalled / Io: the transport is gone or desynced.
            Err(_) => break,
        };

        stats.requests.fetch_add(1, Ordering::Relaxed);
        let response = match decode_request(&payload) {
            Ok(Request::SubscribeDeltas {
                method,
                theta,
                max_frames,
            }) => {
                // The one multi-frame exchange: stream the baseline and the
                // requested number of delta frames inline, then fall back to
                // request–response on this same connection.
                match serve_subscription(
                    &mut stream,
                    engine,
                    stats,
                    shutdown,
                    method,
                    theta,
                    max_frames,
                ) {
                    Ok(()) => continue,
                    Err(_) => break,
                }
            }
            Ok(request) => {
                match catch_unwind(AssertUnwindSafe(|| dispatch(engine, stats, &request))) {
                    Ok(response) => response,
                    Err(_) => Response::Error {
                        code: ErrorCode::Internal,
                        message: "query evaluation panicked".to_string(),
                    },
                }
            }
            Err(ProtoError::UnknownOpcode(op)) => Response::Error {
                code: ErrorCode::UnknownOpcode,
                message: format!("opcode 0x{op:02x}"),
            },
            Err(e) => Response::Error {
                code: ErrorCode::Malformed,
                message: e.to_string(),
            },
        };
        if matches!(response, Response::Error { .. }) {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(&mut stream, &encode_response(&response)).is_err() {
            break;
        }
    }
}

/// Count and send an error frame for a request that never reached dispatch.
fn answer_error(
    stream: &mut TcpStream,
    stats: &ServerStats,
    code: ErrorCode,
    message: &str,
) -> io::Result<()> {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    stats.errors.fetch_add(1, Ordering::Relaxed);
    let response = Response::Error {
        code,
        message: message.to_string(),
    };
    write_frame(stream, &encode_response(&response))
}

/// Serve one `subscribe_deltas` exchange: a baseline network frame for the
/// latest epoch, then exactly `max_frames` delta frames — one per newly
/// observed epoch publication (publications landing between observations
/// collapse into one cumulative delta against the last streamed epoch).
///
/// Returns `Err` only when the transport broke (the caller closes the
/// connection); query-level rejections are answered with an error frame and
/// end the exchange with `Ok`, leaving the connection serving. A server
/// shutdown while waiting for the next epoch ends the stream early — the
/// subscriber sees the connection close, the repo-wide signal for "server
/// gone".
fn serve_subscription(
    stream: &mut TcpStream,
    engine: &QueryEngine,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    method: Method,
    theta: f64,
    max_frames: u32,
) -> io::Result<()> {
    let fail = |stats: &ServerStats, stream: &mut TcpStream, response: Response| {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        write_frame(stream, &encode_response(&response))
    };
    if max_frames == 0 {
        return fail(
            stats,
            stream,
            Response::Error {
                code: ErrorCode::Query,
                message: "subscribe_deltas needs max_frames >= 1".to_string(),
            },
        );
    }

    // Baseline: the full edge list of the latest epoch, exactly as a network
    // request would answer it.
    let (mut last_epoch, mut last_edges) = match engine.network(plan_method(method), 0, theta) {
        Ok(ok) => ok,
        Err(e) => return fail(stats, stream, error_response(e)),
    };
    let baseline = Response::Network {
        epoch: last_epoch,
        nodes: last_edges.node_count() as u32,
        nan_pairs: last_edges.nan_pair_count() as u64,
        edges: last_edges
            .edges()
            .iter()
            .map(|&(i, j)| (i as u32, j as u32))
            .collect(),
    };
    write_frame(stream, &encode_response(&baseline))?;

    for _ in 0..max_frames {
        // Wait for the next epoch publication (or shutdown).
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "server shutting down",
                ));
            }
            let latest = engine.store().latest().map(|e| e.id()).unwrap_or(0);
            if latest > last_epoch {
                break;
            }
            thread::sleep(POLL_INTERVAL);
        }
        let (epoch, edges) = match engine.network(plan_method(method), 0, theta) {
            Ok(ok) => ok,
            Err(e) => return fail(stats, stream, error_response(e)),
        };
        // Ordered merge-diff of the two ascending edge lists.
        let mut delta = DeltaReply {
            epoch,
            nodes: edges.node_count() as u32,
            nan_pairs: edges.nan_pair_count() as u64,
            appeared: Vec::new(),
            vanished: Vec::new(),
        };
        let (old, new) = (last_edges.edges(), edges.edges());
        let (mut a, mut b) = (0usize, 0usize);
        while a < old.len() || b < new.len() {
            match (old.get(a), new.get(b)) {
                (Some(&o), Some(&n)) if o == n => {
                    a += 1;
                    b += 1;
                }
                (Some(&o), Some(&n)) if o < n => {
                    delta.vanished.push((o.0 as u32, o.1 as u32));
                    a += 1;
                }
                (Some(_), Some(&n)) => {
                    delta.appeared.push((n.0 as u32, n.1 as u32));
                    b += 1;
                }
                (Some(&o), None) => {
                    delta.vanished.push((o.0 as u32, o.1 as u32));
                    a += 1;
                }
                (None, Some(&n)) => {
                    delta.appeared.push((n.0 as u32, n.1 as u32));
                    b += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        write_frame(stream, &encode_response(&Response::Delta(delta)))?;
        last_epoch = epoch;
        last_edges = edges;
    }
    Ok(())
}

fn plan_method(method: Method) -> PlanMethod {
    match method {
        Method::Exact => PlanMethod::Exact,
        Method::Approximate => PlanMethod::Approximate,
    }
}

fn error_response(e: QueryError) -> Response {
    match e {
        QueryError::Unavailable(reason) => Response::Error {
            code: match reason {
                UnavailableReason::NoEpoch => ErrorCode::UnavailableNoEpoch,
                UnavailableReason::NoExact => ErrorCode::UnavailableNoExact,
                UnavailableReason::NoApprox => ErrorCode::UnavailableNoApprox,
            },
            message: reason.to_string(),
        },
        QueryError::Rejected(err) => Response::Error {
            code: ErrorCode::Query,
            message: err.to_string(),
        },
    }
}

fn dispatch(engine: &QueryEngine, stats: &ServerStats, request: &Request) -> Response {
    match request {
        Request::Network {
            method,
            last_windows,
            theta,
        } => match engine.network(plan_method(*method), *last_windows, *theta) {
            Ok((epoch, edges)) => Response::Network {
                epoch,
                nodes: edges.node_count() as u32,
                nan_pairs: edges.nan_pair_count() as u64,
                edges: edges
                    .edges()
                    .iter()
                    .map(|&(i, j)| (i as u32, j as u32))
                    .collect(),
            },
            Err(e) => error_response(e),
        },
        Request::TopK {
            method,
            last_windows,
            k,
        } => match engine.top_k(plan_method(*method), *last_windows, *k) {
            Ok((epoch, ranked)) => Response::TopK {
                epoch,
                nan_pairs: ranked.nan_pairs as u64,
                edges: ranked
                    .edges
                    .iter()
                    .map(|e| (e.i as u32, e.j as u32, e.corr))
                    .collect(),
            },
            Err(e) => error_response(e),
        },
        Request::Stats => Response::Stats(stats_reply(engine, stats)),
        // Subscriptions are multi-frame and handled inline by the connection
        // loop before dispatch; reaching here is a server bug.
        Request::SubscribeDeltas { .. } => Response::Error {
            code: ErrorCode::Internal,
            message: "subscribe_deltas must be handled by the connection loop".to_string(),
        },
    }
}

fn stats_reply(engine: &QueryEngine, stats: &ServerStats) -> StatsReply {
    let latest = engine.store().latest();
    let cache = engine.cache().stats();
    StatsReply {
        epoch: latest.as_ref().map(|e| e.id()).unwrap_or(0),
        published: engine.store().published(),
        series: latest
            .as_ref()
            .map(|e| e.series_count() as u32)
            .unwrap_or(0),
        windows: latest
            .as_ref()
            .map(|e| e.window_count() as u32)
            .unwrap_or(0),
        requests: stats.requests(),
        errors: stats.errors(),
        connections: stats.connections(),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
    }
}
