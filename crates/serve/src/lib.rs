//! # tsubasa-serve
//!
//! The serving layer of the TSUBASA reproduction: epoch-published sketches,
//! a plan cache, and a concurrent TCP query server.
//!
//! The paper's deployment story is a climate-network service that keeps
//! ingesting observations while analysts query the current network. This
//! crate makes that concrete with three pieces:
//!
//! * [`EpochStore`] / [`EpochIngest`] — every completed basic window
//!   freezes the sketches into an immutable **epoch** published by an
//!   atomic `Arc` swap; readers never block writers and every response
//!   names the epoch it was computed from;
//! * [`PlanCache`] — built [`tsubasa_core::QueryPlan`]s /
//!   [`tsubasa_dft::ApproxPlan`]s are pure functions of
//!   `(epoch, windows, method)`, so repeated query windows reuse them via
//!   an LRU keyed by [`tsubasa_core::plan::PlanKey`];
//! * [`server`] / [`ServeClient`] — a std-only length-prefixed binary
//!   protocol over TCP; a blocking server fans each query over the shared
//!   [`tsubasa_parallel::WorkerPool`] through streamed tile sinks, so
//!   responses are edge lists and never dense matrices.
//!
//! Every served answer is bit-identical to the corresponding serial library
//! call against the answering epoch's sketch — the `serve_concurrency`,
//! `serve_faults`, and `serve_plan_cache` suites at the workspace root pin
//! that, along with the server's fault tolerance.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod cache;
pub mod client;
pub mod epoch;
pub mod proto;
pub mod query;
pub mod server;

pub use cache::{CacheStats, CachedPlan, PlanCache};
pub use client::{ClientError, NetworkReply, ServeClient, TopKReply};
pub use epoch::{mirror_sketches_to_pile, Epoch, EpochIngest, EpochStore};
pub use proto::{DeltaReply, ErrorCode, Method, ProtoError, Request, Response, StatsReply};
pub use query::{QueryEngine, QueryError, UnavailableReason};
pub use server::{start, ServerHandle, ServerStats};
