//! Query evaluation against a published epoch: plan-cache lookup, then a
//! partitioned streaming sweep fanned out over a [`WorkerPool`].
//!
//! Every result is **bit-identical** to the serial library call against the
//! same epoch's sketch:
//!
//! * exact network ≡ [`tsubasa_core::exact::network_streamed_aligned`] — no
//!   pruning, strict `c > θ` rule, exhaustive NaN audit;
//! * exact top-k ≡ [`tsubasa_core::exact::top_k_aligned`] — Equation 4
//!   tile pruning, total [`f64::total_cmp`] ranking;
//! * approximate network ≡ [`ApproxPlan::network_streamed`] — Equation 4
//!   radius predicate with tile pruning;
//! * approximate top-k ≡ [`ApproxPlan::top_k`].
//!
//! The equivalence rests on the PR 6 invariant (tile and run boundaries
//! never change any pair's arithmetic) plus ordered merging: runs are
//! contiguous ascending pair ranges, so absorbing per-run edge lists in run
//! order reproduces the serial emission order, and the top-k heap merge is
//! order-insensitive by construction. The `serve_concurrency` suite pins
//! this bit-for-bit across worker counts.

use std::ops::Range;
use std::sync::Arc;

use tsubasa_core::error::Error;
use tsubasa_core::plan::{even_sizes, CorrView, PlanKey, PlanMethod};
use tsubasa_core::runner::Job;
use tsubasa_core::source::CorrSource;
use tsubasa_core::sweep::{
    sweep_run, CorrelationBounds, EdgeList, EdgeSink, TopK, TopKSink, DEFAULT_TILE_PAIRS,
};
use tsubasa_core::QueryPlan;
use tsubasa_dft::plan::RadiusEdgeSink;
use tsubasa_dft::ApproxPlan;
use tsubasa_parallel::WorkerPool;
use tsubasa_storage::pile::SketchPile;
use tsubasa_stream::EpochSketches;

use crate::cache::{CachedPlan, PlanCache};
use crate::epoch::{Epoch, EpochStore};

/// Why a query could not be answered *yet* — distinct from a rejection:
/// nothing about the request is wrong, the serving state just cannot satisfy
/// it. Each reason maps to its own protocol error code so clients can react
/// (wait for an epoch vs. switch method) without parsing prose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnavailableReason {
    /// No epoch has been published yet.
    NoEpoch,
    /// The epoch carries no exact-capable source (no exact sketch, and no
    /// pile coverage of statistics + pair correlations).
    NoExact,
    /// The epoch carries no approximate-capable source (no DFT comparator,
    /// and no pile coverage of statistics + pair estimates).
    NoApprox,
}

impl UnavailableReason {
    /// The reason reported when `method` has no answering source.
    pub fn for_method(method: PlanMethod) -> Self {
        match method {
            PlanMethod::Exact => UnavailableReason::NoExact,
            PlanMethod::Approximate => UnavailableReason::NoApprox,
        }
    }
}

impl std::fmt::Display for UnavailableReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnavailableReason::NoEpoch => write!(f, "no epoch published yet"),
            UnavailableReason::NoExact => write!(f, "epoch carries no exact source"),
            UnavailableReason::NoApprox => write!(f, "epoch carries no approximate source"),
        }
    }
}

/// Failures answering a query.
#[derive(Debug)]
pub enum QueryError {
    /// The server cannot answer yet: no epoch published, or the epoch
    /// carries no source for the requested method.
    Unavailable(UnavailableReason),
    /// The query parameters were rejected (bad θ, window out of range, …).
    Rejected(Error),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Unavailable(reason) => write!(f, "unavailable: {reason}"),
            QueryError::Rejected(e) => write!(f, "rejected: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<Error> for QueryError {
    fn from(e: Error) -> Self {
        QueryError::Rejected(e)
    }
}

/// Resolve a trailing-window request against a source answering `method`
/// over `available` basic windows. `0` selects every available window; a
/// request for more windows than exist is rejected, never silently clamped.
/// Zero available windows reports the method as unavailable — the source
/// exists but cannot answer anything yet.
pub fn resolve_windows(
    available: usize,
    last_windows: u32,
    method: PlanMethod,
) -> Result<Range<usize>, QueryError> {
    if available == 0 {
        return Err(QueryError::Unavailable(UnavailableReason::for_method(
            method,
        )));
    }
    let lw = last_windows as usize;
    if lw == 0 {
        return Ok(0..available);
    }
    if lw > available {
        return Err(QueryError::Rejected(Error::SketchMismatch {
            requested: format!("trailing {lw} basic windows"),
            available: format!("{available} basic windows"),
        }));
    }
    Ok(available - lw..available)
}

/// Contiguous ascending pair runs of near-equal size, one per worker.
fn partition_runs(pair_count: usize, parts: usize) -> Vec<Range<usize>> {
    let mut start = 0usize;
    even_sizes(pair_count, parts)
        .into_iter()
        .filter(|&s| s > 0)
        .map(|s| {
            let run = start..start + s;
            start += s;
            run
        })
        .collect()
}

/// The serving-side query engine: answers network / top-k requests from the
/// latest published epoch, reusing built plans through a [`PlanCache`] and
/// fanning the sweep over a shared [`WorkerPool`].
///
/// All methods take `&self`; the engine is shared across connection threads
/// behind an `Arc`.
#[derive(Debug)]
pub struct QueryEngine {
    store: Arc<EpochStore>,
    cache: Arc<PlanCache>,
    pool: Arc<WorkerPool>,
}

impl QueryEngine {
    /// An engine answering from `store`, caching plans in `cache`, sweeping
    /// on `pool`.
    pub fn new(store: Arc<EpochStore>, cache: Arc<PlanCache>, pool: Arc<WorkerPool>) -> Self {
        Self { store, cache, pool }
    }

    /// The epoch store answered from.
    pub fn store(&self) -> &Arc<EpochStore> {
        &self.store
    }

    /// The plan cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The worker pool sweeps fan out over.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Publish the next epoch and drop cached plans for epochs that rolled
    /// out of retention.
    pub fn publish(&self, sketches: EpochSketches) -> tsubasa_core::error::Result<Arc<Epoch>> {
        let epoch = self.store.publish_sketches(sketches)?;
        if let Some(oldest) = self.store.oldest_retained() {
            self.cache.invalidate_below(oldest);
        }
        Ok(epoch)
    }

    /// Publish the next epoch from a memory-mapped pile snapshot, with the
    /// same cache invalidation as [`QueryEngine::publish`].
    pub fn publish_pile(&self, pile: SketchPile) -> tsubasa_core::error::Result<Arc<Epoch>> {
        let epoch = self.store.publish_pile(pile)?;
        if let Some(oldest) = self.store.oldest_retained() {
            self.cache.invalidate_below(oldest);
        }
        Ok(epoch)
    }

    fn latest(&self) -> Result<Arc<Epoch>, QueryError> {
        self.store
            .latest()
            .ok_or(QueryError::Unavailable(UnavailableReason::NoEpoch))
    }

    /// Thresholded network over the trailing windows of the latest epoch.
    /// Returns the answering epoch's id alongside the edge list.
    pub fn network(
        &self,
        method: PlanMethod,
        last_windows: u32,
        theta: f64,
    ) -> Result<(u64, EdgeList), QueryError> {
        let epoch = self.latest()?;
        let edges = self.network_on(&epoch, method, last_windows, theta)?;
        Ok((epoch.id(), edges))
    }

    /// Top-k strongest pairs over the trailing windows of the latest epoch.
    /// Returns the answering epoch's id alongside the ranked edges.
    pub fn top_k(
        &self,
        method: PlanMethod,
        last_windows: u32,
        k: u32,
    ) -> Result<(u64, TopK), QueryError> {
        let epoch = self.latest()?;
        let ranked = self.top_k_on(&epoch, method, last_windows, k)?;
        Ok((epoch.id(), ranked))
    }

    /// [`QueryEngine::network`] against a specific epoch (used by tests to
    /// re-check a response against the snapshot that produced it).
    pub fn network_on(
        &self,
        epoch: &Epoch,
        method: PlanMethod,
        last_windows: u32,
        theta: f64,
    ) -> Result<EdgeList, QueryError> {
        if !(-1.0..=1.0).contains(&theta) {
            return Err(QueryError::Rejected(Error::InvalidThreshold(theta)));
        }
        let source =
            epoch
                .source(method)
                .ok_or(QueryError::Unavailable(UnavailableReason::for_method(
                    method,
                )))?;
        let windows = resolve_windows(source.window_count(method), last_windows, method)?;
        let n = source.series_count();
        match method {
            PlanMethod::Exact => {
                if n < 2 {
                    return Ok(EdgeSink::new(theta).finish(n));
                }
                let (plan, _bounds) = self.exact_plan(epoch.id(), source.as_ref(), &windows)?;
                let table = source
                    .full_table(windows, PlanMethod::Exact)?
                    .ok_or_else(chunked_source_error)?;
                // Exact network: no pruning, mirroring the serial streamed
                // path's exhaustive NaN audit.
                Ok(self.sweep_exact_network(&plan, table.view(), n, theta))
            }
            PlanMethod::Approximate => {
                if n < 2 {
                    return Ok(RadiusEdgeSink::new(theta)?.finish(n));
                }
                let (plan, bounds) = self.approx_plan(epoch.id(), source.as_ref(), &windows)?;
                let runs = partition_runs(plan.pair_count(), self.pool.size());
                let mut sinks = runs
                    .iter()
                    .map(|_| RadiusEdgeSink::new(theta))
                    .collect::<tsubasa_core::error::Result<Vec<_>>>()?;
                let plan_ref: &ApproxPlan = &plan;
                let bounds_ref: &CorrelationBounds = &bounds;
                let jobs: Vec<Job<'_>> = runs
                    .into_iter()
                    .zip(sinks.iter_mut())
                    .map(|(run, sink)| {
                        Box::new(move || {
                            plan_ref.sweep_run(Some(bounds_ref), run, DEFAULT_TILE_PAIRS, sink);
                        }) as Job<'_>
                    })
                    .collect();
                self.pool.run_jobs(jobs);
                Ok(merge_edges(sinks.into_iter().map(|s| s.finish(n))))
            }
        }
    }

    /// [`QueryEngine::top_k`] against a specific epoch.
    pub fn top_k_on(
        &self,
        epoch: &Epoch,
        method: PlanMethod,
        last_windows: u32,
        k: u32,
    ) -> Result<TopK, QueryError> {
        let k = k as usize;
        let source =
            epoch
                .source(method)
                .ok_or(QueryError::Unavailable(UnavailableReason::for_method(
                    method,
                )))?;
        let windows = resolve_windows(source.window_count(method), last_windows, method)?;
        let n = source.series_count();
        if n < 2 {
            return Ok(TopKSink::new(k).finish());
        }
        match method {
            PlanMethod::Exact => {
                let (plan, bounds) = self.exact_plan(epoch.id(), source.as_ref(), &windows)?;
                let table = source
                    .full_table(windows, PlanMethod::Exact)?
                    .ok_or_else(chunked_source_error)?;
                Ok(self.sweep_exact_top_k(&plan, table.view(), &bounds, n, k))
            }
            PlanMethod::Approximate => {
                let (plan, bounds) = self.approx_plan(epoch.id(), source.as_ref(), &windows)?;
                let runs = partition_runs(plan.pair_count(), self.pool.size());
                let mut sinks: Vec<TopKSink> = runs.iter().map(|_| TopKSink::new(k)).collect();
                let plan_ref: &ApproxPlan = &plan;
                let bounds_ref: &CorrelationBounds = &bounds;
                let jobs: Vec<Job<'_>> = runs
                    .into_iter()
                    .zip(sinks.iter_mut())
                    .map(|(run, sink)| {
                        Box::new(move || {
                            plan_ref.sweep_run(Some(bounds_ref), run, DEFAULT_TILE_PAIRS, sink);
                        }) as Job<'_>
                    })
                    .collect();
                self.pool.run_jobs(jobs);
                Ok(merge_top_k(k, sinks))
            }
        }
    }

    /// The exact plan for an epoch's source, built from the source's
    /// window-statistics rows ([`QueryPlan::from_window_stats`] — numerically
    /// identical tables whichever backend the stats come from) and cached
    /// under the `(epoch, windows, method)` key.
    fn exact_plan(
        &self,
        epoch_id: u64,
        source: &dyn CorrSource,
        windows: &Range<usize>,
    ) -> Result<(Arc<QueryPlan>, Arc<CorrelationBounds>), QueryError> {
        let key = PlanKey::new(epoch_id, windows.clone(), PlanMethod::Exact);
        let cached = self.cache.get_or_build(key, || {
            let stats = source.series_stats(windows.clone())?;
            let plan = QueryPlan::from_window_stats(&stats)?;
            let bounds = CorrelationBounds::from_plan(&plan);
            Ok(CachedPlan::Exact {
                plan: Arc::new(plan),
                bounds: Arc::new(bounds),
            })
        })?;
        match cached {
            CachedPlan::Exact { plan, bounds } => Ok((plan, bounds)),
            // Impossible: the key encodes the method.
            CachedPlan::Approx { .. } => Err(QueryError::Rejected(Error::Storage(
                "plan cache returned a mismatched method".to_string(),
            ))),
        }
    }

    /// The approximate plan for an epoch's source
    /// ([`ApproxPlan::from_source`] — Eq. 3 estimates served through the
    /// [`tsubasa_core::source::EstSource`] hook, so a pile's stored
    /// `PairEsts` rows build the same plan as an in-memory comparator),
    /// cached under the `(epoch, windows, method)` key.
    fn approx_plan(
        &self,
        epoch_id: u64,
        source: &dyn CorrSource,
        windows: &Range<usize>,
    ) -> Result<(Arc<ApproxPlan>, Arc<CorrelationBounds>), QueryError> {
        let key = PlanKey::new(epoch_id, windows.clone(), PlanMethod::Approximate);
        let cached = self.cache.get_or_build(key, || {
            let plan = ApproxPlan::from_source(source, windows.clone())?;
            let bounds = plan.tile_bounds();
            Ok(CachedPlan::Approx {
                plan: Arc::new(plan),
                bounds: Arc::new(bounds),
            })
        })?;
        match cached {
            CachedPlan::Approx { plan, bounds } => Ok((plan, bounds)),
            CachedPlan::Exact { .. } => Err(QueryError::Rejected(Error::Storage(
                "plan cache returned a mismatched method".to_string(),
            ))),
        }
    }

    /// Fan an exact thresholded-network sweep over the worker pool. The view
    /// may borrow an in-memory sketch table or a mapped pile segment — the
    /// sweep is identical either way.
    fn sweep_exact_network(
        &self,
        plan: &QueryPlan,
        view: CorrView<'_>,
        n: usize,
        theta: f64,
    ) -> EdgeList {
        let runs = partition_runs(n * (n - 1) / 2, self.pool.size());
        let mut sinks: Vec<EdgeSink> = runs.iter().map(|_| EdgeSink::new(theta)).collect();
        let jobs: Vec<Job<'_>> = runs
            .into_iter()
            .zip(sinks.iter_mut())
            .map(|(run, sink)| {
                // Exact network: no pruning, mirroring the serial streamed
                // path's exhaustive NaN audit.
                Box::new(move || {
                    sweep_run(plan, &view, None, run, DEFAULT_TILE_PAIRS, sink);
                }) as Job<'_>
            })
            .collect();
        self.pool.run_jobs(jobs);
        merge_edges(sinks.into_iter().map(|s| s.finish(n)))
    }

    /// Fan an exact top-k sweep (Equation 4 tile pruning) over the pool.
    fn sweep_exact_top_k(
        &self,
        plan: &QueryPlan,
        view: CorrView<'_>,
        bounds: &CorrelationBounds,
        n: usize,
        k: usize,
    ) -> TopK {
        let runs = partition_runs(n * (n - 1) / 2, self.pool.size());
        let mut sinks: Vec<TopKSink> = runs.iter().map(|_| TopKSink::new(k)).collect();
        let jobs: Vec<Job<'_>> = runs
            .into_iter()
            .zip(sinks.iter_mut())
            .map(|(run, sink)| {
                Box::new(move || {
                    sweep_run(plan, &view, Some(bounds), run, DEFAULT_TILE_PAIRS, sink);
                }) as Job<'_>
            })
            .collect();
        self.pool.run_jobs(jobs);
        merge_top_k(k, sinks)
    }
}

/// Epoch sources (in-memory sketches, mapped piles) always serve full pair
/// tables; hitting a chunked-only source here means a backend was published
/// that the serving path does not support.
fn chunked_source_error() -> QueryError {
    QueryError::Rejected(Error::Storage(
        "epoch source serves no full pair table".to_string(),
    ))
}

/// Merge per-run edge lists in run order. Runs are contiguous ascending pair
/// ranges, so appending in order reproduces the serial emission order
/// exactly.
fn merge_edges(parts: impl Iterator<Item = EdgeList>) -> EdgeList {
    let mut parts = parts;
    let mut merged = parts.next().expect("at least one run");
    for part in parts {
        merged.absorb(part);
    }
    merged
}

/// Merge per-run top-k heaps, then rank. The merged heap holds the k best
/// of the union, identical to the serial single-sink heap.
fn merge_top_k(_k: usize, sinks: Vec<TopKSink>) -> TopK {
    let mut sinks = sinks.into_iter();
    let mut merged = sinks.next().expect("at least one run");
    for sink in sinks {
        merged.absorb(sink);
    }
    merged.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::exact;
    use tsubasa_core::SeriesCollection;
    use tsubasa_dft::sketch::{DftSketchSet, Transform};

    fn engine(workers: usize) -> (QueryEngine, DftSketchSet) {
        let c = SeriesCollection::from_rows(
            (0..6)
                .map(|s| {
                    (0..120)
                        .map(|i| {
                            (i as f64 * 0.11 + s as f64 * 0.7).sin()
                                + ((i * (s + 2)) % 11) as f64 * 0.05
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        let dft = DftSketchSet::build(&c, 24, 24, Transform::Naive).unwrap();
        let store = Arc::new(EpochStore::new(4));
        store
            .publish(Some(dft.base().clone()), Some(dft.clone()))
            .unwrap();
        let eng = QueryEngine::new(
            store,
            Arc::new(PlanCache::new(8)),
            Arc::new(WorkerPool::new(workers)),
        );
        (eng, dft)
    }

    fn assert_edges_eq(a: &EdgeList, b: &EdgeList) {
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edges(), b.edges());
        assert_eq!(a.nan_pair_count(), b.nan_pair_count());
    }

    #[test]
    fn parallel_queries_match_serial_bit_for_bit() {
        for workers in [1usize, 3] {
            let (eng, dft) = engine(workers);
            let base = dft.base();

            let (epoch, net) = eng.network(PlanMethod::Exact, 0, 0.2).unwrap();
            assert_eq!(epoch, 1);
            let serial =
                exact::network_streamed_aligned(base, 0..base.window_count(), 0.2).unwrap();
            assert_edges_eq(&net, &serial);

            let (_, trailing) = eng.network(PlanMethod::Exact, 2, 0.2).unwrap();
            let serial = exact::network_streamed_aligned(
                base,
                base.window_count() - 2..base.window_count(),
                0.2,
            )
            .unwrap();
            assert_edges_eq(&trailing, &serial);

            let (_, top) = eng.top_k(PlanMethod::Exact, 0, 7).unwrap();
            let serial = exact::top_k_aligned(base, 0..base.window_count(), 7).unwrap();
            assert_eq!(top.edges, serial.edges);

            let plan = ApproxPlan::build(&dft, 0..dft.window_count()).unwrap();
            let (_, net) = eng.network(PlanMethod::Approximate, 0, 0.2).unwrap();
            assert_edges_eq(&net, &plan.network_streamed(0.2).unwrap());
            let (_, top) = eng.top_k(PlanMethod::Approximate, 0, 5).unwrap();
            assert_eq!(top.edges, plan.top_k(5).edges);
        }
    }

    #[test]
    fn pile_backed_epochs_answer_exact_queries_bit_identically() {
        use crate::epoch::EpochIngest;

        let c = SeriesCollection::from_rows(
            (0..6)
                .map(|s| {
                    (0..120)
                        .map(|i| {
                            (i as f64 * 0.11 + s as f64 * 0.7).sin()
                                + ((i * (s + 2)) % 11) as f64 * 0.05
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        for workers in [1usize, 3] {
            let dft = DftSketchSet::build(&c, 24, 24, Transform::Naive).unwrap();
            let store = Arc::new(EpochStore::new(4));
            let sketch_epoch = store
                .publish(Some(dft.base().clone()), Some(dft.clone()))
                .unwrap();
            let path = std::env::temp_dir().join(format!(
                "tsubasa-serve-pile-query-{}-{workers}.pile",
                std::process::id()
            ));
            let (_ingest, pile_epoch) =
                EpochIngest::pile(Arc::clone(&store), &c, 24, &path).unwrap();
            assert!(pile_epoch.exact().is_none());
            assert_eq!(pile_epoch.window_count(), sketch_epoch.window_count());
            let eng = QueryEngine::new(
                store,
                Arc::new(PlanCache::new(8)),
                Arc::new(WorkerPool::new(workers)),
            );

            for (lw, theta) in [(0u32, 0.2), (2, 0.0), (0, 0.8)] {
                let from_sketch = eng
                    .network_on(&sketch_epoch, PlanMethod::Exact, lw, theta)
                    .unwrap();
                let from_pile = eng
                    .network_on(&pile_epoch, PlanMethod::Exact, lw, theta)
                    .unwrap();
                assert_edges_eq(&from_sketch, &from_pile);
            }
            for (lw, k) in [(0u32, 7u32), (3, 5)] {
                let from_sketch = eng
                    .top_k_on(&sketch_epoch, PlanMethod::Exact, lw, k)
                    .unwrap();
                let from_pile = eng.top_k_on(&pile_epoch, PlanMethod::Exact, lw, k).unwrap();
                assert_eq!(from_sketch.edges, from_pile.edges);
            }
            // This pile carries correlation rows but no estimate rows:
            // approximate queries fail typed, they do not silently degrade.
            assert!(matches!(
                eng.network_on(&pile_epoch, PlanMethod::Approximate, 0, 0.2),
                Err(QueryError::Unavailable(UnavailableReason::NoApprox))
            ));
            // Repeated windows against the pile epoch hit the plan cache.
            let stats = eng.cache().stats();
            assert!(stats.hits > 0, "pile plans should be cache-reused");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn approx_queries_on_mirrored_pile_epoch_match_sketch_epoch() {
        use crate::epoch::mirror_sketches_to_pile;
        use tsubasa_storage::pile::PileWriter;

        let c = SeriesCollection::from_rows(
            (0..6)
                .map(|s| {
                    (0..120)
                        .map(|i| {
                            (i as f64 * 0.11 + s as f64 * 0.7).sin()
                                + ((i * (s + 2)) % 11) as f64 * 0.05
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        for workers in [1usize, 3] {
            let dft = DftSketchSet::build(&c, 24, 24, Transform::Naive).unwrap();
            let store = Arc::new(EpochStore::new(4));
            let sketch_epoch = store
                .publish(Some(dft.base().clone()), Some(dft.clone()))
                .unwrap();
            let path = std::env::temp_dir().join(format!(
                "tsubasa-serve-pile-approx-{}-{workers}.pile",
                std::process::id()
            ));
            let mut writer = PileWriter::create(&path, c.len(), 24).unwrap();
            mirror_sketches_to_pile(&mut writer, Some(dft.base()), Some(&dft)).unwrap();
            writer.sync().unwrap();
            let pile_epoch = store.publish_pile(writer.snapshot().unwrap()).unwrap();
            assert!(pile_epoch.approx().is_none() && pile_epoch.exact().is_none());
            assert_eq!(
                pile_epoch.windows_for(PlanMethod::Approximate),
                sketch_epoch.windows_for(PlanMethod::Approximate)
            );
            let eng = QueryEngine::new(
                store,
                Arc::new(PlanCache::new(8)),
                Arc::new(WorkerPool::new(workers)),
            );

            // Approximate answers from the pile's stored estimate rows are
            // bit-identical to the in-memory comparator's.
            for (lw, theta) in [(0u32, 0.2), (2, 0.0), (0, 0.8)] {
                let from_sketch = eng
                    .network_on(&sketch_epoch, PlanMethod::Approximate, lw, theta)
                    .unwrap();
                let from_pile = eng
                    .network_on(&pile_epoch, PlanMethod::Approximate, lw, theta)
                    .unwrap();
                assert_edges_eq(&from_sketch, &from_pile);
            }
            for (lw, k) in [(0u32, 7u32), (3, 5)] {
                let from_sketch = eng
                    .top_k_on(&sketch_epoch, PlanMethod::Approximate, lw, k)
                    .unwrap();
                let from_pile = eng
                    .top_k_on(&pile_epoch, PlanMethod::Approximate, lw, k)
                    .unwrap();
                assert_eq!(from_sketch.edges, from_pile.edges);
            }
            // The mirror also wrote correlation rows, so the same pile epoch
            // answers exact queries bit-identically too.
            let from_sketch = eng
                .network_on(&sketch_epoch, PlanMethod::Exact, 0, 0.2)
                .unwrap();
            let from_pile = eng
                .network_on(&pile_epoch, PlanMethod::Exact, 0, 0.2)
                .unwrap();
            assert_edges_eq(&from_sketch, &from_pile);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn window_resolution_rejects_out_of_range() {
        assert!(matches!(
            resolve_windows(5, 6, PlanMethod::Exact),
            Err(QueryError::Rejected(Error::SketchMismatch { .. }))
        ));
        assert!(matches!(
            resolve_windows(0, 0, PlanMethod::Approximate),
            Err(QueryError::Unavailable(UnavailableReason::NoApprox))
        ));
        assert_eq!(resolve_windows(5, 0, PlanMethod::Exact).unwrap(), 0..5);
        assert_eq!(resolve_windows(5, 2, PlanMethod::Exact).unwrap(), 3..5);
        let (eng, _) = engine(2);
        assert!(matches!(
            eng.network(PlanMethod::Exact, 0, 1.5),
            Err(QueryError::Rejected(Error::InvalidThreshold(_)))
        ));
        assert!(matches!(
            eng.network(PlanMethod::Exact, 99, 0.5),
            Err(QueryError::Rejected(Error::SketchMismatch { .. }))
        ));
    }
}
