//! A small blocking client for the serve protocol, used by the examples,
//! benchmarks, and test harnesses.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, DeltaReply, ErrorCode, Method,
    ProtoError, Request, Response, StatsReply, MAX_RESPONSE_FRAME,
};

/// Failures observed by a client.
#[derive(Debug)]
pub enum ClientError {
    /// The transport or framing broke.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// The server answered with a response of the wrong kind for the
    /// request (protocol violation).
    UnexpectedResponse,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol failure: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::UnexpectedResponse => write!(f, "response kind does not match request"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// A network response, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReply {
    /// Epoch the server answered from.
    pub epoch: u64,
    /// Node (series) count of that epoch.
    pub nodes: u32,
    /// NaN-audited pair count.
    pub nan_pairs: u64,
    /// Edge endpoints, ascending pair order.
    pub edges: Vec<(u32, u32)>,
}

/// A top-k response, decoded.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKReply {
    /// Epoch the server answered from.
    pub epoch: u64,
    /// NaN-audited pair count.
    pub nan_pairs: u64,
    /// `(i, j, corr)` strongest first; correlations are bit-exact.
    pub edges: Vec<(u32, u32, f64)>,
}

/// A blocking connection to a serve instance: one in-flight request at a
/// time, responses matched by order.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Bound how long a single response read may block (`None` blocks until
    /// the server answers or closes).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Send one request and read its response frame.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        loop {
            match read_frame(&mut self.stream, MAX_RESPONSE_FRAME)? {
                Some(payload) => return Ok(decode_response(&payload)?),
                None => continue, // read timeout configured by the caller
            }
        }
    }

    /// Query the thresholded network.
    pub fn network(
        &mut self,
        method: Method,
        last_windows: u32,
        theta: f64,
    ) -> Result<NetworkReply, ClientError> {
        match self.request(&Request::Network {
            method,
            last_windows,
            theta,
        })? {
            Response::Network {
                epoch,
                nodes,
                nan_pairs,
                edges,
            } => Ok(NetworkReply {
                epoch,
                nodes,
                nan_pairs,
                edges,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Query the k strongest pairs.
    pub fn top_k(
        &mut self,
        method: Method,
        last_windows: u32,
        k: u32,
    ) -> Result<TopKReply, ClientError> {
        match self.request(&Request::TopK {
            method,
            last_windows,
            k,
        })? {
            Response::TopK {
                epoch,
                nan_pairs,
                edges,
            } => Ok(TopKReply {
                epoch,
                nan_pairs,
                edges,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Open a delta subscription: the server answers with the baseline
    /// network of the latest epoch, then streams exactly `max_frames` delta
    /// frames (one per newly observed epoch publication) which
    /// [`ServeClient::next_delta`] reads one at a time. After the last frame
    /// the connection returns to request–response.
    pub fn subscribe_deltas(
        &mut self,
        method: Method,
        theta: f64,
        max_frames: u32,
    ) -> Result<NetworkReply, ClientError> {
        match self.request(&Request::SubscribeDeltas {
            method,
            theta,
            max_frames,
        })? {
            Response::Network {
                epoch,
                nodes,
                nan_pairs,
                edges,
            } => Ok(NetworkReply {
                epoch,
                nodes,
                nan_pairs,
                edges,
            }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::UnexpectedResponse),
        }
    }

    /// Read the next delta frame of an open subscription. Blocks (subject to
    /// the configured read timeout) until the server observes the next epoch
    /// publication.
    pub fn next_delta(&mut self) -> Result<DeltaReply, ClientError> {
        loop {
            match read_frame(&mut self.stream, MAX_RESPONSE_FRAME)? {
                Some(payload) => {
                    return match decode_response(&payload)? {
                        Response::Delta(d) => Ok(d),
                        Response::Error { code, message } => {
                            Err(ClientError::Server { code, message })
                        }
                        _ => Err(ClientError::UnexpectedResponse),
                    }
                }
                None => continue, // read timeout configured by the caller
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanCache;
    use crate::epoch::EpochStore;
    use crate::query::QueryEngine;
    use crate::server;
    use std::sync::Arc;
    use tsubasa_core::exact;
    use tsubasa_core::SeriesCollection;
    use tsubasa_core::SketchSet;
    use tsubasa_parallel::WorkerPool;

    fn sketch_with_phase(phase: f64) -> SketchSet {
        let c = SeriesCollection::from_rows(
            (0..5)
                .map(|s| {
                    (0..100)
                        .map(|i| {
                            (i as f64 * 0.09 + s as f64 * (0.5 + phase)).sin()
                                + (i % (s + 2)) as f64 * 0.1
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        SketchSet::build(&c, 20).unwrap()
    }

    fn loopback() -> (server::ServerHandle, SketchSet) {
        let sketch = sketch_with_phase(0.0);
        let store = Arc::new(EpochStore::new(4));
        store.publish(Some(sketch.clone()), None).unwrap();
        let engine = Arc::new(QueryEngine::new(
            store,
            Arc::new(PlanCache::new(8)),
            Arc::new(WorkerPool::new(2)),
        ));
        let handle = server::start(engine, "127.0.0.1:0").unwrap();
        (handle, sketch)
    }

    #[test]
    fn loopback_round_trip_matches_serial() {
        let (handle, sketch) = loopback();
        let mut client = ServeClient::connect(handle.local_addr()).unwrap();

        let net = client.network(Method::Exact, 0, 0.3).unwrap();
        assert_eq!(net.epoch, 1);
        let serial =
            exact::network_streamed_aligned(&sketch, 0..sketch.window_count(), 0.3).unwrap();
        let expected: Vec<(u32, u32)> = serial
            .edges()
            .iter()
            .map(|&(i, j)| (i as u32, j as u32))
            .collect();
        assert_eq!(net.edges, expected);
        assert_eq!(net.nodes as usize, serial.node_count());

        let top = client.top_k(Method::Exact, 0, 4).unwrap();
        let serial = exact::top_k_aligned(&sketch, 0..sketch.window_count(), 4).unwrap();
        assert_eq!(top.edges.len(), serial.edges.len());
        for (got, want) in top.edges.iter().zip(&serial.edges) {
            assert_eq!(
                (got.0 as usize, got.1 as usize, got.2.to_bits()),
                (want.i, want.j, want.corr.to_bits())
            );
        }

        // A second identical query hits the plan cache.
        client.network(Method::Exact, 0, 0.3).unwrap();
        let stats = client.stats().unwrap();
        assert!(stats.cache_hits >= 1, "repeat query must hit the cache");
        assert_eq!(stats.epoch, 1);
        assert!(stats.requests >= 4);

        // Typed server-side errors keep the connection usable.
        match client.network(Method::Exact, 0, 2.0) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Query),
            other => panic!("expected a Query error, got {other:?}"),
        }
        match client.network(Method::Approximate, 0, 0.3) {
            Err(ClientError::Server { code, .. }) => {
                assert_eq!(code, ErrorCode::UnavailableNoApprox)
            }
            other => panic!("expected UnavailableNoApprox, got {other:?}"),
        }
        assert!(client.stats().is_ok(), "connection survives typed errors");

        handle.shutdown();
    }

    #[test]
    fn subscription_streams_one_delta_per_published_epoch() {
        let theta = 0.3;
        let store = Arc::new(EpochStore::new(4));
        store.publish(Some(sketch_with_phase(0.0)), None).unwrap();
        let engine = Arc::new(QueryEngine::new(
            Arc::clone(&store),
            Arc::new(PlanCache::new(8)),
            Arc::new(WorkerPool::new(2)),
        ));
        let handle = server::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();
        let mut client = ServeClient::connect(handle.local_addr()).unwrap();

        // A zero-frame subscription is rejected, and the connection survives.
        match client.subscribe_deltas(Method::Exact, theta, 0) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Query),
            other => panic!("expected a Query error, got {other:?}"),
        }
        assert!(client.stats().is_ok());

        let baseline = client.subscribe_deltas(Method::Exact, theta, 2).unwrap();
        assert_eq!(baseline.epoch, 1);
        let mut edges: std::collections::BTreeSet<(u32, u32)> =
            baseline.edges.iter().copied().collect();

        // Each publication after the baseline yields exactly one delta frame;
        // replaying it onto the running edge set reproduces the published
        // epoch's network. Reading the frame before publishing the next epoch
        // pins the one-frame-per-epoch correspondence.
        for (frame, phase) in [(1u64, 0.9), (2, 1.7)] {
            store.publish(Some(sketch_with_phase(phase)), None).unwrap();
            let delta = client.next_delta().unwrap();
            assert_eq!(delta.epoch, 1 + frame);
            assert_eq!(delta.nodes, baseline.nodes);
            for pair in &delta.vanished {
                assert!(edges.remove(pair), "vanished edge {pair:?} was absent");
            }
            for pair in &delta.appeared {
                assert!(
                    edges.insert(*pair),
                    "appeared edge {pair:?} already present"
                );
            }
        }

        // After the last frame the connection resumes request–response, and
        // the replayed edge set matches a fresh full query bit for bit.
        let fresh = client.network(Method::Exact, 0, theta).unwrap();
        assert_eq!(fresh.epoch, 3);
        let expected: std::collections::BTreeSet<(u32, u32)> =
            fresh.edges.iter().copied().collect();
        assert_eq!(edges, expected);

        handle.shutdown();
    }
}
