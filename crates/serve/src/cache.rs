//! The plan cache: built query plans keyed by (epoch id, window range,
//! method).
//!
//! Building a [`QueryPlan`] / [`ApproxPlan`] costs `O(n·ns)` table work per
//! query window. Because epochs are immutable and a plan is a pure function
//! of `(epoch, windows, method)` — the [`PlanKey`] defined in
//! `tsubasa-core` — repeated query windows against the same epoch can reuse
//! the built plan (and its pruning bounds) without any correctness risk: a
//! cached plan is **bit-identical** to a freshly built one, which the
//! `serve_plan_cache` suite pins.
//!
//! Eviction is LRU over an access-stamped map; hit/miss/eviction counters
//! are exposed for observability and asserted by the cache tests and the
//! `fig_serve_qps` benchmark (a repeated-window workload must show
//! hits > misses).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tsubasa_core::error::Result;
use tsubasa_core::plan::PlanKey;
use tsubasa_core::sweep::CorrelationBounds;
use tsubasa_core::QueryPlan;
use tsubasa_dft::ApproxPlan;

/// A built, shareable plan for one `(epoch, windows, method)` coordinate,
/// together with its per-tile pruning bounds (also pure functions of the
/// plan, so cached alongside it).
#[derive(Debug, Clone)]
pub enum CachedPlan {
    /// An exact Lemma 1 plan.
    Exact {
        /// The per-series recombination tables.
        plan: Arc<QueryPlan>,
        /// Equation 4 per-tile pruning bounds of `plan`.
        bounds: Arc<CorrelationBounds>,
    },
    /// An approximate Equation 5 plan.
    Approx {
        /// The per-series tables plus the window-major estimate table.
        plan: Arc<ApproxPlan>,
        /// Equation 4 per-tile pruning bounds of `plan`'s shared tables.
        bounds: Arc<CorrelationBounds>,
    },
}

/// Counter snapshot of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

struct Entry {
    stamp: u64,
    plan: CachedPlan,
}

struct Inner {
    map: HashMap<PlanKey, Entry>,
    clock: u64,
}

/// An LRU cache of built plans keyed by [`PlanKey`]. Thread-safe: lookups
/// take a short mutex; plan *building* happens outside the lock, so a slow
/// build never blocks other connections' cache hits. Two threads missing on
/// the same key concurrently may both build — harmless, since plans for the
/// same key are bit-identical by construction; one of the two instances is
/// kept.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("stats", &stats)
            .finish()
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Maximum number of resident plans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up the plan for `key`, building and inserting it on a miss.
    /// `build` runs outside the cache lock.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<CachedPlan>,
    ) -> Result<CachedPlan> {
        {
            let mut inner = self.inner.lock().expect("plan cache poisoned");
            inner.clock += 1;
            let stamp = inner.clock;
            if let Some(entry) = inner.map.get_mut(&key) {
                entry.stamp = stamp;
                let plan = entry.plan.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(plan);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = build()?;
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        inner.map.insert(
            key,
            Entry {
                stamp,
                plan: plan.clone(),
            },
        );
        while inner.map.len() > self.capacity {
            // Evict the least recently used entry.
            let oldest = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty map");
            inner.map.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(plan)
    }

    /// Drop every cached plan whose epoch id is below `min_epoch` — the
    /// rollover invalidation matching [`crate::EpochStore::oldest_retained`].
    /// Dropped entries do not count as evictions (they were invalidated, not
    /// displaced).
    pub fn invalidate_below(&self, min_epoch: u64) {
        let mut inner = self.inner.lock().expect("plan cache poisoned");
        inner.map.retain(|k, _| k.epoch >= min_epoch);
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        let len = self.inner.lock().expect("plan cache poisoned").map.len();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::plan::PlanMethod;
    use tsubasa_core::{SeriesCollection, SketchSet};

    fn sketch() -> SketchSet {
        let c = SeriesCollection::from_rows(
            (0..3)
                .map(|s| (0..80).map(|i| (i as f64 * 0.2 + s as f64).cos()).collect())
                .collect(),
        )
        .unwrap();
        SketchSet::build(&c, 20).unwrap()
    }

    fn build_exact(sk: &SketchSet, windows: std::ops::Range<usize>) -> Result<CachedPlan> {
        let plan = QueryPlan::build_aligned(sk, windows)?;
        let bounds = CorrelationBounds::from_plan(&plan);
        Ok(CachedPlan::Exact {
            plan: Arc::new(plan),
            bounds: Arc::new(bounds),
        })
    }

    #[test]
    fn hits_misses_and_lru_eviction() {
        let sk = sketch();
        let cache = PlanCache::new(2);
        let key = |e: u64, w: std::ops::Range<usize>| PlanKey::new(e, w, PlanMethod::Exact);

        cache
            .get_or_build(key(1, 0..4), || build_exact(&sk, 0..4))
            .unwrap();
        cache
            .get_or_build(key(1, 0..4), || panic!("must hit"))
            .unwrap();
        cache
            .get_or_build(key(1, 1..4), || build_exact(&sk, 1..4))
            .unwrap();
        // Touch the first key so the second is now least recently used.
        cache
            .get_or_build(key(1, 0..4), || panic!("must hit"))
            .unwrap();
        cache
            .get_or_build(key(1, 2..4), || build_exact(&sk, 2..4))
            .unwrap();
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.evictions, stats.len),
            (2, 3, 1, 2)
        );
        // The evicted entry was the LRU one (1..4); 0..4 must still hit.
        cache
            .get_or_build(key(1, 0..4), || panic!("must hit"))
            .unwrap();
        cache
            .get_or_build(key(1, 1..4), || build_exact(&sk, 1..4))
            .unwrap();
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn invalidate_below_drops_stale_epochs_without_eviction_counts() {
        let sk = sketch();
        let cache = PlanCache::new(8);
        for e in 1..=4u64 {
            cache
                .get_or_build(PlanKey::new(e, 0..4, PlanMethod::Exact), || {
                    build_exact(&sk, 0..4)
                })
                .unwrap();
        }
        cache.invalidate_below(3);
        let stats = cache.stats();
        assert_eq!(stats.len, 2);
        assert_eq!(stats.evictions, 0);
        cache
            .get_or_build(PlanKey::new(2, 0..4, PlanMethod::Exact), || {
                build_exact(&sk, 0..4)
            })
            .unwrap();
        assert_eq!(cache.stats().misses, 5);
    }
}
