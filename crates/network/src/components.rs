//! Connected components of a climate network.

use crate::graph::ClimateNetwork;

/// Assign every node a component id (0-based, in order of discovery) via
/// breadth-first search.
pub fn component_labels(network: &ClimateNetwork) -> Vec<usize> {
    let n = network.node_count();
    let mut labels = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for start in 0..n {
        if labels[start] != usize::MAX {
            continue;
        }
        labels[start] = next;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for v in network.neighbours(u) {
                if labels[v] == usize::MAX {
                    labels[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    labels
}

/// The connected components as lists of node ids, largest first.
pub fn components(network: &ClimateNetwork) -> Vec<Vec<usize>> {
    let labels = component_labels(network);
    let count = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut groups = vec![Vec::new(); count];
    for (node, &label) in labels.iter().enumerate() {
        groups[label].push(node);
    }
    groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
    groups
}

/// Number of connected components.
pub fn component_count(network: &ClimateNetwork) -> usize {
    components(network).len()
}

/// Size of the largest connected component (0 for an empty network).
pub fn largest_component_size(network: &ClimateNetwork) -> usize {
    components(network).first().map_or(0, |c| c.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::matrix::AdjacencyMatrix;
    use tsubasa_core::SeriesCollection;

    fn network(n: usize, edges: &[(usize, usize)]) -> ClimateNetwork {
        let collection =
            SeriesCollection::from_rows((0..n).map(|i| vec![i as f64, 0.0]).collect()).unwrap();
        let mut adj = AdjacencyMatrix::empty(n);
        for &(a, b) in edges {
            adj.set_edge(a, b, true);
        }
        ClimateNetwork::from_adjacency(&collection, adj, 0.5).unwrap()
    }

    #[test]
    fn splits_into_expected_components() {
        // Two components: {0,1,2} chained and {3,4}; node 5 isolated.
        let net = network(6, &[(0, 1), (1, 2), (3, 4)]);
        let comps = components(&net);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3, 4]);
        assert_eq!(comps[2], vec![5]);
        assert_eq!(component_count(&net), 3);
        assert_eq!(largest_component_size(&net), 3);
    }

    #[test]
    fn labels_are_consistent_with_components() {
        let net = network(5, &[(0, 4), (1, 2)]);
        let labels = component_labels(&net);
        assert_eq!(labels[0], labels[4]);
        assert_eq!(labels[1], labels[2]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[3], labels[0]);
    }

    #[test]
    fn fully_connected_network_is_one_component() {
        let net = network(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(component_count(&net), 1);
        assert_eq!(largest_component_size(&net), 4);
    }

    #[test]
    fn edgeless_network_has_singleton_components() {
        let net = network(3, &[]);
        assert_eq!(component_count(&net), 3);
        assert_eq!(largest_component_size(&net), 1);
    }
}
