//! Topological metrics of climate networks: the quantities network-dynamics
//! studies compute on each reconstructed network snapshot.

use crate::graph::ClimateNetwork;

/// Degree of every node.
pub fn degrees(network: &ClimateNetwork) -> Vec<usize> {
    (0..network.node_count())
        .map(|i| network.degree(i))
        .collect()
}

/// Average node degree.
pub fn average_degree(network: &ClimateNetwork) -> f64 {
    let n = network.node_count();
    if n == 0 {
        return 0.0;
    }
    2.0 * network.edge_count() as f64 / n as f64
}

/// Edge density: edges over possible edges.
pub fn density(network: &ClimateNetwork) -> f64 {
    network.adjacency().density()
}

/// Histogram of node degrees: `histogram[d]` is the number of nodes with
/// degree `d`.
pub fn degree_histogram(network: &ClimateNetwork) -> Vec<usize> {
    let degs = degrees(network);
    let max = degs.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degs {
        hist[d] += 1;
    }
    hist
}

/// Local clustering coefficient of node `i`: the fraction of the node's
/// neighbour pairs that are themselves connected.
pub fn local_clustering(network: &ClimateNetwork, i: usize) -> f64 {
    let neighbours = network.neighbours(i);
    let k = neighbours.len();
    if k < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for a in 0..k {
        for b in (a + 1)..k {
            if network.has_edge(neighbours[a], neighbours[b]) {
                closed += 1;
            }
        }
    }
    closed as f64 / (k * (k - 1) / 2) as f64
}

/// Average clustering coefficient over all nodes.
pub fn average_clustering(network: &ClimateNetwork) -> f64 {
    let n = network.node_count();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|i| local_clustering(network, i)).sum::<f64>() / n as f64
}

/// Fraction of edges longer than `km` — a crude teleconnection indicator
/// (climate networks are interesting precisely because strongly correlated
/// locations are not always nearby; long edges encode large-scale patterns).
pub fn long_edge_fraction(network: &ClimateNetwork, km: f64) -> f64 {
    let total = network.edge_count();
    if total == 0 {
        return 0.0;
    }
    let long = network
        .edges()
        .filter(|&(i, j)| network.edge_length_km(i, j) > km)
        .count();
    long as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::matrix::AdjacencyMatrix;
    use tsubasa_core::{GeoLocation, SeriesCollection, TimeSeries};

    /// A 4-node network: triangle 0-1-2 plus pendant node 3 attached to 0.
    fn triangle_plus_pendant() -> ClimateNetwork {
        let collection = SeriesCollection::new(
            (0..4)
                .map(|i| {
                    TimeSeries::new(
                        format!("n{i}"),
                        GeoLocation::new(i as f64 * 10.0, 0.0),
                        vec![0.0; 4],
                    )
                })
                .collect(),
        )
        .unwrap();
        let mut adj = AdjacencyMatrix::empty(4);
        adj.set_edge(0, 1, true);
        adj.set_edge(1, 2, true);
        adj.set_edge(0, 2, true);
        adj.set_edge(0, 3, true);
        ClimateNetwork::from_adjacency(&collection, adj, 0.5).unwrap()
    }

    #[test]
    fn degree_metrics() {
        let net = triangle_plus_pendant();
        assert_eq!(degrees(&net), vec![3, 2, 2, 1]);
        assert!((average_degree(&net) - 2.0).abs() < 1e-12);
        assert!((density(&net) - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(degree_histogram(&net), vec![0, 1, 2, 1]);
    }

    #[test]
    fn clustering_coefficients() {
        let net = triangle_plus_pendant();
        // Node 0 has neighbours {1,2,3}; only (1,2) of the three pairs is
        // connected → 1/3.
        assert!((local_clustering(&net, 0) - 1.0 / 3.0).abs() < 1e-12);
        // Nodes 1 and 2 have neighbours {0,2}/{0,1}, both connected → 1.
        assert!((local_clustering(&net, 1) - 1.0).abs() < 1e-12);
        // Pendant node has fewer than 2 neighbours → 0.
        assert_eq!(local_clustering(&net, 3), 0.0);
        let avg = average_clustering(&net);
        assert!((avg - (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn long_edge_fraction_counts_geodesic_lengths() {
        let net = triangle_plus_pendant();
        // Nodes are 10 degrees of latitude apart (~1,110 km per step).
        // Edges: (0,1) ~1110, (1,2) ~1110, (0,2) ~2220, (0,3) ~3330 km.
        assert!((long_edge_fraction(&net, 2_000.0) - 0.5).abs() < 1e-12);
        assert_eq!(long_edge_fraction(&net, 10_000.0), 0.0);
    }

    #[test]
    fn empty_network_metrics_are_zero() {
        let collection = SeriesCollection::from_rows(vec![vec![1.0, 2.0]]).unwrap();
        let net =
            ClimateNetwork::from_adjacency(&collection, AdjacencyMatrix::empty(1), 0.5).unwrap();
        assert_eq!(average_degree(&net), 0.0);
        assert_eq!(average_clustering(&net), 0.0);
        assert_eq!(long_edge_fraction(&net, 1.0), 0.0);
        assert_eq!(degree_histogram(&net), vec![1]);
    }
}
