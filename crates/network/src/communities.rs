//! Community detection by synchronous label propagation.
//!
//! Community structure is one of the standard analyses run on climate
//! networks (the paper cites community detection as a downstream task of the
//! correlation matrix). Label propagation is simple, fast (`O(edges)` per
//! sweep), and needs no parameters; the implementation below is made
//! deterministic by updating nodes in index order and breaking label ties
//! toward the smallest label.

use std::collections::HashMap;

use crate::graph::ClimateNetwork;

/// Result of a community-detection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Communities {
    /// Community label of every node (labels are arbitrary but densely
    /// re-numbered from 0).
    pub labels: Vec<usize>,
    /// Number of sweeps until convergence (or the sweep cap).
    pub iterations: usize,
}

impl Communities {
    /// Number of distinct communities.
    pub fn count(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// The communities as lists of node ids, largest first.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.count()];
        for (node, &label) in self.labels.iter().enumerate() {
            groups[label].push(node);
        }
        groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
        groups
    }
}

/// Run label propagation for at most `max_sweeps` sweeps.
pub fn label_propagation(network: &ClimateNetwork, max_sweeps: usize) -> Communities {
    let n = network.node_count();
    let mut labels: Vec<usize> = (0..n).collect();
    let mut iterations = 0;

    for _ in 0..max_sweeps.max(1) {
        iterations += 1;
        let mut changed = false;
        for node in 0..n {
            let neighbours = network.neighbours(node);
            if neighbours.is_empty() {
                continue;
            }
            // Most frequent neighbour label; ties go to the smallest label so
            // the outcome does not depend on hash iteration order.
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for &v in &neighbours {
                *counts.entry(labels[v]).or_insert(0) += 1;
            }
            let best = counts
                .iter()
                .map(|(&label, &count)| (count, std::cmp::Reverse(label)))
                .max()
                .map(|(_, std::cmp::Reverse(label))| label)
                .expect("non-empty neighbour set");
            if best != labels[node] {
                labels[node] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Densely renumber labels.
    let mut mapping = HashMap::new();
    let mut next = 0usize;
    let labels = labels
        .into_iter()
        .map(|l| {
            *mapping.entry(l).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        })
        .collect();

    Communities { labels, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::matrix::AdjacencyMatrix;
    use tsubasa_core::SeriesCollection;

    fn network(n: usize, edges: &[(usize, usize)]) -> ClimateNetwork {
        let collection =
            SeriesCollection::from_rows((0..n).map(|i| vec![i as f64, 0.0]).collect()).unwrap();
        let mut adj = AdjacencyMatrix::empty(n);
        for &(a, b) in edges {
            adj.set_edge(a, b, true);
        }
        ClimateNetwork::from_adjacency(&collection, adj, 0.5).unwrap()
    }

    #[test]
    fn two_cliques_with_a_bridge_form_two_communities() {
        // Clique {0,1,2,3} and clique {4,5,6,7} joined by a single bridge.
        let mut edges = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
                edges.push((i + 4, j + 4));
            }
        }
        edges.push((3, 4));
        let net = network(8, &edges);
        let communities = label_propagation(&net, 50);
        assert!(
            communities.count() <= 2,
            "found {} communities",
            communities.count()
        );
        // Members of the same clique share a label.
        assert_eq!(communities.labels[0], communities.labels[1]);
        assert_eq!(communities.labels[0], communities.labels[2]);
        assert_eq!(communities.labels[5], communities.labels[6]);
        assert_eq!(communities.labels[5], communities.labels[7]);
    }

    #[test]
    fn isolated_nodes_keep_their_own_community() {
        let net = network(4, &[(0, 1)]);
        let communities = label_propagation(&net, 10);
        assert_eq!(communities.labels[0], communities.labels[1]);
        assert_ne!(communities.labels[2], communities.labels[3]);
        assert_eq!(communities.count(), 3);
    }

    #[test]
    fn groups_partition_all_nodes() {
        let net = network(6, &[(0, 1), (1, 2), (3, 4)]);
        let communities = label_propagation(&net, 10);
        let groups = communities.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 6);
        // Largest group first.
        for w in groups.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
    }

    #[test]
    fn propagation_is_deterministic() {
        let edges = [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];
        let net = network(6, &edges);
        let a = label_propagation(&net, 30);
        let b = label_propagation(&net, 30);
        assert_eq!(a, b);
        assert!(a.iterations >= 1);
    }
}
