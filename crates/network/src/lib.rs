//! # tsubasa-network
//!
//! Network-science utilities on top of the correlation matrices produced by
//! `tsubasa-core`: the downstream consumer that the paper's pipeline hands
//! its networks to (Figure 1 — "visualization and network science tools").
//!
//! * [`ClimateNetwork`] — an adjacency matrix annotated with node locations
//!   and names, with adjacency-list style accessors.
//! * [`metrics`] — degree distribution, density, clustering coefficients.
//! * [`components`] — connected components.
//! * [`communities`] — deterministic label-propagation community detection.
//! * [`similarity`] — the edge-count / similarity-ratio comparisons of the
//!   paper's accuracy experiment (Figure 5a), plus precision/recall of an
//!   approximate network against the exact one.
//! * [`approx`] — end-to-end approximate network construction through the
//!   batched `ApproxPlan` (tiled Equation 5, Equation 4 pruning) and the
//!   one-call exact-vs-approximate comparison behind Figure 5a.
//! * [`export`] — edge-list CSV and Graphviz DOT export.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod approx;
pub mod communities;
pub mod components;
pub mod dynamics;
pub mod export;
pub mod graph;
pub mod metrics;
pub mod similarity;

pub use approx::{exact_vs_approx, ApproxNetworkBuilder};
pub use dynamics::{DynamicsBuilder, DynamicsTracker, SnapshotDelta};
pub use graph::ClimateNetwork;
pub use similarity::NetworkComparison;
