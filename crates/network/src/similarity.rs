//! Network comparison: the accuracy measures of the paper's Figure 5a
//! (edge count and correlation similarity ratio), plus precision/recall of an
//! approximate network against the exact reference.

use tsubasa_core::matrix::AdjacencyMatrix;

/// Summary of how a candidate network (typically the DFT approximation)
/// compares to a reference network (the exact TSUBASA network).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkComparison {
    /// Edges in the reference network.
    pub reference_edges: usize,
    /// Edges in the candidate network.
    pub candidate_edges: usize,
    /// The paper's correlation similarity ratio `D_p`: fraction of node pairs
    /// on which the two networks agree.
    pub similarity_ratio: f64,
    /// Candidate edges that are also reference edges (true positives).
    pub true_positives: usize,
    /// Candidate edges that are not reference edges (the spurious edges the
    /// paper warns about).
    pub false_positives: usize,
    /// Reference edges missing from the candidate.
    pub false_negatives: usize,
}

impl NetworkComparison {
    /// Compare `candidate` against `reference`. Panics if the node counts
    /// differ (comparing networks over different node sets is meaningless).
    pub fn compare(reference: &AdjacencyMatrix, candidate: &AdjacencyMatrix) -> Self {
        assert_eq!(
            reference.len(),
            candidate.len(),
            "networks must share the same node set"
        );
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        for (r, c) in reference
            .upper_triangle()
            .iter()
            .zip(candidate.upper_triangle())
        {
            match (r, c) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => {}
            }
        }
        Self {
            reference_edges: reference.edge_count(),
            candidate_edges: candidate.edge_count(),
            similarity_ratio: reference.similarity_ratio(candidate),
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
        }
    }

    /// Precision of the candidate's edges (1.0 when the candidate proposes no
    /// edges at all).
    pub fn precision(&self) -> f64 {
        if self.candidate_edges == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.candidate_edges as f64
        }
    }

    /// Recall of the reference's edges (1.0 when the reference has no edges).
    pub fn recall(&self) -> f64 {
        if self.reference_edges == 0 {
            1.0
        } else {
            self.true_positives as f64 / self.reference_edges as f64
        }
    }

    /// True when the candidate misses no reference edge — the guarantee
    /// Equation 4 provides for DFT-based pruning.
    pub fn has_no_false_negatives(&self) -> bool {
        self.false_negatives == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> AdjacencyMatrix {
        let mut adj = AdjacencyMatrix::empty(n);
        for &(a, b) in edges {
            adj.set_edge(a, b, true);
        }
        adj
    }

    #[test]
    fn comparison_counts_edge_classes() {
        let reference = adjacency(4, &[(0, 1), (1, 2)]);
        let candidate = adjacency(4, &[(0, 1), (2, 3), (0, 3)]);
        let cmp = NetworkComparison::compare(&reference, &candidate);
        assert_eq!(cmp.reference_edges, 2);
        assert_eq!(cmp.candidate_edges, 3);
        assert_eq!(cmp.true_positives, 1);
        assert_eq!(cmp.false_positives, 2);
        assert_eq!(cmp.false_negatives, 1);
        assert!((cmp.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((cmp.recall() - 0.5).abs() < 1e-12);
        assert!(!cmp.has_no_false_negatives());
        // 6 pairs, 3 disagreements → D_p = 0.5.
        assert!((cmp.similarity_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_networks_compare_perfectly() {
        let net = adjacency(5, &[(0, 4), (2, 3)]);
        let cmp = NetworkComparison::compare(&net, &net);
        assert_eq!(cmp.false_positives, 0);
        assert_eq!(cmp.false_negatives, 0);
        assert_eq!(cmp.similarity_ratio, 1.0);
        assert_eq!(cmp.precision(), 1.0);
        assert_eq!(cmp.recall(), 1.0);
        assert!(cmp.has_no_false_negatives());
    }

    #[test]
    fn empty_networks_have_defined_metrics() {
        let a = adjacency(3, &[]);
        let b = adjacency(3, &[(0, 1)]);
        let cmp = NetworkComparison::compare(&a, &b);
        assert_eq!(cmp.recall(), 1.0); // no reference edges to miss
        assert_eq!(cmp.precision(), 0.0);
        let cmp2 = NetworkComparison::compare(&b, &a);
        assert_eq!(cmp2.precision(), 1.0); // candidate proposes nothing
        assert_eq!(cmp2.recall(), 0.0);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn comparing_different_sizes_panics() {
        NetworkComparison::compare(&adjacency(3, &[]), &adjacency(4, &[]));
    }
}
