//! End-to-end approximate network construction — the Figure 5a experiment
//! surface.
//!
//! [`ApproxNetworkBuilder`] is the approximate sibling of
//! [`tsubasa_core::construct::HistoricalBuilder`]: it owns a
//! [`DftSketchSet`] and answers aligned query-window requests through the
//! batched [`ApproxPlan`] (tiled Equation 5 recombination, Equation 4
//! pruning). [`exact_vs_approx`] runs the full exact-vs-approximate
//! comparison in one call — both networks over the same windows, compared
//! with [`NetworkComparison`] — so precision/recall/similarity experiments
//! (and the Equation 4 no-false-negative property suite) go through one
//! entry point.

use std::ops::Range;

use tsubasa_core::error::{Error, Result};
use tsubasa_core::exact;
use tsubasa_core::matrix::{AdjacencyMatrix, CorrelationMatrix};
use tsubasa_core::SeriesCollection;
use tsubasa_dft::plan::ApproxPlan;
use tsubasa_dft::sketch::{DftSketchSet, Transform};

use crate::similarity::NetworkComparison;

/// Approximate-network builder over a [`DftSketchSet`]: sketch once, answer
/// aligned matrix/network queries through the batched [`ApproxPlan`].
///
/// ```
/// use tsubasa_core::SeriesCollection;
/// use tsubasa_dft::sketch::Transform;
/// use tsubasa_network::approx::ApproxNetworkBuilder;
///
/// let collection = SeriesCollection::from_rows(vec![
///     vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0],
///     vec![2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0],
///     vec![9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 1.0],
/// ])
/// .unwrap();
/// // All 4 coefficients kept → exact up to floating point.
/// let builder = ApproxNetworkBuilder::new(&collection, 4, 4, Transform::Naive).unwrap();
/// let network = builder.network(0..2, 0.8).unwrap();
/// assert!(network.has_edge(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct ApproxNetworkBuilder {
    sketch: DftSketchSet,
}

impl ApproxNetworkBuilder {
    /// Sketch `collection` for the DFT comparator (`coefficients` of the
    /// first DFT coefficients per basic window; clamped to the window size).
    pub fn new(
        collection: &SeriesCollection,
        basic_window: usize,
        coefficients: usize,
        transform: Transform,
    ) -> Result<Self> {
        Ok(Self {
            sketch: DftSketchSet::build(collection, basic_window, coefficients, transform)?,
        })
    }

    /// Wrap an existing comparator sketch.
    pub fn from_sketch(sketch: DftSketchSet) -> Self {
        Self { sketch }
    }

    /// The underlying comparator sketch.
    pub fn sketch(&self) -> &DftSketchSet {
        &self.sketch
    }

    /// The batched evaluation plan for an aligned range of basic windows —
    /// build it once when several thresholds are probed over the same window.
    pub fn plan(&self, windows: Range<usize>) -> Result<ApproxPlan> {
        ApproxPlan::build(&self.sketch, windows)
    }

    /// Approximate all-pairs correlation matrix (tiled Equation 5) over an
    /// aligned range of basic windows.
    pub fn correlation_matrix(&self, windows: Range<usize>) -> Result<CorrelationMatrix> {
        Ok(self.plan(windows)?.correlation_matrix())
    }

    /// The Equation 4-pruned approximate climate network at threshold
    /// `theta` — a superset of the exact network (false positives possible,
    /// false negatives not).
    pub fn network(&self, windows: Range<usize>, theta: f64) -> Result<AdjacencyMatrix> {
        self.plan(windows)?.network(theta)
    }

    /// Compare the approximate network against a caller-supplied exact
    /// reference network at the same threshold.
    pub fn compare_with(
        &self,
        reference: &AdjacencyMatrix,
        windows: Range<usize>,
        theta: f64,
    ) -> Result<NetworkComparison> {
        Ok(NetworkComparison::compare(
            reference,
            &self.network(windows, theta)?,
        ))
    }
}

/// The Figure 5a measurement in one call: build the exact network (Lemma 1
/// over a [`tsubasa_core::SketchSet`], thresholded at `theta`) and the
/// Equation 4-pruned approximate network (`coefficients` DFT coefficients)
/// over the same aligned window range, and compare them.
///
/// `windows` of `None` covers every sketched basic window. The returned
/// [`NetworkComparison`] carries edge counts, the similarity ratio `D_p`,
/// and the false-positive/false-negative split behind precision/recall —
/// [`NetworkComparison::has_no_false_negatives`] is the Equation 4
/// guarantee.
pub fn exact_vs_approx(
    collection: &SeriesCollection,
    basic_window: usize,
    coefficients: usize,
    theta: f64,
    windows: Option<Range<usize>>,
) -> Result<NetworkComparison> {
    if !(-1.0..=1.0).contains(&theta) {
        return Err(Error::InvalidThreshold(theta));
    }
    let exact_sketch = tsubasa_core::SketchSet::build(collection, basic_window)?;
    let windows = windows.unwrap_or(0..exact_sketch.window_count());
    let exact_net =
        exact::correlation_matrix_aligned(&exact_sketch, windows.clone())?.threshold(theta)?;
    let builder =
        ApproxNetworkBuilder::new(collection, basic_window, coefficients, Transform::Naive)?;
    builder.compare_with(&exact_net, windows, theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows(
            (0..n)
                .map(|s| {
                    (0..len)
                        .map(|i| {
                            (i as f64 * 0.05).sin() * (1.0 + s as f64 * 0.2)
                                + i as f64 * 0.002 * s as f64
                                + ((i * (s + 3) + 11) % 17) as f64 * 0.05
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn builder_network_is_a_superset_of_the_exact_network() {
        let c = collection(6, 240);
        let b = 40;
        let theta = 0.75;
        // Few coefficients → under-estimated distances → superset of edges.
        let builder = ApproxNetworkBuilder::new(&c, b, 4, Transform::Naive).unwrap();
        let cmp = {
            let exact_sketch = tsubasa_core::SketchSet::build(&c, b).unwrap();
            let exact_net = exact::correlation_matrix_aligned(&exact_sketch, 0..6)
                .unwrap()
                .threshold(theta)
                .unwrap();
            builder.compare_with(&exact_net, 0..6, theta).unwrap()
        };
        assert!(cmp.has_no_false_negatives());
        assert!(cmp.candidate_edges >= cmp.reference_edges);
    }

    #[test]
    fn exact_vs_approx_with_all_coefficients_agrees_perfectly() {
        let c = collection(5, 200);
        let b = 25;
        let cmp = exact_vs_approx(&c, b, b, 0.7, None).unwrap();
        assert!(cmp.has_no_false_negatives());
        assert_eq!(cmp.false_positives, 0);
        assert_eq!(cmp.similarity_ratio, 1.0);
        assert!((cmp.precision() - 1.0).abs() < 1e-12);
        assert!((cmp.recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entry_points_validate_inputs() {
        let c = collection(3, 100);
        assert!(exact_vs_approx(&c, 25, 25, 1.5, None).is_err());
        assert!(exact_vs_approx(&c, 0, 25, 0.5, None).is_err());
        let builder = ApproxNetworkBuilder::new(&c, 25, 25, Transform::Naive).unwrap();
        assert!(builder.network(0..9, 0.5).is_err());
        assert!(builder.correlation_matrix(2..2).is_err());
        assert_eq!(builder.sketch().series_count(), 3);
        let rebuilt = ApproxNetworkBuilder::from_sketch(builder.sketch().clone());
        assert_eq!(
            rebuilt.network(0..4, 0.5).unwrap(),
            builder.network(0..4, 0.5).unwrap()
        );
    }
}
