//! Network dynamics: analysing how the climate network changes over a
//! sequence of query windows.
//!
//! The paper motivates TSUBASA with network-dynamics studies (Berezin et al.,
//! "Stability of Climate Networks with Time"): scientists construct one
//! network per hypothesized time window and study how edges appear, vanish,
//! and persist. This module provides the bookkeeping for such studies on top
//! of a sequence of [`AdjacencyMatrix`] snapshots (produced either by
//! repeated historical queries or by the real-time updater).

use tsubasa_core::matrix::AdjacencyMatrix;
use tsubasa_core::sketch::pair_index;

/// Edge-level change between two consecutive network snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotDelta {
    /// Edges present in the new snapshot but not the previous one.
    pub appeared: usize,
    /// Edges present in the previous snapshot but not the new one.
    pub vanished: usize,
    /// Edges present in both.
    pub persisted: usize,
}

impl SnapshotDelta {
    /// Compare two consecutive snapshots. Panics if the node counts differ.
    pub fn between(previous: &AdjacencyMatrix, current: &AdjacencyMatrix) -> Self {
        assert_eq!(
            previous.len(),
            current.len(),
            "snapshots must cover the same node set"
        );
        let mut delta = SnapshotDelta::default();
        for (p, c) in previous
            .upper_triangle()
            .iter()
            .zip(current.upper_triangle())
        {
            match (p, c) {
                (false, true) => delta.appeared += 1,
                (true, false) => delta.vanished += 1,
                (true, true) => delta.persisted += 1,
                (false, false) => {}
            }
        }
        delta
    }

    /// Jaccard stability of the edge set: persisted edges over the union of
    /// both edge sets (1.0 when nothing changed, 0.0 when the edge sets are
    /// disjoint; defined as 1.0 when both snapshots are edge-less).
    pub fn stability(&self) -> f64 {
        let union = self.appeared + self.vanished + self.persisted;
        if union == 0 {
            1.0
        } else {
            self.persisted as f64 / union as f64
        }
    }
}

/// Accumulated statistics over a whole sequence of network snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsSummary {
    /// Number of snapshots observed.
    pub snapshots: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Edge count of every snapshot, in order.
    pub edge_counts: Vec<usize>,
    /// Per-transition deltas (one fewer than `snapshots`).
    pub deltas: Vec<SnapshotDelta>,
    /// For every unordered pair (packed upper-triangle order), the number of
    /// snapshots in which it was an edge.
    edge_presence: Vec<usize>,
    /// For every unordered pair, the number of edge ↔ non-edge state flips
    /// across consecutive snapshots.
    flip_counts: Vec<usize>,
}

impl DynamicsSummary {
    /// Fraction of snapshots in which the pair `(i, j)` was connected.
    pub fn edge_persistence(&self, i: usize, j: usize) -> f64 {
        if self.snapshots == 0 || i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.edge_presence[pair_index(a, b, self.nodes)] as f64 / self.snapshots as f64
    }

    /// Number of state flips of the pair `(i, j)` across the sequence.
    pub fn flip_count(&self, i: usize, j: usize) -> usize {
        if i == j {
            return 0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.flip_counts[pair_index(a, b, self.nodes)]
    }

    /// Pairs that were edges in *every* snapshot — the stable backbone of the
    /// evolving network.
    pub fn backbone(&self) -> Vec<(usize, usize)> {
        if self.snapshots == 0 {
            return Vec::new();
        }
        self.pairs_where(|idx| self.edge_presence[idx] == self.snapshots)
    }

    /// Pairs that changed state (edge ↔ non-edge) at least `min_flips` times
    /// across the sequence — the "blinking links" climate studies track
    /// around events such as El Niño.
    pub fn blinking_links(&self, min_flips: usize) -> Vec<(usize, usize)> {
        self.pairs_where(|idx| self.flip_counts[idx] >= min_flips)
    }

    /// Mean Jaccard stability across consecutive snapshots.
    pub fn mean_stability(&self) -> f64 {
        if self.deltas.is_empty() {
            return 1.0;
        }
        self.deltas.iter().map(|d| d.stability()).sum::<f64>() / self.deltas.len() as f64
    }

    fn pairs_where(&self, predicate: impl Fn(usize) -> bool) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                if predicate(pair_index(i, j, self.nodes)) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Incrementally tracks network dynamics as snapshots arrive.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsTracker {
    nodes: usize,
    snapshots: usize,
    edge_counts: Vec<usize>,
    deltas: Vec<SnapshotDelta>,
    edge_presence: Vec<usize>,
    flip_counts: Vec<usize>,
    previous: Option<AdjacencyMatrix>,
}

impl DynamicsTracker {
    /// Create a tracker for networks over `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        let pairs = nodes * nodes.saturating_sub(1) / 2;
        Self {
            nodes,
            snapshots: 0,
            edge_counts: Vec::new(),
            deltas: Vec::new(),
            edge_presence: vec![0; pairs],
            flip_counts: vec![0; pairs],
            previous: None,
        }
    }

    /// Record one snapshot. Panics if the node count differs from the
    /// tracker's.
    pub fn observe(&mut self, snapshot: &AdjacencyMatrix) {
        assert_eq!(snapshot.len(), self.nodes, "snapshot node count mismatch");
        self.snapshots += 1;
        self.edge_counts.push(snapshot.edge_count());
        for (slot, present) in self.edge_presence.iter_mut().zip(snapshot.upper_triangle()) {
            *slot += usize::from(*present);
        }
        if let Some(prev) = &self.previous {
            self.deltas.push(SnapshotDelta::between(prev, snapshot));
            for ((flips, was), is) in self
                .flip_counts
                .iter_mut()
                .zip(prev.upper_triangle())
                .zip(snapshot.upper_triangle())
            {
                if was != is {
                    *flips += 1;
                }
            }
        }
        self.previous = Some(snapshot.clone());
    }

    /// Number of snapshots observed so far.
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }

    /// Finish tracking and produce the summary.
    pub fn summarize(self) -> DynamicsSummary {
        DynamicsSummary {
            snapshots: self.snapshots,
            nodes: self.nodes,
            edge_counts: self.edge_counts,
            deltas: self.deltas,
            edge_presence: self.edge_presence,
            flip_counts: self.flip_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> AdjacencyMatrix {
        let mut adj = AdjacencyMatrix::empty(n);
        for &(a, b) in edges {
            adj.set_edge(a, b, true);
        }
        adj
    }

    #[test]
    fn delta_counts_edge_changes() {
        let a = adjacency(4, &[(0, 1), (1, 2)]);
        let b = adjacency(4, &[(1, 2), (2, 3)]);
        let d = SnapshotDelta::between(&a, &b);
        assert_eq!(d.appeared, 1);
        assert_eq!(d.vanished, 1);
        assert_eq!(d.persisted, 1);
        assert!((d.stability() - 1.0 / 3.0).abs() < 1e-12);
        // Identical snapshots are perfectly stable.
        assert_eq!(SnapshotDelta::between(&a, &a).stability(), 1.0);
        // Edge-less snapshots are defined as stable too.
        let empty = adjacency(4, &[]);
        assert_eq!(SnapshotDelta::between(&empty, &empty).stability(), 1.0);
    }

    #[test]
    #[should_panic(expected = "same node set")]
    fn delta_rejects_mismatched_sizes() {
        SnapshotDelta::between(&adjacency(3, &[]), &adjacency(4, &[]));
    }

    #[test]
    fn tracker_accumulates_presence_flips_and_backbone() {
        let mut tracker = DynamicsTracker::new(4);
        tracker.observe(&adjacency(4, &[(0, 1), (1, 2)]));
        tracker.observe(&adjacency(4, &[(0, 1), (2, 3)]));
        tracker.observe(&adjacency(4, &[(0, 1), (1, 2)]));
        assert_eq!(tracker.snapshots(), 3);
        let summary = tracker.summarize();

        assert_eq!(summary.edge_counts, vec![2, 2, 2]);
        assert_eq!(summary.deltas.len(), 2);
        assert!((summary.edge_persistence(0, 1) - 1.0).abs() < 1e-12);
        assert!((summary.edge_persistence(1, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((summary.edge_persistence(2, 3) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(summary.edge_persistence(1, 1), 0.0);

        assert_eq!(summary.backbone(), vec![(0, 1)]);
        // (1,2) flipped off then on again → 2 flips; (2,3) flipped on then
        // off → 2 flips; (0,1) never flipped.
        assert_eq!(summary.flip_count(1, 2), 2);
        assert_eq!(summary.flip_count(2, 3), 2);
        assert_eq!(summary.flip_count(0, 1), 0);
        let blinking = summary.blinking_links(2);
        assert!(blinking.contains(&(1, 2)));
        assert!(blinking.contains(&(2, 3)));
        assert!(!blinking.contains(&(0, 1)));
        assert!(summary.mean_stability() > 0.0 && summary.mean_stability() < 1.0);
    }

    #[test]
    fn empty_tracker_summarizes_cleanly() {
        let summary = DynamicsTracker::new(3).summarize();
        assert_eq!(summary.snapshots, 0);
        assert!(summary.backbone().is_empty());
        assert_eq!(summary.mean_stability(), 1.0);
        assert_eq!(summary.edge_persistence(0, 1), 0.0);
        assert!(summary.blinking_links(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn tracker_rejects_mismatched_snapshots() {
        let mut tracker = DynamicsTracker::new(3);
        tracker.observe(&adjacency(4, &[]));
    }
}
