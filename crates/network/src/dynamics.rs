//! Network dynamics: analysing how the climate network changes over a
//! sequence of query windows.
//!
//! The paper motivates TSUBASA with network-dynamics studies (Berezin et al.,
//! "Stability of Climate Networks with Time"): scientists construct one
//! network per hypothesized time window and study how edges appear, vanish,
//! and persist. This module provides the bookkeeping for such studies on top
//! of a sequence of [`AdjacencyMatrix`] snapshots (produced either by
//! repeated historical queries or by the real-time updater).

use tsubasa_core::delta::EdgeDelta;
use tsubasa_core::error::{Error, Result};
use tsubasa_core::matrix::AdjacencyMatrix;
use tsubasa_core::sketch::pair_index;

/// Edge-level change between two consecutive network snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SnapshotDelta {
    /// Edges present in the new snapshot but not the previous one.
    pub appeared: usize,
    /// Edges present in the previous snapshot but not the new one.
    pub vanished: usize,
    /// Edges present in both.
    pub persisted: usize,
}

impl SnapshotDelta {
    /// Compare two consecutive snapshots. Returns
    /// [`Error::Mismatch`] when the node counts differ (this used to panic,
    /// which took down real-time consumers on a mis-routed snapshot).
    pub fn between(previous: &AdjacencyMatrix, current: &AdjacencyMatrix) -> Result<Self> {
        if previous.len() != current.len() {
            return Err(Error::Mismatch {
                expected: previous.len(),
                found: current.len(),
            });
        }
        let mut delta = SnapshotDelta::default();
        for (p, c) in previous
            .upper_triangle()
            .iter()
            .zip(current.upper_triangle())
        {
            match (p, c) {
                (false, true) => delta.appeared += 1,
                (true, false) => delta.vanished += 1,
                (true, true) => delta.persisted += 1,
                (false, false) => {}
            }
        }
        Ok(delta)
    }

    /// Jaccard stability of the edge set: persisted edges over the union of
    /// both edge sets (1.0 when nothing changed, 0.0 when the edge sets are
    /// disjoint; defined as 1.0 when both snapshots are edge-less).
    pub fn stability(&self) -> f64 {
        let union = self.appeared + self.vanished + self.persisted;
        if union == 0 {
            1.0
        } else {
            self.persisted as f64 / union as f64
        }
    }
}

/// Accumulated statistics over a whole sequence of network snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsSummary {
    /// Number of snapshots observed.
    pub snapshots: usize,
    /// Number of nodes.
    pub nodes: usize,
    /// Edge count of every snapshot, in order.
    pub edge_counts: Vec<usize>,
    /// Per-transition deltas (one fewer than `snapshots`).
    pub deltas: Vec<SnapshotDelta>,
    /// For every unordered pair (packed upper-triangle order), the number of
    /// snapshots in which it was an edge.
    edge_presence: Vec<usize>,
    /// For every unordered pair, the number of edge ↔ non-edge state flips
    /// across consecutive snapshots.
    flip_counts: Vec<usize>,
}

impl DynamicsSummary {
    /// Fraction of snapshots in which the pair `(i, j)` was connected.
    pub fn edge_persistence(&self, i: usize, j: usize) -> f64 {
        if self.snapshots == 0 || i == j {
            return 0.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.edge_presence[pair_index(a, b, self.nodes)] as f64 / self.snapshots as f64
    }

    /// Number of state flips of the pair `(i, j)` across the sequence.
    pub fn flip_count(&self, i: usize, j: usize) -> usize {
        if i == j {
            return 0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.flip_counts[pair_index(a, b, self.nodes)]
    }

    /// Pairs that were edges in *every* snapshot — the stable backbone of the
    /// evolving network.
    pub fn backbone(&self) -> Vec<(usize, usize)> {
        if self.snapshots == 0 {
            return Vec::new();
        }
        self.pairs_where(|idx| self.edge_presence[idx] == self.snapshots)
    }

    /// Pairs that changed state (edge ↔ non-edge) at least `min_flips` times
    /// across the sequence — the "blinking links" climate studies track
    /// around events such as El Niño.
    pub fn blinking_links(&self, min_flips: usize) -> Vec<(usize, usize)> {
        self.pairs_where(|idx| self.flip_counts[idx] >= min_flips)
    }

    /// Mean Jaccard stability across consecutive snapshots.
    pub fn mean_stability(&self) -> f64 {
        if self.deltas.is_empty() {
            return 1.0;
        }
        self.deltas.iter().map(|d| d.stability()).sum::<f64>() / self.deltas.len() as f64
    }

    fn pairs_where(&self, predicate: impl Fn(usize) -> bool) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.nodes {
            for j in (i + 1)..self.nodes {
                if predicate(pair_index(i, j, self.nodes)) {
                    out.push((i, j));
                }
            }
        }
        out
    }
}

/// Incrementally tracks network dynamics as snapshots arrive.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsTracker {
    nodes: usize,
    snapshots: usize,
    edge_counts: Vec<usize>,
    deltas: Vec<SnapshotDelta>,
    edge_presence: Vec<usize>,
    flip_counts: Vec<usize>,
    previous: Option<AdjacencyMatrix>,
}

impl DynamicsTracker {
    /// Create a tracker for networks over `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        let pairs = nodes * nodes.saturating_sub(1) / 2;
        Self {
            nodes,
            snapshots: 0,
            edge_counts: Vec::new(),
            deltas: Vec::new(),
            edge_presence: vec![0; pairs],
            flip_counts: vec![0; pairs],
            previous: None,
        }
    }

    /// Record one snapshot. Returns [`Error::Mismatch`] when the node count
    /// differs from the tracker's, leaving the tracker untouched (this used
    /// to panic).
    pub fn observe(&mut self, snapshot: &AdjacencyMatrix) -> Result<()> {
        if snapshot.len() != self.nodes {
            return Err(Error::Mismatch {
                expected: self.nodes,
                found: snapshot.len(),
            });
        }
        self.snapshots += 1;
        self.edge_counts.push(snapshot.edge_count());
        for (slot, present) in self.edge_presence.iter_mut().zip(snapshot.upper_triangle()) {
            *slot += usize::from(*present);
        }
        if let Some(prev) = &self.previous {
            self.deltas.push(SnapshotDelta::between(prev, snapshot)?);
            for ((flips, was), is) in self
                .flip_counts
                .iter_mut()
                .zip(prev.upper_triangle())
                .zip(snapshot.upper_triangle())
            {
                if was != is {
                    *flips += 1;
                }
            }
        }
        self.previous = Some(snapshot.clone());
        Ok(())
    }

    /// Number of snapshots observed so far.
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }

    /// Finish tracking and produce the summary.
    pub fn summarize(self) -> DynamicsSummary {
        DynamicsSummary {
            snapshots: self.snapshots,
            nodes: self.nodes,
            edge_counts: self.edge_counts,
            deltas: self.deltas,
            edge_presence: self.edge_presence,
            flip_counts: self.flip_counts,
        }
    }
}

/// Builds a [`DynamicsSummary`] directly from a baseline snapshot plus the
/// [`EdgeDelta`] stream of a subscribed sliding updater — no snapshot
/// sequence is ever materialized, and each tick costs `O(changed edges)`
/// instead of the tracker's `O(N²)` snapshot scan.
///
/// [`DynamicsBuilder::summarize`] is guaranteed equal (`PartialEq` on
/// [`DynamicsSummary`]) to feeding [`DynamicsTracker`] the full re-thresholded
/// snapshot after every tick: per-pair presence is accounted with run-length
/// credits (a pair's presence counter is settled only when its edge run ends,
/// or at summarize time for still-open runs).
#[derive(Debug, Clone)]
pub struct DynamicsBuilder {
    nodes: usize,
    snapshots: usize,
    edge_counts: Vec<usize>,
    deltas: Vec<SnapshotDelta>,
    /// Presence credit from *closed* edge runs; open runs are settled lazily.
    edge_presence: Vec<usize>,
    flip_counts: Vec<usize>,
    /// Current edge bit per packed pair.
    edges: Vec<bool>,
    /// For pairs whose bit is currently set: snapshot index where the run
    /// started (undefined otherwise).
    run_start: Vec<usize>,
}

impl DynamicsBuilder {
    /// Start from the baseline snapshot a subscription returned (e.g.
    /// [`SlidingNetwork::subscribe_edges`]). The baseline counts as the
    /// first observed snapshot.
    ///
    /// [`SlidingNetwork::subscribe_edges`]:
    ///     tsubasa_core::incremental::SlidingNetwork::subscribe_edges
    pub fn new(initial: &AdjacencyMatrix) -> Self {
        let nodes = initial.len();
        let edges: Vec<bool> = initial.upper_triangle().to_vec();
        let pairs = edges.len();
        // Pairs present in the baseline open their run at snapshot 0, which
        // the zero-initialised `run_start` already encodes.
        let run_start = vec![0usize; pairs];
        Self {
            nodes,
            snapshots: 1,
            edge_counts: vec![initial.edge_count()],
            deltas: Vec::new(),
            edge_presence: vec![0; pairs],
            flip_counts: vec![0; pairs],
            edges,
            run_start,
        }
    }

    /// Fold in the delta of one ingest tick. Returns [`Error::Mismatch`]
    /// when the delta covers a different node set, leaving the builder
    /// untouched.
    pub fn push_delta(&mut self, delta: &EdgeDelta) -> Result<()> {
        if delta.nodes != self.nodes {
            return Err(Error::Mismatch {
                expected: self.nodes,
                found: delta.nodes,
            });
        }
        let s = self.snapshots; // index of the snapshot this delta produces
        let prev_edges = *self.edge_counts.last().expect("baseline always present");
        for &(i, j) in &delta.appeared {
            let p = pair_index(i, j, self.nodes);
            debug_assert!(!self.edges[p], "appeared edge was already present");
            self.edges[p] = true;
            self.run_start[p] = s;
            self.flip_counts[p] += 1;
        }
        for &(i, j) in &delta.vanished {
            let p = pair_index(i, j, self.nodes);
            debug_assert!(self.edges[p], "vanished edge was already absent");
            self.edges[p] = false;
            self.edge_presence[p] += s - self.run_start[p];
            self.flip_counts[p] += 1;
        }
        self.deltas.push(SnapshotDelta {
            appeared: delta.appeared.len(),
            vanished: delta.vanished.len(),
            persisted: prev_edges - delta.vanished.len(),
        });
        self.edge_counts
            .push(prev_edges + delta.appeared.len() - delta.vanished.len());
        self.snapshots += 1;
        Ok(())
    }

    /// Number of snapshots covered so far (baseline included).
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }

    /// Finish and produce the summary, settling the presence credit of every
    /// still-open edge run.
    pub fn summarize(mut self) -> DynamicsSummary {
        for (p, &present) in self.edges.iter().enumerate() {
            if present {
                self.edge_presence[p] += self.snapshots - self.run_start[p];
            }
        }
        DynamicsSummary {
            snapshots: self.snapshots,
            nodes: self.nodes,
            edge_counts: self.edge_counts,
            deltas: self.deltas,
            edge_presence: self.edge_presence,
            flip_counts: self.flip_counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> AdjacencyMatrix {
        let mut adj = AdjacencyMatrix::empty(n);
        for &(a, b) in edges {
            adj.set_edge(a, b, true);
        }
        adj
    }

    #[test]
    fn delta_counts_edge_changes() {
        let a = adjacency(4, &[(0, 1), (1, 2)]);
        let b = adjacency(4, &[(1, 2), (2, 3)]);
        let d = SnapshotDelta::between(&a, &b).unwrap();
        assert_eq!(d.appeared, 1);
        assert_eq!(d.vanished, 1);
        assert_eq!(d.persisted, 1);
        assert!((d.stability() - 1.0 / 3.0).abs() < 1e-12);
        // Identical snapshots are perfectly stable.
        assert_eq!(SnapshotDelta::between(&a, &a).unwrap().stability(), 1.0);
        // Edge-less snapshots are defined as stable too.
        let empty = adjacency(4, &[]);
        assert_eq!(
            SnapshotDelta::between(&empty, &empty).unwrap().stability(),
            1.0
        );
    }

    #[test]
    fn delta_rejects_mismatched_sizes() {
        let err = SnapshotDelta::between(&adjacency(3, &[]), &adjacency(4, &[])).unwrap_err();
        assert_eq!(
            err,
            Error::Mismatch {
                expected: 3,
                found: 4
            }
        );
        assert!(err.to_string().contains("same node set"));
    }

    #[test]
    fn tracker_accumulates_presence_flips_and_backbone() {
        let mut tracker = DynamicsTracker::new(4);
        tracker.observe(&adjacency(4, &[(0, 1), (1, 2)])).unwrap();
        tracker.observe(&adjacency(4, &[(0, 1), (2, 3)])).unwrap();
        tracker.observe(&adjacency(4, &[(0, 1), (1, 2)])).unwrap();
        assert_eq!(tracker.snapshots(), 3);
        let summary = tracker.summarize();

        assert_eq!(summary.edge_counts, vec![2, 2, 2]);
        assert_eq!(summary.deltas.len(), 2);
        assert!((summary.edge_persistence(0, 1) - 1.0).abs() < 1e-12);
        assert!((summary.edge_persistence(1, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((summary.edge_persistence(2, 3) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(summary.edge_persistence(1, 1), 0.0);

        assert_eq!(summary.backbone(), vec![(0, 1)]);
        // (1,2) flipped off then on again → 2 flips; (2,3) flipped on then
        // off → 2 flips; (0,1) never flipped.
        assert_eq!(summary.flip_count(1, 2), 2);
        assert_eq!(summary.flip_count(2, 3), 2);
        assert_eq!(summary.flip_count(0, 1), 0);
        let blinking = summary.blinking_links(2);
        assert!(blinking.contains(&(1, 2)));
        assert!(blinking.contains(&(2, 3)));
        assert!(!blinking.contains(&(0, 1)));
        assert!(summary.mean_stability() > 0.0 && summary.mean_stability() < 1.0);
    }

    #[test]
    fn empty_tracker_summarizes_cleanly() {
        let summary = DynamicsTracker::new(3).summarize();
        assert_eq!(summary.snapshots, 0);
        assert!(summary.backbone().is_empty());
        assert_eq!(summary.mean_stability(), 1.0);
        assert_eq!(summary.edge_persistence(0, 1), 0.0);
        assert!(summary.blinking_links(1).is_empty());
    }

    #[test]
    fn tracker_rejects_mismatched_snapshots() {
        let mut tracker = DynamicsTracker::new(3);
        let err = tracker.observe(&adjacency(4, &[])).unwrap_err();
        assert_eq!(
            err,
            Error::Mismatch {
                expected: 3,
                found: 4
            }
        );
        assert!(err.to_string().contains("node count mismatch"));
        // The failed observe left the tracker untouched.
        assert_eq!(tracker.snapshots(), 0);
        tracker.observe(&adjacency(3, &[(0, 1)])).unwrap();
        assert_eq!(tracker.snapshots(), 1);
    }

    /// Replay a snapshot sequence two ways — full snapshots through the
    /// tracker, baseline + hand-built deltas through the builder — and
    /// require identical summaries.
    fn assert_builder_matches_tracker(snapshots: &[AdjacencyMatrix]) {
        let mut tracker = DynamicsTracker::new(snapshots[0].len());
        for s in snapshots {
            tracker.observe(s).unwrap();
        }

        let mut builder = DynamicsBuilder::new(&snapshots[0]);
        for pair in snapshots.windows(2) {
            let (prev, cur) = (&pair[0], &pair[1]);
            let mut delta = EdgeDelta {
                nodes: cur.len(),
                total_pairs: cur.upper_triangle().len(),
                ..EdgeDelta::default()
            };
            for i in 0..cur.len() {
                for j in (i + 1)..cur.len() {
                    match (prev.has_edge(i, j), cur.has_edge(i, j)) {
                        (false, true) => delta.appeared.push((i, j)),
                        (true, false) => delta.vanished.push((i, j)),
                        _ => {}
                    }
                }
            }
            builder.push_delta(&delta).unwrap();
        }
        assert_eq!(builder.snapshots(), snapshots.len());
        assert_eq!(builder.summarize(), tracker.summarize());
    }

    #[test]
    fn builder_from_deltas_equals_tracker_from_snapshots() {
        assert_builder_matches_tracker(&[
            adjacency(4, &[(0, 1), (1, 2)]),
            adjacency(4, &[(0, 1), (2, 3)]),
            adjacency(4, &[(0, 1), (1, 2)]),
            adjacency(4, &[(0, 1), (1, 2)]),
            adjacency(4, &[]),
            adjacency(4, &[(0, 3), (1, 2), (2, 3)]),
        ]);
        // Single-snapshot sequence: summary is just the baseline.
        assert_builder_matches_tracker(&[adjacency(3, &[(0, 2)])]);
    }

    #[test]
    fn builder_rejects_mismatched_delta() {
        let mut builder = DynamicsBuilder::new(&adjacency(4, &[(0, 1)]));
        let bad = EdgeDelta {
            nodes: 5,
            ..EdgeDelta::default()
        };
        assert_eq!(
            builder.push_delta(&bad).unwrap_err(),
            Error::Mismatch {
                expected: 4,
                found: 5
            }
        );
        assert_eq!(builder.snapshots(), 1);
    }
}
