//! Exporting climate networks for downstream visualization tools
//! (the "visualization and network science tools" box of the paper's
//! Figure 1): a plain edge-list CSV and Graphviz DOT.

use std::fmt::Write as _;

use crate::graph::ClimateNetwork;

/// Render the network as an edge-list CSV with node metadata:
/// `source,target,source_lat,source_lon,target_lat,target_lon,distance_km`.
pub fn to_edge_list_csv(network: &ClimateNetwork) -> String {
    let mut out =
        String::from("source,target,source_lat,source_lon,target_lat,target_lon,distance_km\n");
    for (i, j) in network.edges() {
        let a = network.location(i);
        let b = network.location(j);
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.1}",
            network.name(i),
            network.name(j),
            a.lat,
            a.lon,
            b.lat,
            b.lon,
            network.edge_length_km(i, j)
        );
    }
    out
}

/// Render the network as a Graphviz DOT graph. Node labels are the series
/// names; isolated nodes are included so the rendering shows the full grid.
pub fn to_dot(network: &ClimateNetwork) -> String {
    let mut out = String::from("graph climate_network {\n");
    let _ = writeln!(out, "  // threshold = {}", network.threshold());
    for i in 0..network.node_count() {
        let loc = network.location(i);
        let _ = writeln!(
            out,
            "  n{i} [label=\"{}\", pos=\"{},{}\"];",
            network.name(i),
            loc.lon,
            loc.lat
        );
    }
    for (i, j) in network.edges() {
        let _ = writeln!(out, "  n{i} -- n{j};");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::matrix::AdjacencyMatrix;
    use tsubasa_core::{GeoLocation, SeriesCollection, TimeSeries};

    fn network() -> ClimateNetwork {
        let collection = SeriesCollection::new(vec![
            TimeSeries::new("alpha", GeoLocation::new(10.0, 20.0), vec![0.0, 1.0]),
            TimeSeries::new("beta", GeoLocation::new(11.0, 20.0), vec![0.0, 1.0]),
            TimeSeries::new("gamma", GeoLocation::new(-5.0, 100.0), vec![0.0, 1.0]),
        ])
        .unwrap();
        let mut adj = AdjacencyMatrix::empty(3);
        adj.set_edge(0, 1, true);
        ClimateNetwork::from_adjacency(&collection, adj, 0.8).unwrap()
    }

    #[test]
    fn edge_list_csv_contains_header_and_edges() {
        let csv = to_edge_list_csv(&network());
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 2); // header + one edge
        assert!(lines[0].starts_with("source,target"));
        assert!(lines[1].starts_with("alpha,beta"));
        assert!(lines[1].contains("10,20,11,20"));
    }

    #[test]
    fn dot_output_lists_all_nodes_and_edges() {
        let dot = to_dot(&network());
        assert!(dot.starts_with("graph climate_network {"));
        assert!(dot.contains("threshold = 0.8"));
        assert!(dot.contains("n0 [label=\"alpha\""));
        assert!(dot.contains("n2 [label=\"gamma\""));
        assert!(dot.contains("n0 -- n1;"));
        assert!(!dot.contains("n1 -- n2"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
