//! The annotated climate-network graph.

use serde::{Deserialize, Serialize};
use tsubasa_core::error::{Error, Result};
use tsubasa_core::matrix::{AdjacencyMatrix, CorrelationMatrix};
use tsubasa_core::sweep::EdgeList;
use tsubasa_core::{GeoLocation, SeriesCollection};

/// A climate network: the thresholded adjacency matrix plus the geographic
/// metadata of its nodes. Nodes are identified by their series id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClimateNetwork {
    adjacency: AdjacencyMatrix,
    names: Vec<String>,
    locations: Vec<GeoLocation>,
    threshold: f64,
}

impl ClimateNetwork {
    /// Build a network from a correlation matrix, the collection that
    /// produced it (for node metadata), and a threshold θ.
    pub fn from_matrix(
        collection: &SeriesCollection,
        matrix: &CorrelationMatrix,
        threshold: f64,
    ) -> Result<Self> {
        if matrix.len() != collection.len() {
            return Err(Error::SketchMismatch {
                requested: format!("{} nodes", collection.len()),
                available: format!("{}x{} matrix", matrix.len(), matrix.len()),
            });
        }
        if !(-1.0..=1.0).contains(&threshold) {
            return Err(Error::InvalidThreshold(threshold));
        }
        Ok(Self {
            adjacency: matrix.threshold(threshold)?,
            names: collection.iter().map(|s| s.name.clone()).collect(),
            locations: collection.iter().map(|s| s.location).collect(),
            threshold,
        })
    }

    /// Build a network from a streamed-sweep [`EdgeList`]
    /// (`network_streamed` / the parallel engine's store-backed sweep) —
    /// the dense correlation matrix never has to exist. The edge list's NaN
    /// audit count is carried onto the adjacency matrix.
    pub fn from_edge_list(
        collection: &SeriesCollection,
        edges: &EdgeList,
        threshold: f64,
    ) -> Result<Self> {
        if edges.node_count() != collection.len() {
            return Err(Error::SketchMismatch {
                requested: format!("{} nodes", collection.len()),
                available: format!("{} edge-list nodes", edges.node_count()),
            });
        }
        if !(-1.0..=1.0).contains(&threshold) {
            return Err(Error::InvalidThreshold(threshold));
        }
        Ok(Self {
            adjacency: edges.to_adjacency(),
            names: collection.iter().map(|s| s.name.clone()).collect(),
            locations: collection.iter().map(|s| s.location).collect(),
            threshold,
        })
    }

    /// Wrap an existing adjacency matrix with node metadata.
    pub fn from_adjacency(
        collection: &SeriesCollection,
        adjacency: AdjacencyMatrix,
        threshold: f64,
    ) -> Result<Self> {
        if adjacency.len() != collection.len() {
            return Err(Error::SketchMismatch {
                requested: format!("{} nodes", collection.len()),
                available: format!("{} adjacency nodes", adjacency.len()),
            });
        }
        Ok(Self {
            adjacency,
            names: collection.iter().map(|s| s.name.clone()).collect(),
            locations: collection.iter().map(|s| s.location).collect(),
            threshold,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.edge_count()
    }

    /// The threshold the network was built with.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The underlying adjacency matrix.
    pub fn adjacency(&self) -> &AdjacencyMatrix {
        &self.adjacency
    }

    /// Name of node `i`.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Location of node `i`.
    pub fn location(&self, i: usize) -> GeoLocation {
        self.locations[i]
    }

    /// Whether nodes `i` and `j` are connected.
    pub fn has_edge(&self, i: usize, j: usize) -> bool {
        self.adjacency.has_edge(i, j)
    }

    /// The neighbours of node `i`.
    pub fn neighbours(&self, i: usize) -> Vec<usize> {
        (0..self.node_count())
            .filter(|&j| j != i && self.adjacency.has_edge(i, j))
            .collect()
    }

    /// Degree of node `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adjacency.degree(i)
    }

    /// Iterate over all edges as `(i, j)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adjacency.iter_edges()
    }

    /// Geodesic length (km) of an edge — useful for studying the
    /// teleconnection structure of the network (long edges connect distant,
    /// yet correlated, locations).
    pub fn edge_length_km(&self, i: usize, j: usize) -> f64 {
        self.locations[i].distance_km(&self.locations[j])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::{GeoLocation, TimeSeries};

    fn collection() -> SeriesCollection {
        SeriesCollection::new(vec![
            TimeSeries::new("a", GeoLocation::new(40.0, -75.0), vec![1.0, 2.0, 3.0, 4.0]),
            TimeSeries::new("b", GeoLocation::new(41.0, -75.0), vec![2.0, 4.0, 6.0, 8.0]),
            TimeSeries::new("c", GeoLocation::new(60.0, 20.0), vec![4.0, 3.0, 2.0, 1.0]),
        ])
        .unwrap()
    }

    fn matrix() -> CorrelationMatrix {
        let mut m = CorrelationMatrix::identity(3);
        m.set(0, 1, 0.99);
        m.set(0, 2, -0.99);
        m.set(1, 2, 0.1);
        m
    }

    #[test]
    fn build_from_matrix_and_query_structure() {
        let net = ClimateNetwork::from_matrix(&collection(), &matrix(), 0.9).unwrap();
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.edge_count(), 1);
        assert!(net.has_edge(0, 1));
        assert!(!net.has_edge(0, 2));
        assert_eq!(net.neighbours(0), vec![1]);
        assert_eq!(net.degree(2), 0);
        assert_eq!(net.name(1), "b");
        assert_eq!(net.threshold(), 0.9);
        assert_eq!(net.edges().collect::<Vec<_>>(), vec![(0, 1)]);
        // Nodes a and b are ~111 km apart (1 degree of latitude).
        let d = net.edge_length_km(0, 1);
        assert!((100.0..125.0).contains(&d), "distance {d}");
    }

    #[test]
    fn build_validates_inputs() {
        let c = collection();
        let m = CorrelationMatrix::identity(5);
        assert!(ClimateNetwork::from_matrix(&c, &m, 0.5).is_err());
        assert!(ClimateNetwork::from_matrix(&c, &matrix(), 1.5).is_err());
        let adj = AdjacencyMatrix::empty(2);
        assert!(ClimateNetwork::from_adjacency(&c, adj, 0.5).is_err());
    }

    #[test]
    fn from_edge_list_matches_from_matrix() {
        let c = collection();
        let m = matrix();
        let dense = ClimateNetwork::from_matrix(&c, &m, 0.9).unwrap();
        let mut sink = tsubasa_core::sweep::EdgeSink::new(0.9);
        tsubasa_core::sweep::sweep_matrix(&m, 16, &mut sink);
        let streamed = ClimateNetwork::from_edge_list(&c, &sink.finish(3), 0.9).unwrap();
        assert_eq!(streamed, dense);
        // Validation still applies.
        let empty = EdgeList::from_parts(2, vec![], 0);
        assert!(ClimateNetwork::from_edge_list(&c, &empty, 0.9).is_err());
        let ok = EdgeList::from_parts(3, vec![(0, 1)], 0);
        assert!(ClimateNetwork::from_edge_list(&c, &ok, 1.5).is_err());
    }

    #[test]
    fn from_adjacency_preserves_edges() {
        let mut adj = AdjacencyMatrix::empty(3);
        adj.set_edge(1, 2, true);
        let net = ClimateNetwork::from_adjacency(&collection(), adj, 0.75).unwrap();
        assert!(net.has_edge(2, 1));
        assert_eq!(net.edge_count(), 1);
        assert_eq!(net.location(0).lat, 40.0);
    }
}
