//! Discrete Fourier Transform primitives.
//!
//! The comparator in the paper assumes the *naive* `O(k²)` DFT (its
//! complexity analysis and Figures 5b/5d hinge on that quadratic cost), so
//! [`naive_dft`] is the default used by the sketching path. A radix-2 FFT is
//! provided as an ablation ([`radix2_fft`]) to quantify how much of the
//! comparator's disadvantage is the transform itself.

use serde::{Deserialize, Serialize};

/// A minimal complex number. We intentionally avoid pulling in an external
/// complex/FFT crate: the comparator only needs addition, multiplication by a
//  twiddle factor, and magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex number `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Multiply by a real scalar.
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }
}

/// The unitary DFT of `x` computed naively in `O(k²)` — paper Equation 2,
/// including the `1/√k` factor so that Parseval's theorem holds exactly
/// (`Σ|X_f|² = Σ|x_i|²`) and Euclidean distances are preserved.
pub fn naive_dft(x: &[f64]) -> Vec<Complex> {
    let k = x.len();
    if k == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (k as f64).sqrt();
    let base = -2.0 * std::f64::consts::PI / k as f64;
    (0..k)
        .map(|f| {
            let mut acc = Complex::default();
            for (i, &v) in x.iter().enumerate() {
                let angle = base * (f as f64) * (i as f64);
                acc = acc + Complex::from_angle(angle).scale(v);
            }
            acc.scale(scale)
        })
        .collect()
}

/// Unitary radix-2 FFT. Falls back to [`naive_dft`] when the length is not a
/// power of two (the sketching path never depends on power-of-two basic
/// windows). Provided for the `dft_vs_fft` ablation benchmark.
pub fn radix2_fft(x: &[f64]) -> Vec<Complex> {
    let k = x.len();
    if k == 0 {
        return Vec::new();
    }
    if !k.is_power_of_two() || k == 1 {
        return naive_dft(x);
    }
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();

    // Bit-reversal permutation.
    let bits = k.trailing_zeros();
    for i in 0..k {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            buf.swap(i, j);
        }
    }

    // Iterative Cooley–Tukey butterflies.
    let mut len = 2;
    while len <= k {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(angle);
        for start in (0..k).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for off in 0..len / 2 {
                let a = buf[start + off];
                let b = buf[start + off + len / 2] * w;
                buf[start + off] = a + b;
                buf[start + off + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }

    let scale = 1.0 / (k as f64).sqrt();
    buf.iter_mut().for_each(|c| *c = c.scale(scale));
    buf
}

/// Euclidean distance between the first `n` coefficients of two DFT
/// coefficient vectors — the paper's `Dist_n(X̂, Ŷ)`.
///
/// When `n` equals the full length this is the exact distance of the
/// underlying (normalized) windows by Parseval's theorem.
pub fn coefficient_distance(x: &[Complex], y: &[Complex], n: usize) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = n.min(x.len());
    x.iter()
        .zip(y)
        .take(n)
        .map(|(a, b)| (*a - *b).norm_sq())
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dft_of_constant_concentrates_in_dc() {
        let x = vec![2.0; 8];
        let coeffs = naive_dft(&x);
        // DC coefficient = sum / sqrt(k) = 16 / sqrt(8).
        assert!((coeffs[0].re - 16.0 / 8f64.sqrt()).abs() < 1e-9);
        for c in &coeffs[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds_for_naive_dft() {
        let x: Vec<f64> = (0..13).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let energy_time: f64 = x.iter().map(|v| v * v).sum();
        let energy_freq: f64 = naive_dft(&x).iter().map(|c| c.norm_sq()).sum();
        assert!((energy_time - energy_freq).abs() < 1e-9);
    }

    #[test]
    fn fft_matches_naive_dft_on_power_of_two() {
        let x: Vec<f64> = (0..16)
            .map(|i| (i as f64 * 0.7).sin() + 0.3 * i as f64)
            .collect();
        let a = naive_dft(&x);
        let b = radix2_fft(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.re - v.re).abs() < 1e-9 && (u.im - v.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_falls_back_on_non_power_of_two() {
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let a = naive_dft(&x);
        let b = radix2_fft(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.re - v.re).abs() < 1e-9);
        }
    }

    #[test]
    fn full_coefficient_distance_equals_time_domain_distance() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos()).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.31).sin() * 1.2).collect();
        let dx = naive_dft(&x);
        let dy = naive_dft(&y);
        let d_freq = coefficient_distance(&dx, &dy, 20);
        assert!((d_freq - euclid(&x, &y)).abs() < 1e-9);
    }

    #[test]
    fn partial_coefficient_distance_is_monotone_in_n() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.25).sin() + 0.1).collect();
        let dx = naive_dft(&x);
        let dy = naive_dft(&y);
        let mut last = 0.0;
        for n in 1..=32 {
            let d = coefficient_distance(&dx, &dy, n);
            assert!(
                d + 1e-12 >= last,
                "distance must grow with more coefficients"
            );
            last = d;
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(naive_dft(&[]).is_empty());
        assert!(radix2_fft(&[]).is_empty());
    }

    proptest! {
        #[test]
        fn prop_fft_equals_naive(
            x in proptest::collection::vec(-100.0f64..100.0, 1..65),
        ) {
            let a = naive_dft(&x);
            let b = radix2_fft(&x);
            for (u, v) in a.iter().zip(&b) {
                prop_assert!((u.re - v.re).abs() < 1e-6);
                prop_assert!((u.im - v.im).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_parseval(
            x in proptest::collection::vec(-50.0f64..50.0, 1..50),
        ) {
            let energy_time: f64 = x.iter().map(|v| v * v).sum();
            let energy_freq: f64 = naive_dft(&x).iter().map(|c| c.norm_sq()).sum();
            prop_assert!((energy_time - energy_freq).abs() < 1e-6);
        }
    }
}
