//! Discrete Fourier Transform primitives.
//!
//! The comparator in the paper assumes the *naive* `O(k²)` DFT (its
//! complexity analysis and Figures 5b/5d hinge on that quadratic cost), so
//! [`naive_dft`] is the default used by the sketching path. A radix-2 FFT is
//! provided as an ablation ([`radix2_fft`]) to quantify how much of the
//! comparator's disadvantage is the transform itself.

use serde::{Deserialize, Serialize};

/// A minimal complex number. We intentionally avoid pulling in an external
/// complex/FFT crate: the comparator only needs addition, multiplication by a
//  twiddle factor, and magnitudes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The complex number `e^{iθ}`.
    pub fn from_angle(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Multiply by a real scalar.
    pub fn scale(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, other: Complex) -> Complex {
        Complex::new(self.re + other.re, self.im + other.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, other: Complex) -> Complex {
        Complex::new(self.re - other.re, self.im - other.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }
}

/// The unitary DFT of `x` computed naively in `O(k²)` — paper Equation 2,
/// including the `1/√k` factor so that Parseval's theorem holds exactly
/// (`Σ|X_f|² = Σ|x_i|²`) and Euclidean distances are preserved.
pub fn naive_dft(x: &[f64]) -> Vec<Complex> {
    let k = x.len();
    if k == 0 {
        return Vec::new();
    }
    let scale = 1.0 / (k as f64).sqrt();
    let base = -2.0 * std::f64::consts::PI / k as f64;
    (0..k)
        .map(|f| {
            let mut acc = Complex::default();
            for (i, &v) in x.iter().enumerate() {
                let angle = base * (f as f64) * (i as f64);
                acc = acc + Complex::from_angle(angle).scale(v);
            }
            acc.scale(scale)
        })
        .collect()
}

/// Unitary radix-2 FFT. Falls back to [`naive_dft`] when the length is not a
/// power of two (the sketching path never depends on power-of-two basic
/// windows). Provided for the `dft_vs_fft` ablation benchmark.
pub fn radix2_fft(x: &[f64]) -> Vec<Complex> {
    let k = x.len();
    if k == 0 {
        return Vec::new();
    }
    if !k.is_power_of_two() || k == 1 {
        return naive_dft(x);
    }
    let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();

    // Bit-reversal permutation.
    let bits = k.trailing_zeros();
    for i in 0..k {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            buf.swap(i, j);
        }
    }

    // Iterative Cooley–Tukey butterflies.
    let mut len = 2;
    while len <= k {
        let angle = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_angle(angle);
        for start in (0..k).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for off in 0..len / 2 {
                let a = buf[start + off];
                let b = buf[start + off + len / 2] * w;
                buf[start + off] = a + b;
                buf[start + off + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }

    let scale = 1.0 / (k as f64).sqrt();
    buf.iter_mut().for_each(|c| *c = c.scale(scale));
    buf
}

/// A reusable transform plan: the iterative radix-2 FFT with its
/// bit-reversal permutation and per-stage twiddle factors precomputed once
/// per window size, falling back to the naive `O(B²)` DFT for non-power-of-
/// two sizes.
///
/// The sketching paths transform *every basic window of every series* at the
/// same length `B`, so the planner amortizes the table setup across the
/// whole sweep and replaces the sequential `w ← w·w_len` twiddle recurrence
/// of [`radix2_fft`] with table lookups. For power-of-two `B` this turns the
/// comparator's per-window cost from `O(B²)` into `O(B log B)`; otherwise
/// the plan degenerates to [`naive_dft`] so behaviour (and the paper's cost
/// model) is unchanged. Agreement with [`naive_dft`] is unit-tested at both
/// parities.
#[derive(Debug, Clone)]
pub struct DftPlanner {
    size: usize,
    /// Bit-reversal permutation of `0..size`; empty when the plan falls back
    /// to the naive transform.
    bitrev: Vec<usize>,
    /// `twiddles[s][off] = e^{-2πi·off/len}` for stage `len = 2^(s+1)`.
    twiddles: Vec<Vec<Complex>>,
}

impl DftPlanner {
    /// Plan transforms of length `size`.
    pub fn new(size: usize) -> Self {
        if !size.is_power_of_two() || size < 2 {
            return Self {
                size,
                bitrev: Vec::new(),
                twiddles: Vec::new(),
            };
        }
        let bits = size.trailing_zeros();
        let bitrev = (0..size)
            .map(|i| ((i as u32).reverse_bits() >> (32 - bits)) as usize)
            .collect();
        let mut twiddles = Vec::with_capacity(bits as usize);
        let mut len = 2;
        while len <= size {
            let angle = -2.0 * std::f64::consts::PI / len as f64;
            twiddles.push(
                (0..len / 2)
                    .map(|off| Complex::from_angle(angle * off as f64))
                    .collect(),
            );
            len <<= 1;
        }
        Self {
            size,
            bitrev,
            twiddles,
        }
    }

    /// The window size this plan was built for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// True when the plan runs the radix-2 FFT (power-of-two size); false
    /// when it falls back to the naive transform.
    pub fn uses_fft(&self) -> bool {
        !self.bitrev.is_empty()
    }

    /// Transform one window. Inputs of a different length than the planned
    /// size (or a non-power-of-two plan) take the fallback path
    /// ([`radix2_fft`], which itself degrades to [`naive_dft`]).
    pub fn transform(&self, x: &[f64]) -> Vec<Complex> {
        if x.len() != self.size || !self.uses_fft() {
            return radix2_fft(x);
        }
        let k = self.size;
        let mut buf: Vec<Complex> = (0..k)
            .map(|i| Complex::new(x[self.bitrev[i]], 0.0))
            .collect();
        let mut len = 2;
        let mut stage = 0;
        while len <= k {
            let tw = &self.twiddles[stage];
            for start in (0..k).step_by(len) {
                for (off, &w) in tw.iter().enumerate() {
                    let a = buf[start + off];
                    let b = buf[start + off + len / 2] * w;
                    buf[start + off] = a + b;
                    buf[start + off + len / 2] = a - b;
                }
            }
            len <<= 1;
            stage += 1;
        }
        let scale = 1.0 / (k as f64).sqrt();
        buf.iter_mut().for_each(|c| *c = c.scale(scale));
        buf
    }
}

/// Euclidean distance between the first `n` coefficients of two DFT
/// coefficient vectors — the paper's `Dist_n(X̂, Ŷ)`.
///
/// When `n` equals the full length this is the exact distance of the
/// underlying (normalized) windows by Parseval's theorem.
pub fn coefficient_distance(x: &[Complex], y: &[Complex], n: usize) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let n = n.min(x.len());
    x.iter()
        .zip(y)
        .take(n)
        .map(|(a, b)| (*a - *b).norm_sq())
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn euclid(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dft_of_constant_concentrates_in_dc() {
        let x = vec![2.0; 8];
        let coeffs = naive_dft(&x);
        // DC coefficient = sum / sqrt(k) = 16 / sqrt(8).
        assert!((coeffs[0].re - 16.0 / 8f64.sqrt()).abs() < 1e-9);
        for c in &coeffs[1..] {
            assert!(c.abs() < 1e-9);
        }
    }

    #[test]
    fn parseval_holds_for_naive_dft() {
        let x: Vec<f64> = (0..13).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let energy_time: f64 = x.iter().map(|v| v * v).sum();
        let energy_freq: f64 = naive_dft(&x).iter().map(|c| c.norm_sq()).sum();
        assert!((energy_time - energy_freq).abs() < 1e-9);
    }

    #[test]
    fn fft_matches_naive_dft_on_power_of_two() {
        let x: Vec<f64> = (0..16)
            .map(|i| (i as f64 * 0.7).sin() + 0.3 * i as f64)
            .collect();
        let a = naive_dft(&x);
        let b = radix2_fft(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.re - v.re).abs() < 1e-9 && (u.im - v.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_falls_back_on_non_power_of_two() {
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let a = naive_dft(&x);
        let b = radix2_fft(&x);
        for (u, v) in a.iter().zip(&b) {
            assert!((u.re - v.re).abs() < 1e-9);
        }
    }

    #[test]
    fn full_coefficient_distance_equals_time_domain_distance() {
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.3).cos()).collect();
        let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.31).sin() * 1.2).collect();
        let dx = naive_dft(&x);
        let dy = naive_dft(&y);
        let d_freq = coefficient_distance(&dx, &dy, 20);
        assert!((d_freq - euclid(&x, &y)).abs() < 1e-9);
    }

    #[test]
    fn partial_coefficient_distance_is_monotone_in_n() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.2).sin()).collect();
        let y: Vec<f64> = (0..32).map(|i| (i as f64 * 0.25).sin() + 0.1).collect();
        let dx = naive_dft(&x);
        let dy = naive_dft(&y);
        let mut last = 0.0;
        for n in 1..=32 {
            let d = coefficient_distance(&dx, &dy, n);
            assert!(
                d + 1e-12 >= last,
                "distance must grow with more coefficients"
            );
            last = d;
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(naive_dft(&[]).is_empty());
        assert!(radix2_fft(&[]).is_empty());
        assert!(DftPlanner::new(0).transform(&[]).is_empty());
    }

    #[test]
    fn planner_matches_naive_dft_on_power_of_two() {
        for k in [2usize, 8, 32, 128] {
            let plan = DftPlanner::new(k);
            assert!(plan.uses_fft());
            assert_eq!(plan.size(), k);
            let x: Vec<f64> = (0..k)
                .map(|i| (i as f64 * 0.37).sin() * 2.0 + 0.1 * i as f64)
                .collect();
            let fast = plan.transform(&x);
            let reference = naive_dft(&x);
            for (u, v) in fast.iter().zip(&reference) {
                assert!(
                    (u.re - v.re).abs() < 1e-9 && (u.im - v.im).abs() < 1e-9,
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn planner_falls_back_to_naive_on_other_sizes() {
        for k in [1usize, 3, 12, 50] {
            let plan = DftPlanner::new(k);
            assert!(!plan.uses_fft());
            let x: Vec<f64> = (0..k).map(|i| i as f64 * 0.5 - 1.0).collect();
            let fast = plan.transform(&x);
            let reference = naive_dft(&x);
            for (u, v) in fast.iter().zip(&reference) {
                assert!((u.re - v.re).abs() < 1e-9 && (u.im - v.im).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn planner_handles_mismatched_input_length() {
        let plan = DftPlanner::new(16);
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let fast = plan.transform(&x); // falls back to the unplanned path
        let reference = naive_dft(&x);
        for (u, v) in fast.iter().zip(&reference) {
            assert!((u.re - v.re).abs() < 1e-9);
        }
    }

    proptest! {
        #[test]
        fn prop_planner_equals_naive(
            x in proptest::collection::vec(-100.0f64..100.0, 1..130),
        ) {
            let plan = DftPlanner::new(x.len());
            let a = naive_dft(&x);
            let b = plan.transform(&x);
            for (u, v) in a.iter().zip(&b) {
                prop_assert!((u.re - v.re).abs() < 1e-6);
                prop_assert!((u.im - v.im).abs() < 1e-6);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_fft_equals_naive(
            x in proptest::collection::vec(-100.0f64..100.0, 1..65),
        ) {
            let a = naive_dft(&x);
            let b = radix2_fft(&x);
            for (u, v) in a.iter().zip(&b) {
                prop_assert!((u.re - v.re).abs() < 1e-6);
                prop_assert!((u.im - v.im).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_parseval(
            x in proptest::collection::vec(-50.0f64..50.0, 1..50),
        ) {
            let energy_time: f64 = x.iter().map(|v| v * v).sum();
            let energy_freq: f64 = naive_dft(&x).iter().map(|c| c.norm_sq()).sum();
            prop_assert!((energy_time - energy_freq).abs() < 1e-6);
        }
    }
}
