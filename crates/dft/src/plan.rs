//! The precomputed all-pairs evaluation plan of the *approximate* query path
//! — the DFT-comparator sibling of [`tsubasa_core::plan::QueryPlan`].
//!
//! The scalar approximate path ([`crate::approx::approximate_pair_correlation`])
//! re-derives, for every one of the `N(N−1)/2` pairs, the per-series half of
//! the Equation 5 recombination (length-weighted query mean, mean offsets δ,
//! the denominator `Σ_j B_j (σ² + δ²)`) and allocates a scratch `Vec` of
//! [`crate::approx::ApproxWindow`] contributions per pair. [`ApproxPlan`]
//! factors that waste out, exactly as `QueryPlan` did for the exact path:
//!
//! * the **per-series window-stat tables** (σ/mean/len, δ offsets, means and
//!   denominators) are computed once per query window — they are literally a
//!   [`QueryPlan`] built from the base sketch's window statistics, so the
//!   flat layouts, the window-major σ/δ transposes and the batch
//!   [`QueryPlan::block_kernel`] are reused wholesale;
//! * the per-pair **correlation estimates** `ĉ_k = 1 − d_k²/2` (Equation 3
//!   applied to the sketched DFT coefficient distances) are materialized once
//!   into a window-major table ([`tsubasa_core::plan::TransposedCorrs`]),
//!   mapped straight from the sketch's window-major distance table
//!   ([`crate::sketch::DftSketchSet::window_dists_view`]);
//! * every pair is then evaluated by the same cache-blocked tiled sweep as
//!   the exact matrix paths — Equation 5 and Lemma 1 share their
//!   recombination algebra, only the per-window correlation source differs.
//!
//! The scalar per-pair path survives as the arithmetic yardstick; the tiled
//! sweep reorders floating-point accumulation, so agreement is the workspace's
//! usual **≤ 1e-10 absolute tolerance contract**, pinned over 256 random
//! configurations by `tests/approx_plan_agreement.rs`.
//!
//! # Equation 4 pruning
//!
//! [`ApproxPlan::network`] builds the thresholded approximate network of
//! Algorithm 4: a pair is an edge when its recombined query-window distance
//! is within the Equation 4 pruning radius `radius(θ) = √(2(1−θ))`. Because
//! partial-coefficient distances never over-estimate (`d̂_j ≤ d_j`), the
//! estimated per-window correlations — and with them the recombined
//! query-window correlation — never under-estimate, so the in-radius pair set
//! is a **superset of the exact network**: false positives possible, false
//! negatives not. [`ApproxPlan::candidate_pairs`] exposes that in-radius set
//! directly for callers that want to pay exact verification only for the
//! surviving candidates.

use std::ops::Range;

use tsubasa_core::capacity::check_dense_budget;
use tsubasa_core::error::{Error, Result};
use tsubasa_core::matrix::{AdjacencyMatrix, CorrelationMatrix};
use tsubasa_core::plan::{carve_for_workers, row_segments, PlanMethod, QueryPlan, TransposedCorrs};
use tsubasa_core::runner::{Job, JobRunner};
use tsubasa_core::sketch::pair_index;
use tsubasa_core::source::EstSource;
use tsubasa_core::stats::clamp_corr;
use tsubasa_core::sweep::{
    sweep_run, CorrelationBounds, EdgeList, TileSink, TopK, TopKSink, DEFAULT_TILE_PAIRS,
};
use tsubasa_core::SeriesId;

use crate::approx::{distance_from_corr, pruning_radius};
use crate::sketch::DftSketchSet;

/// The approximate all-pairs evaluation plan: per-series recombination
/// tables shared by every pair plus a window-major table of per-pair
/// correlation estimates, built **once per query window** from a
/// [`DftSketchSet`]. See the [module docs](self) for the layout story.
///
/// # Example
///
/// ```
/// use tsubasa_core::SeriesCollection;
/// use tsubasa_dft::plan::ApproxPlan;
/// use tsubasa_dft::sketch::{DftSketchSet, Transform};
///
/// let collection = SeriesCollection::from_rows(vec![
///     vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0],
///     vec![2.0, 1.0, 4.0, 3.0, 6.0, 5.0, 8.0, 7.0],
///     vec![9.0, 8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 1.0],
/// ])
/// .unwrap();
/// // All 4 coefficients kept → the approximation is exact (Equation 3).
/// let sketch = DftSketchSet::build(&collection, 4, 4, Transform::Naive).unwrap();
/// let plan = ApproxPlan::build(&sketch, 0..2).unwrap();
/// let matrix = plan.correlation_matrix();
/// assert!(matrix.get(0, 2) < -0.9); // anti-correlated pair
/// let network = plan.network(0.8).unwrap();
/// assert!(network.has_edge(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct ApproxPlan {
    /// Number of series covered.
    n: usize,
    /// The range of sketched basic windows the plan covers.
    windows: Range<usize>,
    /// The per-series half of the Equation 5 recombination — the same flat
    /// tables (and batch kernel) as the exact path's query plan.
    plan: QueryPlan,
    /// Window-major per-pair correlation estimates `ĉ_k = 1 − d_k²/2`.
    corrs: TransposedCorrs,
    /// The recombined packed correlation triangle, swept once on first use —
    /// it is threshold-independent, so probing several θ through one plan
    /// ([`ApproxPlan::network`], [`ApproxPlan::candidate_pairs`],
    /// [`ApproxPlan::correlation_matrix`]) pays the tiled sweep once.
    packed: std::sync::OnceLock<Vec<f64>>,
}

impl ApproxPlan {
    /// Build the plan for an aligned range of sketched basic windows: the
    /// per-series statistic tables come from the base sketch, the per-pair
    /// correlation estimates from the comparator's window-major distance
    /// table. No raw data is needed.
    pub fn build(sketch: &DftSketchSet, windows: Range<usize>) -> Result<Self> {
        Self::from_source(sketch, windows)
    }

    /// Build the plan from **any** estimate-capable source — an in-memory
    /// comparator, or a pile whose `PairEsts` segments persist the same
    /// Equation 3 values. The per-series statistic tables feed
    /// [`QueryPlan::from_window_stats`]; the per-pair estimates come from
    /// [`EstSource::est_table`]. Because both backends store (or map to) the
    /// identical `ĉ = 1 − d²/2` values, plans built from either are
    /// bit-identical.
    pub fn from_source<S: EstSource + ?Sized>(source: &S, windows: Range<usize>) -> Result<Self> {
        let available = source.window_count(PlanMethod::Approximate);
        if windows.end > available || windows.is_empty() {
            return Err(Error::SketchMismatch {
                requested: format!("basic windows {windows:?}"),
                available: format!("{available} sketched windows"),
            });
        }
        let n = source.series_count();
        let stats = source.series_stats(windows.clone())?;
        let plan = QueryPlan::from_window_stats(&stats)?;

        // Equation 3 estimates in the window-major layout the batch kernel
        // streams. In-memory sources map the distance table (`1 − d²/2`, no
        // clamping — unit-normalized windows keep `d ≤ 2`, so `c ≥ −1`
        // already); piles read the identical persisted values back.
        let n_pairs = n * n.saturating_sub(1) / 2;
        check_dense_budget(n_pairs, windows.len())?;
        let corrs = source.est_table(windows.clone())?;
        Ok(Self {
            n,
            windows,
            plan,
            corrs,
            packed: std::sync::OnceLock::new(),
        })
    }

    /// Number of series covered by the plan.
    pub fn series_count(&self) -> usize {
        self.n
    }

    /// The range of sketched basic windows the plan covers.
    pub fn windows(&self) -> Range<usize> {
        self.windows.clone()
    }

    /// The shared per-series recombination tables (the exact path's plan
    /// type, reused verbatim).
    pub fn query_plan(&self) -> &QueryPlan {
        &self.plan
    }

    /// True when series `i` is constant over the query window, i.e. every
    /// pair involving it is degenerate and evaluates to the explicit `0.0`
    /// convention.
    pub fn is_degenerate(&self, i: SeriesId) -> bool {
        self.plan.is_degenerate(i)
    }

    /// Evaluate the contiguous packed-triangle run `start..start + out.len()`
    /// of Equation 5 correlations through the batch kernel, one same-row tile
    /// at a time — the unit of work of both the serial and the parallel
    /// sweeps (a chunk boundary never changes any pair's arithmetic).
    pub fn correlations_into(&self, start: usize, out: &mut [f64]) {
        let corrs = self.corrs.view();
        let mut cursor = 0;
        for (i, j0, len) in row_segments(start, out.len(), self.n) {
            self.plan.block_kernel(
                i,
                j0,
                corrs,
                pair_index(i, j0, self.n),
                &mut out[cursor..cursor + len],
            );
            cursor += len;
        }
    }

    /// The recombined packed correlation triangle, computed by the tiled
    /// sweep on first use and cached (the values do not depend on any
    /// threshold).
    fn packed_correlations(&self) -> &[f64] {
        self.packed.get_or_init(|| {
            let mut values = vec![0.0f64; self.pair_count()];
            self.correlations_into(0, &mut values);
            values
        })
    }

    /// The approximate all-pairs correlation matrix (Equation 5 recombined
    /// through the tiled batch kernel). Degenerate (constant-series) pairs
    /// hold `0.0`, the explicit mapping of [`Error::DegenerateWindow`]
    /// shared with the exact matrix paths.
    pub fn correlation_matrix(&self) -> CorrelationMatrix {
        CorrelationMatrix::from_upper_triangle(self.n, self.packed_correlations().to_vec())
    }

    /// [`ApproxPlan::correlation_matrix`] with the packed triangle split into
    /// disjoint contiguous slices evaluated on `runner`'s workers. Identical
    /// to the serial sweep for any worker count.
    pub fn correlation_matrix_in(&self, runner: &dyn JobRunner) -> CorrelationMatrix {
        let total = self.pair_count();
        let workers = runner.worker_count().max(1).min(total.max(1));
        if workers <= 1 || total == 0 || self.packed.get().is_some() {
            return self.correlation_matrix();
        }
        let mut values = vec![0.0f64; total];
        let jobs: Vec<Job<'_>> = carve_for_workers(&mut values, workers)
            .into_iter()
            .map(|(start, chunk)| Box::new(move || self.correlations_into(start, chunk)) as Job<'_>)
            .collect();
        runner.run(jobs);
        // Chunk boundaries never change any pair's arithmetic, so the
        // parallel sweep may seed the shared cache: serial and parallel
        // entries stay exactly equal either way.
        let values = self.packed.get_or_init(|| values);
        CorrelationMatrix::from_upper_triangle(self.n, values.clone())
    }

    /// The StatStream-average recombination over the same window-major
    /// estimate table: `out[p] = clamp(Σ_k ĉ_k / w)`. Kept for the Figure 5a
    /// comparison of the two strategies; agreement with the scalar
    /// [`crate::approx::statstream_average_correlation`] is within the tiled
    /// tolerance contract.
    pub fn statstream_correlations_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.pair_count());
        out.fill(0.0);
        let w = self.windows.len();
        for k in 0..w {
            let row = self.corrs.view().window_row(k);
            for (slot, &c) in out.iter_mut().zip(row) {
                *slot += c;
            }
        }
        let inv = 1.0 / w as f64;
        for slot in out.iter_mut() {
            *slot = clamp_corr(*slot * inv);
        }
    }

    /// Algorithm 4: the thresholded approximate network under Equation 4
    /// pruning. Every pair's query-window distance is recombined by the tiled
    /// Equation 5 sweep, and only pairs within the pruning radius
    /// `√(2(1−θ))` become edges — a superset of the exact network (false
    /// positives possible, false negatives not, as long as coefficient
    /// distances are not over-estimated; see the [module docs](self)).
    pub fn network(&self, theta: f64) -> Result<AdjacencyMatrix> {
        let mut net = AdjacencyMatrix::empty(self.n);
        for (i, j) in self.candidate_pairs(theta)? {
            net.set_edge(i, j, true);
        }
        Ok(net)
    }

    /// The Equation 4 candidate set: the pairs whose recombined query-window
    /// distance is within the pruning radius for `theta` — exactly the edges
    /// of [`ApproxPlan::network`], as an explicit pair list. Downstream
    /// callers that need the *exact* network pay full Lemma 1 verification
    /// only for these survivors instead of all `N(N−1)/2` pairs. The
    /// underlying correlations are threshold-independent and cached, so
    /// probing several θ sweeps once.
    pub fn candidate_pairs(&self, theta: f64) -> Result<Vec<(SeriesId, SeriesId)>> {
        if !(-1.0..=1.0).contains(&theta) {
            return Err(Error::InvalidThreshold(theta));
        }
        let radius = pruning_radius(theta);
        let values = self.packed_correlations();
        let mut out = Vec::new();
        let mut p = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if distance_from_corr(values[p]) <= radius {
                    out.push((i, j));
                }
                p += 1;
            }
        }
        Ok(out)
    }

    /// Number of packed pairs (`N(N−1)/2`) the plan covers — the length of
    /// the packed correlation triangle, and the exclusive upper bound of the
    /// runs accepted by [`ApproxPlan::sweep_run`].
    pub fn pair_count(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    /// The Equation 4 per-tile pruning bounds of this plan's per-series
    /// tables. Build once and share across the [`ApproxPlan::sweep_run`]
    /// calls of a partitioned sweep — the bounds depend only on the plan.
    pub fn tile_bounds(&self) -> CorrelationBounds {
        CorrelationBounds::from_plan(&self.plan)
    }

    /// Run the streaming sweep over one contiguous run of the packed pair
    /// triangle into `sink` — the restriction of
    /// [`ApproxPlan::sweep_streamed`] to `run`, and the unit of work of a
    /// partitioned parallel sweep (a run boundary never changes any pair's
    /// arithmetic, exactly like the exact path's
    /// [`tsubasa_core::sweep::sweep_run`], which this wraps). Pass
    /// `Some(bounds)` (from [`ApproxPlan::tile_bounds`]) to drop tiles the
    /// sink reports skippable under the Equation 4 per-tile upper bound
    /// before any kernel work.
    pub fn sweep_run(
        &self,
        bounds: Option<&CorrelationBounds>,
        run: Range<usize>,
        tile_len: usize,
        sink: &mut dyn TileSink,
    ) {
        let view = self.corrs.view();
        sweep_run(&self.plan, &view, bounds, run, tile_len, sink);
    }

    /// Run a streaming sweep over all pairs into `sink`: each batch-kernel
    /// tile is recombined, consumed, and discarded — the packed triangle
    /// cache behind [`ApproxPlan::correlation_matrix`] is never touched.
    /// With `prune`, tiles the sink reports skippable under the Equation 4
    /// per-tile upper bound are dropped before any kernel work.
    pub fn sweep_streamed(&self, prune: bool, tile_len: usize, sink: &mut dyn TileSink) {
        let bounds = prune.then(|| self.tile_bounds());
        self.sweep_run(bounds.as_ref(), 0..self.pair_count(), tile_len, sink);
    }

    /// [`ApproxPlan::network`] through the streaming sweep: the same
    /// Equation 4 in-radius edge set (`distance ≤ √(2(1−θ))`, applied to the
    /// identical batch-kernel outputs), but tile by tile with whole tiles
    /// skipped when their per-tile correlation upper bound falls outside the
    /// pruning radius — and no `N(N−1)/2` result buffer.
    pub fn network_streamed(&self, theta: f64) -> Result<EdgeList> {
        let mut sink = RadiusEdgeSink::new(theta)?;
        self.sweep_streamed(true, DEFAULT_TILE_PAIRS, &mut sink);
        Ok(sink.finish(self.n))
    }

    /// The `k` strongest approximate edges, streamed: a k-bounded heap
    /// ranked by [`f64::total_cmp`] (ties by ascending pair index), with
    /// tiles skipped once their Equation 4 upper bound cannot beat the
    /// current k-th strength. Equals the sorted dense
    /// [`ApproxPlan::correlation_matrix`] top k.
    pub fn top_k(&self, k: usize) -> TopK {
        let mut sink = TopKSink::new(k);
        self.sweep_streamed(true, DEFAULT_TILE_PAIRS, &mut sink);
        sink.finish()
    }
}

/// The approximate path's threshold sink: a pair is an edge when its
/// recombined correlation lies within the Equation 4 pruning radius —
/// `distance_from_corr(c) ≤ √(2(1−θ))`, the *identical* predicate (same
/// `sqrt` roundings) as the dense [`ApproxPlan::candidate_pairs`], so the
/// streamed edge set matches the dense one exactly. NaN correlations are
/// counted, never silently dropped.
#[derive(Debug, Clone)]
pub struct RadiusEdgeSink {
    radius: f64,
    edges: Vec<(usize, usize)>,
    nan_pairs: usize,
    skipped_pairs: usize,
}

impl RadiusEdgeSink {
    /// A sink thresholding at `theta` (validated to `[-1, 1]`).
    pub fn new(theta: f64) -> Result<Self> {
        if !(-1.0..=1.0).contains(&theta) {
            return Err(Error::InvalidThreshold(theta));
        }
        Ok(Self {
            radius: pruning_radius(theta),
            edges: Vec::new(),
            nan_pairs: 0,
            skipped_pairs: 0,
        })
    }

    /// Pairs dropped by Equation 4 tile pruning without being evaluated.
    pub fn skipped_pairs(&self) -> usize {
        self.skipped_pairs
    }

    /// Finish the sweep: the accumulated edge list over `n` nodes.
    pub fn finish(self, n: usize) -> EdgeList {
        EdgeList::from_parts(n, self.edges, self.nan_pairs)
    }
}

impl TileSink for RadiusEdgeSink {
    fn consume(&mut self, i: usize, j0: usize, _pair0: usize, corrs: &[f64]) {
        for (p, &c) in corrs.iter().enumerate() {
            if c.is_nan() {
                self.nan_pairs += 1;
                continue;
            }
            if distance_from_corr(c) <= self.radius {
                self.edges.push((i, j0 + p));
            }
        }
    }

    fn tile_skippable(&self, upper_bound: f64) -> bool {
        // `distance_from_corr` is monotone non-increasing, so every
        // correlation under the bound maps to a distance at least
        // `distance_from_corr(upper_bound)`: strictly outside the radius
        // means no pair in the tile can be an edge. A padded bound above 1
        // clamps to distance 0, which is never skippable — conservative, not
        // wrong. The θ comparison would be equivalent in exact arithmetic;
        // the distance framing keeps both sides on the same sqrt roundings.
        distance_from_corr(upper_bound) > self.radius
    }

    fn tile_skipped(&mut self, _i: usize, _j0: usize, len: usize) {
        self.skipped_pairs += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approximate_pair_correlation, ApproxStrategy};
    use crate::sketch::Transform;
    use tsubasa_core::runner::ScopedRunner;
    use tsubasa_core::{baseline, QueryWindow, SeriesCollection};

    fn collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows(
            (0..n)
                .map(|s| {
                    (0..len)
                        .map(|i| {
                            (i as f64 * 0.07 + s as f64).sin() * 1.3
                                + ((i * (s + 2) + 3) % 19) as f64 * 0.06
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn plan_matrix_matches_scalar_reference_path() {
        let c = collection(6, 180);
        let sk = DftSketchSet::build(&c, 20, 9, Transform::Naive).unwrap();
        let plan = ApproxPlan::build(&sk, 1..8).unwrap();
        let m = plan.correlation_matrix();
        for (i, j) in c.pairs() {
            let reference =
                approximate_pair_correlation(&sk, 1..8, i, j, ApproxStrategy::Equation5).unwrap();
            assert!(
                (m.get(i, j) - reference).abs() <= 1e-10,
                "pair ({i},{j}): {} vs {reference}",
                m.get(i, j)
            );
        }
    }

    #[test]
    fn full_coefficients_recover_the_exact_matrix() {
        let c = collection(5, 200);
        let b = 25;
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let plan = ApproxPlan::build(&sk, 0..8).unwrap();
        let query = QueryWindow::new(199, 200).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        assert!(plan.correlation_matrix().max_abs_diff(&exact) < 1e-9);
    }

    #[test]
    fn parallel_sweep_is_identical_to_serial() {
        let c = collection(7, 240);
        let sk = DftSketchSet::build(&c, 24, 12, Transform::Naive).unwrap();
        let plan = ApproxPlan::build(&sk, 0..10).unwrap();
        let serial = plan.correlation_matrix();
        for workers in [1usize, 3, 8] {
            let runner = ScopedRunner::new(workers);
            assert_eq!(serial, plan.correlation_matrix_in(&runner), "{workers}");
        }
    }

    #[test]
    fn network_edges_are_the_candidate_pairs() {
        let c = collection(6, 240);
        let sk = DftSketchSet::build(&c, 40, 6, Transform::Naive).unwrap();
        let plan = ApproxPlan::build(&sk, 0..6).unwrap();
        let theta = 0.6;
        let net = plan.network(theta).unwrap();
        let candidates = plan.candidate_pairs(theta).unwrap();
        assert_eq!(net.edge_count(), candidates.len());
        for (i, j) in candidates {
            assert!(net.has_edge(i, j));
        }
        assert!(plan.network(1.5).is_err());
        assert!(plan.candidate_pairs(-2.0).is_err());
    }

    #[test]
    fn degenerate_series_yield_zero_rows() {
        let mut rows = vec![vec![7.0; 80]];
        rows.extend((1..4).map(|s| {
            (0..80)
                .map(|i| (i as f64 * 0.21 + s as f64).cos())
                .collect::<Vec<f64>>()
        }));
        let c = SeriesCollection::from_rows(rows).unwrap();
        let sk = DftSketchSet::build(&c, 16, 16, Transform::Naive).unwrap();
        let plan = ApproxPlan::build(&sk, 0..5).unwrap();
        assert!(plan.is_degenerate(0));
        let m = plan.correlation_matrix();
        for j in 1..4 {
            assert_eq!(m.get(0, j), 0.0);
        }
    }

    #[test]
    fn network_streamed_matches_dense_network() {
        let c = collection(7, 240);
        let sk = DftSketchSet::build(&c, 24, 12, Transform::Naive).unwrap();
        let plan = ApproxPlan::build(&sk, 0..10).unwrap();
        for theta in [-0.3, 0.0, 0.55, 0.9] {
            let streamed = plan.network_streamed(theta).unwrap();
            let dense = plan.network(theta).unwrap();
            assert_eq!(streamed.to_adjacency(), dense, "theta={theta}");
            assert_eq!(streamed.nan_pair_count(), 0);
        }
        assert!(plan.network_streamed(1.5).is_err());
    }

    #[test]
    fn streamed_pruning_skips_tiles_without_changing_edges() {
        let c = collection(8, 240);
        let sk = DftSketchSet::build(&c, 40, 8, Transform::Naive).unwrap();
        let plan = ApproxPlan::build(&sk, 0..6).unwrap();
        let theta = 0.95;
        let mut pruned = RadiusEdgeSink::new(theta).unwrap();
        plan.sweep_streamed(true, 2, &mut pruned);
        let skipped = pruned.skipped_pairs();
        let pruned = pruned.finish(8);
        let mut full = RadiusEdgeSink::new(theta).unwrap();
        plan.sweep_streamed(false, 2, &mut full);
        assert_eq!(pruned.edges(), full.finish(8).edges());
        assert!(skipped <= 28);
    }

    #[test]
    fn streamed_top_k_matches_sorted_dense() {
        let c = collection(6, 200);
        let sk = DftSketchSet::build(&c, 25, 10, Transform::Naive).unwrap();
        let plan = ApproxPlan::build(&sk, 0..8).unwrap();
        let dense = plan.correlation_matrix();
        let mut all: Vec<(usize, usize, f64)> = dense.iter_pairs().collect();
        all.sort_by(|a, b| {
            b.2.total_cmp(&a.2)
                .then_with(|| pair_index(a.0, a.1, 6).cmp(&pair_index(b.0, b.1, 6)))
        });
        for k in [0, 1, 5, 15, 40] {
            let top = plan.top_k(k);
            assert_eq!(top.edges.len(), k.min(all.len()), "k={k}");
            for (got, want) in top.edges.iter().zip(&all) {
                assert_eq!((got.i, got.j), (want.0, want.1), "k={k}");
                assert_eq!(got.corr, want.2, "k={k}");
            }
        }
    }

    #[test]
    fn build_validates_the_window_range() {
        let c = collection(3, 100);
        let sk = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        assert!(ApproxPlan::build(&sk, 0..9).is_err());
        assert!(ApproxPlan::build(&sk, 2..2).is_err());
        let plan = ApproxPlan::build(&sk, 0..5).unwrap();
        assert_eq!(plan.series_count(), 3);
        assert_eq!(plan.windows(), 0..5);
        assert!(!plan.query_plan().is_degenerate(0));
    }
}
