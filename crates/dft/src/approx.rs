//! Approximate query-window correlation from per-window DFT distances
//! (paper Equations 3, 4, 5 and Algorithm 4).
//!
//! Two recombination strategies are implemented:
//!
//! * [`ApproxStrategy::Equation5`] — the paper's Equation 5, which weights
//!   every per-window distance with the window's mean/σ statistics and makes
//!   no assumption that the windows look alike. Exact when all coefficients
//!   are used.
//! * [`ApproxStrategy::StatStreamAverage`] — the plain StatStream heuristic:
//!   the query-window correlation is the average of the per-window
//!   correlations. Valid only when basic-window statistics match the query
//!   window ("cooperative" series), which climate data generally are not —
//!   this is the source of the spurious edges in Figure 5a.

use tsubasa_core::error::{Error, Result};
use tsubasa_core::matrix::{AdjacencyMatrix, CorrelationMatrix};
use tsubasa_core::stats::{clamp_corr, WindowStats};

use crate::plan::ApproxPlan;
use crate::sketch::DftSketchSet;

/// Equation 3: correlation of two unit-normalized windows from their
/// Euclidean (or DFT coefficient) distance.
pub fn corr_from_distance(d: f64) -> f64 {
    clamp_corr(1.0 - d * d / 2.0)
}

/// Inverse of Equation 3: the normalized distance corresponding to a
/// correlation value.
pub fn distance_from_corr(c: f64) -> f64 {
    (2.0 * (1.0 - c.clamp(-1.0, 1.0))).max(0.0).sqrt()
}

/// Equation 4's pruning radius: pairs whose coefficient distance is at most
/// this value form a superset of the pairs with `corr ≥ θ` (no false
/// negatives, possibly false positives).
pub fn pruning_radius(theta: f64) -> f64 {
    distance_from_corr(theta)
}

/// One basic window's contribution to the approximate recombination: the two
/// per-series statistics plus the DFT coefficient distance `d_j` of the pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxWindow {
    /// Statistics of this window of the first series.
    pub x: WindowStats,
    /// Statistics of this window of the second series.
    pub y: WindowStats,
    /// DFT coefficient distance of the normalized windows.
    pub dist: f64,
}

/// Equation 5 (combined with Equation 3): the approximate correlation of the
/// query window assembled from per-window statistics and DFT distances.
///
/// Implemented by substituting the per-window correlation estimate
/// `c_j ≈ 1 − d_j²/2` into the Lemma 1 recombination, which is algebraically
/// identical to the paper's Equation 5 and numerically more stable.
///
/// Fails with [`Error::DegenerateWindow`] when the recombined window covers
/// no points at all or has zero variance in either series (a constant
/// series) — Pearson correlation is undefined there, the same contract as
/// the exact path's [`tsubasa_core::exact::combine`]. Callers that want the
/// classic "constant ⇒ 0.0" convention map the error explicitly, as
/// [`approximate_pair_correlation`] does.
pub fn query_correlation(parts: &[ApproxWindow]) -> Result<f64> {
    let total: f64 = parts.iter().map(|p| p.x.len as f64).sum();
    if total == 0.0 {
        return Err(Error::DegenerateWindow { points: 0 });
    }
    let mean_x = parts.iter().map(|p| p.x.len as f64 * p.x.mean).sum::<f64>() / total;
    let mean_y = parts.iter().map(|p| p.y.len as f64 * p.y.mean).sum::<f64>() / total;
    let mut num = 0.0;
    let mut den_x = 0.0;
    let mut den_y = 0.0;
    for p in parts {
        let b = p.x.len as f64;
        let dx = p.x.mean - mean_x;
        let dy = p.y.mean - mean_y;
        let c_j = 1.0 - p.dist * p.dist / 2.0;
        num += b * (p.x.std * p.y.std * c_j + dx * dy);
        den_x += b * (p.x.std * p.x.std + dx * dx);
        den_y += b * (p.y.std * p.y.std + dy * dy);
    }
    if den_x <= 0.0 || den_y <= 0.0 {
        return Err(Error::DegenerateWindow {
            points: total as usize,
        });
    }
    Ok(clamp_corr(num / (den_x.sqrt() * den_y.sqrt())))
}

/// Equation 5 expressed as a distance (`Dist_n(X̂, Ŷ)` of the whole query
/// window): `Dist² = 2(1 − corr)`. Propagates
/// [`Error::DegenerateWindow`] from [`query_correlation`].
pub fn query_distance(parts: &[ApproxWindow]) -> Result<f64> {
    Ok(distance_from_corr(query_correlation(parts)?))
}

/// The StatStream heuristic: the query-window correlation is the average of
/// the per-window correlation estimates `1 − d_j²/2`.
///
/// Fails with [`Error::DegenerateWindow`] when no windows are supplied —
/// there is nothing to average, matching the error convention of
/// [`query_correlation`].
pub fn statstream_average_correlation(dists: &[f64]) -> Result<f64> {
    if dists.is_empty() {
        return Err(Error::DegenerateWindow { points: 0 });
    }
    Ok(clamp_corr(
        dists.iter().map(|&d| 1.0 - d * d / 2.0).sum::<f64>() / dists.len() as f64,
    ))
}

/// Map the [`Error::DegenerateWindow`] produced by an empty or
/// constant-series window to the `0.0` correlation convention of
/// [`tsubasa_core::stats::pearson`], passing every other error through —
/// the approximate twin of the exact path's explicit mapping.
fn degenerate_to_zero(r: Result<f64>) -> Result<f64> {
    match r {
        Err(Error::DegenerateWindow { .. }) => Ok(0.0),
        other => other,
    }
}

/// Which recombination the approximate matrix / network construction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxStrategy {
    /// Paper Equation 5 (statistics-weighted recombination).
    Equation5,
    /// StatStream's per-window averaging.
    StatStreamAverage,
}

fn gather_parts(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    i: usize,
    j: usize,
) -> Result<Vec<ApproxWindow>> {
    let base = sketch.base();
    let sx = base.series_sketch(i)?;
    let sy = base.series_sketch(j)?;
    let dists = sketch.pair_distances(i, j)?;
    Ok(windows
        .map(|w| ApproxWindow {
            x: sx.window(w),
            y: sy.window(w),
            dist: dists[w],
        })
        .collect())
}

/// Approximate correlation of one pair over an aligned range of basic
/// windows.
///
/// This is the *reference* per-pair path: it materializes the pair's
/// [`ApproxWindow`] contributions and recombines them scalar-ly; the
/// all-pairs entry points share an [`ApproxPlan`] instead and agree with
/// this path within `1e-10` absolute. A degenerate (empty or
/// constant-series) window maps [`Error::DegenerateWindow`] to the classic
/// `0.0` convention, exactly as the exact path's
/// [`tsubasa_core::exact::pair_correlation`] does.
pub fn approximate_pair_correlation(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    i: usize,
    j: usize,
    strategy: ApproxStrategy,
) -> Result<f64> {
    if i == j {
        return Ok(1.0);
    }
    if windows.end > sketch.window_count() || windows.is_empty() {
        return Err(Error::SketchMismatch {
            requested: format!("basic windows {windows:?}"),
            available: format!("{} sketched windows", sketch.window_count()),
        });
    }
    match strategy {
        ApproxStrategy::Equation5 => {
            let parts = gather_parts(sketch, windows, i, j)?;
            degenerate_to_zero(query_correlation(&parts))
        }
        ApproxStrategy::StatStreamAverage => {
            let dists = sketch.pair_distances(i, j)?;
            degenerate_to_zero(statstream_average_correlation(
                &dists[windows.start..windows.end],
            ))
        }
    }
}

/// Approximate all-pair correlation matrix over an aligned range of basic
/// windows, evaluated through a shared [`ApproxPlan`] (per-series
/// recombination tables built once, cache-blocked tiled sweep over the
/// window-major correlation-estimate table).
pub fn approximate_correlation_matrix(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    strategy: ApproxStrategy,
) -> Result<CorrelationMatrix> {
    let plan = ApproxPlan::build(sketch, windows)?;
    match strategy {
        ApproxStrategy::Equation5 => Ok(plan.correlation_matrix()),
        ApproxStrategy::StatStreamAverage => {
            let n = plan.series_count();
            let mut values = vec![0.0f64; n * n.saturating_sub(1) / 2];
            plan.statstream_correlations_into(&mut values);
            Ok(CorrelationMatrix::from_upper_triangle(n, values))
        }
    }
}

/// The scalar reference all-pairs matrix: [`approximate_pair_correlation`]
/// looped pair by pair — exactly the pre-plan evaluation path. Kept as the
/// arithmetic yardstick for the `approx_plan_agreement` property suite and
/// the `pr5_approx_kernels` speedup measurement, not for speed.
pub fn approximate_correlation_matrix_reference(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    strategy: ApproxStrategy,
) -> Result<CorrelationMatrix> {
    // Validate up front so empty/out-of-range windows error for every
    // series count, exactly like the plan-based path (the pair loop below
    // would never reach the per-pair validation when there are no pairs).
    if windows.end > sketch.window_count() || windows.is_empty() {
        return Err(Error::SketchMismatch {
            requested: format!("basic windows {windows:?}"),
            available: format!("{} sketched windows", sketch.window_count()),
        });
    }
    let n = sketch.series_count();
    let mut m = CorrelationMatrix::identity(n);
    for i in 0..n {
        for j in (i + 1)..n {
            m.set(
                i,
                j,
                approximate_pair_correlation(sketch, windows.clone(), i, j, strategy)?,
            );
        }
    }
    Ok(m)
}

/// Algorithm 4: the approximate climate network. Pairs are connected when
/// their estimated query-window distance is within the Equation 4 pruning
/// radius for θ — a superset of the exact network (false positives possible,
/// false negatives not, assuming distances are not over-estimated).
///
/// The Equation 5 strategy delegates to [`ApproxPlan::network`] (tiled
/// sweep + pruning radius); the StatStream strategy thresholds the averaged
/// estimates by the same radius.
pub fn approximate_network(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    theta: f64,
    strategy: ApproxStrategy,
) -> Result<AdjacencyMatrix> {
    if !(-1.0..=1.0).contains(&theta) {
        return Err(Error::InvalidThreshold(theta));
    }
    let plan = ApproxPlan::build(sketch, windows)?;
    match strategy {
        ApproxStrategy::Equation5 => plan.network(theta),
        ApproxStrategy::StatStreamAverage => {
            let radius = pruning_radius(theta);
            let n = plan.series_count();
            let mut values = vec![0.0f64; n * n.saturating_sub(1) / 2];
            plan.statstream_correlations_into(&mut values);
            let mut net = AdjacencyMatrix::empty(n);
            let mut p = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    net.set_edge(i, j, distance_from_corr(values[p]) <= radius);
                    p += 1;
                }
            }
            Ok(net)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::Transform;
    use tsubasa_core::{baseline, QueryWindow, SeriesCollection};

    fn collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows(
            (0..n)
                .map(|s| {
                    (0..len)
                        .map(|i| {
                            // Strong seasonal component plus a per-series trend and
                            // deterministic "noise": deliberately uncooperative.
                            (i as f64 * 0.05).sin() * (1.0 + s as f64 * 0.2)
                                + i as f64 * 0.002 * s as f64
                                + ((i * (s + 3) + 11) % 17) as f64 * 0.05
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn eq3_roundtrip() {
        for c in [-1.0, -0.3, 0.0, 0.5, 0.99, 1.0] {
            let d = distance_from_corr(c);
            assert!((corr_from_distance(d) - c).abs() < 1e-12);
        }
        assert!((pruning_radius(0.75) - (2.0f64 * 0.25).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn equation5_with_all_coefficients_is_exact() {
        let c = collection(4, 200);
        let b = 25;
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let query = QueryWindow::new(199, 200).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        let approx = approximate_correlation_matrix(&sk, 0..8, ApproxStrategy::Equation5).unwrap();
        assert!(
            approx.max_abs_diff(&exact) < 1e-9,
            "max diff {}",
            approx.max_abs_diff(&exact)
        );
    }

    #[test]
    fn fewer_coefficients_degrade_accuracy() {
        let c = collection(4, 200);
        let b = 50;
        let query = QueryWindow::new(199, 200).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        let full = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let coarse = DftSketchSet::build(&c, b, 2, Transform::Naive).unwrap();
        let err_full = approximate_correlation_matrix(&full, 0..4, ApproxStrategy::Equation5)
            .unwrap()
            .mean_abs_diff(&exact);
        let err_coarse = approximate_correlation_matrix(&coarse, 0..4, ApproxStrategy::Equation5)
            .unwrap()
            .mean_abs_diff(&exact);
        assert!(err_full < 1e-9);
        assert!(err_coarse > err_full, "{err_coarse} vs {err_full}");
    }

    #[test]
    fn statstream_average_differs_from_exact_on_uncooperative_data() {
        // The averaging heuristic ignores mean drift across windows, so on
        // trending data it disagrees with the exact correlation.
        let c = collection(3, 200);
        let b = 50;
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let query = QueryWindow::new(199, 200).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        let avg =
            approximate_correlation_matrix(&sk, 0..4, ApproxStrategy::StatStreamAverage).unwrap();
        assert!(avg.max_abs_diff(&exact) > 1e-3);
    }

    #[test]
    fn approximate_network_has_no_false_negatives() {
        let c = collection(6, 240);
        let b = 40;
        let theta = 0.75;
        let query = QueryWindow::new(239, 240).unwrap();
        let exact_net = baseline::correlation_matrix(&c, query)
            .unwrap()
            .threshold(theta)
            .unwrap();
        // Few coefficients → under-estimated distances → superset of edges.
        let sk = DftSketchSet::build(&c, b, 4, Transform::Naive).unwrap();
        let approx_net = approximate_network(&sk, 0..6, theta, ApproxStrategy::Equation5).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                if exact_net.has_edge(i, j) {
                    assert!(
                        approx_net.has_edge(i, j),
                        "missing exact edge ({i},{j}) in the approximate network"
                    );
                }
            }
        }
        assert!(approx_net.edge_count() >= exact_net.edge_count());
    }

    #[test]
    fn approximate_network_validates_inputs() {
        let c = collection(3, 100);
        let sk = DftSketchSet::build(&c, 25, 25, Transform::Naive).unwrap();
        assert!(approximate_network(&sk, 0..4, 1.5, ApproxStrategy::Equation5).is_err());
        assert!(approximate_pair_correlation(&sk, 0..9, 0, 1, ApproxStrategy::Equation5).is_err());
        // Empty and out-of-range windows error identically on the plan-based
        // and the scalar reference matrix paths.
        for windows in [2..2usize, 0..9] {
            for f in [
                approximate_correlation_matrix,
                approximate_correlation_matrix_reference,
            ] {
                assert!(matches!(
                    f(&sk, windows.clone(), ApproxStrategy::Equation5).unwrap_err(),
                    Error::SketchMismatch { .. }
                ));
            }
        }
        assert_eq!(
            approximate_pair_correlation(&sk, 0..4, 2, 2, ApproxStrategy::Equation5).unwrap(),
            1.0
        );
    }

    #[test]
    fn statstream_average_helper_behaviour() {
        // No windows to average → a typed degenerate error, not a silent 0.0.
        assert!(matches!(
            statstream_average_correlation(&[]).unwrap_err(),
            Error::DegenerateWindow { points: 0 }
        ));
        // distances 0 → corr 1 for every window → average 1.
        assert_eq!(statstream_average_correlation(&[0.0, 0.0]).unwrap(), 1.0);
        // distance √2 → corr 0.
        let d = 2f64.sqrt();
        assert!((statstream_average_correlation(&[d, d]).unwrap() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn query_correlation_rejects_degenerate_windows() {
        // No windows at all → points: 0, the exact path's `combine(&[])`
        // convention.
        assert!(matches!(
            query_correlation(&[]).unwrap_err(),
            Error::DegenerateWindow { points: 0 }
        ));
        // A constant series has zero variance across every window: the
        // denominator vanishes and the correlation is undefined — a typed
        // error carrying the covered point count, not a silent 0.0.
        let constant = WindowStats::from_values(&[5.0; 30]);
        let live = WindowStats::from_values(&(0..30).map(|i| i as f64).collect::<Vec<_>>());
        let parts = [
            ApproxWindow {
                x: constant,
                y: live,
                dist: 0.3,
            },
            ApproxWindow {
                x: constant,
                y: live,
                dist: 0.1,
            },
        ];
        assert!(matches!(
            query_correlation(&parts).unwrap_err(),
            Error::DegenerateWindow { points: 60 }
        ));
        assert!(query_distance(&parts).is_err());
    }

    #[test]
    fn degenerate_pairs_map_to_zero_at_the_call_sites() {
        // A constant series through the public pair/matrix paths keeps the
        // paper's 0.0 convention — mapped explicitly from the typed error,
        // exactly as `exact::pair_correlation` does.
        let mut rows = vec![vec![7.0; 100]];
        rows.push((0..100).map(|i| (i as f64 * 0.2).sin()).collect());
        let c = SeriesCollection::from_rows(rows).unwrap();
        let sk = DftSketchSet::build(&c, 25, 25, Transform::Naive).unwrap();
        assert_eq!(
            approximate_pair_correlation(&sk, 0..4, 0, 1, ApproxStrategy::Equation5).unwrap(),
            0.0
        );
        let m = approximate_correlation_matrix(&sk, 0..4, ApproxStrategy::Equation5).unwrap();
        assert_eq!(m.get(0, 1), 0.0);
        // The StatStream average cannot detect a constant series from the
        // distances alone (a zero-vector window sits at distance 1 from any
        // unit vector → estimate 0.5 per window); only the Equation 5
        // denominator carries that information. Its degenerate case is the
        // empty window range, covered above.
        assert!(
            approximate_pair_correlation(&sk, 0..4, 0, 1, ApproxStrategy::StatStreamAverage)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn plan_and_reference_matrices_agree() {
        let c = collection(5, 200);
        let sk = DftSketchSet::build(&c, 25, 10, Transform::Naive).unwrap();
        for strategy in [ApproxStrategy::Equation5, ApproxStrategy::StatStreamAverage] {
            let tiled = approximate_correlation_matrix(&sk, 1..7, strategy).unwrap();
            let reference = approximate_correlation_matrix_reference(&sk, 1..7, strategy).unwrap();
            assert!(
                tiled.max_abs_diff(&reference) <= 1e-10,
                "{strategy:?}: {}",
                tiled.max_abs_diff(&reference)
            );
        }
    }
}
