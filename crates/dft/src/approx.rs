//! Approximate query-window correlation from per-window DFT distances
//! (paper Equations 3, 4, 5 and Algorithm 4).
//!
//! Two recombination strategies are implemented:
//!
//! * [`ApproxStrategy::Equation5`] — the paper's Equation 5, which weights
//!   every per-window distance with the window's mean/σ statistics and makes
//!   no assumption that the windows look alike. Exact when all coefficients
//!   are used.
//! * [`ApproxStrategy::StatStreamAverage`] — the plain StatStream heuristic:
//!   the query-window correlation is the average of the per-window
//!   correlations. Valid only when basic-window statistics match the query
//!   window ("cooperative" series), which climate data generally are not —
//!   this is the source of the spurious edges in Figure 5a.

use tsubasa_core::error::{Error, Result};
use tsubasa_core::matrix::{AdjacencyMatrix, CorrelationMatrix};
use tsubasa_core::stats::{clamp_corr, WindowStats};

use crate::sketch::DftSketchSet;

/// Equation 3: correlation of two unit-normalized windows from their
/// Euclidean (or DFT coefficient) distance.
pub fn corr_from_distance(d: f64) -> f64 {
    clamp_corr(1.0 - d * d / 2.0)
}

/// Inverse of Equation 3: the normalized distance corresponding to a
/// correlation value.
pub fn distance_from_corr(c: f64) -> f64 {
    (2.0 * (1.0 - c.clamp(-1.0, 1.0))).max(0.0).sqrt()
}

/// Equation 4's pruning radius: pairs whose coefficient distance is at most
/// this value form a superset of the pairs with `corr ≥ θ` (no false
/// negatives, possibly false positives).
pub fn pruning_radius(theta: f64) -> f64 {
    distance_from_corr(theta)
}

/// One basic window's contribution to the approximate recombination: the two
/// per-series statistics plus the DFT coefficient distance `d_j` of the pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxWindow {
    /// Statistics of this window of the first series.
    pub x: WindowStats,
    /// Statistics of this window of the second series.
    pub y: WindowStats,
    /// DFT coefficient distance of the normalized windows.
    pub dist: f64,
}

/// Equation 5 (combined with Equation 3): the approximate correlation of the
/// query window assembled from per-window statistics and DFT distances.
///
/// Implemented by substituting the per-window correlation estimate
/// `c_j ≈ 1 − d_j²/2` into the Lemma 1 recombination, which is algebraically
/// identical to the paper's Equation 5 and numerically more stable.
pub fn query_correlation(parts: &[ApproxWindow]) -> f64 {
    let total: f64 = parts.iter().map(|p| p.x.len as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let mean_x = parts.iter().map(|p| p.x.len as f64 * p.x.mean).sum::<f64>() / total;
    let mean_y = parts.iter().map(|p| p.y.len as f64 * p.y.mean).sum::<f64>() / total;
    let mut num = 0.0;
    let mut den_x = 0.0;
    let mut den_y = 0.0;
    for p in parts {
        let b = p.x.len as f64;
        let dx = p.x.mean - mean_x;
        let dy = p.y.mean - mean_y;
        let c_j = 1.0 - p.dist * p.dist / 2.0;
        num += b * (p.x.std * p.y.std * c_j + dx * dy);
        den_x += b * (p.x.std * p.x.std + dx * dx);
        den_y += b * (p.y.std * p.y.std + dy * dy);
    }
    if den_x <= 0.0 || den_y <= 0.0 {
        return 0.0;
    }
    clamp_corr(num / (den_x.sqrt() * den_y.sqrt()))
}

/// Equation 5 expressed as a distance (`Dist_n(X̂, Ŷ)` of the whole query
/// window): `Dist² = 2(1 − corr)`.
pub fn query_distance(parts: &[ApproxWindow]) -> f64 {
    distance_from_corr(query_correlation(parts))
}

/// The StatStream heuristic: the query-window correlation is the average of
/// the per-window correlation estimates `1 − d_j²/2`.
pub fn statstream_average_correlation(dists: &[f64]) -> f64 {
    if dists.is_empty() {
        return 0.0;
    }
    clamp_corr(dists.iter().map(|&d| 1.0 - d * d / 2.0).sum::<f64>() / dists.len() as f64)
}

/// Which recombination the approximate matrix / network construction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApproxStrategy {
    /// Paper Equation 5 (statistics-weighted recombination).
    Equation5,
    /// StatStream's per-window averaging.
    StatStreamAverage,
}

fn gather_parts(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    i: usize,
    j: usize,
) -> Result<Vec<ApproxWindow>> {
    let base = sketch.base();
    let sx = base.series_sketch(i)?;
    let sy = base.series_sketch(j)?;
    let dists = sketch.pair_distances(i, j)?;
    Ok(windows
        .map(|w| ApproxWindow {
            x: sx.window(w),
            y: sy.window(w),
            dist: dists[w],
        })
        .collect())
}

/// Approximate correlation of one pair over an aligned range of basic
/// windows.
pub fn approximate_pair_correlation(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    i: usize,
    j: usize,
    strategy: ApproxStrategy,
) -> Result<f64> {
    if i == j {
        return Ok(1.0);
    }
    if windows.end > sketch.window_count() || windows.is_empty() {
        return Err(Error::SketchMismatch {
            requested: format!("basic windows {windows:?}"),
            available: format!("{} sketched windows", sketch.window_count()),
        });
    }
    match strategy {
        ApproxStrategy::Equation5 => {
            let parts = gather_parts(sketch, windows, i, j)?;
            Ok(query_correlation(&parts))
        }
        ApproxStrategy::StatStreamAverage => {
            let dists = sketch.pair_distances(i, j)?;
            Ok(statstream_average_correlation(
                &dists[windows.start..windows.end],
            ))
        }
    }
}

/// Approximate all-pair correlation matrix over an aligned range of basic
/// windows.
pub fn approximate_correlation_matrix(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    strategy: ApproxStrategy,
) -> Result<CorrelationMatrix> {
    let n = sketch.series_count();
    let mut m = CorrelationMatrix::identity(n);
    for i in 0..n {
        for j in (i + 1)..n {
            m.set(
                i,
                j,
                approximate_pair_correlation(sketch, windows.clone(), i, j, strategy)?,
            );
        }
    }
    Ok(m)
}

/// Algorithm 4: the approximate climate network. Pairs are connected when
/// their estimated query-window distance is within the Equation 4 pruning
/// radius for θ — a superset of the exact network (false positives possible,
/// false negatives not, assuming distances are not over-estimated).
pub fn approximate_network(
    sketch: &DftSketchSet,
    windows: std::ops::Range<usize>,
    theta: f64,
    strategy: ApproxStrategy,
) -> Result<AdjacencyMatrix> {
    if !(-1.0..=1.0).contains(&theta) {
        return Err(Error::InvalidThreshold(theta));
    }
    let radius = pruning_radius(theta);
    let n = sketch.series_count();
    let mut net = AdjacencyMatrix::empty(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let corr = approximate_pair_correlation(sketch, windows.clone(), i, j, strategy)?;
            let dist = distance_from_corr(corr);
            net.set_edge(i, j, dist <= radius);
        }
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::Transform;
    use tsubasa_core::{baseline, QueryWindow, SeriesCollection};

    fn collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows(
            (0..n)
                .map(|s| {
                    (0..len)
                        .map(|i| {
                            // Strong seasonal component plus a per-series trend and
                            // deterministic "noise": deliberately uncooperative.
                            (i as f64 * 0.05).sin() * (1.0 + s as f64 * 0.2)
                                + i as f64 * 0.002 * s as f64
                                + ((i * (s + 3) + 11) % 17) as f64 * 0.05
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn eq3_roundtrip() {
        for c in [-1.0, -0.3, 0.0, 0.5, 0.99, 1.0] {
            let d = distance_from_corr(c);
            assert!((corr_from_distance(d) - c).abs() < 1e-12);
        }
        assert!((pruning_radius(0.75) - (2.0f64 * 0.25).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn equation5_with_all_coefficients_is_exact() {
        let c = collection(4, 200);
        let b = 25;
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let query = QueryWindow::new(199, 200).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        let approx = approximate_correlation_matrix(&sk, 0..8, ApproxStrategy::Equation5).unwrap();
        assert!(
            approx.max_abs_diff(&exact) < 1e-9,
            "max diff {}",
            approx.max_abs_diff(&exact)
        );
    }

    #[test]
    fn fewer_coefficients_degrade_accuracy() {
        let c = collection(4, 200);
        let b = 50;
        let query = QueryWindow::new(199, 200).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        let full = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let coarse = DftSketchSet::build(&c, b, 2, Transform::Naive).unwrap();
        let err_full = approximate_correlation_matrix(&full, 0..4, ApproxStrategy::Equation5)
            .unwrap()
            .mean_abs_diff(&exact);
        let err_coarse = approximate_correlation_matrix(&coarse, 0..4, ApproxStrategy::Equation5)
            .unwrap()
            .mean_abs_diff(&exact);
        assert!(err_full < 1e-9);
        assert!(err_coarse > err_full, "{err_coarse} vs {err_full}");
    }

    #[test]
    fn statstream_average_differs_from_exact_on_uncooperative_data() {
        // The averaging heuristic ignores mean drift across windows, so on
        // trending data it disagrees with the exact correlation.
        let c = collection(3, 200);
        let b = 50;
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let query = QueryWindow::new(199, 200).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        let avg =
            approximate_correlation_matrix(&sk, 0..4, ApproxStrategy::StatStreamAverage).unwrap();
        assert!(avg.max_abs_diff(&exact) > 1e-3);
    }

    #[test]
    fn approximate_network_has_no_false_negatives() {
        let c = collection(6, 240);
        let b = 40;
        let theta = 0.75;
        let query = QueryWindow::new(239, 240).unwrap();
        let exact_net = baseline::correlation_matrix(&c, query)
            .unwrap()
            .threshold(theta);
        // Few coefficients → under-estimated distances → superset of edges.
        let sk = DftSketchSet::build(&c, b, 4, Transform::Naive).unwrap();
        let approx_net = approximate_network(&sk, 0..6, theta, ApproxStrategy::Equation5).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                if exact_net.has_edge(i, j) {
                    assert!(
                        approx_net.has_edge(i, j),
                        "missing exact edge ({i},{j}) in the approximate network"
                    );
                }
            }
        }
        assert!(approx_net.edge_count() >= exact_net.edge_count());
    }

    #[test]
    fn approximate_network_validates_inputs() {
        let c = collection(3, 100);
        let sk = DftSketchSet::build(&c, 25, 25, Transform::Naive).unwrap();
        assert!(approximate_network(&sk, 0..4, 1.5, ApproxStrategy::Equation5).is_err());
        assert!(approximate_pair_correlation(&sk, 0..9, 0, 1, ApproxStrategy::Equation5).is_err());
        assert_eq!(
            approximate_pair_correlation(&sk, 0..4, 2, 2, ApproxStrategy::Equation5).unwrap(),
            1.0
        );
    }

    #[test]
    fn statstream_average_helper_behaviour() {
        assert_eq!(statstream_average_correlation(&[]), 0.0);
        // distances 0 → corr 1 for every window → average 1.
        assert_eq!(statstream_average_correlation(&[0.0, 0.0]), 1.0);
        // distance √2 → corr 0.
        let d = 2f64.sqrt();
        assert!((statstream_average_correlation(&[d, d]) - 0.0).abs() < 1e-12);
    }
}
