//! Incremental approximate correlation maintenance for real-time data
//! (paper §3.2.2, Equation 6).
//!
//! [`SlidingApproxNetwork`] mirrors
//! [`tsubasa_core::incremental::SlidingNetwork`] but uses the DFT comparator:
//! when a new basic window arrives it
//!
//! 1. normalizes the window of every series and computes its DFT coefficients
//!    (the `O(B²)` step that makes this updater slower than TSUBASA's —
//!    exactly the effect Figure 5d measures),
//! 2. computes all pairwise coefficient distances `d_{ns+1}` of the arriving
//!    window as one tiled difference-square sweep over a coefficient-major
//!    structure-of-arrays block
//!    ([`tsubasa_core::stats::tiled_pair_dist_sq_into`], the same kernel the
//!    batch sketcher uses),
//! 3. folds `c_{ns+1} ≈ 1 − d_{ns+1}²/2` into the sliding recombination using
//!    the Lemma 2 update — the algebraic content of Equation 6 — applied to
//!    every pair from a flat snapshot of per-series state, optionally fanned
//!    out over a [`JobRunner`] ([`SlidingApproxNetwork::ingest_in`]).
//!
//! Initialization goes through the batched [`ApproxPlan`] sweep instead of
//! per-pair contribution gathering, mirroring the exact updater's plan-based
//! bootstrap.

use std::collections::VecDeque;

use tsubasa_core::delta::{
    slide_pair_sweep, DeltaBoundTables, EdgeDelta, EdgeWatch, SlideSweepInputs,
};
use tsubasa_core::error::{Error, Result};
use tsubasa_core::incremental::SlidingSeriesState;
use tsubasa_core::matrix::{AdjacencyMatrix, CorrelationMatrix};
use tsubasa_core::runner::{JobRunner, SerialRunner};
use tsubasa_core::sketch::{pair_index, unpack_pair_index, PairSketch, SeriesSketch};
use tsubasa_core::stats::{tiled_pair_dist_sq_into, WindowStats};
use tsubasa_core::SketchSet;

use crate::approx::corr_from_distance;
use crate::dft::DftPlanner;
use crate::normalize::normalize_unit_with_stats;
use crate::plan::ApproxPlan;
use crate::sketch::{flatten_coeffs_into, DftSketchSet};

/// Incrementally maintained approximate all-pair correlation matrix over a
/// sliding real-time query window.
#[derive(Debug, Clone)]
pub struct SlidingApproxNetwork {
    basic_window: usize,
    coefficients: usize,
    n: usize,
    series: Vec<SlidingSeriesState>,
    /// Per basic window inside the query window: packed per-pair DFT
    /// distances, oldest first.
    pair_windows: VecDeque<Vec<f64>>,
    /// Current packed per-pair approximate correlations.
    corrs: Vec<f64>,
    /// Reusable transform plan for the arriving windows (radix-2 FFT for
    /// power-of-two basic windows, naive fallback otherwise).
    planner: DftPlanner,
    /// Active edge subscription
    /// ([`SlidingApproxNetwork::subscribe_edges`]): when set, every ingest
    /// also maintains the θ-thresholded edge set and emits an [`EdgeDelta`].
    watch: Option<EdgeWatch>,
}

impl SlidingApproxNetwork {
    /// Build the initial state from a [`DftSketchSet`]: the query window
    /// covers the most recent `query_len` sketched points (`query_len` must
    /// be a positive multiple of the basic window).
    ///
    /// The initial correlations are evaluated through one shared
    /// [`ApproxPlan`] (batched Equation 5) rather than per-pair contribution
    /// vectors, and the per-window distance rows are contiguous copies of the
    /// sketch's window-major table.
    pub fn initialize(sketch: &DftSketchSet, query_len: usize) -> Result<Self> {
        let b = sketch.basic_window();
        if query_len == 0 || !query_len.is_multiple_of(b) {
            return Err(Error::InvalidQueryWindow {
                end: 0,
                len: query_len,
                series_len: sketch.window_count() * b,
            });
        }
        let ns = query_len / b;
        let available = sketch.window_count();
        if ns > available {
            return Err(Error::SketchMismatch {
                requested: format!("{ns} basic windows"),
                available: format!("{available} sketched windows"),
            });
        }
        let first = available - ns;
        let n = sketch.series_count();
        let base = sketch.base();

        let series: Vec<SlidingSeriesState> = (0..n)
            .map(|i| {
                let sk = base.series_sketch(i)?;
                Ok(SlidingSeriesState::new(
                    (first..available).map(|w| sk.window(w)).collect(),
                ))
            })
            .collect::<Result<_>>()?;

        // Each stored window's packed per-pair distances are one contiguous
        // row of the sketch's window-major table.
        let mut pair_windows = VecDeque::with_capacity(ns);
        for w in first..available {
            pair_windows.push_back(sketch.window_dists_view(w..w + 1).window_row(0).to_vec());
        }

        let plan = ApproxPlan::build(sketch, first..available)?;
        let mut corrs = vec![0.0f64; n * n.saturating_sub(1) / 2];
        plan.correlations_into(0, &mut corrs);

        Ok(Self {
            basic_window: b,
            coefficients: sketch.coefficients(),
            n,
            series,
            pair_windows,
            corrs,
            planner: DftPlanner::new(b),
            watch: None,
        })
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.n
    }

    /// The chunk size expected by [`SlidingApproxNetwork::ingest`].
    pub fn basic_window(&self) -> usize {
        self.basic_window
    }

    /// Number of basic windows in the sliding query window.
    pub fn window_count(&self) -> usize {
        self.pair_windows.len()
    }

    /// Slide forward by one basic window given the newly arrived chunk
    /// (`chunk[i]` holds the `B` new points of series `i`). This is the
    /// Equation 6 update: the only new DFT work is for the arriving window.
    /// Runs inline on the calling thread; [`SlidingApproxNetwork::ingest_in`]
    /// is the same update fanned out over a [`JobRunner`].
    pub fn ingest(&mut self, chunk: &[Vec<f64>]) -> Result<()> {
        self.ingest_in(&SerialRunner, chunk)
    }

    /// [`SlidingApproxNetwork::ingest`] with the per-pair Equation 6 sweep
    /// split into disjoint contiguous slices of the packed correlation
    /// triangle, one per worker of `runner` — the same shape as the exact
    /// updater's [`tsubasa_core::incremental::SlidingNetwork::ingest_in`].
    /// Hand the same reusable pool (`tsubasa_parallel::WorkerPool`) to every
    /// call so repeated slides stop paying thread startup; the result is
    /// identical to the serial path for any worker count (each pair reads
    /// only shared snapshots and its own slot).
    pub fn ingest_in(&mut self, runner: &dyn JobRunner, chunk: &[Vec<f64>]) -> Result<()> {
        if chunk.len() != self.n {
            return Err(Error::UnalignedSeries {
                expected: self.n,
                found: chunk.len(),
                index: 0,
            });
        }
        for points in chunk {
            if points.len() != self.basic_window {
                return Err(Error::ChunkSizeMismatch {
                    expected: self.basic_window,
                    found: points.len(),
                });
            }
        }
        let n = self.n;

        // Per-series statistics of the arriving window, plus its DFT
        // coefficients flattened into a coefficient-major structure-of-arrays
        // block (one contiguous row per series)...
        let arriving_stats: Vec<WindowStats> =
            chunk.iter().map(|p| WindowStats::from_values(p)).collect();
        let row_len = 2 * self.coefficients;
        let mut rows = vec![0.0f64; n * row_len];
        for (i, (points, stats)) in chunk.iter().zip(&arriving_stats).enumerate() {
            let coeffs = self
                .planner
                .transform(&normalize_unit_with_stats(points, stats));
            flatten_coeffs_into(
                &coeffs,
                self.coefficients,
                &mut rows[i * row_len..(i + 1) * row_len],
            );
        }
        // ...so all of the window's pair distances come from one tiled
        // difference-square sweep instead of a per-pair coefficient loop.
        let mut sq = vec![0.0f64; self.corrs.len()];
        tiled_pair_dist_sq_into(&rows, n, row_len, &mut sq);
        drop(rows);
        let arriving_dists: Vec<f64> = sq.iter().map(|&s| s.max(0.0).sqrt()).collect();
        drop(sq);

        // Snapshot the per-series sliding state into flat arrays once (the
        // precompute-then-sweep shape of the plan kernels) instead of
        // re-reading deque fronts and aggregates `n − 1` times per series
        // inside the pair loop.
        let fronts: Vec<WindowStats> = self
            .series
            .iter()
            .map(|s| s.front().expect("non-empty"))
            .collect();
        let totals: Vec<f64> = self.series.iter().map(|s| s.total_len() as f64).collect();
        let means: Vec<f64> = self.series.iter().map(|s| s.mean()).collect();
        let stds: Vec<f64> = self.series.iter().map(|s| s.std()).collect();

        // Apply Equation 6 (Lemma 2 over distance-derived correlations) to
        // every pair before mutating any per-series state, through the sweep
        // shared with the exact updater: both windows' distances are folded
        // to correlations (`c = 1 − d²/2`, Equation 4's correspondence) up
        // front, so the per-pair kernel — and, with an active subscription,
        // the θ change-bound certification — is byte-for-byte the same code.
        let evicted_dists = self.pair_windows.pop_front().expect("non-empty window");
        let evicted_corrs: Vec<f64> = evicted_dists
            .iter()
            .map(|&d| corr_from_distance(d))
            .collect();
        let arriving_corrs: Vec<f64> = arriving_dists
            .iter()
            .map(|&d| corr_from_distance(d))
            .collect();
        let tables = self.watch.as_ref().map(|_| {
            DeltaBoundTables::build(
                &self.series,
                &fronts,
                &totals,
                &means,
                &stds,
                &arriving_stats,
            )
        });
        let inputs = SlideSweepInputs {
            n,
            evicted_corrs: &evicted_corrs,
            arriving_corrs: &arriving_corrs,
            fronts: &fronts,
            totals: &totals,
            means: &means,
            stds: &stds,
            arriving_stats: &arriving_stats,
        };
        slide_pair_sweep(
            runner,
            &inputs,
            &mut self.corrs,
            self.watch.as_mut().zip(tables.as_ref()),
        );

        for (state, stats) in self.series.iter_mut().zip(&arriving_stats) {
            state.slide(*stats);
        }
        self.pair_windows.push_back(arriving_dists);
        Ok(())
    }

    /// Current approximate correlation of one pair.
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.corrs[pair_index(a, b, self.n)]
    }

    /// Snapshot of the approximate correlation matrix.
    pub fn correlation_matrix(&self) -> CorrelationMatrix {
        CorrelationMatrix::from_upper_triangle(self.n, self.corrs.clone())
    }

    /// Snapshot of the approximate climate network at threshold `theta`.
    /// The lenient thresholding keeps this path infallible: NaN correlations
    /// (possible once NaN observations are ingested — the sliding
    /// recombination deliberately keeps them NaN instead of fabricating a
    /// value) are counted on the returned matrix's
    /// [`nan_pair_count`](AdjacencyMatrix::nan_pair_count), never silently
    /// dropped.
    pub fn network(&self, theta: f64) -> AdjacencyMatrix {
        self.correlation_matrix().threshold_lenient(theta)
    }

    /// Subscribe to edge-level changes of the θ-thresholded approximate
    /// network: returns the baseline snapshot (identical to
    /// [`SlidingApproxNetwork::network`] at `theta`, NaN audit included),
    /// and from the next [`SlidingApproxNetwork::ingest`] on,
    /// [`SlidingApproxNetwork::changed_edges`] carries the [`EdgeDelta`] of
    /// the latest tick. Only pairs whose per-pair change bound straddles θ
    /// are re-checked — the correlation-domain mirror of the Equation 4
    /// pruning radius (see [`tsubasa_core::delta`]). Re-subscribing replaces
    /// any previous subscription.
    pub fn subscribe_edges(&mut self, theta: f64) -> Result<AdjacencyMatrix> {
        let (watch, baseline) = EdgeWatch::new(theta, self.n, &self.corrs)?;
        self.watch = Some(watch);
        Ok(baseline)
    }

    /// The [`EdgeDelta`] emitted by the most recent ingest tick, or `None`
    /// when there is no active subscription or no tick has happened since
    /// subscribing.
    pub fn changed_edges(&self) -> Option<&EdgeDelta> {
        self.watch.as_ref().and_then(|w| w.last())
    }

    /// Drop the active edge subscription, if any.
    pub fn unsubscribe_edges(&mut self) {
        self.watch = None;
    }

    /// Freeze the sliding state into an immutable [`DftSketchSet`] covering
    /// exactly the basic windows currently inside the query window (oldest
    /// first, re-indexed from 0), for epoch publication: the snapshot shares
    /// no storage with the live network, so readers can plan against it
    /// behind an `Arc` while ingestion keeps sliding.
    ///
    /// The approximate updater maintains per-window coefficient *distances*,
    /// not the exact per-window pair correlations of the underlying
    /// [`SketchSet`] — so the base sketch's pair correlations are filled with
    /// NaN, the repo-wide marker for method-mismatched sketch data. The
    /// snapshot supports every [`ApproxPlan`] path bit-identically to a
    /// built sketch; exact (Lemma 1) queries against its base are answerable
    /// only through the NaN-auditing sinks and will report every pair.
    pub fn snapshot_sketch(&self) -> Result<DftSketchSet> {
        let ns = self.pair_windows.len();
        let n_pairs = self.corrs.len();
        let series: Vec<SeriesSketch> = self
            .series
            .iter()
            .enumerate()
            .map(|(id, state)| SeriesSketch {
                series: id,
                windows: state.window_stats().collect(),
            })
            .collect();
        let pairs: Vec<PairSketch> = (0..n_pairs)
            .map(|p| {
                let (a, b) = unpack_pair_index(p, self.n);
                PairSketch {
                    a,
                    b,
                    corrs: vec![f64::NAN; ns],
                }
            })
            .collect();
        let base = SketchSet::from_parts(self.basic_window, self.n, series, pairs)?;
        let mut window_dists = Vec::with_capacity(ns * n_pairs);
        for row in &self.pair_windows {
            window_dists.extend_from_slice(row);
        }
        DftSketchSet::from_parts(base, self.coefficients, window_dists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::Transform;
    use tsubasa_core::{baseline, QueryWindow, SeriesCollection};

    fn series(seed: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                (i as f64 * 0.11 + seed as f64).sin() * 1.4
                    + ((i * (seed + 2) + 5) % 23) as f64 * 0.07
            })
            .collect()
    }

    fn full_data(n: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n).map(|s| series(s, len)).collect()
    }

    #[test]
    fn initialize_matches_eq5_on_initial_window() {
        let data = full_data(4, 160);
        let c = SeriesCollection::from_rows(data).unwrap();
        let b = 20;
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let sliding = SlidingApproxNetwork::initialize(&sk, 120).unwrap();
        // With all coefficients the approximation is exact, so the initial
        // matrix matches the baseline on the last 120 points.
        let query = QueryWindow::new(159, 120).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        assert!(sliding.correlation_matrix().max_abs_diff(&exact) < 1e-9);
    }

    #[test]
    fn full_coefficient_updates_track_exact_baseline() {
        let n = 3;
        let b = 16;
        let total = 400;
        let hist = 160;
        let query_len = 96;
        let data = full_data(n, total);
        let c =
            SeriesCollection::from_rows(data.iter().map(|s| s[..hist].to_vec()).collect()).unwrap();
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let mut sliding = SlidingApproxNetwork::initialize(&sk, query_len).unwrap();

        let mut now = hist;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = data.iter().map(|s| s[now..now + b].to_vec()).collect();
            sliding.ingest(&chunk).unwrap();
            now += b;
            let cur = SeriesCollection::from_rows(data.iter().map(|s| s[..now].to_vec()).collect())
                .unwrap();
            let query = QueryWindow::latest(now, query_len).unwrap();
            let exact = baseline::correlation_matrix(&cur, query).unwrap();
            let diff = sliding.correlation_matrix().max_abs_diff(&exact);
            assert!(diff < 1e-6, "drift {diff} at now={now}");
        }
    }

    #[test]
    fn partial_coefficients_give_bounded_error() {
        let n = 3;
        let b = 24;
        let total = 300;
        let hist = 144;
        let query_len = 96;
        let data = full_data(n, total);
        let c =
            SeriesCollection::from_rows(data.iter().map(|s| s[..hist].to_vec()).collect()).unwrap();
        let sk = DftSketchSet::build(&c, b, b * 3 / 4, Transform::Naive).unwrap();
        let mut sliding = SlidingApproxNetwork::initialize(&sk, query_len).unwrap();
        let mut now = hist;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = data.iter().map(|s| s[now..now + b].to_vec()).collect();
            sliding.ingest(&chunk).unwrap();
            now += b;
        }
        // The 75%-coefficient approximation drifts from the exact value (it
        // is an approximation, after all) but must remain a bounded, sane
        // correlation estimate.
        let cur =
            SeriesCollection::from_rows(data.iter().map(|s| s[..now].to_vec()).collect()).unwrap();
        let query = QueryWindow::latest(now, query_len).unwrap();
        let exact = baseline::correlation_matrix(&cur, query).unwrap();
        let diff = sliding.correlation_matrix().max_abs_diff(&exact);
        assert!(diff > 0.0, "partial coefficients should not be exact here");
        assert!(
            diff < 0.75,
            "approximation error unexpectedly large: {diff}"
        );
        for (_, _, c) in sliding.correlation_matrix().iter_pairs() {
            assert!((-1.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn ingest_in_is_identical_across_worker_counts() {
        use tsubasa_core::runner::ScopedRunner;
        let n = 5;
        let b = 15;
        let total = 330;
        let hist = 180;
        let data = full_data(n, total);
        let c =
            SeriesCollection::from_rows(data.iter().map(|s| s[..hist].to_vec()).collect()).unwrap();
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let serial = SlidingApproxNetwork::initialize(&sk, 90).unwrap();
        let mut nets = [serial.clone(), serial.clone(), serial];
        let runners: Vec<ScopedRunner> = [1usize, 3, 8]
            .iter()
            .map(|&w| ScopedRunner::new(w))
            .collect();
        let mut now = hist;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = data.iter().map(|s| s[now..now + b].to_vec()).collect();
            for (net, runner) in nets.iter_mut().zip(&runners) {
                net.ingest_in(runner, &chunk).unwrap();
            }
            now += b;
            let m0 = nets[0].correlation_matrix();
            assert_eq!(m0, nets[1].correlation_matrix());
            assert_eq!(m0, nets[2].correlation_matrix());
        }
        assert!(now > hist + 5 * b);
    }

    #[test]
    fn subscribed_deltas_track_full_rethreshold() {
        let n = 4;
        let b = 16;
        let total = 400;
        let hist = 160;
        let theta = 0.4;
        let data = full_data(n, total);
        let c =
            SeriesCollection::from_rows(data.iter().map(|s| s[..hist].to_vec()).collect()).unwrap();
        let sk = DftSketchSet::build(&c, b, b * 3 / 4, Transform::Naive).unwrap();
        let mut sliding = SlidingApproxNetwork::initialize(&sk, 96).unwrap();
        assert!(sliding.changed_edges().is_none());
        let mut snapshot = sliding.subscribe_edges(theta).unwrap();
        assert_eq!(snapshot, sliding.network(theta));

        let mut now = hist;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = data.iter().map(|s| s[now..now + b].to_vec()).collect();
            sliding.ingest(&chunk).unwrap();
            now += b;
            let delta = sliding.changed_edges().expect("subscribed").clone();
            delta.apply_to(&mut snapshot).unwrap();
            let expected = sliding.network(theta);
            assert_eq!(snapshot, expected, "edge drift at now={now}");
            assert_eq!(snapshot.nan_pair_count(), expected.nan_pair_count());
        }

        sliding.unsubscribe_edges();
        let chunk: Vec<Vec<f64>> = data.iter().map(|s| s[..b].to_vec()).collect();
        sliding.ingest(&chunk).unwrap();
        assert!(sliding.changed_edges().is_none());
    }

    #[test]
    fn ingest_validates_chunk_shape() {
        let data = full_data(3, 120);
        let c = SeriesCollection::from_rows(data).unwrap();
        let sk = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        let mut sliding = SlidingApproxNetwork::initialize(&sk, 80).unwrap();
        assert!(sliding.ingest(&[vec![0.0; 20]]).is_err());
        assert!(sliding
            .ingest(&[vec![0.0; 5], vec![0.0; 5], vec![0.0; 5]])
            .is_err());
    }

    #[test]
    fn initialize_validates_query_length() {
        let data = full_data(2, 100);
        let c = SeriesCollection::from_rows(data).unwrap();
        let sk = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        assert!(SlidingApproxNetwork::initialize(&sk, 0).is_err());
        assert!(SlidingApproxNetwork::initialize(&sk, 30).is_err());
        assert!(SlidingApproxNetwork::initialize(&sk, 200).is_err());
        assert!(SlidingApproxNetwork::initialize(&sk, 100).is_ok());
    }

    #[test]
    fn network_snapshot_thresholds_current_state() {
        let data = full_data(4, 160);
        let c = SeriesCollection::from_rows(data).unwrap();
        let sk = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        let sliding = SlidingApproxNetwork::initialize(&sk, 120).unwrap();
        let m = sliding.correlation_matrix();
        let g = sliding.network(0.5);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(g.has_edge(i, j), m.get(i, j) > 0.5);
                assert_eq!(sliding.correlation(i, j), m.get(i, j));
            }
        }
        assert_eq!(sliding.correlation(2, 2), 1.0);
        assert_eq!(sliding.series_count(), 4);
        assert_eq!(sliding.basic_window(), 20);
    }
}
