//! Incremental approximate correlation maintenance for real-time data
//! (paper §3.2.2, Equation 6).
//!
//! [`SlidingApproxNetwork`] mirrors
//! [`tsubasa_core::incremental::SlidingNetwork`] but uses the DFT comparator:
//! when a new basic window arrives it
//!
//! 1. normalizes the window of every series and computes its DFT coefficients
//!    (the `O(B²)` step that makes this updater slower than TSUBASA's —
//!    exactly the effect Figure 5d measures),
//! 2. computes the pairwise coefficient distance `d_{ns+1}` for every pair,
//! 3. folds `c_{ns+1} ≈ 1 − d_{ns+1}²/2` into the sliding recombination using
//!    the Lemma 2 update, which is the algebraic content of Equation 6.

use std::collections::VecDeque;

use tsubasa_core::error::{Error, Result};
use tsubasa_core::exact::WindowContribution;
use tsubasa_core::incremental::{lemma2_update, SlidingSeriesState};
use tsubasa_core::matrix::{AdjacencyMatrix, CorrelationMatrix};
use tsubasa_core::sketch::pair_index;
use tsubasa_core::stats::WindowStats;

use crate::approx::{corr_from_distance, query_correlation, ApproxWindow};
use crate::dft::{coefficient_distance, naive_dft, Complex};
use crate::normalize::normalize_unit_with_stats;
use crate::sketch::DftSketchSet;

/// Incrementally maintained approximate all-pair correlation matrix over a
/// sliding real-time query window.
#[derive(Debug, Clone)]
pub struct SlidingApproxNetwork {
    basic_window: usize,
    coefficients: usize,
    n: usize,
    series: Vec<SlidingSeriesState>,
    /// Per basic window inside the query window: packed per-pair DFT
    /// distances, oldest first.
    pair_windows: VecDeque<Vec<f64>>,
    /// Current packed per-pair approximate correlations.
    corrs: Vec<f64>,
}

impl SlidingApproxNetwork {
    /// Build the initial state from a [`DftSketchSet`]: the query window
    /// covers the most recent `query_len` sketched points (`query_len` must
    /// be a positive multiple of the basic window).
    pub fn initialize(sketch: &DftSketchSet, query_len: usize) -> Result<Self> {
        let b = sketch.basic_window();
        if query_len == 0 || !query_len.is_multiple_of(b) {
            return Err(Error::InvalidQueryWindow {
                end: 0,
                len: query_len,
                series_len: sketch.window_count() * b,
            });
        }
        let ns = query_len / b;
        let available = sketch.window_count();
        if ns > available {
            return Err(Error::SketchMismatch {
                requested: format!("{ns} basic windows"),
                available: format!("{available} sketched windows"),
            });
        }
        let first = available - ns;
        let n = sketch.series_count();
        let base = sketch.base();

        let series: Vec<SlidingSeriesState> = (0..n)
            .map(|i| {
                let sk = base.series_sketch(i)?;
                Ok(SlidingSeriesState::new(
                    (first..available).map(|w| sk.window(w)).collect(),
                ))
            })
            .collect::<Result<_>>()?;

        let mut pair_windows = VecDeque::with_capacity(ns);
        for w in first..available {
            let mut per_pair = Vec::with_capacity(n * (n - 1) / 2);
            for i in 0..n {
                for j in (i + 1)..n {
                    per_pair.push(sketch.pair_distances(i, j)?[w]);
                }
            }
            pair_windows.push_back(per_pair);
        }

        let mut corrs = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let sx = base.series_sketch(i)?;
                let sy = base.series_sketch(j)?;
                let dists = sketch.pair_distances(i, j)?;
                let parts: Vec<ApproxWindow> = (first..available)
                    .map(|w| ApproxWindow {
                        x: sx.window(w),
                        y: sy.window(w),
                        dist: dists[w],
                    })
                    .collect();
                corrs.push(query_correlation(&parts));
            }
        }

        Ok(Self {
            basic_window: b,
            coefficients: sketch.coefficients(),
            n,
            series,
            pair_windows,
            corrs,
        })
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.n
    }

    /// The chunk size expected by [`SlidingApproxNetwork::ingest`].
    pub fn basic_window(&self) -> usize {
        self.basic_window
    }

    /// Slide forward by one basic window given the newly arrived chunk
    /// (`chunk[i]` holds the `B` new points of series `i`). This is the
    /// Equation 6 update: the only new DFT work is for the arriving window.
    pub fn ingest(&mut self, chunk: &[Vec<f64>]) -> Result<()> {
        if chunk.len() != self.n {
            return Err(Error::UnalignedSeries {
                expected: self.n,
                found: chunk.len(),
                index: 0,
            });
        }
        for points in chunk {
            if points.len() != self.basic_window {
                return Err(Error::ChunkSizeMismatch {
                    expected: self.basic_window,
                    found: points.len(),
                });
            }
        }

        // Per-series statistics and DFT coefficients of the arriving window.
        let arriving_stats: Vec<WindowStats> =
            chunk.iter().map(|p| WindowStats::from_values(p)).collect();
        let coeffs: Vec<Vec<Complex>> = chunk
            .iter()
            .zip(&arriving_stats)
            .map(|(p, s)| naive_dft(&normalize_unit_with_stats(p, s)))
            .collect();

        // Pairwise coefficient distances of the arriving window.
        let mut arriving_dists = Vec::with_capacity(self.corrs.len());
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                arriving_dists.push(coefficient_distance(
                    &coeffs[i],
                    &coeffs[j],
                    self.coefficients,
                ));
            }
        }

        let evicted_dists = self.pair_windows.front().expect("non-empty window").clone();
        let mut idx = 0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                let evicted = WindowContribution {
                    x: self.series[i].front().expect("non-empty"),
                    y: self.series[j].front().expect("non-empty"),
                    corr: corr_from_distance(evicted_dists[idx]),
                };
                let arriving = WindowContribution {
                    x: arriving_stats[i],
                    y: arriving_stats[j],
                    corr: corr_from_distance(arriving_dists[idx]),
                };
                self.corrs[idx] = lemma2_update(
                    self.series[i].total_len() as f64,
                    self.series[i].mean(),
                    self.series[j].mean(),
                    self.series[i].std(),
                    self.series[j].std(),
                    self.corrs[idx],
                    &evicted,
                    &arriving,
                );
                idx += 1;
            }
        }

        for (state, stats) in self.series.iter_mut().zip(&arriving_stats) {
            state.slide(*stats);
        }
        self.pair_windows.pop_front();
        self.pair_windows.push_back(arriving_dists);
        Ok(())
    }

    /// Current approximate correlation of one pair.
    pub fn correlation(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.corrs[pair_index(a, b, self.n)]
    }

    /// Snapshot of the approximate correlation matrix.
    pub fn correlation_matrix(&self) -> CorrelationMatrix {
        CorrelationMatrix::from_upper_triangle(self.n, self.corrs.clone())
    }

    /// Snapshot of the approximate climate network at threshold `theta`.
    pub fn network(&self, theta: f64) -> AdjacencyMatrix {
        self.correlation_matrix().threshold(theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sketch::Transform;
    use tsubasa_core::{baseline, QueryWindow, SeriesCollection};

    fn series(seed: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                (i as f64 * 0.11 + seed as f64).sin() * 1.4
                    + ((i * (seed + 2) + 5) % 23) as f64 * 0.07
            })
            .collect()
    }

    fn full_data(n: usize, len: usize) -> Vec<Vec<f64>> {
        (0..n).map(|s| series(s, len)).collect()
    }

    #[test]
    fn initialize_matches_eq5_on_initial_window() {
        let data = full_data(4, 160);
        let c = SeriesCollection::from_rows(data).unwrap();
        let b = 20;
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let sliding = SlidingApproxNetwork::initialize(&sk, 120).unwrap();
        // With all coefficients the approximation is exact, so the initial
        // matrix matches the baseline on the last 120 points.
        let query = QueryWindow::new(159, 120).unwrap();
        let exact = baseline::correlation_matrix(&c, query).unwrap();
        assert!(sliding.correlation_matrix().max_abs_diff(&exact) < 1e-9);
    }

    #[test]
    fn full_coefficient_updates_track_exact_baseline() {
        let n = 3;
        let b = 16;
        let total = 400;
        let hist = 160;
        let query_len = 96;
        let data = full_data(n, total);
        let c =
            SeriesCollection::from_rows(data.iter().map(|s| s[..hist].to_vec()).collect()).unwrap();
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        let mut sliding = SlidingApproxNetwork::initialize(&sk, query_len).unwrap();

        let mut now = hist;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = data.iter().map(|s| s[now..now + b].to_vec()).collect();
            sliding.ingest(&chunk).unwrap();
            now += b;
            let cur = SeriesCollection::from_rows(data.iter().map(|s| s[..now].to_vec()).collect())
                .unwrap();
            let query = QueryWindow::latest(now, query_len).unwrap();
            let exact = baseline::correlation_matrix(&cur, query).unwrap();
            let diff = sliding.correlation_matrix().max_abs_diff(&exact);
            assert!(diff < 1e-6, "drift {diff} at now={now}");
        }
    }

    #[test]
    fn partial_coefficients_give_bounded_error() {
        let n = 3;
        let b = 24;
        let total = 300;
        let hist = 144;
        let query_len = 96;
        let data = full_data(n, total);
        let c =
            SeriesCollection::from_rows(data.iter().map(|s| s[..hist].to_vec()).collect()).unwrap();
        let sk = DftSketchSet::build(&c, b, b * 3 / 4, Transform::Naive).unwrap();
        let mut sliding = SlidingApproxNetwork::initialize(&sk, query_len).unwrap();
        let mut now = hist;
        while now + b <= total {
            let chunk: Vec<Vec<f64>> = data.iter().map(|s| s[now..now + b].to_vec()).collect();
            sliding.ingest(&chunk).unwrap();
            now += b;
        }
        // The 75%-coefficient approximation drifts from the exact value (it
        // is an approximation, after all) but must remain a bounded, sane
        // correlation estimate.
        let cur =
            SeriesCollection::from_rows(data.iter().map(|s| s[..now].to_vec()).collect()).unwrap();
        let query = QueryWindow::latest(now, query_len).unwrap();
        let exact = baseline::correlation_matrix(&cur, query).unwrap();
        let diff = sliding.correlation_matrix().max_abs_diff(&exact);
        assert!(diff > 0.0, "partial coefficients should not be exact here");
        assert!(
            diff < 0.75,
            "approximation error unexpectedly large: {diff}"
        );
        for (_, _, c) in sliding.correlation_matrix().iter_pairs() {
            assert!((-1.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn ingest_validates_chunk_shape() {
        let data = full_data(3, 120);
        let c = SeriesCollection::from_rows(data).unwrap();
        let sk = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        let mut sliding = SlidingApproxNetwork::initialize(&sk, 80).unwrap();
        assert!(sliding.ingest(&[vec![0.0; 20]]).is_err());
        assert!(sliding
            .ingest(&[vec![0.0; 5], vec![0.0; 5], vec![0.0; 5]])
            .is_err());
    }

    #[test]
    fn initialize_validates_query_length() {
        let data = full_data(2, 100);
        let c = SeriesCollection::from_rows(data).unwrap();
        let sk = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        assert!(SlidingApproxNetwork::initialize(&sk, 0).is_err());
        assert!(SlidingApproxNetwork::initialize(&sk, 30).is_err());
        assert!(SlidingApproxNetwork::initialize(&sk, 200).is_err());
        assert!(SlidingApproxNetwork::initialize(&sk, 100).is_ok());
    }

    #[test]
    fn network_snapshot_thresholds_current_state() {
        let data = full_data(4, 160);
        let c = SeriesCollection::from_rows(data).unwrap();
        let sk = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        let sliding = SlidingApproxNetwork::initialize(&sk, 120).unwrap();
        let m = sliding.correlation_matrix();
        let g = sliding.network(0.5);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(g.has_edge(i, j), m.get(i, j) > 0.5);
                assert_eq!(sliding.correlation(i, j), m.get(i, j));
            }
        }
        assert_eq!(sliding.correlation(2, 2), 1.0);
        assert_eq!(sliding.series_count(), 4);
        assert_eq!(sliding.basic_window(), 20);
    }
}
