//! Basic-window normalization for the DFT comparator.
//!
//! A basic window `x = [x_1, ..., x_B]` is normalized to *unit norm*:
//! `x̂_i = (x_i − mean) / (σ · √B)`. With this convention
//!
//! * `‖x̂‖ = 1`, so the correlation/distance identity of paper Equation 3
//!   holds exactly: `corr(x, y) = 1 − d(x̂, ŷ)²/2`;
//! * the unitary DFT of `x̂` preserves the distance, so coefficient distances
//!   approximate `d(x̂, ŷ)` from below.
//!
//! A constant window has no direction; it normalizes to the all-zero vector,
//! consistent with `tsubasa-core`'s convention that its correlation with
//! anything is 0.

use tsubasa_core::stats::WindowStats;

/// Normalize a window to unit norm using its (pre-computed) statistics.
pub fn normalize_unit_with_stats(values: &[f64], stats: &WindowStats) -> Vec<f64> {
    let k = values.len() as f64;
    if stats.std == 0.0 || values.is_empty() {
        return vec![0.0; values.len()];
    }
    let denom = stats.std * k.sqrt();
    values.iter().map(|&v| (v - stats.mean) / denom).collect()
}

/// Normalize a window to unit norm, computing its statistics on the fly.
pub fn normalize_unit(values: &[f64]) -> Vec<f64> {
    let stats = WindowStats::from_values(values);
    normalize_unit_with_stats(values, &stats)
}

/// Euclidean distance between two equally long normalized windows.
pub fn normalized_distance(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tsubasa_core::stats::pearson;

    #[test]
    fn normalized_window_has_unit_norm() {
        let x: Vec<f64> = (0..40)
            .map(|i| (i as f64 * 0.3).sin() * 3.0 + 10.0)
            .collect();
        let n = normalize_unit(&x);
        let norm: f64 = n.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
        // Zero mean.
        assert!(n.iter().sum::<f64>().abs() < 1e-9);
    }

    #[test]
    fn constant_window_normalizes_to_zero() {
        let n = normalize_unit(&[5.0; 10]);
        assert!(n.iter().all(|&v| v == 0.0));
        assert!(normalize_unit(&[]).is_empty());
    }

    #[test]
    fn equation3_distance_correlation_identity() {
        let x: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.2).sin() + 0.05 * i as f64)
            .collect();
        let y: Vec<f64> = (0..50)
            .map(|i| (i as f64 * 0.22).cos() * 2.0 - 1.0)
            .collect();
        let d = normalized_distance(&normalize_unit(&x), &normalize_unit(&y));
        let corr = pearson(&x, &y);
        assert!((corr - (1.0 - d * d / 2.0)).abs() < 1e-9);
    }

    proptest! {
        /// corr = 1 − d²/2 for every pair of non-constant windows.
        #[test]
        fn prop_equation3_identity(
            x in proptest::collection::vec(-100.0f64..100.0, 4..80),
            y in proptest::collection::vec(-100.0f64..100.0, 4..80),
        ) {
            let n = x.len().min(y.len());
            let (x, y) = (&x[..n], &y[..n]);
            let sx = tsubasa_core::stats::WindowStats::from_values(x);
            let sy = tsubasa_core::stats::WindowStats::from_values(y);
            prop_assume!(sx.std > 1e-9 && sy.std > 1e-9);
            let d = normalized_distance(&normalize_unit(x), &normalize_unit(y));
            let corr = pearson(x, y);
            prop_assert!((corr - (1.0 - d * d / 2.0)).abs() < 1e-7);
        }
    }
}
