//! # tsubasa-dft
//!
//! The DFT-based *approximate* correlation comparator that TSUBASA is
//! evaluated against (paper §2.2 and §3.2): the StatStream / "uncooperative
//! time-series" family of techniques that
//!
//! 1. normalize every basic window to unit norm,
//! 2. take the first `n` DFT coefficients of each normalized window,
//! 3. approximate the per-window distance by the coefficient distance
//!    (`d_j ≃ Dist_n(X̂_j, Ŷ_j)`), and
//! 4. recombine the per-window distances into a query-window distance
//!    (Equation 5) and correlation (Equation 3), or prune threshold queries
//!    with the distance bound (Equation 4).
//!
//! For real-time data the query-window distance is updated incrementally
//! (Equation 6): only the arriving basic window needs new DFT coefficients.
//!
//! All-pairs queries go through the batched [`plan::ApproxPlan`] layer (the
//! approximate sibling of `tsubasa_core::plan::QueryPlan`): per-series
//! recombination tables shared across pairs, a window-major table of
//! `1 − d²/2` estimates swept by the tiled batch kernel, and Equation 4
//! pruning for thresholded networks.
//!
//! The approximation becomes exact when all `B` coefficients are used —
//! the property the paper's Figure 5a verifies and that the tests in this
//! crate assert.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod approx;
pub mod dft;
pub mod incremental;
pub mod normalize;
pub mod plan;
pub mod sketch;

pub use approx::{
    approximate_correlation_matrix, approximate_correlation_matrix_reference, approximate_network,
    corr_from_distance, distance_from_corr, pruning_radius, query_distance,
    statstream_average_correlation,
};
pub use dft::{naive_dft, radix2_fft, Complex};
pub use incremental::SlidingApproxNetwork;
pub use normalize::normalize_unit;
pub use plan::ApproxPlan;
pub use sketch::DftSketchSet;
