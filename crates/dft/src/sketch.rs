//! Sketching for the DFT comparator (the full Algorithm 1, lines 8–10).
//!
//! On top of the statistics kept by [`tsubasa_core::SketchSet`] (per-window
//! mean/σ and per-pair correlation), the comparator stores, per pair and per
//! basic window, the Euclidean distance of the first `n` DFT coefficients of
//! the two normalized windows (`d_j`). The number of coefficients is fixed at
//! sketch time; using all `B` coefficients makes the comparator exact.
//!
//! # The tiled distance sweep
//!
//! [`DftSketchSet::build`] evaluates the `N(N−1)/2` pair distances of each
//! window as a batch kernel over a **coefficient-major structure-of-arrays
//! layout**: the first `n` complex coefficients of every series' normalized
//! window are flattened into one contiguous real row of `2n` values
//! (`[re₀, im₀, re₁, im₁, …]`), after which every pair's squared coefficient
//! distance is a cache-blocked difference-square sweep over contiguous rows
//! ([`tsubasa_core::stats::tiled_pair_dist_sq_into`], the distance sibling of
//! the exact sketch's `Z·Zᵀ` kernel). Distances are kept in **both** layouts:
//! the pair-major per-pair vectors (the [`DftSketchSet::pair_distances`] API)
//! and a window-major flat table the approximate query plan streams
//! ([`DftSketchSet::window_dists_view`], zero-copy). The scalar per-pair path
//! survives as [`DftSketchSet::build_reference`]; every accumulated term of
//! the tiled sweep is non-negative, so the two agree far inside the `1e-10`
//! tolerance contract pinned by `tests/approx_plan_agreement.rs`.

use serde::{Deserialize, Serialize};
use tsubasa_core::capacity::check_dense_budget;
use tsubasa_core::error::{Error, Result};
use tsubasa_core::plan::{CorrView, PlanMethod, TransposedCorrs};
use tsubasa_core::sketch::{gather_pair_rows, pair_index, scatter_pair_rows_with};
use tsubasa_core::source::{check_source_windows, CorrSource, PairTable};
use tsubasa_core::stats::{
    normalize_into, tiled_pair_corrs_into, tiled_pair_dist_sq_into, WindowStats,
};
use tsubasa_core::{SeriesCollection, SketchSet};

use crate::dft::{coefficient_distance, naive_dft, Complex, DftPlanner};
use crate::normalize::normalize_unit_with_stats;

/// How the DFT coefficients of a basic window are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transform {
    /// Naive `O(B²)` DFT — the cost model assumed by the paper.
    Naive,
    /// Iterative radix-2 FFT through a reusable [`DftPlanner`] (bit-reversal
    /// and twiddle tables built once per sketch, `O(B log B)` per window for
    /// power-of-two `B`, naive fallback otherwise). Used by the `dft_vs_fft`
    /// ablation and the parallel engine's comparator path.
    Fft,
}

/// The comparator's sketch: the core statistics plus per-pair per-window DFT
/// coefficient distances, kept in both pair-major and window-major layouts
/// (see the [module docs](self) for the tiled sweep that produces them).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DftSketchSet {
    base: SketchSet,
    /// Number of DFT coefficients used when computing distances.
    coefficients: usize,
    /// Packed per-pair vectors of per-window distances `d_j`.
    pair_distances: Vec<Vec<f64>>,
    /// Window-major copy of all pair distances (`ns × P`, row `w` holds `d_w`
    /// of every pair in packed order) — the table
    /// [`crate::plan::ApproxPlan`] streams. Maintained alongside
    /// `pair_distances` by both constructors, mirroring the dual layout of
    /// [`SketchSet`]'s pair correlations.
    window_dists: Vec<f64>,
}

/// Flatten the first `n_coeff` complex coefficients into a contiguous real
/// row (`[re₀, im₀, re₁, im₁, …]`). The Euclidean distance of two such rows
/// equals the complex coefficient distance: `|X_k − Y_k|² = Δre² + Δim²`.
pub(crate) fn flatten_coeffs_into(coeffs: &[Complex], n_coeff: usize, row: &mut [f64]) {
    debug_assert_eq!(row.len(), 2 * n_coeff);
    for (k, c) in coeffs.iter().take(n_coeff).enumerate() {
        row[2 * k] = c.re;
        row[2 * k + 1] = c.im;
    }
}

impl DftSketchSet {
    /// Sketch a collection for the DFT comparator: basic-window statistics,
    /// per-pair correlations (reused by Equation 5), normalized-window DFT
    /// coefficients, and the per-pair coefficient distances.
    ///
    /// `coefficients` is the `n` of `Dist_n`; it is clamped to the basic
    /// window size.
    ///
    /// Per window, the first `n` coefficients of every series are flattened
    /// into a coefficient-major structure-of-arrays block and all pair
    /// distances of the window are evaluated as one tiled difference-square
    /// sweep ([`tiled_pair_dist_sq_into`]); the coefficients themselves are
    /// transient (one window block is live at a time), matching the paper's
    /// space analysis. [`DftSketchSet::build_reference`] keeps the scalar
    /// per-pair path as the arithmetic yardstick.
    pub fn build(
        collection: &SeriesCollection,
        basic_window: usize,
        coefficients: usize,
        transform: Transform,
    ) -> Result<Self> {
        let base = SketchSet::build(collection, basic_window)?;
        let n_coeff = coefficients.clamp(1, basic_window);
        let ns = base.window_count();
        let n = collection.len();
        let n_pairs = n * n.saturating_sub(1) / 2;

        let planner = DftPlanner::new(basic_window);
        let row_len = 2 * n_coeff;
        // Coefficient-major scratch: row `i` holds series `i`'s flattened
        // coefficients of the current window, contiguous. Reused per window.
        let mut rows = vec![0.0f64; n * row_len];
        let mut sq = vec![0.0f64; n_pairs];
        let mut window_dists = vec![0.0f64; ns * n_pairs];
        for w in 0..ns {
            let span = base.windowing().window_span(w);
            for (id, series) in collection.iter_with_ids() {
                let stats = base.series_sketch(id)?.window(w);
                let normalized = normalize_unit_with_stats(span.slice(series.values()), &stats);
                let c = match transform {
                    Transform::Naive => naive_dft(&normalized),
                    Transform::Fft => planner.transform(&normalized),
                };
                flatten_coeffs_into(&c, n_coeff, &mut rows[id * row_len..(id + 1) * row_len]);
            }
            tiled_pair_dist_sq_into(&rows, n, row_len, &mut sq);
            for (slot, &s) in window_dists[w * n_pairs..(w + 1) * n_pairs]
                .iter_mut()
                .zip(&sq)
            {
                *slot = s.max(0.0).sqrt();
            }
        }

        let pair_distances = gather_pair_rows(&window_dists, n_pairs, ns);
        Ok(Self {
            base,
            coefficients: n_coeff,
            pair_distances,
            window_dists,
        })
    }

    /// The scalar reference sketch: identical shapes to
    /// [`DftSketchSet::build`], with every pair-window distance computed by
    /// the per-pair [`coefficient_distance`] pass over per-series coefficient
    /// vectors. This path is the arithmetic yardstick the tiled sweep is
    /// tested against (`tests/approx_plan_agreement.rs`); it is kept for that
    /// role and for the `pr5_approx_kernels` speedup measurement, not for
    /// speed.
    pub fn build_reference(
        collection: &SeriesCollection,
        basic_window: usize,
        coefficients: usize,
        transform: Transform,
    ) -> Result<Self> {
        let base = SketchSet::build(collection, basic_window)?;
        let n_coeff = coefficients.clamp(1, basic_window);
        let ns = base.window_count();
        let n = collection.len();

        // DFT coefficients of every normalized basic window of every series.
        let mut coeffs: Vec<Vec<Vec<Complex>>> = Vec::with_capacity(n);
        let planner = DftPlanner::new(basic_window);
        for (id, series) in collection.iter_with_ids() {
            let sketch = base.series_sketch(id)?;
            let mut per_window = Vec::with_capacity(ns);
            for w in 0..ns {
                let span = base.windowing().window_span(w);
                let normalized =
                    normalize_unit_with_stats(span.slice(series.values()), &sketch.window(w));
                let c = match transform {
                    Transform::Naive => naive_dft(&normalized),
                    Transform::Fft => planner.transform(&normalized),
                };
                per_window.push(c);
            }
            coeffs.push(per_window);
        }

        let mut pair_distances = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for (i, j) in collection.pairs() {
            let dists: Vec<f64> = (0..ns)
                .map(|w| coefficient_distance(&coeffs[i][w], &coeffs[j][w], n_coeff))
                .collect();
            pair_distances.push(dists);
        }

        let window_dists =
            scatter_pair_rows_with(pair_distances.len(), ns, |p, w| pair_distances[p][w]);
        Ok(Self {
            base,
            coefficients: n_coeff,
            pair_distances,
            window_dists,
        })
    }

    /// Construct a comparator sketch from already-computed parts: the core
    /// statistics sketch plus a window-major flat table of pair distances
    /// (`window_dists[w·P + p]`, same packed pair order as `base`). The
    /// pair-major layout is rebuilt from the flat table. Used by snapshot
    /// paths that maintain distances incrementally
    /// (`SlidingApproxNetwork::snapshot_sketch`) and by any epoch-publication
    /// layer that freezes a growing comparator sketch.
    pub fn from_parts(
        base: SketchSet,
        coefficients: usize,
        window_dists: Vec<f64>,
    ) -> Result<Self> {
        let n = base.series_count();
        let n_pairs = n * n.saturating_sub(1) / 2;
        let ns = base.window_count();
        if window_dists.len() != ns * n_pairs {
            return Err(Error::SketchMismatch {
                requested: format!(
                    "{} pair distances ({ns} windows × {n_pairs} pairs)",
                    ns * n_pairs
                ),
                available: format!("{} pair distances", window_dists.len()),
            });
        }
        let n_coeff = coefficients.clamp(1, base.basic_window());
        let pair_distances = gather_pair_rows(&window_dists, n_pairs, ns);
        Ok(Self {
            base,
            coefficients: n_coeff,
            pair_distances,
            window_dists,
        })
    }

    /// Append the sketch of one newly completed basic window from its raw
    /// points (`chunk[i]` holds the `B` new values of series `i`): per-series
    /// statistics, per-pair correlations (both into the core `base` sketch,
    /// through the same tiled `Z·Zᵀ` kernel as [`SketchSet::push_window`]'s
    /// callers), and per-pair DFT coefficient distances in both layouts.
    /// This is the real-time ingestion path of the comparator; arithmetic is
    /// identical to rebuilding with [`DftSketchSet::build`] over the extended
    /// data, so a grown sketch stays bit-equal to a rebuilt one.
    pub fn push_window(&mut self, chunk: &[Vec<f64>], transform: Transform) -> Result<()> {
        let n = self.series_count();
        let b = self.basic_window();
        if chunk.len() != n {
            return Err(Error::UnalignedSeries {
                expected: n,
                found: chunk.len(),
                index: 0,
            });
        }
        for points in chunk {
            if points.len() != b {
                return Err(Error::ChunkSizeMismatch {
                    expected: b,
                    found: points.len(),
                });
            }
        }
        let n_pairs = n * n.saturating_sub(1) / 2;

        let stats: Vec<WindowStats> = chunk
            .iter()
            .map(|points| WindowStats::from_values(points))
            .collect();

        // Exact half: z-normalize the chunk once and batch all pair
        // correlations of the arriving window.
        let mut z = vec![0.0f64; n * b];
        for (i, points) in chunk.iter().enumerate() {
            normalize_into(points, &stats[i], &mut z[i * b..(i + 1) * b]);
        }
        let mut pair_corrs = vec![0.0f64; n_pairs];
        tiled_pair_corrs_into(&z, n, b, &mut pair_corrs);
        drop(z);

        // Comparator half: unit-normalized DFT coefficients, flattened
        // coefficient-major, then one tiled difference-square sweep.
        let planner = DftPlanner::new(b);
        let row_len = 2 * self.coefficients;
        let mut rows = vec![0.0f64; n * row_len];
        for (i, points) in chunk.iter().enumerate() {
            let normalized = normalize_unit_with_stats(points, &stats[i]);
            let c = match transform {
                Transform::Naive => naive_dft(&normalized),
                Transform::Fft => planner.transform(&normalized),
            };
            flatten_coeffs_into(
                &c,
                self.coefficients,
                &mut rows[i * row_len..(i + 1) * row_len],
            );
        }
        let mut sq = vec![0.0f64; n_pairs];
        tiled_pair_dist_sq_into(&rows, n, row_len, &mut sq);
        let dists: Vec<f64> = sq.iter().map(|&s| s.max(0.0).sqrt()).collect();

        self.base.push_window(stats, pair_corrs)?;
        self.window_dists.extend_from_slice(&dists);
        for (per_pair, d) in self.pair_distances.iter_mut().zip(dists) {
            per_pair.push(d);
        }
        Ok(())
    }

    /// The underlying statistics sketch.
    pub fn base(&self) -> &SketchSet {
        &self.base
    }

    /// Number of DFT coefficients the distances were computed with.
    pub fn coefficients(&self) -> usize {
        self.coefficients
    }

    /// Basic-window size.
    pub fn basic_window(&self) -> usize {
        self.base.basic_window()
    }

    /// Number of series.
    pub fn series_count(&self) -> usize {
        self.base.series_count()
    }

    /// Number of sketched basic windows.
    pub fn window_count(&self) -> usize {
        self.base.window_count()
    }

    /// Per-window DFT distances of one unordered pair.
    pub fn pair_distances(&self, i: usize, j: usize) -> Result<&[f64]> {
        let n = self.series_count();
        if i == j || i >= n || j >= n {
            return Err(Error::UnknownSeries(i.max(j)));
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        Ok(&self.pair_distances[pair_index(a, b, n)])
    }

    /// Zero-copy window-major view of the pair distances over the basic
    /// windows in `windows` — the table [`crate::plan::ApproxPlan`] maps into
    /// per-window correlation estimates. Row `k` of the view is
    /// `d_{windows.start+k}` of every pair in packed order. ([`CorrView`] is
    /// a layout type, not a semantic one: here its rows hold distances.)
    ///
    /// # Panics
    ///
    /// Panics when `windows` exceeds the sketched window range.
    pub fn window_dists_view(&self, windows: std::ops::Range<usize>) -> CorrView<'_> {
        let n = self.series_count();
        let n_pairs = n * n.saturating_sub(1) / 2;
        CorrView::new(
            &self.window_dists[windows.start * n_pairs..windows.end * n_pairs],
            n_pairs,
            windows.len(),
        )
    }

    /// Number of floats stored (core statistics plus distances) — used for
    /// the Figure 6d space-overhead comparison.
    pub fn stored_floats(&self) -> usize {
        // The comparator does not need the per-pair correlations of the core
        // sketch (it has distances instead), so count series stats + dists.
        let ns = self.window_count();
        let n = self.series_count();
        ns * (2 * n + n * (n - 1) / 2)
    }
}

/// The comparator as a dual-method [`CorrSource`]: exact tables borrow the
/// base sketch's window-major correlations, approximate tables map the
/// window-major distance table through Equation 3 (`ĉ = 1 − d²/2`) — the
/// exact values `ApproxPlan` recombines, so engine answers over this source
/// are bit-identical to the in-memory plan's.
impl CorrSource for DftSketchSet {
    fn series_count(&self) -> usize {
        DftSketchSet::series_count(self)
    }

    fn window_count(&self, _method: PlanMethod) -> usize {
        // Both tables cover every sketched window: the comparator stores the
        // base statistics sketch *and* the distance table side by side.
        DftSketchSet::window_count(self)
    }

    fn zero_copy(&self) -> bool {
        true
    }

    fn series_stats(&self, windows: std::ops::Range<usize>) -> Result<Vec<Vec<WindowStats>>> {
        CorrSource::series_stats(self.base(), windows)
    }

    fn full_table(
        &self,
        windows: std::ops::Range<usize>,
        method: PlanMethod,
    ) -> Result<Option<PairTable<'_>>> {
        match method {
            PlanMethod::Exact => CorrSource::full_table(self.base(), windows, method),
            PlanMethod::Approximate => {
                check_source_windows(self, &windows, method)?;
                let n = DftSketchSet::series_count(self);
                let n_pairs = n * n.saturating_sub(1) / 2;
                // The estimate table is materialized (Equation 3 is a map,
                // not a view); over the dense budget callers fall back to
                // chunked reads instead.
                if check_dense_budget(n_pairs, windows.len()).is_err() {
                    return Ok(None);
                }
                let dists = self.window_dists_view(windows.clone());
                Ok(Some(PairTable::Owned(TransposedCorrs::from_fn(
                    n_pairs,
                    windows.len(),
                    |p, k| {
                        let d = dists.window_row(k)[p];
                        1.0 - d * d / 2.0
                    },
                ))))
            }
        }
    }

    fn chunk_table(
        &self,
        chunk: &[(usize, usize)],
        windows: std::ops::Range<usize>,
        method: PlanMethod,
    ) -> Result<TransposedCorrs> {
        check_source_windows(self, &windows, method)?;
        let n = DftSketchSet::series_count(self);
        match method {
            PlanMethod::Exact => CorrSource::chunk_table(self.base(), chunk, windows, method),
            PlanMethod::Approximate => {
                let dists = self.window_dists_view(windows.clone());
                Ok(TransposedCorrs::from_fn(
                    chunk.len(),
                    windows.len(),
                    |p, k| {
                        let (a, b) = chunk[p];
                        let d = dists.window_row(k)[pair_index(a, b, n)];
                        1.0 - d * d / 2.0
                    },
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::stats::pearson;

    fn collection(n: usize, len: usize) -> SeriesCollection {
        SeriesCollection::from_rows(
            (0..n)
                .map(|s| {
                    (0..len)
                        .map(|i| {
                            ((i + s * 13) as f64 * 0.17).sin() + 0.3 * ((i * s + 7) % 5) as f64
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn build_produces_expected_shapes() {
        let c = collection(4, 120);
        let sk = DftSketchSet::build(&c, 20, 10, Transform::Naive).unwrap();
        assert_eq!(sk.basic_window(), 20);
        assert_eq!(sk.coefficients(), 10);
        assert_eq!(sk.window_count(), 6);
        assert_eq!(sk.series_count(), 4);
        assert_eq!(sk.pair_distances(0, 3).unwrap().len(), 6);
        assert!(sk.stored_floats() > 0);
    }

    #[test]
    fn coefficients_clamped_to_basic_window() {
        let c = collection(2, 60);
        let sk = DftSketchSet::build(&c, 15, 500, Transform::Naive).unwrap();
        assert_eq!(sk.coefficients(), 15);
        let sk0 = DftSketchSet::build(&c, 15, 0, Transform::Naive).unwrap();
        assert_eq!(sk0.coefficients(), 1);
    }

    #[test]
    fn full_coefficient_distance_recovers_window_correlation() {
        let c = collection(3, 100);
        let b = 25;
        let sk = DftSketchSet::build(&c, b, b, Transform::Naive).unwrap();
        // With all coefficients, 1 - d²/2 equals the exact per-window
        // correlation (Equation 3).
        let dists = sk.pair_distances(0, 1).unwrap();
        for (w, &d) in dists.iter().enumerate() {
            let x = &c.get(0).unwrap().values()[w * b..(w + 1) * b];
            let y = &c.get(1).unwrap().values()[w * b..(w + 1) * b];
            let expected = pearson(x, y);
            assert!(
                ((1.0 - d * d / 2.0) - expected).abs() < 1e-9,
                "window {w}: {} vs {expected}",
                1.0 - d * d / 2.0
            );
        }
    }

    #[test]
    fn fewer_coefficients_underestimate_distance() {
        let c = collection(2, 200);
        let full = DftSketchSet::build(&c, 50, 50, Transform::Naive).unwrap();
        let few = DftSketchSet::build(&c, 50, 5, Transform::Naive).unwrap();
        let d_full = full.pair_distances(0, 1).unwrap();
        let d_few = few.pair_distances(0, 1).unwrap();
        for (a, b) in d_full.iter().zip(d_few) {
            assert!(
                b <= &(a + 1e-12),
                "partial distance must not exceed full distance"
            );
        }
    }

    #[test]
    fn fft_and_naive_sketches_agree() {
        let c = collection(3, 128);
        let a = DftSketchSet::build(&c, 32, 16, Transform::Naive).unwrap();
        let b = DftSketchSet::build(&c, 32, 16, Transform::Fft).unwrap();
        for (i, j) in c.pairs() {
            let da = a.pair_distances(i, j).unwrap();
            let db = b.pair_distances(i, j).unwrap();
            for (x, y) in da.iter().zip(db) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn tiled_build_matches_reference_path() {
        let c = collection(7, 130);
        for (b, n_coeff) in [(13usize, 13usize), (20, 7), (32, 32)] {
            let tiled = DftSketchSet::build(&c, b, n_coeff, Transform::Naive).unwrap();
            let reference =
                DftSketchSet::build_reference(&c, b, n_coeff, Transform::Naive).unwrap();
            assert_eq!(tiled.base(), reference.base());
            for (i, j) in c.pairs() {
                let dt = tiled.pair_distances(i, j).unwrap();
                let dr = reference.pair_distances(i, j).unwrap();
                for (a, b) in dt.iter().zip(dr) {
                    assert!((a - b).abs() <= 1e-12, "pair ({i},{j}): {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn window_dists_view_mirrors_pair_distances() {
        let c = collection(4, 120);
        let sk = DftSketchSet::build(&c, 20, 10, Transform::Naive).unwrap();
        let view = sk.window_dists_view(1..5);
        assert_eq!(view.pair_count(), 6);
        assert_eq!(view.window_count(), 4);
        for (p, (i, j)) in c.pairs().enumerate() {
            let dists = sk.pair_distances(i, j).unwrap();
            for k in 0..4 {
                assert_eq!(view.window_row(k)[p], dists[1 + k]);
            }
        }
    }

    #[test]
    fn pair_distances_rejects_bad_ids() {
        let c = collection(3, 60);
        let sk = DftSketchSet::build(&c, 20, 20, Transform::Naive).unwrap();
        assert!(sk.pair_distances(1, 1).is_err());
        assert!(sk.pair_distances(0, 9).is_err());
    }
}
