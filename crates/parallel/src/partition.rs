//! Partitioning of the all-pair workload.
//!
//! The paper partitions pairs like a parallel block nested-loop join: each
//! partition is a group of *rows* of the correlation matrix (a subset of
//! series paired with every later series), processed row by row, so that the
//! statistics of the row's series stay hot while its pairs are computed. For
//! load balancing every partition receives (almost) the same number of pairs.

use tsubasa_core::plan::even_sizes;
use tsubasa_core::sketch::unpack_pair_index;
use tsubasa_core::SeriesId;

/// One partition: a contiguous run of unordered pairs in row-major order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairPartition {
    /// Partition index.
    pub id: usize,
    /// The unordered pairs `(i, j)`, `i < j`, assigned to this partition, in
    /// row-major order.
    pub pairs: Vec<(SeriesId, SeriesId)>,
}

impl PairPartition {
    /// Number of pairs in the partition.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the partition holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Split the `n(n−1)/2` unordered pairs of `n` series into `parts` partitions
/// of (nearly) equal size, preserving row-major order inside each partition
/// so that consecutive pairs share their first series. Each partition is a
/// contiguous run of the packed upper triangle — the property the carve-and-
/// write result assembly and the block-kernel row tiles rely on — generated
/// directly from its packed start index rather than by slicing a
/// materialized list of every pair.
pub fn partition_pairs(n: usize, parts: usize) -> Vec<PairPartition> {
    let total = n * n.saturating_sub(1) / 2;
    let sizes = even_sizes(total, parts);
    let mut out = Vec::with_capacity(sizes.len());
    let mut cursor = 0;
    for (id, size) in sizes.into_iter().enumerate() {
        let mut pairs = Vec::with_capacity(size);
        if size > 0 {
            let (mut i, mut j) = unpack_pair_index(cursor, n);
            for _ in 0..size {
                pairs.push((i, j));
                j += 1;
                if j == n {
                    i += 1;
                    j = i + 1;
                }
            }
        }
        cursor += size;
        out.push(PairPartition { id, pairs });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn partitions_cover_all_pairs_exactly_once() {
        let parts = partition_pairs(10, 4);
        assert_eq!(parts.len(), 4);
        let mut seen = HashSet::new();
        for p in &parts {
            for &pair in &p.pairs {
                assert!(seen.insert(pair), "duplicate pair {pair:?}");
            }
        }
        assert_eq!(seen.len(), 45);
    }

    #[test]
    fn partition_sizes_are_balanced() {
        let parts = partition_pairs(20, 7);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 190);
    }

    #[test]
    fn more_partitions_than_pairs_yields_empty_tails() {
        let parts = partition_pairs(3, 10);
        assert_eq!(parts.len(), 10);
        let non_empty: usize = parts.iter().filter(|p| !p.is_empty()).count();
        assert_eq!(non_empty, 3);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 3);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(
            partition_pairs(0, 4).iter().map(|p| p.len()).sum::<usize>(),
            0
        );
        assert_eq!(partition_pairs(1, 1)[0].len(), 0);
        // parts == 0 is clamped to 1.
        let single = partition_pairs(5, 0);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].len(), 10);
    }

    #[test]
    fn pairs_keep_row_major_order_within_partition() {
        let parts = partition_pairs(8, 3);
        for p in &parts {
            for w in p.pairs.windows(2) {
                assert!(w[0] < w[1], "pairs out of order: {:?}", w);
            }
        }
    }

    proptest! {
        #[test]
        fn prop_partition_is_exact_cover(n in 0usize..40, parts in 1usize..16) {
            let partitions = partition_pairs(n, parts);
            let total: usize = partitions.iter().map(|p| p.len()).sum();
            prop_assert_eq!(total, n * n.saturating_sub(1) / 2);
            let sizes: Vec<usize> = partitions.iter().map(|p| p.len()).collect();
            let min = sizes.iter().min().copied().unwrap_or(0);
            let max = sizes.iter().max().copied().unwrap_or(0);
            prop_assert!(max - min <= 1);
        }
    }
}
