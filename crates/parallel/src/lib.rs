//! # tsubasa-parallel
//!
//! The parallel, disk-based TSUBASA configuration (paper §3.4).
//!
//! The all-pair workload is embarrassingly parallel: the `N(N−1)/2` unordered
//! pairs are split into partitions processed by independent computation
//! workers, while a single dedicated database worker persists sketches (see
//! [`tsubasa_storage::BatchWriter`]). At query time the per-series statistics
//! are folded into one read-only [`tsubasa_core::plan::QueryPlan`] shared by
//! every worker; each worker reads its partition's sketches from the store in
//! batches and writes correlations straight into its disjoint contiguous
//! slice of the packed result matrix (partitions are contiguous in row-major
//! pair order, so no merge step exists).
//!
//! Both phases report the timing breakdowns the paper's Figure 6a/6b plot:
//! sketch-computation vs database-write time, and database-read vs
//! matrix-calculation time.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod engine;
pub mod partition;
pub mod pool;
pub mod timing;

pub use engine::{ParallelConfig, ParallelEngine, QueryMethod, SketchMethod};
pub use partition::{partition_pairs, PairPartition};
pub use pool::WorkerPool;
pub use timing::{QueryReport, SketchReport};
