//! The parallel sketch / query engine (paper §3.4).
//!
//! Both phases follow the same shape: the unordered pairs are partitioned
//! across computation workers ([`crate::partition::partition_pairs`]) that
//! run on the engine's reusable [`WorkerPool`] (no per-call thread spawning);
//! during sketching the workers stream [`WriteBatch`]es to the single
//! database worker, and during querying they read sketch batches back from
//! the store and write correlations straight into their disjoint slices of
//! the packed result matrix.
//!
//! Both hot loops are tiled batch kernels over window-major data: the sketch
//! phase z-normalizes every basic window once and evaluates each pair-window
//! correlation as a dot product over contiguous rows
//! ([`tsubasa_core::stats::normalized_dot_corr`]), and the exact query phase
//! transposes each read batch into a window-major correlation table and
//! sweeps it with [`QueryPlan::block_kernel`].

use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsubasa_core::capacity::check_dense_budget;
use tsubasa_core::error::{Error, Result};
use tsubasa_core::matrix::CorrelationMatrix;
use tsubasa_core::plan::{row_segments, CorrView, PlanMethod, QueryPlan};
use tsubasa_core::sketch::pair_index;
use tsubasa_core::source::{audit_nan_chunk, check_source_windows, CorrSource};
use tsubasa_core::stats::{normalize_into, normalized_dot_corr, WindowStats};
use tsubasa_core::sweep::{CorrelationBounds, EdgeList, EdgeSink, TileSink, TopK, TopKSink};
use tsubasa_core::window::BasicWindowing;
use tsubasa_core::Job;
use tsubasa_core::SeriesCollection;
use tsubasa_dft::dft::{coefficient_distance, DftPlanner};
use tsubasa_dft::normalize::normalize_unit_with_stats;
use tsubasa_storage::pile::{PileBatchWriter, PileSlab, PileWriter, SegmentKind, SketchPile};
use tsubasa_storage::{
    BatchWriter, PairWindowRecord, SeriesWindowRecord, SketchStore, StoreLayout, WriteBatch,
};

use crate::partition::partition_pairs;
use crate::pool::WorkerPool;
use crate::timing::{QueryReport, SketchReport};

/// Which sketch the computation workers produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchMethod {
    /// TSUBASA's exact sketch: per-pair per-window Pearson correlations.
    Exact,
    /// The DFT comparator's sketch: per-series DFT coefficients of normalized
    /// windows and per-pair per-window coefficient distances, using the given
    /// number of coefficients.
    Dft {
        /// Number of DFT coefficients (`n` of `Dist_n`).
        coefficients: usize,
    },
}

/// How the query phase turns stored records into correlations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMethod {
    /// Exact recombination (Lemma 1) from stored per-window correlations.
    Exact,
    /// Approximate recombination (Equation 5) from stored DFT distances.
    Approximate,
}

/// Configuration of the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of computation workers (the paper uses 63 plus one database
    /// worker).
    pub workers: usize,
    /// Number of pairs whose records are grouped into one write batch / one
    /// ranged read.
    pub batch_pairs: usize,
    /// What the sketch phase computes.
    pub sketch_method: SketchMethod,
    /// Audit chunks skipped by Equation 4 pruning for NaN records. Pruning
    /// decides from per-series statistics alone, so a method-mismatched
    /// record (NaN in the recombined field) hiding in a skippable chunk is
    /// never read and its pair goes uncounted. With this set, skipped chunks
    /// are still read and NaN-audited — the tiles stay skipped (no
    /// recombination work), only the accounting becomes exhaustive, at the
    /// cost of the store reads pruning would have saved.
    pub audit_pruned_chunks: bool,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get().saturating_sub(1).max(1))
            .unwrap_or(1);
        Self {
            workers,
            batch_pairs: tsubasa_storage::default_batch_pairs(),
            sketch_method: SketchMethod::Exact,
            audit_pruned_chunks: false,
        }
    }
}

/// The parallel, disk-based TSUBASA engine.
///
/// The engine owns a reusable [`WorkerPool`] sized to its configured worker
/// count: every [`ParallelEngine::sketch_to_store`] and
/// [`ParallelEngine::query_from_store`] call runs its computation workers on
/// those long-lived threads, so back-to-back phases (and repeated queries)
/// pay thread startup once per engine instead of once per call.
#[derive(Debug)]
pub struct ParallelEngine {
    config: ParallelConfig,
    pool: WorkerPool,
}

impl ParallelEngine {
    /// Create an engine with the given configuration, spawning its worker
    /// pool.
    pub fn new(config: ParallelConfig) -> Self {
        let pool = WorkerPool::new(config.workers.max(1));
        Self { config, pool }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ParallelConfig {
        self.config
    }

    /// The engine's reusable worker pool (shareable with the in-memory
    /// sweeps via [`tsubasa_core::runner::JobRunner`]).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// The store layout required to hold the sketch of `collection` at the
    /// given basic-window size.
    pub fn layout_for(collection: &SeriesCollection, basic_window: usize) -> Result<StoreLayout> {
        let windowing = BasicWindowing::new(basic_window)?;
        Ok(StoreLayout {
            n_series: collection.len(),
            n_windows: windowing.complete_windows(collection.series_len()),
            basic_window,
        })
    }

    /// Sketch `collection` into `store` using the configured number of
    /// computation workers plus one database worker, and report the timing
    /// breakdown (Figure 6a).
    pub fn sketch_to_store(
        &self,
        collection: &SeriesCollection,
        basic_window: usize,
        store: Arc<dyn SketchStore>,
    ) -> Result<SketchReport> {
        let wall_start = Instant::now();
        let layout = store.layout();
        let expected = Self::layout_for(collection, basic_window)?;
        if layout != expected {
            return Err(Error::SketchMismatch {
                requested: format!("{expected:?}"),
                available: format!("{layout:?}"),
            });
        }
        let windowing = BasicWindowing::new(basic_window)?;
        let ns = layout.n_windows;
        let n = collection.len();
        if ns == 0 {
            return Err(Error::InvalidBasicWindow {
                window: basic_window,
                series_len: collection.series_len(),
            });
        }

        let writer = BatchWriter::spawn(store, self.config.batch_pairs.max(1));
        let mut compute_time = Duration::ZERO;
        let bw = basic_window;
        let exact = matches!(self.config.sketch_method, SketchMethod::Exact);

        // Per-series pass: window statistics, the window-major z-normalized
        // copy of the data for the exact tiled kernel, and (for the DFT
        // comparator) the coefficients of every normalized window. All of it
        // is shared read-only with the pair workers below.
        let per_series_start = Instant::now();
        let mut series_coeffs: Vec<Vec<Vec<tsubasa_dft::dft::Complex>>> = Vec::new();
        // z[(w·n + i)·B ..] is basic window `w` of series `i`, z-scored; a
        // pair's window correlation is then one dot product over two
        // contiguous rows instead of a centered cross-product over raw data.
        let mut z = vec![0.0f64; if exact { ns * n * bw } else { 0 }];
        let planner = DftPlanner::new(bw);
        for (id, series) in collection.iter_with_ids() {
            let values = series.values();
            let stats: Vec<WindowStats> = (0..ns)
                .map(|w| WindowStats::from_values(windowing.window_span(w).slice(values)))
                .collect();
            if exact {
                for (w, st) in stats.iter().enumerate() {
                    let span = windowing.window_span(w);
                    let row = &mut z[(w * n + id) * bw..(w * n + id + 1) * bw];
                    normalize_into(span.slice(values), st, row);
                }
            }
            if let SketchMethod::Dft { coefficients: _ } = self.config.sketch_method {
                let coeffs = (0..ns)
                    .map(|w| {
                        let span = windowing.window_span(w);
                        planner.transform(&normalize_unit_with_stats(span.slice(values), &stats[w]))
                    })
                    .collect();
                series_coeffs.push(coeffs);
            }
            // Stream the per-series records to the database worker.
            let records: Vec<SeriesWindowRecord> = stats
                .iter()
                .enumerate()
                .map(|(w, st)| SeriesWindowRecord::from_stats(id, w, st))
                .collect();
            writer
                .sender()
                .send(WriteBatch {
                    series: records,
                    pairs: vec![],
                })
                .map_err(|_| Error::Storage("database worker hung up".into()))?;
        }
        compute_time += per_series_start.elapsed();

        // Pair pass: partitioned across the pool's computation workers.
        let partitions = partition_pairs(n, self.config.workers.max(1));
        let pair_count: usize = partitions.iter().map(|p| p.len()).sum();
        let batch_pairs = self.config.batch_pairs.max(1);
        let method = self.config.sketch_method;
        let z_ref = &z;
        let series_coeffs = &series_coeffs;

        let live: Vec<_> = partitions.iter().filter(|p| !p.is_empty()).collect();
        let mut outcomes: Vec<Result<Duration>> =
            (0..live.len()).map(|_| Ok(Duration::ZERO)).collect();
        let jobs: Vec<Job<'_>> = live
            .iter()
            .zip(outcomes.iter_mut())
            .map(|(part, outcome)| {
                let sender = writer.sender();
                let part = *part;
                Box::new(move || {
                    *outcome = (|| -> Result<Duration> {
                        let mut busy = Duration::ZERO;
                        let mut batch = WriteBatch::default();
                        for &(a, b) in &part.pairs {
                            let start = Instant::now();
                            for w in 0..ns {
                                let record = match method {
                                    SketchMethod::Exact => {
                                        // Tiled kernel: both rows of the pair
                                        // are contiguous z-scored slices of
                                        // the shared window-major buffer.
                                        let za = &z_ref[(w * n + a) * bw..(w * n + a + 1) * bw];
                                        let zb = &z_ref[(w * n + b) * bw..(w * n + b + 1) * bw];
                                        PairWindowRecord {
                                            a: a as u32,
                                            b: b as u32,
                                            window: w as u32,
                                            corr: normalized_dot_corr(za, zb),
                                            dft_dist: f64::NAN,
                                        }
                                    }
                                    SketchMethod::Dft { coefficients } => {
                                        let d = coefficient_distance(
                                            &series_coeffs[a][w],
                                            &series_coeffs[b][w],
                                            coefficients,
                                        );
                                        PairWindowRecord {
                                            a: a as u32,
                                            b: b as u32,
                                            window: w as u32,
                                            corr: f64::NAN,
                                            dft_dist: d,
                                        }
                                    }
                                };
                                batch.pairs.push(record);
                            }
                            busy += start.elapsed();
                            if batch.pairs.len() >= batch_pairs * ns {
                                let full = std::mem::take(&mut batch);
                                sender.send(full).map_err(|_| {
                                    Error::Storage("database worker hung up".into())
                                })?;
                            }
                        }
                        if !batch.is_empty() {
                            sender
                                .send(batch)
                                .map_err(|_| Error::Storage("database worker hung up".into()))?;
                        }
                        Ok(busy)
                    })();
                }) as Job<'_>
            })
            .collect();
        self.pool.run_jobs(jobs);
        for outcome in outcomes {
            compute_time += outcome?;
        }
        let writer_stats = writer.finish()?;

        Ok(SketchReport {
            workers: self.config.workers.max(1),
            pairs: pair_count,
            compute_time,
            write_time: writer_stats.write_time,
            wall_time: wall_start.elapsed(),
        })
    }

    /// The plan-level method a query method recombines with.
    fn plan_method(method: QueryMethod) -> PlanMethod {
        match method {
            QueryMethod::Exact => PlanMethod::Exact,
            QueryMethod::Approximate => PlanMethod::Approximate,
        }
    }

    /// Build the all-pair correlation matrix for an aligned range of basic
    /// windows from **any** [`CorrSource`] — in-memory sketches, the record
    /// store, or a mapped pile — and report the read/compute breakdown
    /// (Figure 6b).
    ///
    /// The per-series statistics are fetched once and folded into a single
    /// read-only [`QueryPlan`] shared by every worker; each worker owns a
    /// disjoint contiguous slice of the packed upper-triangle result (its
    /// partition's pairs are contiguous in row-major order), so the matrix is
    /// assembled without any merge step. Sources that serve a full-width
    /// window-major table ([`CorrSource::full_table`]: in-memory sketches,
    /// mapped piles) are swept in place with global pair offsets; chunked
    /// sources (the record store) are read batch by batch through
    /// [`CorrSource::chunk_table`]. The kernel's per-pair accumulation is
    /// independent of tiling, so the two shapes are bit-identical.
    pub fn query<S: CorrSource + ?Sized>(
        &self,
        source: &S,
        windows: Range<usize>,
        method: QueryMethod,
    ) -> Result<(CorrelationMatrix, QueryReport)> {
        let wall_start = Instant::now();
        let pm = Self::plan_method(method);
        check_source_windows(source, &windows, pm)?;
        let n = source.series_count();

        // Fetch every series' window statistics once up front; they are
        // shared by all pairs of the partitioned workers.
        let read_start = Instant::now();
        let series_stats = source.series_stats(windows.clone())?;
        let table = if n >= 2 {
            source.full_table(windows.clone(), pm)?
        } else {
            None
        };
        let series_read_time = read_start.elapsed();

        // Precompute the per-series half of the recombination once for all
        // pairs. Lemma 1 and Equation 5 share their recombination algebra
        // (only the per-window correlation source differs: sketched Pearson
        // correlations vs `1 − d²/2` estimates), so both query methods
        // evaluate through the same plan batch kernel.
        let plan = if n >= 2 {
            Some(QueryPlan::from_window_stats(&series_stats)?)
        } else {
            None
        };

        let partitions = partition_pairs(n, self.config.workers.max(1));
        let pair_count: usize = partitions.iter().map(|p| p.len()).sum();

        // The flat packed upper triangle, carved into one disjoint
        // contiguous slice per partition (partitions are contiguous in
        // row-major pair order).
        check_dense_budget(n * n.saturating_sub(1) / 2, 1)?;
        let mut values = vec![0.0f64; n * n.saturating_sub(1) / 2];
        let slices = tsubasa_core::plan::carve_packed_slices(
            &mut values,
            partitions.iter().map(|p| p.len()),
        );

        let plan_ref = plan.as_ref();
        let view = table.as_ref().map(|t| t.view());
        let windows_ref = &windows;
        let batch_pairs = self.config.batch_pairs.max(1);

        #[derive(Default)]
        struct WorkerOut {
            read: Duration,
            compute: Duration,
        }

        let live: Vec<(&crate::partition::PairPartition, &mut [f64])> = partitions
            .iter()
            .zip(slices)
            .filter(|(part, _)| !part.is_empty())
            .collect();
        let mut outcomes: Vec<Result<WorkerOut>> =
            (0..live.len()).map(|_| Ok(WorkerOut::default())).collect();
        let jobs: Vec<Job<'_>> = live
            .into_iter()
            .zip(outcomes.iter_mut())
            .map(|((part, slice), outcome)| {
                Box::new(move || {
                    *outcome = (|| -> Result<WorkerOut> {
                        let mut out = WorkerOut::default();
                        let plan = plan_ref.expect("plan is built for n >= 2 queries");
                        if let Some(view) = view {
                            // Full-width table: sweep the shared view in
                            // place — the kernel's pair offset is the global
                            // packed pair index.
                            let t1 = Instant::now();
                            let (a0, b0) = part.pairs[0];
                            let mut offset = pair_index(a0, b0, n);
                            let mut cursor = 0;
                            for (i, j0, len) in row_segments(offset, part.pairs.len(), n) {
                                plan.block_kernel(
                                    i,
                                    j0,
                                    view,
                                    offset,
                                    &mut slice[cursor..cursor + len],
                                );
                                offset += len;
                                cursor += len;
                            }
                            out.compute += t1.elapsed();
                        } else {
                            // Chunked source: consecutive pairs of a
                            // partition are contiguous on disk, so the store
                            // serves a batch with a single ranged read; the
                            // chunk table arrives already window-major for
                            // the batch kernel.
                            let mut cursor = 0;
                            for chunk in part.pairs.chunks(batch_pairs) {
                                let t0 = Instant::now();
                                let corrs_t = source.chunk_table(chunk, windows_ref.clone(), pm)?;
                                out.read += t0.elapsed();

                                let t1 = Instant::now();
                                let (a0, b0) = chunk[0];
                                let start = pair_index(a0, b0, n);
                                let mut offset = 0;
                                for (i, j0, len) in row_segments(start, chunk.len(), n) {
                                    plan.block_kernel(
                                        i,
                                        j0,
                                        corrs_t.view(),
                                        offset,
                                        &mut slice[cursor..cursor + len],
                                    );
                                    offset += len;
                                    cursor += len;
                                }
                                out.compute += t1.elapsed();
                            }
                        }
                        Ok(out)
                    })();
                }) as Job<'_>
            })
            .collect();
        self.pool.run_jobs(jobs);

        let matrix = CorrelationMatrix::from_upper_triangle(n, values);
        let mut read_time = series_read_time;
        let mut compute_time = Duration::ZERO;
        for outcome in outcomes {
            let out = outcome?;
            read_time += out.read;
            compute_time += out.compute;
        }

        Ok((
            matrix,
            QueryReport {
                workers: self.config.workers.max(1),
                pairs: pair_count,
                read_time,
                compute_time,
                wall_time: wall_start.elapsed(),
            },
        ))
    }

    /// The thresholded network (`c > θ`, matching
    /// `query(..)?.0.threshold(theta)` exactly) computed from any
    /// [`CorrSource`] without ever materializing the packed correlation
    /// triangle: each partition worker streams its chunks through a
    /// per-worker [`EdgeSink`] and the per-partition edge lists are
    /// concatenated (partitions are contiguous in row-major pair order, so
    /// the merge is a plain append).
    ///
    /// On the [`QueryMethod::Approximate`] path, whole chunks are skipped
    /// *before* their table columns are touched when their Equation 4
    /// per-tile correlation upper bound cannot reach θ — the paper's pruning
    /// radius applied at I/O granularity (a pruned chunk is neither read
    /// from a store nor faulted in from a mapping). The exact path observes
    /// every pair, so its NaN audit (method-mismatched sketches, counted per
    /// pair and exposed through [`EdgeList::nan_pair_count`]) is exhaustive;
    /// pruned approximate chunks are audited only under
    /// [`ParallelConfig::audit_pruned_chunks`].
    pub fn network<S: CorrSource + ?Sized>(
        &self,
        source: &S,
        windows: Range<usize>,
        method: QueryMethod,
        theta: f64,
    ) -> Result<(EdgeList, QueryReport)> {
        if !(-1.0..=1.0).contains(&theta) {
            return Err(Error::InvalidThreshold(theta));
        }
        let make = |_: &QueryPlan| EdgeSink::new(theta);
        let prune = matches!(method, QueryMethod::Approximate);
        let (sinks, n, report) =
            self.streamed_source_query(source, windows, method, prune, make)?;
        let mut edges = EdgeList::from_parts(n, Vec::new(), 0);
        for sink in sinks {
            edges.absorb(sink.finish(n));
        }
        Ok((edges, report))
    }

    /// The `k` strongest edges of the query window, streamed from any
    /// [`CorrSource`] with a per-worker bounded heap ([`TopKSink`]) merged
    /// across partitions. Chunks whose Equation 4 upper bound cannot beat
    /// the worker's current k-th strength are skipped before their columns
    /// are touched (both query methods — the bound holds for exact and
    /// approximate recombination alike). Ranking is total
    /// ([`f64::total_cmp`], ties by ascending pair index) and equals the
    /// sorted dense matrix's top k; sketches with NaN windows rank as the
    /// kernel's `0.0` convention and are counted in [`TopK::nan_pairs`] as
    /// audit metadata.
    pub fn top_k<S: CorrSource + ?Sized>(
        &self,
        source: &S,
        windows: Range<usize>,
        method: QueryMethod,
        k: usize,
    ) -> Result<(TopK, QueryReport)> {
        let make = |_: &QueryPlan| TopKSink::new(k);
        let (sinks, _, report) = self.streamed_source_query(source, windows, method, true, make)?;
        let mut merged = TopKSink::new(k);
        for sink in sinks {
            merged.absorb(sink);
        }
        Ok((merged.finish(), report))
    }

    /// Shared body of the streamed queries: fetch the per-series statistics
    /// once, build the shared plan (and, when `prune` is set, the Equation 4
    /// bound components), then fan the partitions out on the worker pool —
    /// every worker drives its own sink over its own chunks, with per-chunk
    /// working memory only. Returns the per-partition sinks (in row-major
    /// partition order) for the caller to merge.
    ///
    /// Full-table sources are swept zero-copy off the shared view; chunked
    /// sources are read batch by batch. Either way the chunks pass through
    /// the one shared NaN-audit hook
    /// ([`tsubasa_core::source::audit_nan_chunk`]) before recombination.
    fn streamed_source_query<S, K, F>(
        &self,
        source: &S,
        windows: Range<usize>,
        method: QueryMethod,
        prune: bool,
        make_sink: F,
    ) -> Result<(Vec<K>, usize, QueryReport)>
    where
        S: CorrSource + ?Sized,
        K: TileSink + Send,
        F: Fn(&QueryPlan) -> K,
    {
        let wall_start = Instant::now();
        let pm = Self::plan_method(method);
        check_source_windows(source, &windows, pm)?;
        let n = source.series_count();

        let read_start = Instant::now();
        let series_stats = source.series_stats(windows.clone())?;
        if n < 2 {
            return Ok((
                Vec::new(),
                n,
                QueryReport {
                    workers: self.config.workers.max(1),
                    pairs: 0,
                    read_time: read_start.elapsed(),
                    compute_time: Duration::ZERO,
                    wall_time: wall_start.elapsed(),
                },
            ));
        }
        let table = source.full_table(windows.clone(), pm)?;
        let series_read_time = read_start.elapsed();

        let plan = QueryPlan::from_window_stats(&series_stats)?;
        let bounds = prune.then(|| CorrelationBounds::from_plan(&plan));

        let partitions = partition_pairs(n, self.config.workers.max(1));
        let pair_count: usize = partitions.iter().map(|p| p.len()).sum();
        let batch_pairs = self.config.batch_pairs.max(1);
        let audit_pruned = self.config.audit_pruned_chunks;

        let plan_ref = &plan;
        let bounds_ref = bounds.as_ref();
        let view = table.as_ref().map(|t| t.view());
        let windows_ref = &windows;

        let live: Vec<&crate::partition::PairPartition> =
            partitions.iter().filter(|p| !p.is_empty()).collect();
        let mut sinks: Vec<K> = live.iter().map(|_| make_sink(&plan)).collect();
        let mut outcomes: Vec<Result<StreamedOut>> = (0..live.len())
            .map(|_| Ok(StreamedOut::default()))
            .collect();
        let jobs: Vec<Job<'_>> = live
            .iter()
            .zip(sinks.iter_mut().zip(outcomes.iter_mut()))
            .map(|(part, (sink, outcome))| {
                let part = *part;
                Box::new(move || {
                    *outcome = sweep_source_partition(
                        source,
                        plan_ref,
                        view,
                        bounds_ref,
                        pm,
                        n,
                        windows_ref,
                        batch_pairs,
                        audit_pruned,
                        &part.pairs,
                        sink,
                    );
                }) as Job<'_>
            })
            .collect();
        self.pool.run_jobs(jobs);

        let mut read_time = series_read_time;
        let mut compute_time = Duration::ZERO;
        for outcome in outcomes {
            let out = outcome?;
            read_time += out.read;
            compute_time += out.compute;
        }

        Ok((
            sinks,
            n,
            QueryReport {
                workers: self.config.workers.max(1),
                pairs: pair_count,
                read_time,
                compute_time,
                wall_time: wall_start.elapsed(),
            },
        ))
    }

    /// [`ParallelEngine::query`] against a record store — a thin wrapper
    /// over the unified source pipeline.
    pub fn query_from_store(
        &self,
        store: Arc<dyn SketchStore>,
        windows: Range<usize>,
        method: QueryMethod,
    ) -> Result<(CorrelationMatrix, QueryReport)> {
        self.query(&*store, windows, method)
    }

    /// [`ParallelEngine::network`] against a record store — a thin wrapper
    /// over the unified source pipeline.
    pub fn network_from_store(
        &self,
        store: Arc<dyn SketchStore>,
        windows: Range<usize>,
        method: QueryMethod,
        theta: f64,
    ) -> Result<(EdgeList, QueryReport)> {
        self.network(&*store, windows, method, theta)
    }

    /// [`ParallelEngine::top_k`] against a record store — a thin wrapper
    /// over the unified source pipeline.
    pub fn top_k_from_store(
        &self,
        store: Arc<dyn SketchStore>,
        windows: Range<usize>,
        method: QueryMethod,
        k: usize,
    ) -> Result<(TopK, QueryReport)> {
        self.top_k(&*store, windows, method, k)
    }

    /// [`ParallelEngine::query`] against a mapped pile — a thin wrapper over
    /// the unified source pipeline (the pile serves its full-width table
    /// zero-copy, so the sweep never deserializes a record).
    pub fn query_from_pile(
        &self,
        pile: &SketchPile,
        windows: Range<usize>,
        method: QueryMethod,
    ) -> Result<(CorrelationMatrix, QueryReport)> {
        self.query(pile, windows, method)
    }

    /// [`ParallelEngine::network`] against a mapped pile — a thin wrapper
    /// over the unified source pipeline.
    pub fn network_from_pile(
        &self,
        pile: &SketchPile,
        windows: Range<usize>,
        method: QueryMethod,
        theta: f64,
    ) -> Result<(EdgeList, QueryReport)> {
        self.network(pile, windows, method, theta)
    }

    /// [`ParallelEngine::top_k`] against a mapped pile — a thin wrapper over
    /// the unified source pipeline.
    pub fn top_k_from_pile(
        &self,
        pile: &SketchPile,
        windows: Range<usize>,
        method: QueryMethod,
        k: usize,
    ) -> Result<(TopK, QueryReport)> {
        self.top_k(pile, windows, method, k)
    }
}

/// The pile-bound sketch phase: the same partitioned computation as
/// [`ParallelEngine::sketch_to_store`], streaming window-major slabs to the
/// pile's database worker instead of record batches. (Pile *queries* go
/// through the unified [`CorrSource`] pipeline above — the pile serves
/// zero-copy full-width tables, so no pile-specific query code survives.)
impl ParallelEngine {
    /// Sketch `collection` into a fresh pile through the threaded pile
    /// writer, and return the mapped result alongside the timing breakdown.
    ///
    /// The per-series pass is identical to [`ParallelEngine::sketch_to_store`];
    /// the pair pass proceeds one window at a time, with the computation
    /// workers filling disjoint carved slices of the full-width window row,
    /// which is then streamed (in window order) to the pile's database
    /// worker as one coalescable slab — window-major slabs instead of
    /// random-offset records. Under [`SketchMethod::Dft`] the pile stores the
    /// Equation 3 estimates `1 − d²/2` (computed here with the exact
    /// expression the record-store query path applies to stored distances, so
    /// the two paths stay bit-identical), which is what makes approximate
    /// queries zero-copy too.
    pub fn sketch_to_pile(
        &self,
        collection: &SeriesCollection,
        basic_window: usize,
        writer: PileWriter,
    ) -> Result<(SketchReport, SketchPile)> {
        let wall_start = Instant::now();
        let expected = Self::layout_for(collection, basic_window)?;
        let fresh = SegmentKind::ALL.iter().all(|&k| writer.coverage(k) == 0);
        if writer.n_series() != expected.n_series
            || writer.basic_window() != expected.basic_window
            || !fresh
        {
            return Err(Error::SketchMismatch {
                requested: format!("fresh pile for {expected:?}"),
                available: format!(
                    "pile(n_series={}, basic_window={}, windows appended={})",
                    writer.n_series(),
                    writer.basic_window(),
                    !fresh
                ),
            });
        }
        let windowing = BasicWindowing::new(basic_window)?;
        let ns = expected.n_windows;
        let n = collection.len();
        if ns == 0 {
            return Err(Error::InvalidBasicWindow {
                window: basic_window,
                series_len: collection.series_len(),
            });
        }
        let bw = basic_window;
        let exact = matches!(self.config.sketch_method, SketchMethod::Exact);

        let batch = PileBatchWriter::spawn(writer, self.config.batch_pairs.max(1));
        let mut compute_time = Duration::ZERO;

        // Per-series pass: same statistics / z-rows / coefficients as the
        // record path, plus one window-major stats slab for the pile.
        let per_series_start = Instant::now();
        let mut series_coeffs: Vec<Vec<Vec<tsubasa_dft::dft::Complex>>> = Vec::new();
        let mut z = vec![0.0f64; if exact { ns * n * bw } else { 0 }];
        let mut stats_rows = vec![0.0f64; ns * n * 3];
        let planner = DftPlanner::new(bw);
        for (id, series) in collection.iter_with_ids() {
            let values = series.values();
            let stats: Vec<WindowStats> = (0..ns)
                .map(|w| WindowStats::from_values(windowing.window_span(w).slice(values)))
                .collect();
            for (w, st) in stats.iter().enumerate() {
                let base = (w * n + id) * 3;
                stats_rows[base] = st.len as f64;
                stats_rows[base + 1] = st.mean;
                stats_rows[base + 2] = st.std;
            }
            if exact {
                for (w, st) in stats.iter().enumerate() {
                    let span = windowing.window_span(w);
                    let row = &mut z[(w * n + id) * bw..(w * n + id + 1) * bw];
                    normalize_into(span.slice(values), st, row);
                }
            }
            if let SketchMethod::Dft { coefficients: _ } = self.config.sketch_method {
                let coeffs = (0..ns)
                    .map(|w| {
                        let span = windowing.window_span(w);
                        planner.transform(&normalize_unit_with_stats(span.slice(values), &stats[w]))
                    })
                    .collect();
                series_coeffs.push(coeffs);
            }
        }
        compute_time += per_series_start.elapsed();
        batch
            .sender()
            .send(PileSlab::Stats(stats_rows))
            .map_err(|_| Error::Storage("pile writer hung up".into()))?;

        // Pair pass, window at a time: workers fill disjoint carved slices of
        // the full-width packed row, preserving the strict window order the
        // pile's append discipline requires.
        let partitions = partition_pairs(n, self.config.workers.max(1));
        let pair_count: usize = partitions.iter().map(|p| p.len()).sum();
        let method = self.config.sketch_method;
        let z_ref = &z;
        let coeffs_ref = &series_coeffs;
        for w in 0..ns {
            if pair_count == 0 {
                break;
            }
            let mut row = vec![0.0f64; pair_count];
            {
                let slices = tsubasa_core::plan::carve_packed_slices(
                    &mut row,
                    partitions.iter().map(|p| p.len()),
                );
                let live: Vec<_> = partitions
                    .iter()
                    .zip(slices)
                    .filter(|(p, _)| !p.is_empty())
                    .collect();
                let mut outcomes: Vec<Duration> = vec![Duration::ZERO; live.len()];
                let jobs: Vec<Job<'_>> = live
                    .into_iter()
                    .zip(outcomes.iter_mut())
                    .map(|((part, slice), busy)| {
                        Box::new(move || {
                            let start = Instant::now();
                            for (slot, &(a, b)) in slice.iter_mut().zip(&part.pairs) {
                                *slot = match method {
                                    SketchMethod::Exact => {
                                        let za = &z_ref[(w * n + a) * bw..(w * n + a + 1) * bw];
                                        let zb = &z_ref[(w * n + b) * bw..(w * n + b + 1) * bw];
                                        normalized_dot_corr(za, zb)
                                    }
                                    SketchMethod::Dft { coefficients } => {
                                        let d = coefficient_distance(
                                            &coeffs_ref[a][w],
                                            &coeffs_ref[b][w],
                                            coefficients,
                                        );
                                        1.0 - d * d / 2.0
                                    }
                                };
                            }
                            *busy = start.elapsed();
                        }) as Job<'_>
                    })
                    .collect();
                self.pool.run_jobs(jobs);
                for busy in outcomes {
                    compute_time += busy;
                }
            }
            let slab = if exact {
                PileSlab::Corrs(row)
            } else {
                PileSlab::Ests(row)
            };
            batch
                .sender()
                .send(slab)
                .map_err(|_| Error::Storage("pile writer hung up".into()))?;
        }

        let (writer_stats, writer) = batch.finish()?;
        let pile = writer.into_pile()?;
        Ok((
            SketchReport {
                workers: self.config.workers.max(1),
                pairs: pair_count,
                compute_time,
                write_time: writer_stats.write_time,
                wall_time: wall_start.elapsed(),
            },
            pile,
        ))
    }
}

/// Per-worker timing of one streamed partition sweep.
#[derive(Default)]
struct StreamedOut {
    read: Duration,
    compute: Duration,
}

/// One worker's streamed sweep of its partition over a [`CorrSource`] — the
/// single body behind every streamed backend. With a full-width table
/// (`full` is `Some`: in-memory sketches, mapped piles) the chunks are swept
/// in place with global pair offsets and nothing is ever copied; without one
/// (the record store) each chunk is fetched through
/// [`CorrSource::chunk_table`] — one ranged read — and swept with
/// chunk-local offsets. Working memory is one chunk's table (chunked shape
/// only) plus one `batch_pairs`-sized output tile — never the partition's
/// (let alone the triangle's) full size.
///
/// Equation 4 chunk pruning is decided from per-series statistics alone: a
/// skipped chunk's columns are never dereferenced (no page faults on a
/// mapping) or read (no store I/O). Under `audit_pruned` the skipped chunk
/// is still NaN-audited through the shared hook — the tiles stay skipped,
/// only the accounting becomes exhaustive, at the cost of the reads pruning
/// would have saved.
#[allow(clippy::too_many_arguments)]
fn sweep_source_partition<S: CorrSource + ?Sized>(
    source: &S,
    plan: &QueryPlan,
    full: Option<CorrView<'_>>,
    bounds: Option<&CorrelationBounds>,
    method: PlanMethod,
    n: usize,
    windows: &Range<usize>,
    batch_pairs: usize,
    audit_pruned: bool,
    pairs: &[(usize, usize)],
    sink: &mut dyn TileSink,
) -> Result<StreamedOut> {
    let mut out = StreamedOut::default();
    let mut tile = vec![0.0f64; batch_pairs];
    for chunk in pairs.chunks(batch_pairs) {
        let (a0, b0) = chunk[0];
        let first = pair_index(a0, b0, n);

        if let Some(b) = bounds {
            let skippable = row_segments(first, chunk.len(), n)
                .into_iter()
                .all(|(i, j0, len)| sink.tile_skippable(b.tile_bound(i, j0, len)));
            if skippable {
                if audit_pruned {
                    match full {
                        Some(view) => audit_nan_chunk(view, chunk, n, sink),
                        None => {
                            let t0 = Instant::now();
                            let corrs_t = source.chunk_table(chunk, windows.clone(), method)?;
                            out.read += t0.elapsed();
                            audit_nan_chunk(corrs_t.view(), chunk, n, sink);
                        }
                    }
                }
                for (i, j0, len) in row_segments(first, chunk.len(), n) {
                    sink.tile_skipped(i, j0, len);
                }
                continue;
            }
        }

        // The NaN audit precedes recombination: the kernel clamps NaN window
        // values to the 0.0 convention, so a method-mismatched sketch would
        // otherwise silently produce a plausible-looking correlation.
        match full {
            Some(view) => {
                let t1 = Instant::now();
                audit_nan_chunk(view, chunk, n, sink);
                let mut offset = first;
                for (i, j0, len) in row_segments(first, chunk.len(), n) {
                    plan.block_kernel(i, j0, view, offset, &mut tile[..len]);
                    sink.consume(i, j0, offset, &tile[..len]);
                    offset += len;
                }
                out.compute += t1.elapsed();
            }
            None => {
                let t0 = Instant::now();
                let corrs_t = source.chunk_table(chunk, windows.clone(), method)?;
                out.read += t0.elapsed();

                let t1 = Instant::now();
                audit_nan_chunk(corrs_t.view(), chunk, n, sink);
                let mut offset = 0;
                for (i, j0, len) in row_segments(first, chunk.len(), n) {
                    plan.block_kernel(i, j0, corrs_t.view(), offset, &mut tile[..len]);
                    sink.consume(i, j0, pair_index(i, j0, n), &tile[..len]);
                    offset += len;
                }
                out.compute += t1.elapsed();
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::{baseline, QueryWindow};
    use tsubasa_data::station::{generate_ncea_like, NceaLikeConfig};
    use tsubasa_dft::sketch::{DftSketchSet, Transform};
    use tsubasa_storage::{DiskSketchStore, MemorySketchStore};

    fn small_collection() -> SeriesCollection {
        generate_ncea_like(&NceaLikeConfig {
            stations: 10,
            points: 600,
            seed: 3,
            regions: 3,
            correlation_length_km: 900.0,
            missing_fraction: 0.0,
        })
        .unwrap()
    }

    fn engine(workers: usize, method: SketchMethod) -> ParallelEngine {
        ParallelEngine::new(ParallelConfig {
            workers,
            batch_pairs: 8,
            sketch_method: method,
            audit_pruned_chunks: false,
        })
    }

    #[test]
    fn parallel_exact_matches_baseline_via_memory_store() {
        let c = small_collection();
        let b = 50;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(4, SketchMethod::Exact);
        let report = eng.sketch_to_store(&c, b, store.clone()).unwrap();
        assert_eq!(report.pairs, c.pair_count());
        assert!(report.wall_time > Duration::ZERO);

        let (matrix, qreport) = eng
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        assert_eq!(qreport.pairs, c.pair_count());
        let query = QueryWindow::new(599, 600).unwrap();
        let direct = baseline::correlation_matrix(&c, query).unwrap();
        assert!(
            matrix.max_abs_diff(&direct) < 1e-9,
            "diff {}",
            matrix.max_abs_diff(&direct)
        );
    }

    #[test]
    fn parallel_exact_matches_baseline_via_disk_store() {
        let c = small_collection();
        let b = 60;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let mut dir = std::env::temp_dir();
        dir.push(format!("tsubasa-parallel-test-{}", std::process::id()));
        let store = Arc::new(DiskSketchStore::create(&dir, layout).unwrap());
        let eng = engine(3, SketchMethod::Exact);
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        let (matrix, _) = eng
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        let query = QueryWindow::new(599, 600).unwrap();
        let direct = baseline::correlation_matrix(&c, query).unwrap();
        assert!(matrix.max_abs_diff(&direct) < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_dft_sketch_matches_serial_dft_sketch() {
        let c = small_collection();
        let b = 50;
        let coeff = 20;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(
            4,
            SketchMethod::Dft {
                coefficients: coeff,
            },
        );
        eng.sketch_to_store(&c, b, store.clone()).unwrap();

        let serial = DftSketchSet::build(&c, b, coeff, Transform::Naive).unwrap();
        for (i, j) in c.pairs() {
            let stored = store.read_pair(i, j, 0..layout.n_windows).unwrap();
            let expected = serial.pair_distances(i, j).unwrap();
            for (r, e) in stored.iter().zip(expected) {
                assert!((r.dft_dist - e).abs() < 1e-9);
                assert!(r.corr.is_nan());
            }
        }

        // Approximate query over the stored distances equals the serial
        // Equation 5 path.
        let (matrix, _) = eng
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Approximate)
            .unwrap();
        let serial_matrix = tsubasa_dft::approx::approximate_correlation_matrix(
            &serial,
            0..layout.n_windows,
            tsubasa_dft::approx::ApproxStrategy::Equation5,
        )
        .unwrap();
        assert!(matrix.max_abs_diff(&serial_matrix) < 1e-9);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let c = small_collection();
        let b = 100;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let mut matrices = Vec::new();
        for workers in [1, 2, 5] {
            let store = Arc::new(MemorySketchStore::new(layout));
            let eng = engine(workers, SketchMethod::Exact);
            eng.sketch_to_store(&c, b, store.clone()).unwrap();
            let (m, report) = eng
                .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
                .unwrap();
            assert_eq!(report.workers, workers);
            matrices.push(m);
        }
        assert!(matrices[0].max_abs_diff(&matrices[1]) < 1e-12);
        assert!(matrices[1].max_abs_diff(&matrices[2]) < 1e-12);
    }

    #[test]
    fn engine_pool_is_reused_across_repeated_queries() {
        let c = small_collection();
        let b = 100;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(3, SketchMethod::Exact);
        assert_eq!(eng.pool().size(), 3);
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        // Repeated queries run on the same pool threads and agree exactly.
        let (first, _) = eng
            .query_from_store(store.clone(), 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        for _ in 0..3 {
            let (again, report) = eng
                .query_from_store(store.clone(), 0..layout.n_windows, QueryMethod::Exact)
                .unwrap();
            assert_eq!(first, again);
            assert_eq!(report.workers, 3);
        }
    }

    #[test]
    fn network_from_store_matches_dense_threshold() {
        let c = small_collection();
        let b = 50;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(3, SketchMethod::Exact);
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        let (dense, _) = eng
            .query_from_store(store.clone(), 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        for theta in [-0.2, 0.0, 0.4, 0.85] {
            let (streamed, report) = eng
                .network_from_store(
                    store.clone(),
                    0..layout.n_windows,
                    QueryMethod::Exact,
                    theta,
                )
                .unwrap();
            assert_eq!(report.pairs, c.pair_count());
            assert_eq!(
                streamed.to_adjacency(),
                dense.threshold(theta).unwrap(),
                "theta={theta}"
            );
            assert_eq!(streamed.nan_pair_count(), 0);
        }
        assert!(eng
            .network_from_store(store, 0..layout.n_windows, QueryMethod::Exact, 1.5)
            .is_err());
    }

    #[test]
    fn approximate_network_from_store_matches_dense_and_prunes_reads() {
        let c = small_collection();
        let b = 60;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(2, SketchMethod::Dft { coefficients: 10 });
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        let (dense, _) = eng
            .query_from_store(store.clone(), 0..layout.n_windows, QueryMethod::Approximate)
            .unwrap();
        for theta in [0.0, 0.5, 0.99] {
            let (streamed, _) = eng
                .network_from_store(
                    store.clone(),
                    0..layout.n_windows,
                    QueryMethod::Approximate,
                    theta,
                )
                .unwrap();
            // Chunk pruning may skip reads, never edges: the edge set equals
            // the dense strict threshold exactly.
            assert_eq!(
                streamed.to_adjacency(),
                dense.threshold(theta).unwrap(),
                "theta={theta}"
            );
        }
    }

    #[test]
    fn top_k_from_store_matches_sorted_dense() {
        let c = small_collection();
        let b = 50;
        let n = c.len();
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(4, SketchMethod::Exact);
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        let (dense, _) = eng
            .query_from_store(store.clone(), 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        let mut all: Vec<(usize, usize, f64)> = dense.iter_pairs().collect();
        all.sort_by(|x, y| {
            y.2.total_cmp(&x.2)
                .then_with(|| pair_index(x.0, x.1, n).cmp(&pair_index(y.0, y.1, n)))
        });
        for k in [0, 1, 7, 45, 100] {
            let (top, _) = eng
                .top_k_from_store(store.clone(), 0..layout.n_windows, QueryMethod::Exact, k)
                .unwrap();
            assert_eq!(top.edges.len(), k.min(all.len()), "k={k}");
            for (got, want) in top.edges.iter().zip(&all) {
                assert_eq!((got.i, got.j), (want.0, want.1), "k={k}");
                assert_eq!(got.corr, want.2, "k={k}");
            }
        }
    }

    #[test]
    fn method_mismatched_store_is_audited_not_silent() {
        // Sketch with the DFT method, query with Exact: every stored `corr`
        // field is NaN, the kernel clamps them to 0.0 (so the edge set is the
        // degenerate empty/full one), and the streamed path reports every
        // pair in the NaN audit instead of silently producing a
        // plausible-looking network.
        let c = small_collection();
        let b = 60;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(2, SketchMethod::Dft { coefficients: 10 });
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        let (streamed, _) = eng
            .network_from_store(store.clone(), 0..layout.n_windows, QueryMethod::Exact, 0.5)
            .unwrap();
        assert_eq!(streamed.nan_pair_count(), c.pair_count());
        assert_eq!(streamed.edge_count(), 0);
        // The matched method on the same store is clean.
        let (ok, _) = eng
            .network_from_store(store, 0..layout.n_windows, QueryMethod::Approximate, 0.5)
            .unwrap();
        assert_eq!(ok.nan_pair_count(), 0);
    }

    #[test]
    fn pruned_chunk_nan_audit_is_opt_in() {
        // Two groups: series 0–1 put all their variance *within* windows
        // (zero-mean oscillation, `s ≈ 1, t ≈ 0`), series 2–3 put it
        // *between* windows (staircase, `s ≈ 0, t ≈ 1`). A cross-group pair
        // then has Equation 4 bound `s_i s_j + t_i t_j ≈ 0`, so its chunk is
        // pruned before the store is read — and a NaN planted there is
        // invisible to the default audit.
        let len = 120;
        let b = 20;
        let c = SeriesCollection::from_rows(
            (0..4usize)
                .map(|s| {
                    (0..len)
                        .map(|i| {
                            if s < 2 {
                                (i as f64 * 0.9 + s as f64 * 0.3).sin()
                            } else {
                                (i / b) as f64 * 10.0 + ((i * (s + 7)) % 5) as f64 * 1e-3
                            }
                        })
                        .collect()
                })
                .collect(),
        )
        .unwrap();
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = ParallelEngine::new(ParallelConfig {
            workers: 2,
            batch_pairs: 1, // isolate every pair in its own chunk
            sketch_method: SketchMethod::Dft { coefficients: 10 },
            audit_pruned_chunks: false,
        });
        eng.sketch_to_store(&c, b, store.clone()).unwrap();

        // Plant NaN in the recombined field of cross-group pair (0, 3).
        let poison: Vec<PairWindowRecord> = (0..layout.n_windows)
            .map(|w| PairWindowRecord {
                a: 0,
                b: 3,
                window: w as u32,
                corr: f64::NAN,
                dft_dist: f64::NAN,
            })
            .collect();
        store.write_pairs(&poison).unwrap();

        let (silent, _) = eng
            .network_from_store(
                store.clone(),
                0..layout.n_windows,
                QueryMethod::Approximate,
                0.5,
            )
            .unwrap();
        // The poisoned chunk was pruned before being read: the NaN goes
        // uncounted by default.
        assert_eq!(silent.nan_pair_count(), 0);

        let auditor = ParallelEngine::new(ParallelConfig {
            audit_pruned_chunks: true,
            ..eng.config()
        });
        let (audited, _) = auditor
            .network_from_store(store, 0..layout.n_windows, QueryMethod::Approximate, 0.5)
            .unwrap();
        assert_eq!(audited.nan_pair_count(), 1);
        // The audit changes accounting only, never the edge set.
        assert_eq!(audited.edges(), silent.edges());
    }

    #[test]
    fn sketch_rejects_mismatched_store_layout() {
        let c = small_collection();
        let wrong = StoreLayout {
            n_series: 3,
            n_windows: 2,
            basic_window: 10,
        };
        let store = Arc::new(MemorySketchStore::new(wrong));
        let eng = engine(2, SketchMethod::Exact);
        assert!(eng.sketch_to_store(&c, 50, store).is_err());
    }

    #[test]
    fn query_rejects_bad_window_range() {
        let c = small_collection();
        let b = 100;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(2, SketchMethod::Exact);
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        assert!(eng
            .query_from_store(store.clone(), 0..0, QueryMethod::Exact)
            .is_err());
        assert!(eng
            .query_from_store(store, 0..99, QueryMethod::Exact)
            .is_err());
    }

    fn temp_pile(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "tsubasa-engine-pile-{}-{tag}.pile",
            std::process::id()
        ))
    }

    #[test]
    fn pile_query_is_bit_identical_to_record_store_query() {
        let c = small_collection();
        let b = 50;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(3, SketchMethod::Exact);
        eng.sketch_to_store(&c, b, store.clone()).unwrap();

        let path = temp_pile("agree-exact");
        let writer = PileWriter::create(&path, c.len(), b).unwrap();
        let (sreport, pile) = eng.sketch_to_pile(&c, b, writer).unwrap();
        assert_eq!(sreport.pairs, c.pair_count());
        assert_eq!(pile.exact_query_windows(), layout.n_windows);

        let (from_store, _) = eng
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        let (from_pile, qreport) = eng
            .query_from_pile(&pile, 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        assert_eq!(from_store, from_pile);
        assert_eq!(qreport.pairs, c.pair_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pile_network_and_top_k_match_store_paths() {
        let c = small_collection();
        let b = 60;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(2, SketchMethod::Dft { coefficients: 10 });
        eng.sketch_to_store(&c, b, store.clone()).unwrap();

        let path = temp_pile("agree-approx");
        let writer = PileWriter::create(&path, c.len(), b).unwrap();
        let (_, pile) = eng.sketch_to_pile(&c, b, writer).unwrap();
        assert_eq!(pile.approx_query_windows(), layout.n_windows);
        assert_eq!(pile.exact_query_windows(), 0);

        for theta in [0.0, 0.5, 0.99] {
            let (from_store, _) = eng
                .network_from_store(
                    store.clone(),
                    0..layout.n_windows,
                    QueryMethod::Approximate,
                    theta,
                )
                .unwrap();
            let (from_pile, _) = eng
                .network_from_pile(&pile, 0..layout.n_windows, QueryMethod::Approximate, theta)
                .unwrap();
            assert_eq!(from_pile.edges(), from_store.edges(), "theta={theta}");
        }
        for k in [0, 3, 17] {
            let (from_store, _) = eng
                .top_k_from_store(
                    store.clone(),
                    0..layout.n_windows,
                    QueryMethod::Approximate,
                    k,
                )
                .unwrap();
            let (from_pile, _) = eng
                .top_k_from_pile(&pile, 0..layout.n_windows, QueryMethod::Approximate, k)
                .unwrap();
            assert_eq!(from_pile.edges, from_store.edges, "k={k}");
        }
        // The pile has no correlation table under the DFT sketch method:
        // exact queries are a typed mismatch, not silent NaNs.
        assert!(eng
            .query_from_pile(&pile, 0..layout.n_windows, QueryMethod::Exact)
            .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sketch_to_pile_rejects_mismatched_or_used_writers() {
        let c = small_collection();
        let path = temp_pile("reject");
        // Wrong shape.
        let writer = PileWriter::create(&path, 3, 50).unwrap();
        let eng = engine(2, SketchMethod::Exact);
        assert!(eng.sketch_to_pile(&c, 50, writer).is_err());
        // Non-empty writer.
        let mut writer = PileWriter::create(&path, c.len(), 50).unwrap();
        writer
            .append(SegmentKind::SeriesStats, &vec![0.0; c.len() * 3])
            .unwrap();
        assert!(eng.sketch_to_pile(&c, 50, writer).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ParallelConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.batch_pairs >= 1);
        assert_eq!(cfg.sketch_method, SketchMethod::Exact);
    }
}
