//! The parallel sketch / query engine (paper §3.4).
//!
//! Both phases follow the same shape: the unordered pairs are partitioned
//! across computation workers ([`crate::partition::partition_pairs`]); during
//! sketching the workers stream [`WriteBatch`]es to the single database
//! worker, and during querying they read sketch batches back from the store
//! and emit sub-matrices that are merged into the final correlation matrix.

use std::ops::Range;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsubasa_core::error::{Error, Result};
use tsubasa_core::matrix::CorrelationMatrix;
use tsubasa_core::plan::QueryPlan;
use tsubasa_core::stats::{pair_corr_from_stats, WindowStats};
use tsubasa_core::window::BasicWindowing;
use tsubasa_core::SeriesCollection;
use tsubasa_dft::approx::{query_correlation, ApproxWindow};
use tsubasa_dft::dft::{coefficient_distance, naive_dft, Complex};
use tsubasa_dft::normalize::normalize_unit_with_stats;
use tsubasa_storage::{
    BatchWriter, PairWindowRecord, SeriesWindowRecord, SketchStore, StoreLayout, WriteBatch,
};

use crate::partition::partition_pairs;
use crate::timing::{QueryReport, SketchReport};

/// Which sketch the computation workers produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SketchMethod {
    /// TSUBASA's exact sketch: per-pair per-window Pearson correlations.
    Exact,
    /// The DFT comparator's sketch: per-series DFT coefficients of normalized
    /// windows and per-pair per-window coefficient distances, using the given
    /// number of coefficients.
    Dft {
        /// Number of DFT coefficients (`n` of `Dist_n`).
        coefficients: usize,
    },
}

/// How the query phase turns stored records into correlations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMethod {
    /// Exact recombination (Lemma 1) from stored per-window correlations.
    Exact,
    /// Approximate recombination (Equation 5) from stored DFT distances.
    Approximate,
}

/// Configuration of the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of computation workers (the paper uses 63 plus one database
    /// worker).
    pub workers: usize,
    /// Number of pairs whose records are grouped into one write batch / one
    /// ranged read.
    pub batch_pairs: usize,
    /// What the sketch phase computes.
    pub sketch_method: SketchMethod,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get().saturating_sub(1).max(1))
            .unwrap_or(1);
        Self {
            workers,
            batch_pairs: 256,
            sketch_method: SketchMethod::Exact,
        }
    }
}

/// The parallel, disk-based TSUBASA engine.
#[derive(Debug, Clone, Copy)]
pub struct ParallelEngine {
    config: ParallelConfig,
}

impl ParallelEngine {
    /// Create an engine with the given configuration.
    pub fn new(config: ParallelConfig) -> Self {
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> ParallelConfig {
        self.config
    }

    /// The store layout required to hold the sketch of `collection` at the
    /// given basic-window size.
    pub fn layout_for(collection: &SeriesCollection, basic_window: usize) -> Result<StoreLayout> {
        let windowing = BasicWindowing::new(basic_window)?;
        Ok(StoreLayout {
            n_series: collection.len(),
            n_windows: windowing.complete_windows(collection.series_len()),
            basic_window,
        })
    }

    /// Sketch `collection` into `store` using the configured number of
    /// computation workers plus one database worker, and report the timing
    /// breakdown (Figure 6a).
    pub fn sketch_to_store(
        &self,
        collection: &SeriesCollection,
        basic_window: usize,
        store: Arc<dyn SketchStore>,
    ) -> Result<SketchReport> {
        let wall_start = Instant::now();
        let layout = store.layout();
        let expected = Self::layout_for(collection, basic_window)?;
        if layout != expected {
            return Err(Error::SketchMismatch {
                requested: format!("{expected:?}"),
                available: format!("{layout:?}"),
            });
        }
        let windowing = BasicWindowing::new(basic_window)?;
        let ns = layout.n_windows;
        let n = collection.len();
        if ns == 0 {
            return Err(Error::InvalidBasicWindow {
                window: basic_window,
                series_len: collection.series_len(),
            });
        }

        let writer = BatchWriter::spawn(store, self.config.batch_pairs.max(1));
        let mut compute_time = Duration::ZERO;

        // Per-series pass: window statistics (and, for the DFT comparator,
        // the coefficients of every normalized window). The statistics are
        // shared read-only with the pair workers below.
        let per_series_start = Instant::now();
        let mut series_stats: Vec<Vec<WindowStats>> = Vec::with_capacity(n);
        let mut series_coeffs: Vec<Vec<Vec<Complex>>> = Vec::new();
        for (id, series) in collection.iter_with_ids() {
            let values = series.values();
            let stats: Vec<WindowStats> = (0..ns)
                .map(|w| WindowStats::from_values(windowing.window_span(w).slice(values)))
                .collect();
            if let SketchMethod::Dft { coefficients: _ } = self.config.sketch_method {
                let coeffs = (0..ns)
                    .map(|w| {
                        let span = windowing.window_span(w);
                        naive_dft(&normalize_unit_with_stats(span.slice(values), &stats[w]))
                    })
                    .collect();
                series_coeffs.push(coeffs);
            }
            // Stream the per-series records to the database worker.
            let records: Vec<SeriesWindowRecord> = stats
                .iter()
                .enumerate()
                .map(|(w, st)| SeriesWindowRecord::from_stats(id, w, st))
                .collect();
            writer
                .sender()
                .send(WriteBatch {
                    series: records,
                    pairs: vec![],
                })
                .map_err(|_| Error::Storage("database worker hung up".into()))?;
            series_stats.push(stats);
        }
        compute_time += per_series_start.elapsed();

        // Pair pass: partitioned across computation workers.
        let partitions = partition_pairs(n, self.config.workers.max(1));
        let pair_count: usize = partitions.iter().map(|p| p.len()).sum();
        let batch_pairs = self.config.batch_pairs.max(1);
        let method = self.config.sketch_method;
        let series_stats = &series_stats;
        let series_coeffs = &series_coeffs;

        let worker_times = crossbeam::thread::scope(|scope| -> Result<Vec<Duration>> {
            let mut handles = Vec::new();
            for part in &partitions {
                if part.is_empty() {
                    continue;
                }
                let sender = writer.sender();
                handles.push(scope.spawn(move |_| -> Result<Duration> {
                    let mut busy = Duration::ZERO;
                    let mut batch = WriteBatch::default();
                    for &(a, b) in &part.pairs {
                        let start = Instant::now();
                        let xs = collection.get(a)?.values();
                        let ys = collection.get(b)?.values();
                        // `w` is the window id carried into every emitted
                        // record, not just an index into `series_coeffs`
                        // (which is empty in `SketchMethod::Exact` mode).
                        #[allow(clippy::needless_range_loop)]
                        for w in 0..ns {
                            let record = match method {
                                SketchMethod::Exact => {
                                    // The per-series statistics were computed
                                    // once up front; only the centered
                                    // cross-product remains per pair.
                                    let span = windowing.window_span(w);
                                    let c = pair_corr_from_stats(
                                        span.slice(xs),
                                        span.slice(ys),
                                        &series_stats[a][w],
                                        &series_stats[b][w],
                                    );
                                    PairWindowRecord {
                                        a: a as u32,
                                        b: b as u32,
                                        window: w as u32,
                                        corr: c,
                                        dft_dist: f64::NAN,
                                    }
                                }
                                SketchMethod::Dft { coefficients } => {
                                    let d = coefficient_distance(
                                        &series_coeffs[a][w],
                                        &series_coeffs[b][w],
                                        coefficients,
                                    );
                                    PairWindowRecord {
                                        a: a as u32,
                                        b: b as u32,
                                        window: w as u32,
                                        corr: f64::NAN,
                                        dft_dist: d,
                                    }
                                }
                            };
                            batch.pairs.push(record);
                        }
                        busy += start.elapsed();
                        if batch.pairs.len() >= batch_pairs * ns {
                            let full = std::mem::take(&mut batch);
                            sender
                                .send(full)
                                .map_err(|_| Error::Storage("database worker hung up".into()))?;
                        }
                    }
                    if !batch.is_empty() {
                        sender
                            .send(batch)
                            .map_err(|_| Error::Storage("database worker hung up".into()))?;
                    }
                    Ok(busy)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| Error::Storage("sketch worker panicked".into()))?
                })
                .collect()
        })
        .map_err(|_| Error::Storage("sketch scope panicked".into()))??;

        compute_time += worker_times.iter().sum::<Duration>();
        let writer_stats = writer.finish()?;

        Ok(SketchReport {
            workers: self.config.workers.max(1),
            pairs: pair_count,
            compute_time,
            write_time: writer_stats.write_time,
            wall_time: wall_start.elapsed(),
        })
    }

    /// Build the all-pair correlation matrix for an aligned range of basic
    /// windows by reading sketches back from the store, and report the
    /// read/compute breakdown (Figure 6b).
    ///
    /// The per-series statistics are read once and folded into a single
    /// read-only [`QueryPlan`] shared by every worker; each worker owns a
    /// disjoint contiguous slice of the packed upper-triangle result (its
    /// partition's pairs are contiguous in row-major order), so the matrix is
    /// assembled without any merge step.
    pub fn query_from_store(
        &self,
        store: Arc<dyn SketchStore>,
        windows: Range<usize>,
        method: QueryMethod,
    ) -> Result<(CorrelationMatrix, QueryReport)> {
        let wall_start = Instant::now();
        let layout = store.layout();
        layout.check_windows(&windows)?;
        let n = layout.n_series;

        // Read every series' window statistics once up front; they are shared
        // by all pairs of the partitioned workers.
        let read_start = Instant::now();
        let mut series_stats: Vec<Vec<WindowStats>> = Vec::with_capacity(n);
        for s in 0..n {
            series_stats.push(store.read_series(s, windows.clone())?);
        }
        let series_read_time = read_start.elapsed();

        // Precompute the per-series half of the Lemma 1 recombination once
        // for all pairs (exact queries only; the DFT path recombines
        // distances instead).
        let plan = match method {
            QueryMethod::Exact if n >= 2 => Some(QueryPlan::from_window_stats(&series_stats)?),
            _ => None,
        };

        let partitions = partition_pairs(n, self.config.workers.max(1));
        let pair_count: usize = partitions.iter().map(|p| p.len()).sum();

        // The flat packed upper triangle, carved into one disjoint
        // contiguous slice per partition (partitions are contiguous in
        // row-major pair order).
        let mut values = vec![0.0f64; n * n.saturating_sub(1) / 2];
        let slices = tsubasa_core::plan::carve_packed_slices(
            &mut values,
            partitions.iter().map(|p| p.len()),
        );

        let series_stats = &series_stats;
        let plan_ref = plan.as_ref();
        let store_ref = &store;
        let windows_ref = &windows;

        struct WorkerOut {
            read: Duration,
            compute: Duration,
        }

        let outputs = crossbeam::thread::scope(|scope| -> Result<Vec<WorkerOut>> {
            let mut handles = Vec::new();
            for (part, slice) in partitions.iter().zip(slices) {
                if part.is_empty() {
                    continue;
                }
                let batch_pairs = self.config.batch_pairs.max(1);
                handles.push(scope.spawn(move |_| -> Result<WorkerOut> {
                    let mut out = WorkerOut {
                        read: Duration::ZERO,
                        compute: Duration::ZERO,
                    };
                    let mut cursor = 0;
                    // Per-worker scratch for the pair's per-window
                    // correlations: cleared and refilled, never reallocated.
                    let mut corr_scratch: Vec<f64> = Vec::new();
                    // Pairs are read from the store in batches: consecutive
                    // pairs of a partition are contiguous on disk, so the
                    // store can serve a batch with a single ranged read.
                    for chunk in part.pairs.chunks(batch_pairs) {
                        let t0 = Instant::now();
                        let batch = store_ref.read_pairs(chunk, windows_ref.clone())?;
                        out.read += t0.elapsed();

                        let t1 = Instant::now();
                        for (&(a, b), records) in chunk.iter().zip(&batch) {
                            let corr = match method {
                                QueryMethod::Exact => {
                                    let plan = plan_ref.expect("plan is built for exact queries");
                                    corr_scratch.clear();
                                    corr_scratch.extend(records.iter().map(|r| r.corr));
                                    plan.pair_kernel(a, b, &corr_scratch, None)
                                }
                                QueryMethod::Approximate => {
                                    let parts: Vec<ApproxWindow> = records
                                        .iter()
                                        .enumerate()
                                        .map(|(k, r)| ApproxWindow {
                                            x: series_stats[a][k],
                                            y: series_stats[b][k],
                                            dist: r.dft_dist,
                                        })
                                        .collect();
                                    query_correlation(&parts)
                                }
                            };
                            slice[cursor] = corr;
                            cursor += 1;
                        }
                        out.compute += t1.elapsed();
                    }
                    Ok(out)
                }));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .map_err(|_| Error::Storage("query worker panicked".into()))?
                })
                .collect()
        })
        .map_err(|_| Error::Storage("query scope panicked".into()))??;

        let matrix = CorrelationMatrix::from_upper_triangle(n, values);
        let mut read_time = series_read_time;
        let mut compute_time = Duration::ZERO;
        for out in outputs {
            read_time += out.read;
            compute_time += out.compute;
        }

        Ok((
            matrix,
            QueryReport {
                workers: self.config.workers.max(1),
                pairs: pair_count,
                read_time,
                compute_time,
                wall_time: wall_start.elapsed(),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::{baseline, QueryWindow};
    use tsubasa_data::station::{generate_ncea_like, NceaLikeConfig};
    use tsubasa_dft::sketch::{DftSketchSet, Transform};
    use tsubasa_storage::{DiskSketchStore, MemorySketchStore};

    fn small_collection() -> SeriesCollection {
        generate_ncea_like(&NceaLikeConfig {
            stations: 10,
            points: 600,
            seed: 3,
            regions: 3,
            correlation_length_km: 900.0,
            missing_fraction: 0.0,
        })
        .unwrap()
    }

    fn engine(workers: usize, method: SketchMethod) -> ParallelEngine {
        ParallelEngine::new(ParallelConfig {
            workers,
            batch_pairs: 8,
            sketch_method: method,
        })
    }

    #[test]
    fn parallel_exact_matches_baseline_via_memory_store() {
        let c = small_collection();
        let b = 50;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(4, SketchMethod::Exact);
        let report = eng.sketch_to_store(&c, b, store.clone()).unwrap();
        assert_eq!(report.pairs, c.pair_count());
        assert!(report.wall_time > Duration::ZERO);

        let (matrix, qreport) = eng
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        assert_eq!(qreport.pairs, c.pair_count());
        let query = QueryWindow::new(599, 600).unwrap();
        let direct = baseline::correlation_matrix(&c, query).unwrap();
        assert!(
            matrix.max_abs_diff(&direct) < 1e-9,
            "diff {}",
            matrix.max_abs_diff(&direct)
        );
    }

    #[test]
    fn parallel_exact_matches_baseline_via_disk_store() {
        let c = small_collection();
        let b = 60;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let mut dir = std::env::temp_dir();
        dir.push(format!("tsubasa-parallel-test-{}", std::process::id()));
        let store = Arc::new(DiskSketchStore::create(&dir, layout).unwrap());
        let eng = engine(3, SketchMethod::Exact);
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        let (matrix, _) = eng
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
            .unwrap();
        let query = QueryWindow::new(599, 600).unwrap();
        let direct = baseline::correlation_matrix(&c, query).unwrap();
        assert!(matrix.max_abs_diff(&direct) < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_dft_sketch_matches_serial_dft_sketch() {
        let c = small_collection();
        let b = 50;
        let coeff = 20;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(
            4,
            SketchMethod::Dft {
                coefficients: coeff,
            },
        );
        eng.sketch_to_store(&c, b, store.clone()).unwrap();

        let serial = DftSketchSet::build(&c, b, coeff, Transform::Naive).unwrap();
        for (i, j) in c.pairs() {
            let stored = store.read_pair(i, j, 0..layout.n_windows).unwrap();
            let expected = serial.pair_distances(i, j).unwrap();
            for (r, e) in stored.iter().zip(expected) {
                assert!((r.dft_dist - e).abs() < 1e-9);
                assert!(r.corr.is_nan());
            }
        }

        // Approximate query over the stored distances equals the serial
        // Equation 5 path.
        let (matrix, _) = eng
            .query_from_store(store, 0..layout.n_windows, QueryMethod::Approximate)
            .unwrap();
        let serial_matrix = tsubasa_dft::approx::approximate_correlation_matrix(
            &serial,
            0..layout.n_windows,
            tsubasa_dft::approx::ApproxStrategy::Equation5,
        )
        .unwrap();
        assert!(matrix.max_abs_diff(&serial_matrix) < 1e-9);
    }

    #[test]
    fn worker_count_does_not_change_the_result() {
        let c = small_collection();
        let b = 100;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let mut matrices = Vec::new();
        for workers in [1, 2, 5] {
            let store = Arc::new(MemorySketchStore::new(layout));
            let eng = engine(workers, SketchMethod::Exact);
            eng.sketch_to_store(&c, b, store.clone()).unwrap();
            let (m, report) = eng
                .query_from_store(store, 0..layout.n_windows, QueryMethod::Exact)
                .unwrap();
            assert_eq!(report.workers, workers);
            matrices.push(m);
        }
        assert!(matrices[0].max_abs_diff(&matrices[1]) < 1e-12);
        assert!(matrices[1].max_abs_diff(&matrices[2]) < 1e-12);
    }

    #[test]
    fn sketch_rejects_mismatched_store_layout() {
        let c = small_collection();
        let wrong = StoreLayout {
            n_series: 3,
            n_windows: 2,
            basic_window: 10,
        };
        let store = Arc::new(MemorySketchStore::new(wrong));
        let eng = engine(2, SketchMethod::Exact);
        assert!(eng.sketch_to_store(&c, 50, store).is_err());
    }

    #[test]
    fn query_rejects_bad_window_range() {
        let c = small_collection();
        let b = 100;
        let layout = ParallelEngine::layout_for(&c, b).unwrap();
        let store = Arc::new(MemorySketchStore::new(layout));
        let eng = engine(2, SketchMethod::Exact);
        eng.sketch_to_store(&c, b, store.clone()).unwrap();
        assert!(eng
            .query_from_store(store.clone(), 0..0, QueryMethod::Exact)
            .is_err());
        assert!(eng
            .query_from_store(store, 0..99, QueryMethod::Exact)
            .is_err());
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ParallelConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.batch_pairs >= 1);
        assert_eq!(cfg.sketch_method, SketchMethod::Exact);
    }
}
