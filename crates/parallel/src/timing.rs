//! Timing breakdowns reported by the parallel engine — the quantities plotted
//! in the paper's Figure 6a (sketch phase) and Figure 6b (query phase).

use std::time::Duration;

/// Breakdown of one parallel sketch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SketchReport {
    /// Number of computation workers used.
    pub workers: usize,
    /// Number of unordered pairs sketched.
    pub pairs: usize,
    /// Total CPU time spent computing sketches, summed over workers.
    pub compute_time: Duration,
    /// Time the database worker spent inside store writes.
    pub write_time: Duration,
    /// End-to-end wall-clock time of the sketch phase.
    pub wall_time: Duration,
}

impl SketchReport {
    /// Average per-worker computation time — comparable to the per-phase bars
    /// of Figure 6a when workers are load-balanced.
    pub fn compute_time_per_worker(&self) -> Duration {
        if self.workers == 0 {
            Duration::ZERO
        } else {
            self.compute_time / self.workers as u32
        }
    }
}

/// Breakdown of one parallel query (correlation-matrix construction) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryReport {
    /// Number of computation workers used.
    pub workers: usize,
    /// Number of unordered pairs evaluated.
    pub pairs: usize,
    /// Total time spent reading sketches from the store, summed over workers.
    pub read_time: Duration,
    /// Total time spent combining sketches into correlations, summed over
    /// workers.
    pub compute_time: Duration,
    /// End-to-end wall-clock time of the query phase.
    pub wall_time: Duration,
}

impl QueryReport {
    /// Average per-worker read time.
    pub fn read_time_per_worker(&self) -> Duration {
        if self.workers == 0 {
            Duration::ZERO
        } else {
            self.read_time / self.workers as u32
        }
    }

    /// Average per-worker matrix-calculation time.
    pub fn compute_time_per_worker(&self) -> Duration {
        if self.workers == 0 {
            Duration::ZERO
        } else {
            self.compute_time / self.workers as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_worker_averages() {
        let s = SketchReport {
            workers: 4,
            pairs: 100,
            compute_time: Duration::from_secs(8),
            write_time: Duration::from_secs(1),
            wall_time: Duration::from_secs(3),
        };
        assert_eq!(s.compute_time_per_worker(), Duration::from_secs(2));

        let q = QueryReport {
            workers: 2,
            pairs: 100,
            read_time: Duration::from_secs(4),
            compute_time: Duration::from_secs(6),
            wall_time: Duration::from_secs(5),
        };
        assert_eq!(q.read_time_per_worker(), Duration::from_secs(2));
        assert_eq!(q.compute_time_per_worker(), Duration::from_secs(3));
    }

    #[test]
    fn zero_workers_do_not_divide_by_zero() {
        assert_eq!(
            SketchReport::default().compute_time_per_worker(),
            Duration::ZERO
        );
        assert_eq!(
            QueryReport::default().read_time_per_worker(),
            Duration::ZERO
        );
        assert_eq!(
            QueryReport::default().compute_time_per_worker(),
            Duration::ZERO
        );
    }
}
