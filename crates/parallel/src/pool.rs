//! A small reusable worker pool for the all-pairs sweeps.
//!
//! Every parallel path in this workspace used to spawn fresh OS threads per
//! call (`std::thread::scope` in the in-memory sweep, `crossbeam` scopes in
//! the disk engine). That is correct but pays thread startup — tens of
//! microseconds per worker — on *every* query, which dominates once the
//! tiled kernels push the per-query compute into the same range.
//! [`WorkerPool`] keeps a fixed set of threads parked on channels across
//! calls: repeated queries, sketch passes, and sliding-network re-evaluations
//! reuse the same threads.
//!
//! The pool implements [`tsubasa_core::runner::JobRunner`], so anything that
//! accepts a runner — [`tsubasa_core::exact::correlation_matrix_parallel_in`],
//! [`tsubasa_core::incremental::SlidingNetwork::ingest_in`], the engine in
//! this crate — can be handed one pool and share it.
//!
//! # Safety
//!
//! Jobs may borrow from the caller's stack (`Job<'env>`), but a long-lived
//! worker thread can only *store* `'static` closures. The single `unsafe`
//! block in this module erases the job lifetime before handing it to a
//! worker. Soundness rests on the blocking contract of
//! [`WorkerPool::run_jobs`]:
//!
//! * every submitted job sends a completion message **after** it has finished
//!   executing (normally or by panic — panics are caught around the job);
//! * `run_jobs` returns only once it has received one completion per job, so
//!   no job — and no borrow captured inside one — outlives the call;
//! * if a worker's queue is closed (shutdown race), the send fails and
//!   returns the job, which then runs inline on the caller's thread;
//! * the pool is `&self` during `run_jobs` and `&mut self` in `Drop`, so a
//!   pool cannot be torn down while a call is in flight.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

use tsubasa_core::runner::{Job, JobRunner};

/// The panic payload of a job, if it had one.
type Outcome = Option<Box<dyn std::any::Any + Send + 'static>>;

type StaticJob = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads, parked between calls, that runs batches of
/// borrowed jobs to completion. See the [module documentation](self).
///
/// ```
/// use tsubasa_core::runner::JobRunner;
/// use tsubasa_parallel::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let mut halves = vec![0.0f64; 4];
/// let (lo, hi) = halves.split_at_mut(2);
/// pool.run(vec![
///     Box::new(move || lo.fill(1.0)),
///     Box::new(move || hi.fill(2.0)),
/// ]);
/// assert_eq!(halves, vec![1.0, 1.0, 2.0, 2.0]);
/// ```
pub struct WorkerPool {
    senders: Vec<Sender<StaticJob>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.senders.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (clamped to at least 1). The
    /// threads park on their queues until jobs arrive and exit when the pool
    /// is dropped.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for k in 0..workers {
            let (tx, rx) = channel::<StaticJob>();
            let handle = std::thread::Builder::new()
                .name(format!("tsubasa-pool-{k}"))
                .spawn(move || {
                    // Jobs arrive pre-wrapped: panics are caught inside the
                    // job itself, so this loop never unwinds and the worker
                    // survives until the channel closes.
                    for job in rx.iter() {
                        job();
                    }
                })
                .expect("spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// A pool sized like the paper's configuration: all available cores minus
    /// one (reserved for the database worker).
    pub fn with_default_size() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|p| p.get().saturating_sub(1).max(1))
            .unwrap_or(1);
        Self::new(workers)
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Run all `jobs` to completion before returning, distributing them
    /// round-robin over the workers. The first job panic (if any) is
    /// re-raised on the calling thread after every job has finished.
    pub fn run_jobs<'env>(&self, jobs: Vec<Job<'env>>) {
        let count = jobs.len();
        if count == 0 {
            return;
        }
        if count == 1 || self.senders.len() == 1 {
            // Nothing to fan out — run inline and skip the channel round-trip.
            for job in jobs {
                job();
            }
            return;
        }

        let (done_tx, done_rx) = channel::<Outcome>();
        for (k, job) in jobs.into_iter().enumerate() {
            let done = done_tx.clone();
            let wrapped: Job<'env> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The completion message is sent strictly after the job has
                // finished — this ordering is what makes the lifetime
                // erasure below sound.
                let _ = done.send(outcome.err());
            });
            // SAFETY: only the lifetime is transmuted (`Job<'env>` and
            // `StaticJob` are the same type modulo `'env`). The closure —
            // and every `'env` borrow inside it — is consumed exactly once,
            // either by a worker thread or inline below, and `run_jobs` does
            // not return until a completion message proves that execution
            // finished. The `'env` data therefore strictly outlives the job.
            let wrapped: StaticJob =
                unsafe { std::mem::transmute::<Job<'env>, StaticJob>(wrapped) };
            if let Err(err) = self.senders[k % self.senders.len()].send(wrapped) {
                // The worker is gone (only possible mid-shutdown); the job
                // comes back in the error — run it here so the completion
                // accounting still balances.
                (err.0)();
            }
        }
        drop(done_tx);

        let mut first_panic: Outcome = None;
        for _ in 0..count {
            match done_rx.recv() {
                Ok(Some(panic)) if first_panic.is_none() => first_panic = Some(panic),
                Ok(_) => {}
                // Unreachable by construction: every wrapped job owns a
                // completion sender and sends exactly once. Losing a message
                // would mean a job was dropped un-run, which would break the
                // borrow contract — make that loudly fatal.
                Err(_) => panic!("worker pool lost a job completion"),
            }
        }
        if let Some(panic) = first_panic {
            resume_unwind(panic);
        }
    }
}

impl JobRunner for WorkerPool {
    fn worker_count(&self) -> usize {
        self.size()
    }

    fn run<'env>(&self, jobs: Vec<Job<'env>>) {
        self.run_jobs(jobs);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; join so no worker
        // outlives the pool.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_borrowed_jobs_to_completion() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<Job<'_>> = (0..10)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::SeqCst);
                }) as Job<'_>
            })
            .collect();
        pool.run_jobs(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn pool_is_reusable_across_many_calls() {
        let pool = WorkerPool::new(2);
        for round in 0..50 {
            let mut values = vec![0usize; 4];
            let (a, b) = values.split_at_mut(2);
            pool.run_jobs(vec![
                Box::new(move || a.fill(round)),
                Box::new(move || b.fill(round + 1)),
            ]);
            assert_eq!(values, vec![round, round, round + 1, round + 1]);
        }
    }

    #[test]
    fn pool_clamps_zero_workers_and_handles_empty_batches() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        pool.run_jobs(Vec::new());
        assert!(WorkerPool::with_default_size().size() >= 1);
    }

    #[test]
    fn pool_propagates_job_panics_after_draining() {
        let pool = WorkerPool::new(2);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_jobs(vec![
                Box::new(|| panic!("job exploded")),
                Box::new(|| {
                    completed.fetch_add(1, Ordering::SeqCst);
                }),
            ]);
        }));
        assert!(result.is_err());
        // The non-panicking job still ran to completion before the unwind.
        assert_eq!(completed.load(Ordering::SeqCst), 1);
        // And the pool survives for further batches.
        let after = AtomicUsize::new(0);
        pool.run_jobs(vec![
            Box::new(|| {
                after.fetch_add(1, Ordering::SeqCst);
            }),
            Box::new(|| {
                after.fetch_add(1, Ordering::SeqCst);
            }),
        ]);
        assert_eq!(after.load(Ordering::SeqCst), 2);
    }
}
