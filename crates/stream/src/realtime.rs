//! The end-to-end real-time network driver (paper Algorithm 3).
//!
//! [`RealTimeNetwork`] ties the pieces together:
//!
//! 1. construct the initial network from historical data (Algorithm 2 /
//!    Lemma 1, evaluated through the shared flat
//!    [`tsubasa_core::plan::QueryPlan`] kernel);
//! 2. buffer incoming observations until a basic window completes
//!    ([`StreamBuffer`]);
//! 3. update every pairwise correlation incrementally — exactly (Lemma 2) or
//!    approximately (Equation 6) depending on the configured
//!    [`UpdateEngine`];
//! 4. expose the current correlation matrix / thresholded network at any
//!    time.

use tsubasa_core::delta::EdgeDelta;
use tsubasa_core::error::Result;
use tsubasa_core::incremental::SlidingNetwork;
use tsubasa_core::matrix::{AdjacencyMatrix, CorrelationMatrix};
use tsubasa_core::runner::{JobRunner, SerialRunner};
use tsubasa_core::{SeriesCollection, SketchSet};
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_dft::SlidingApproxNetwork;

use crate::buffer::StreamBuffer;

/// Which incremental updater maintains the correlations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateEngine {
    /// Exact Lemma 2 updates (TSUBASA).
    Exact,
    /// DFT-based Equation 6 updates with the given number of coefficients
    /// (the approximate comparator).
    Approximate {
        /// Number of DFT coefficients used for the arriving windows.
        coefficients: usize,
    },
}

enum Updater {
    Exact(SlidingNetwork),
    Approx(SlidingApproxNetwork),
}

/// The sketches frozen from the current sliding query window by
/// [`RealTimeNetwork::publish_epoch`] — an immutable snapshot a publication
/// layer (e.g. `tsubasa-serve`'s `EpochStore`) can hand to readers behind an
/// `Arc` while ingestion keeps sliding.
///
/// Exactly one field is populated, matching the network's [`UpdateEngine`]:
/// the exact engine yields a [`SketchSet`], the approximate engine a
/// [`DftSketchSet`] (whose base pair correlations are NaN — the repo-wide
/// marker for method-mismatched sketch data — so exact queries against an
/// approximate epoch are answerable only through the NaN-auditing sinks).
#[derive(Debug, Clone)]
pub struct EpochSketches {
    /// Exact per-window statistics and pair correlations, when the network
    /// runs the exact (Lemma 2) updater.
    pub exact: Option<SketchSet>,
    /// The DFT comparator sketch, when the network runs the approximate
    /// (Equation 6) updater.
    pub approx: Option<DftSketchSet>,
}

/// A continuously maintained climate network over the `m` most recent
/// observations of a collection of streams.
pub struct RealTimeNetwork {
    buffer: StreamBuffer,
    updater: Updater,
    threshold: f64,
    observed: usize,
    updates_applied: usize,
    /// Deltas emitted by the subscribed engine since the last
    /// [`RealTimeNetwork::take_deltas`], oldest first (one per applied basic
    /// window; a burst push contributes several).
    pending_deltas: Vec<EdgeDelta>,
    subscribed: bool,
}

impl RealTimeNetwork {
    /// Bootstrap from historical data: sketch `historical`, build the initial
    /// network over its most recent `query_len` points (which must be a
    /// multiple of `basic_window`), and prepare for streaming ingestion.
    ///
    /// The exact path initializes all pairs through one shared
    /// [`tsubasa_core::plan::QueryPlan`] rather than per-pair contribution
    /// vectors, so bootstrap cost is dominated by the sketch pass itself.
    pub fn new(
        historical: &SeriesCollection,
        basic_window: usize,
        query_len: usize,
        threshold: f64,
        engine: UpdateEngine,
    ) -> Result<Self> {
        let updater = match engine {
            UpdateEngine::Exact => {
                let sketch = SketchSet::build(historical, basic_window)?;
                Updater::Exact(SlidingNetwork::initialize(historical, &sketch, query_len)?)
            }
            UpdateEngine::Approximate { coefficients } => {
                let sketch =
                    DftSketchSet::build(historical, basic_window, coefficients, Transform::Naive)?;
                Updater::Approx(SlidingApproxNetwork::initialize(&sketch, query_len)?)
            }
        };
        Ok(Self {
            buffer: StreamBuffer::new(historical.len(), basic_window)?,
            updater,
            threshold,
            observed: historical.series_len(),
            updates_applied: 0,
            pending_deltas: Vec::new(),
            subscribed: false,
        })
    }

    /// Feed newly observed points (`updates[i]` are the new points of series
    /// `i`, any length). Complete basic windows are applied immediately;
    /// leftovers stay buffered. Returns the number of network updates applied
    /// by this call.
    pub fn ingest(&mut self, updates: &[Vec<f64>]) -> Result<usize> {
        self.ingest_in(&SerialRunner, updates)
    }

    /// [`RealTimeNetwork::ingest`] with the per-pair update sweep (Lemma 2
    /// for the exact engine, Equation 6 for the approximate one) fanned out
    /// over `runner`. Hand the same reusable worker pool
    /// (`tsubasa_parallel::WorkerPool`) to every call so continuous
    /// re-evaluations stop paying thread startup per arriving basic window;
    /// the result is identical to the serial path for any worker count.
    ///
    /// One `push` may complete several basic windows at once (e.g. after a
    /// burst of buffered observations): every released chunk is applied,
    /// oldest first, and counts as one applied update.
    pub fn ingest_in(&mut self, runner: &dyn JobRunner, updates: &[Vec<f64>]) -> Result<usize> {
        let new_points = updates.first().map(|u| u.len()).unwrap_or(0);
        let chunks = self.buffer.push(updates)?;
        let applied = chunks.len();
        for chunk in chunks {
            match &mut self.updater {
                Updater::Exact(net) => net.ingest_in(runner, &chunk)?,
                Updater::Approx(net) => net.ingest_in(runner, &chunk)?,
            }
            if self.subscribed {
                let delta = match &self.updater {
                    Updater::Exact(net) => net.changed_edges(),
                    Updater::Approx(net) => net.changed_edges(),
                };
                self.pending_deltas
                    .push(delta.expect("subscribed engine emits per tick").clone());
            }
        }
        self.observed += new_points;
        self.updates_applied += applied;
        Ok(applied)
    }

    /// Total observations seen so far (historical plus streamed).
    pub fn observed_points(&self) -> usize {
        self.observed
    }

    /// Number of basic-window updates applied since construction.
    pub fn updates_applied(&self) -> usize {
        self.updates_applied
    }

    /// Observations buffered but not yet folded into the network.
    pub fn pending_points(&self) -> usize {
        self.buffer.pending()
    }

    /// The current correlation matrix over the sliding query window.
    pub fn correlation_matrix(&self) -> CorrelationMatrix {
        match &self.updater {
            Updater::Exact(net) => net.correlation_matrix(),
            Updater::Approx(net) => net.correlation_matrix(),
        }
    }

    /// The current climate network at the configured threshold. The lenient
    /// thresholding keeps this path infallible: NaN correlations (possible
    /// once NaN observations are streamed in — the sliding updaters keep
    /// them NaN instead of fabricating a value) are counted on the returned
    /// matrix's [`nan_pair_count`](AdjacencyMatrix::nan_pair_count), never
    /// silently dropped.
    pub fn network(&self) -> AdjacencyMatrix {
        self.correlation_matrix().threshold_lenient(self.threshold)
    }

    /// The current climate network at an ad-hoc threshold.
    pub fn network_with_threshold(&self, theta: f64) -> AdjacencyMatrix {
        self.correlation_matrix().threshold_lenient(theta)
    }

    /// Subscribe to edge-level changes of the θ-thresholded network: returns
    /// the baseline snapshot (identical to
    /// [`RealTimeNetwork::network_with_threshold`] at `theta`), and every
    /// subsequently applied basic window appends one [`EdgeDelta`] for
    /// [`RealTimeNetwork::take_deltas`] to drain — a burst push that
    /// completes several basic windows contributes one delta per window,
    /// oldest first. Re-subscribing replaces any previous subscription and
    /// discards undrained deltas.
    pub fn subscribe_edges(&mut self, theta: f64) -> Result<AdjacencyMatrix> {
        let baseline = match &mut self.updater {
            Updater::Exact(net) => net.subscribe_edges(theta)?,
            Updater::Approx(net) => net.subscribe_edges(theta)?,
        };
        self.subscribed = true;
        self.pending_deltas.clear();
        Ok(baseline)
    }

    /// Drain the deltas accumulated since the last call (empty when nothing
    /// was applied, or without an active subscription).
    pub fn take_deltas(&mut self) -> Vec<EdgeDelta> {
        std::mem::take(&mut self.pending_deltas)
    }

    /// Drop the active edge subscription, discarding undrained deltas.
    pub fn unsubscribe_edges(&mut self) {
        match &mut self.updater {
            Updater::Exact(net) => net.unsubscribe_edges(),
            Updater::Approx(net) => net.unsubscribe_edges(),
        }
        self.subscribed = false;
        self.pending_deltas.clear();
    }

    /// Number of basic windows inside the sliding query window — the window
    /// count of every sketch [`RealTimeNetwork::publish_epoch`] freezes.
    pub fn window_count(&self) -> usize {
        match &self.updater {
            Updater::Exact(net) => net.window_count(),
            Updater::Approx(net) => net.window_count(),
        }
    }

    /// Freeze the current sliding query window into an immutable
    /// [`EpochSketches`] snapshot (basic windows re-indexed from 0, oldest
    /// first). Call after each applied update to publish one epoch per
    /// completed basic window; the snapshot shares no storage with the live
    /// network, so readers can plan and query against it while subsequent
    /// [`RealTimeNetwork::ingest`] calls keep sliding.
    pub fn publish_epoch(&self) -> Result<EpochSketches> {
        match &self.updater {
            Updater::Exact(net) => Ok(EpochSketches {
                exact: Some(net.snapshot_sketch()?),
                approx: None,
            }),
            Updater::Approx(net) => Ok(EpochSketches {
                exact: None,
                approx: Some(net.snapshot_sketch()?),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsubasa_core::{baseline, QueryWindow};
    use tsubasa_data::station::{generate_ncea_like, NceaLikeConfig};

    fn data(points: usize) -> SeriesCollection {
        generate_ncea_like(&NceaLikeConfig {
            stations: 6,
            points,
            seed: 21,
            regions: 3,
            correlation_length_km: 800.0,
            missing_fraction: 0.0,
        })
        .unwrap()
    }

    #[test]
    fn exact_realtime_tracks_baseline() {
        let total = 700;
        let hist_len = 400;
        let b = 25;
        let query_len = 200;
        let full = data(total);
        let historical = full.truncate_length(hist_len).unwrap();
        let mut rt =
            RealTimeNetwork::new(&historical, b, query_len, 0.7, UpdateEngine::Exact).unwrap();

        // Stream the rest in odd-sized pieces (11 points at a time).
        let mut now = hist_len;
        while now + 11 <= total {
            let updates: Vec<Vec<f64>> = full
                .iter()
                .map(|s| s.values()[now..now + 11].to_vec())
                .collect();
            rt.ingest(&updates).unwrap();
            now += 11;
        }
        assert_eq!(rt.observed_points(), now);
        assert!(rt.updates_applied() > 5);
        assert!(rt.pending_points() < b);

        // The network reflects the last `query_len` points ending at the last
        // *completed* basic window.
        let completed = hist_len + rt.updates_applied() * b;
        let truncated = full.truncate_length(completed).unwrap();
        let query = QueryWindow::latest(completed, query_len).unwrap();
        let expected = baseline::correlation_matrix(&truncated, query).unwrap();
        let diff = rt.correlation_matrix().max_abs_diff(&expected);
        assert!(diff < 1e-7, "drift {diff}");
        assert_eq!(rt.network(), expected.threshold(0.7).unwrap());
        assert_eq!(
            rt.network_with_threshold(0.9),
            expected.threshold(0.9).unwrap()
        );
    }

    #[test]
    fn approximate_realtime_with_all_coefficients_matches_exact() {
        let total = 500;
        let hist_len = 300;
        let b = 20;
        let query_len = 160;
        let full = data(total);
        let historical = full.truncate_length(hist_len).unwrap();
        let mut exact =
            RealTimeNetwork::new(&historical, b, query_len, 0.7, UpdateEngine::Exact).unwrap();
        let mut approx = RealTimeNetwork::new(
            &historical,
            b,
            query_len,
            0.7,
            UpdateEngine::Approximate { coefficients: b },
        )
        .unwrap();

        let mut now = hist_len;
        while now + b <= total {
            let updates: Vec<Vec<f64>> = full
                .iter()
                .map(|s| s.values()[now..now + b].to_vec())
                .collect();
            exact.ingest(&updates).unwrap();
            approx.ingest(&updates).unwrap();
            now += b;
        }
        let diff = exact
            .correlation_matrix()
            .max_abs_diff(&approx.correlation_matrix());
        assert!(
            diff < 1e-6,
            "full-coefficient approximation drifted by {diff}"
        );
    }

    #[test]
    fn parallel_ingest_matches_serial_ingest_exactly() {
        use tsubasa_core::runner::ScopedRunner;
        let total = 520;
        let hist_len = 300;
        let b = 20;
        let full = data(total);
        let historical = full.truncate_length(hist_len).unwrap();
        let mut serial =
            RealTimeNetwork::new(&historical, b, 160, 0.7, UpdateEngine::Exact).unwrap();
        let mut pooled =
            RealTimeNetwork::new(&historical, b, 160, 0.7, UpdateEngine::Exact).unwrap();
        let runner = ScopedRunner::new(4);
        let mut now = hist_len;
        while now + 13 <= total {
            let updates: Vec<Vec<f64>> = full
                .iter()
                .map(|s| s.values()[now..now + 13].to_vec())
                .collect();
            serial.ingest(&updates).unwrap();
            pooled.ingest_in(&runner, &updates).unwrap();
            now += 13;
            assert_eq!(serial.correlation_matrix(), pooled.correlation_matrix());
        }
        assert!(serial.updates_applied() > 5);
    }

    #[test]
    fn one_push_releasing_many_chunks_applies_them_oldest_first() {
        // A burst delivery: one `ingest` call carries several basic windows'
        // worth of points, so `StreamBuffer::push` releases multiple complete
        // chunks at once. They must be applied oldest first and every chunk
        // must be accounted for in `updates_applied`/`observed_points` — for
        // both update engines. The drip-fed twin (one basic window per call)
        // pins the ordering: any reordering or dropped chunk diverges.
        let total = 560;
        let hist_len = 300;
        let b = 20;
        let query_len = 160;
        let full = data(total);
        let historical = full.truncate_length(hist_len).unwrap();
        let engines = [
            UpdateEngine::Exact,
            UpdateEngine::Approximate { coefficients: b },
        ];
        for engine in engines {
            let mut burst = RealTimeNetwork::new(&historical, b, query_len, 0.7, engine).unwrap();
            let mut drip = RealTimeNetwork::new(&historical, b, query_len, 0.7, engine).unwrap();

            // 13 points buffered, then a burst of 54 more: 67 buffered
            // points at B = 20, so the push releases exactly 3 complete
            // basic windows and leaves 7 pending.
            let cut = hist_len + 13;
            let first: Vec<Vec<f64>> = full
                .iter()
                .map(|s| s.values()[hist_len..cut].to_vec())
                .collect();
            assert_eq!(burst.ingest(&first).unwrap(), 0);
            let burst_end = cut + 54;
            let second: Vec<Vec<f64>> = full
                .iter()
                .map(|s| s.values()[cut..burst_end].to_vec())
                .collect();
            assert_eq!(burst.ingest(&second).unwrap(), 3);
            assert_eq!(burst.updates_applied(), 3);
            assert_eq!(burst.observed_points(), burst_end);
            assert_eq!(burst.pending_points(), burst_end - hist_len - 3 * b);

            // The drip twin sees the same points one basic window at a time.
            for k in 0..3 {
                let lo = hist_len + k * b;
                let chunk: Vec<Vec<f64>> = full
                    .iter()
                    .map(|s| s.values()[lo..lo + b].to_vec())
                    .collect();
                assert_eq!(drip.ingest(&chunk).unwrap(), 1);
            }
            assert_eq!(
                burst.correlation_matrix(),
                drip.correlation_matrix(),
                "engine {engine:?}"
            );
        }
    }

    #[test]
    fn approximate_parallel_ingest_matches_serial_ingest() {
        use tsubasa_core::runner::ScopedRunner;
        let total = 500;
        let hist_len = 300;
        let b = 20;
        let full = data(total);
        let historical = full.truncate_length(hist_len).unwrap();
        let engine = UpdateEngine::Approximate { coefficients: b };
        let mut serial = RealTimeNetwork::new(&historical, b, 160, 0.7, engine).unwrap();
        let mut pooled = RealTimeNetwork::new(&historical, b, 160, 0.7, engine).unwrap();
        let runner = ScopedRunner::new(4);
        let mut now = hist_len;
        while now + b <= total {
            let updates: Vec<Vec<f64>> = full
                .iter()
                .map(|s| s.values()[now..now + b].to_vec())
                .collect();
            serial.ingest(&updates).unwrap();
            pooled.ingest_in(&runner, &updates).unwrap();
            now += b;
            assert_eq!(serial.correlation_matrix(), pooled.correlation_matrix());
        }
        assert!(serial.updates_applied() > 5);
    }

    #[test]
    fn subscribed_deltas_replay_to_current_network() {
        let total = 640;
        let hist_len = 400;
        let b = 25;
        let theta = 0.6;
        let full = data(total);
        let historical = full.truncate_length(hist_len).unwrap();
        for engine in [
            UpdateEngine::Exact,
            UpdateEngine::Approximate { coefficients: b },
        ] {
            let mut rt = RealTimeNetwork::new(&historical, b, 200, theta, engine).unwrap();
            let mut snapshot = rt.subscribe_edges(theta).unwrap();
            assert_eq!(snapshot, rt.network_with_threshold(theta));
            assert!(rt.take_deltas().is_empty());

            // Odd-sized pushes: some complete no basic window, one burst
            // completes several. Each completed window must yield exactly one
            // delta, and replaying them all reaches the live network.
            let mut emitted = 0;
            let mut now = hist_len;
            for step in [11usize, 7, 60, 25, 13, 80] {
                let updates: Vec<Vec<f64>> = full
                    .iter()
                    .map(|s| s.values()[now..now + step].to_vec())
                    .collect();
                let applied = rt.ingest(&updates).unwrap();
                now += step;
                let deltas = rt.take_deltas();
                assert_eq!(deltas.len(), applied);
                emitted += deltas.len();
                for delta in &deltas {
                    delta.apply_to(&mut snapshot).unwrap();
                }
                let expected = rt.network_with_threshold(theta);
                assert_eq!(snapshot, expected, "engine {engine:?} at now={now}");
                assert_eq!(snapshot.nan_pair_count(), expected.nan_pair_count());
            }
            assert_eq!(emitted, rt.updates_applied());

            rt.unsubscribe_edges();
            let updates: Vec<Vec<f64>> = full.iter().map(|s| s.values()[..b].to_vec()).collect();
            rt.ingest(&updates).unwrap();
            assert!(rt.take_deltas().is_empty());
        }
    }

    #[test]
    fn construction_validates_inputs() {
        let historical = data(200);
        assert!(RealTimeNetwork::new(&historical, 25, 90, 0.7, UpdateEngine::Exact).is_err());
        assert!(RealTimeNetwork::new(&historical, 0, 100, 0.7, UpdateEngine::Exact).is_err());
        assert!(RealTimeNetwork::new(&historical, 25, 100, 0.7, UpdateEngine::Exact).is_ok());
    }

    #[test]
    fn ingest_rejects_malformed_updates() {
        let historical = data(200);
        let mut rt = RealTimeNetwork::new(&historical, 20, 100, 0.7, UpdateEngine::Exact).unwrap();
        assert!(rt.ingest(&[vec![1.0]]).is_err());
        let ragged: Vec<Vec<f64>> = (0..6).map(|i| vec![0.0; i % 2 + 1]).collect();
        assert!(rt.ingest(&ragged).is_err());
    }
}
