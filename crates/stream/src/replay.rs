//! Replaying a historical collection as a real-time stream.
//!
//! Examples, tests, and the Figure 5d benchmark need a stream of new
//! observations; [`StreamReplay`] produces one deterministically by walking a
//! historical [`SeriesCollection`] forward in fixed-size chunks.

use tsubasa_core::error::{Error, Result};
use tsubasa_core::SeriesCollection;

/// An iterator over per-series chunks of a historical collection, emulating
/// real-time arrival.
#[derive(Debug, Clone)]
pub struct StreamReplay<'a> {
    collection: &'a SeriesCollection,
    cursor: usize,
    chunk: usize,
}

impl<'a> StreamReplay<'a> {
    /// Replay `collection` starting at index `start`, emitting chunks of
    /// `chunk` points per series.
    pub fn new(collection: &'a SeriesCollection, start: usize, chunk: usize) -> Result<Self> {
        if chunk == 0 {
            return Err(Error::InvalidBasicWindow {
                window: 0,
                series_len: collection.series_len(),
            });
        }
        if start > collection.series_len() {
            return Err(Error::InvalidQueryWindow {
                end: start,
                len: chunk,
                series_len: collection.series_len(),
            });
        }
        Ok(Self {
            collection,
            cursor: start,
            chunk,
        })
    }

    /// Index of the next unread observation.
    pub fn position(&self) -> usize {
        self.cursor
    }

    /// Number of full chunks still available.
    pub fn remaining_chunks(&self) -> usize {
        (self.collection.series_len() - self.cursor) / self.chunk
    }
}

impl Iterator for StreamReplay<'_> {
    type Item = Vec<Vec<f64>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor + self.chunk > self.collection.series_len() {
            return None;
        }
        let lo = self.cursor;
        let hi = lo + self.chunk;
        self.cursor = hi;
        Some(
            self.collection
                .iter()
                .map(|s| s.values()[lo..hi].to_vec())
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> SeriesCollection {
        SeriesCollection::from_rows(vec![
            (0..20).map(|i| i as f64).collect(),
            (0..20).map(|i| -(i as f64)).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn replay_walks_the_collection_in_chunks() {
        let c = collection();
        let mut replay = StreamReplay::new(&c, 10, 4).unwrap();
        assert_eq!(replay.remaining_chunks(), 2);
        let first = replay.next().unwrap();
        assert_eq!(first[0], vec![10.0, 11.0, 12.0, 13.0]);
        assert_eq!(first[1], vec![-10.0, -11.0, -12.0, -13.0]);
        let second = replay.next().unwrap();
        assert_eq!(second[0], vec![14.0, 15.0, 16.0, 17.0]);
        // Remaining 2 points do not form a full chunk.
        assert!(replay.next().is_none());
        assert_eq!(replay.position(), 18);
    }

    #[test]
    fn replay_from_the_beginning_and_degenerate_cases() {
        let c = collection();
        let replay = StreamReplay::new(&c, 0, 5).unwrap();
        assert_eq!(replay.count(), 4);
        assert!(StreamReplay::new(&c, 0, 0).is_err());
        assert!(StreamReplay::new(&c, 21, 5).is_err());
        let empty = StreamReplay::new(&c, 20, 5).unwrap();
        assert_eq!(empty.count(), 0);
    }
}
