//! Accumulation of raw real-time observations into basic-window chunks.

use tsubasa_core::error::{Error, Result};

/// Buffers per-series observations until a complete basic window (`B` points
/// for every series) is available, then releases it as one chunk — the
/// `IngestData` / `Len(b) == B` loop of Algorithm 3.
#[derive(Debug, Clone)]
pub struct StreamBuffer {
    basic_window: usize,
    buffers: Vec<Vec<f64>>,
}

impl StreamBuffer {
    /// Create a buffer for `n_series` streams and basic windows of
    /// `basic_window` points.
    pub fn new(n_series: usize, basic_window: usize) -> Result<Self> {
        if n_series == 0 {
            return Err(Error::EmptyInput("StreamBuffer needs at least one series"));
        }
        if basic_window == 0 {
            return Err(Error::InvalidBasicWindow {
                window: 0,
                series_len: 0,
            });
        }
        Ok(Self {
            basic_window,
            buffers: vec![Vec::new(); n_series],
        })
    }

    /// Number of series being buffered.
    pub fn series_count(&self) -> usize {
        self.buffers.len()
    }

    /// The basic-window (chunk) size.
    pub fn basic_window(&self) -> usize {
        self.basic_window
    }

    /// Number of buffered-but-not-yet-released points per series.
    pub fn pending(&self) -> usize {
        self.buffers[0].len()
    }

    /// Push one batch of new observations (`updates[i]` are the new points of
    /// series `i`; all series must receive the same number of points to stay
    /// synchronized). Returns every complete basic-window chunk that became
    /// available, oldest first.
    pub fn push(&mut self, updates: &[Vec<f64>]) -> Result<Vec<Vec<Vec<f64>>>> {
        if updates.len() != self.buffers.len() {
            return Err(Error::UnalignedSeries {
                expected: self.buffers.len(),
                found: updates.len(),
                index: 0,
            });
        }
        let expected = updates[0].len();
        for (index, u) in updates.iter().enumerate() {
            if u.len() != expected {
                return Err(Error::UnalignedSeries {
                    expected,
                    found: u.len(),
                    index,
                });
            }
        }
        for (buf, u) in self.buffers.iter_mut().zip(updates) {
            buf.extend_from_slice(u);
        }

        let mut chunks = Vec::new();
        while self.buffers[0].len() >= self.basic_window {
            let chunk: Vec<Vec<f64>> = self
                .buffers
                .iter_mut()
                .map(|buf| buf.drain(..self.basic_window).collect())
                .collect();
            chunks.push(chunk);
        }
        Ok(chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_configuration() {
        assert!(StreamBuffer::new(0, 5).is_err());
        assert!(StreamBuffer::new(3, 0).is_err());
    }

    #[test]
    fn accumulates_until_a_full_window_is_available() {
        let mut buf = StreamBuffer::new(2, 4).unwrap();
        assert!(buf
            .push(&[vec![1.0, 2.0], vec![5.0, 6.0]])
            .unwrap()
            .is_empty());
        assert_eq!(buf.pending(), 2);
        let chunks = buf.push(&[vec![3.0, 4.0], vec![7.0, 8.0]]).unwrap();
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0][0], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(chunks[0][1], vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn releases_multiple_chunks_from_one_push() {
        let mut buf = StreamBuffer::new(1, 3).unwrap();
        let chunks = buf
            .push(&[vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]])
            .unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0][0], vec![1.0, 2.0, 3.0]);
        assert_eq!(chunks[1][0], vec![4.0, 5.0, 6.0]);
        assert_eq!(buf.pending(), 1);
    }

    #[test]
    fn rejects_ragged_or_mismatched_updates() {
        let mut buf = StreamBuffer::new(2, 4).unwrap();
        assert!(buf.push(&[vec![1.0]]).is_err());
        assert!(buf.push(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        // State unchanged after the failed pushes.
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn accessors_report_configuration() {
        let buf = StreamBuffer::new(3, 7).unwrap();
        assert_eq!(buf.series_count(), 3);
        assert_eq!(buf.basic_window(), 7);
    }
}
