//! # tsubasa-stream
//!
//! Real-time ingestion for TSUBASA (paper §3.1.2, §3.2.2 and Algorithm 3).
//!
//! Raw observations arrive in arbitrary-sized pieces; the algorithms update
//! the network only when a complete basic window (`B` points per series) has
//! accumulated. This crate provides
//!
//! * [`StreamBuffer`] — accumulates per-series observations and emits
//!   complete basic-window chunks;
//! * [`StreamReplay`] — replays a historical collection as a stream, used by
//!   examples and the Figure 5d benchmark;
//! * [`RealTimeNetwork`] — the end-to-end Algorithm 3 driver: construct the
//!   initial network from historical data, then ingest chunks and update the
//!   correlation matrix incrementally with either the exact (Lemma 2) or the
//!   approximate (Equation 6) updater.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(unsafe_code)]

pub mod buffer;
pub mod realtime;
pub mod replay;

pub use buffer::StreamBuffer;
pub use realtime::{EpochSketches, RealTimeNetwork, UpdateEngine};
pub use replay::StreamReplay;
