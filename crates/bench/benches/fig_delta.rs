//! Delta-maintained network updates — re-checked-pair fraction and per-tick
//! latency of the `changed_edges` subscription path versus the naive
//! recompute-and-diff baseline.
//!
//! Setup: a drifting NCEA-like workload slides both engines forward one
//! basic window at a time. The subscribed path emits an
//! [`tsubasa_core::EdgeDelta`] per tick and records how many pairs the
//! change bound failed to certify (the re-checked fraction); the baseline
//! re-thresholds the full network each tick and diffs consecutive snapshots
//! with [`tsubasa_network::SnapshotDelta::between`].
//!
//! Expected shape: the bound certifies the overwhelming majority of pairs on
//! a drifting workload (re-checked fraction well below 1), and per-tick
//! latency of the subscription path stays comparable to recompute-and-diff —
//! the arriving-chunk correlation kernel dominates both — while emitting the
//! delta inline with the ingest, with no materialized snapshot matrices and
//! no per-tick `O(N²)` re-threshold allocation.

use tsubasa_bench::{fmt_ms, millis, scaled, time, workers, Table};
use tsubasa_core::prelude::*;
use tsubasa_data::prelude::*;
use tsubasa_dft::sketch::{DftSketchSet, Transform};
use tsubasa_dft::SlidingApproxNetwork;
use tsubasa_network::SnapshotDelta;
use tsubasa_parallel::WorkerPool;

struct Run {
    engine: &'static str,
    theta: f64,
    recheck_fraction: f64,
    delta_ms: f64,
    recompute_ms: f64,
    changed_edges: usize,
}

#[allow(clippy::too_many_arguments)]
fn exact_run(
    historical: &SeriesCollection,
    world: &SeriesCollection,
    pool: &WorkerPool,
    basic_window: usize,
    query_len: usize,
    history: usize,
    updates: usize,
    theta: f64,
) -> Run {
    let sketch = SketchSet::build(historical, basic_window).unwrap();
    let mut subscribed = SlidingNetwork::initialize(historical, &sketch, query_len).unwrap();
    let mut baseline = SlidingNetwork::initialize(historical, &sketch, query_len).unwrap();
    subscribed.subscribe_edges(theta).unwrap();
    let mut prev = baseline.network(theta);

    let (mut delta_ms, mut recompute_ms) = (0.0, 0.0);
    let (mut rechecked, mut total, mut changed) = (0usize, 0usize, 0usize);
    // Tick 0 warms caches and the worker pool; only ticks 1..=updates are
    // timed and tallied.
    for u in 0..=updates {
        let lo = history + u * basic_window;
        let chunk: Vec<Vec<f64>> = world
            .iter()
            .map(|s| s.values()[lo..lo + basic_window].to_vec())
            .collect();

        let (_, t_delta) = time(|| subscribed.ingest_in(pool, &chunk).unwrap());
        let d = subscribed.changed_edges().unwrap();
        let (_, t_full) = time(|| {
            baseline.ingest_in(pool, &chunk).unwrap();
            let snapshot = baseline.network(theta);
            let diff = SnapshotDelta::between(&prev, &snapshot).unwrap();
            prev = snapshot;
            diff
        });
        if u == 0 {
            continue;
        }
        delta_ms += millis(t_delta);
        recompute_ms += millis(t_full);
        rechecked += d.rechecked_pairs;
        total += d.total_pairs;
        changed += d.appeared.len() + d.vanished.len();
    }

    assert!(
        rechecked < total,
        "the change bound must certify at least one pair (rechecked {rechecked} of {total})"
    );
    Run {
        engine: "exact",
        theta,
        recheck_fraction: rechecked as f64 / total as f64,
        delta_ms: delta_ms / updates as f64,
        recompute_ms: recompute_ms / updates as f64,
        changed_edges: changed,
    }
}

#[allow(clippy::too_many_arguments)]
fn approx_run(
    historical: &SeriesCollection,
    world: &SeriesCollection,
    pool: &WorkerPool,
    basic_window: usize,
    query_len: usize,
    history: usize,
    updates: usize,
    theta: f64,
) -> Run {
    let sketch = DftSketchSet::build(
        historical,
        basic_window,
        basic_window * 3 / 4,
        Transform::Naive,
    )
    .unwrap();
    let mut subscribed = SlidingApproxNetwork::initialize(&sketch, query_len).unwrap();
    let mut baseline = SlidingApproxNetwork::initialize(&sketch, query_len).unwrap();
    subscribed.subscribe_edges(theta).unwrap();
    let mut prev = baseline.network(theta);

    let (mut delta_ms, mut recompute_ms) = (0.0, 0.0);
    let (mut rechecked, mut total, mut changed) = (0usize, 0usize, 0usize);
    // Tick 0 warms caches and the worker pool; only ticks 1..=updates are
    // timed and tallied.
    for u in 0..=updates {
        let lo = history + u * basic_window;
        let chunk: Vec<Vec<f64>> = world
            .iter()
            .map(|s| s.values()[lo..lo + basic_window].to_vec())
            .collect();

        let (_, t_delta) = time(|| subscribed.ingest_in(pool, &chunk).unwrap());
        let d = subscribed.changed_edges().unwrap();
        let (_, t_full) = time(|| {
            baseline.ingest_in(pool, &chunk).unwrap();
            let snapshot = baseline.network(theta);
            let diff = SnapshotDelta::between(&prev, &snapshot).unwrap();
            prev = snapshot;
            diff
        });
        if u == 0 {
            continue;
        }
        delta_ms += millis(t_delta);
        recompute_ms += millis(t_full);
        rechecked += d.rechecked_pairs;
        total += d.total_pairs;
        changed += d.appeared.len() + d.vanished.len();
    }

    assert!(
        rechecked < total,
        "the change bound must certify at least one pair (rechecked {rechecked} of {total})"
    );
    Run {
        engine: "approx",
        theta,
        recheck_fraction: rechecked as f64 / total as f64,
        delta_ms: delta_ms / updates as f64,
        recompute_ms: recompute_ms / updates as f64,
        changed_edges: changed,
    }
}

fn main() {
    let stations = scaled(60, 10);
    let basic_window = 100;
    let query_len = 2_000;
    let updates = 8;
    let history = query_len + 400;
    let points = history + (updates + 1) * basic_window;
    let n_workers = workers();
    println!(
        "fig_delta: delta-maintained updates | {stations} stations | B={basic_window} | query window {query_len} | {updates} ticks | {n_workers} workers"
    );

    let world = generate_ncea_like(&NceaLikeConfig {
        stations,
        points,
        ..NceaLikeConfig::default()
    })
    .expect("generate dataset");
    let historical = world.truncate_length(history).unwrap();
    let pool = WorkerPool::new(n_workers);

    let mut table = Table::new(&[
        "engine",
        "theta",
        "rechecked",
        "delta tick",
        "recompute+diff",
        "speedup",
        "edge flips",
    ]);
    let mut json_rows = Vec::new();

    let mut runs = Vec::new();
    for theta in [0.5, 0.7, 0.85, 0.95] {
        runs.push(exact_run(
            &historical,
            &world,
            &pool,
            basic_window,
            query_len,
            history,
            updates,
            theta,
        ));
    }
    runs.push(approx_run(
        &historical,
        &world,
        &pool,
        basic_window,
        query_len,
        history,
        updates,
        0.85,
    ));

    for run in &runs {
        table.row(vec![
            run.engine.to_string(),
            format!("{:.2}", run.theta),
            format!("{:.1}%", run.recheck_fraction * 100.0),
            fmt_ms(run.delta_ms),
            fmt_ms(run.recompute_ms),
            format!("{:.2}x", run.recompute_ms / run.delta_ms.max(1e-9)),
            run.changed_edges.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "engine": run.engine,
            "theta": run.theta,
            "recheck_fraction": run.recheck_fraction,
            "delta_tick_ms": run.delta_ms,
            "recompute_diff_ms": run.recompute_ms,
            "speedup": run.recompute_ms / run.delta_ms.max(1e-9),
            "changed_edges": run.changed_edges,
        }));
    }

    table.print("fig_delta: subscription ticks vs recompute-and-diff");
    tsubasa_bench::write_json(
        "fig_delta",
        &serde_json::json!({
            "stations": stations,
            "basic_window": basic_window,
            "query_len": query_len,
            "updates": updates,
            "workers": n_workers,
            "rows": json_rows,
        }),
    );
}
