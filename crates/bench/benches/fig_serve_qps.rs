//! Serve-path throughput — sustained concurrent queries per second while
//! ingestion keeps publishing epochs.
//!
//! The serving story of the paper's system is continuous: the sketch grows
//! one basic window at a time and analysts query the latest snapshot
//! concurrently. This bench runs the real TCP stack end to end — an
//! [`EpochIngest`] publishing dual-method epochs on a fixed cadence, a
//! `tsubasa-serve` server sweeping on a worker pool, and a handful of
//! closed-loop client threads issuing a repeated-window mix of network and
//! top-k queries — and reports:
//!
//! * sustained queries/sec over the whole run (ingest never pauses);
//! * plan-cache hit/miss/eviction counters: the repeated-window workload
//!   must hit more than it misses (each new epoch costs one miss per
//!   distinct (windows, method) key, then every repeat hits);
//! * a final spot check that a served response equals the serial library
//!   answer for the epoch it echoes.
//!
//! Evidence lands in `target/bench-results/fig_serve_qps.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tsubasa_bench::{millis, scaled, workers, Table};
use tsubasa_core::{exact, SeriesCollection};
use tsubasa_dft::sketch::Transform;
use tsubasa_parallel::WorkerPool;
use tsubasa_serve::{server, EpochIngest, EpochStore, Method, PlanCache, QueryEngine, ServeClient};

const BASIC: usize = 32;
const INITIAL_WINDOWS: usize = 10;
const READER_THREADS: usize = 4;
const INGEST_INTERVAL: Duration = Duration::from_millis(15);

fn lcg_series(seed: u64, len: usize) -> Vec<f64> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let noise = (state >> 33) as f64 / (1u64 << 31) as f64 - 1.0;
            (i as f64 * 0.11 + seed as f64 * 0.7).sin() * 1.3 + noise * 0.5
        })
        .collect()
}

fn main() {
    let n = scaled(48, 8);
    let epochs_to_publish = scaled(40, 4);
    let pool = workers();

    let historical = SeriesCollection::from_rows(
        (0..n)
            .map(|s| lcg_series(s as u64 + 11, INITIAL_WINDOWS * BASIC))
            .collect(),
    )
    .unwrap();

    let store = Arc::new(EpochStore::new(epochs_to_publish + 2));
    let (mut ingest, _) = EpochIngest::dual(
        Arc::clone(&store),
        &historical,
        BASIC,
        BASIC,
        Transform::Naive,
    )
    .unwrap();
    let engine = Arc::new(QueryEngine::new(
        Arc::clone(&store),
        Arc::new(PlanCache::new(64)),
        Arc::new(WorkerPool::new(pool)),
    ));
    let handle = server::start(engine, "127.0.0.1:0").unwrap();
    let addr = handle.local_addr();

    // Closed-loop readers: a repeated-window mix (trailing 0 = everything,
    // trailing 4) over both methods and both query kinds, so each epoch has
    // four distinct plan keys that every later repeat hits.
    let stop = Arc::new(AtomicBool::new(false));
    let responses = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..READER_THREADS)
        .map(|r| {
            let stop = Arc::clone(&stop);
            let responses = Arc::clone(&responses);
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).unwrap();
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                let mut i = r;
                while !stop.load(Ordering::Relaxed) {
                    let method = if i % 2 == 0 {
                        Method::Exact
                    } else {
                        Method::Approximate
                    };
                    let last_windows = if i % 4 < 2 { 0 } else { 4 };
                    if i % 8 < 4 {
                        client.network(method, last_windows, 0.6).unwrap();
                    } else {
                        client.top_k(method, last_windows, 16).unwrap();
                    }
                    responses.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            })
        })
        .collect();

    // Ingest at a fixed cadence: one basic window per interval, one epoch
    // per completed window, while the readers hammer the server.
    let started = Instant::now();
    for step in 0..epochs_to_publish {
        let chunk: Vec<Vec<f64>> = (0..n)
            .map(|s| lcg_series((step * n + s) as u64 ^ 0x5eed, BASIC))
            .collect();
        let published = ingest.ingest(&chunk).unwrap();
        assert_eq!(published.len(), 1);
        thread::sleep(INGEST_INTERVAL);
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }
    let elapsed = started.elapsed();

    // Spot check: a served answer equals the serial answer for its epoch.
    let mut client = ServeClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let got = client.network(Method::Exact, 0, 0.6).unwrap();
    let epoch = store.get(got.epoch).expect("epoch retained");
    let serial =
        exact::network_streamed_aligned(epoch.exact().unwrap(), 0..epoch.window_count(), 0.6)
            .unwrap();
    assert_eq!(
        got.edges,
        serial
            .edges()
            .iter()
            .map(|&(i, j)| (i as u32, j as u32))
            .collect::<Vec<_>>(),
        "served network must equal the serial answer for its epoch"
    );

    let stats = client.stats().unwrap();
    drop(client);
    handle.shutdown();

    let total = responses.load(Ordering::Relaxed);
    let qps = total as f64 / elapsed.as_secs_f64();
    assert!(
        stats.cache_hits > stats.cache_misses,
        "repeated-window workload must hit the plan cache more than it misses \
         (hits {}, misses {})",
        stats.cache_hits,
        stats.cache_misses
    );

    let mut table = Table::new(&[
        "series",
        "pairs",
        "epochs",
        "workers",
        "readers",
        "wall",
        "responses",
        "qps",
        "cache hit/miss",
    ]);
    table.row(vec![
        n.to_string(),
        (n * (n - 1) / 2).to_string(),
        stats.published.to_string(),
        pool.to_string(),
        READER_THREADS.to_string(),
        format!("{:.0} ms", millis(elapsed)),
        total.to_string(),
        format!("{qps:.0}"),
        format!("{}/{}", stats.cache_hits, stats.cache_misses),
    ]);
    table.print("Serve throughput: concurrent queries/sec under live ingest");
    println!(
        "every epoch publication costs one plan build per distinct (windows, method) key; \
         all repeats answer from the cache without blocking ingest."
    );

    tsubasa_bench::write_json(
        "fig_serve_qps",
        &serde_json::json!({
            "series": n,
            "pairs": n * (n - 1) / 2,
            "basic_window": BASIC,
            "initial_windows": INITIAL_WINDOWS,
            "epochs_published": stats.published,
            "ingest_interval_ms": INGEST_INTERVAL.as_millis() as u64,
            "pool_workers": pool,
            "reader_threads": READER_THREADS,
            "wall_ms": millis(elapsed),
            "responses": total,
            "qps": qps,
            "server_requests": stats.requests,
            "server_errors": stats.errors,
            "connections": stats.connections,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "cache_evictions": stats.cache_evictions,
            "hits_exceed_misses": stats.cache_hits > stats.cache_misses,
        }),
    );
}
